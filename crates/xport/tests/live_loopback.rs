//! Live two-node tests over 127.0.0.1 — real sockets, real wall clock.
//!
//! These tests assert delivery, ordering and exactly-once semantics,
//! never latencies: the wall clock jitters and the kernel schedules
//! datagrams as it pleases. The acceptance test drives the stock
//! protocol engine through a 2%-loss + reordering proxy and checks the
//! byte stream survives intact.

use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qpip_netstack::types::Endpoint;
use qpip_nic::types::{CompletionKind, CompletionStatus, CqId, QpId, RecvWr, SendWr, ServiceType};
use qpip_trace::{FlightRecorder, TraceEvent, Tracer};
use qpip_xport::{ImpairConfig, ImpairProxy, XportConfig, XportError, XportNode};

const FABRIC_A: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
const FABRIC_B: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2);

fn node(fabric: Ipv6Addr) -> XportNode {
    XportNode::bind(fabric, XportConfig::default()).expect("bind loopback")
}

/// Deterministic payload for message `seq`: a 4-byte sequence header
/// followed by a seq-derived fill, so corruption and misordering are
/// both detectable.
fn message(seq: u32, len: usize) -> Vec<u8> {
    let mut m = Vec::with_capacity(len);
    m.extend_from_slice(&seq.to_be_bytes());
    m.extend((4..len).map(|i| (seq as usize).wrapping_mul(31).wrapping_add(i) as u8));
    m
}

#[test]
fn udp_datagram_crosses_live_sockets() {
    let mut a = node(FABRIC_A);
    let mut b = node(FABRIC_B);
    a.add_peer(FABRIC_B, b.local_addr().unwrap());
    b.add_peer(FABRIC_A, a.local_addr().unwrap());

    let (a_cq, b_cq) = (a.create_cq(), b.create_cq());
    let a_qp = a.create_qp(ServiceType::UnreliableUdp, a_cq, a_cq).unwrap();
    let b_qp = b.create_qp(ServiceType::UnreliableUdp, b_cq, b_cq).unwrap();
    a.udp_bind(a_qp, 7000).unwrap();
    b.udp_bind(b_qp, 7001).unwrap();
    b.post_recv(b_qp, RecvWr { wr_id: 1, capacity: 2048 }).unwrap();

    // UDP is unreliable even on loopback in principle: retry the send
    // until the datagram shows up rather than asserting on one shot
    let payload = message(7, 512);
    let deadline = Instant::now() + Duration::from_secs(10);
    let got = loop {
        assert!(Instant::now() < deadline, "datagram never arrived");
        a.post_send(
            a_qp,
            SendWr { wr_id: 9, payload: payload.clone(), dst: Some(Endpoint::new(FABRIC_B, 7001)) },
        )
        .unwrap();
        // the send CQ entry is immediate for UDP (handed to the wire)
        let sc = a.wait(a_cq).unwrap();
        assert_eq!(sc.kind, CompletionKind::Send);
        let mut found = None;
        for _ in 0..20 {
            if let Some(c) = b.poll(b_cq).unwrap() {
                found = Some(c);
                break;
            }
            b.pump(Duration::from_millis(10)).unwrap();
        }
        if let Some(c) = found {
            break c;
        }
    };
    match got.kind {
        CompletionKind::Recv { data, src } => {
            assert_eq!(data, payload);
            assert_eq!(src, Some(Endpoint::new(FABRIC_A, 7000)));
        }
        other => panic!("expected Recv, got {other:?}"),
    }
    assert_eq!(got.status, CompletionStatus::Success);
}

/// Runs a TCP transfer of `count` messages of `len` bytes from a
/// client node to a server node whose sockets are already wired
/// (directly or through a proxy). Returns the messages the server
/// received, in order, plus the client node for post-mortem stats.
fn transfer(
    mut client: XportNode,
    server: XportNode,
    count: u32,
    len: usize,
) -> (Vec<Vec<u8>>, u64) {
    let server_thread = std::thread::spawn(move || run_server(server, count, len));

    let cq_conn = client.create_cq();
    let cq_send = client.create_cq();
    let qp = client.create_qp(ServiceType::ReliableTcp, cq_send, cq_conn).unwrap();
    client.tcp_connect(qp, 5000, Endpoint::new(FABRIC_B, 5001)).unwrap();
    let c = client.wait(cq_conn).expect("connection established");
    assert_eq!(c.kind, CompletionKind::ConnectionEstablished);

    // windowed submission: at most 32 sends in flight, refilled as
    // acknowledgment completions retire them (§3 semantics)
    let mut next = 0u32;
    let mut inflight = 0u32;
    let mut completed = 0u32;
    while completed < count {
        while next < count && inflight < 32 {
            client
                .post_send(
                    qp,
                    SendWr { wr_id: u64::from(next), payload: message(next, len), dst: None },
                )
                .unwrap();
            next += 1;
            inflight += 1;
        }
        let done = client.wait(cq_send).expect("send completion");
        assert_eq!(done.kind, CompletionKind::Send);
        assert_eq!(done.status, CompletionStatus::Success, "send {} failed", done.wr_id);
        inflight -= 1;
        completed += 1;
    }

    // sample before close: the engine's per-connection counters die
    // with the connection slab entry
    let retransmissions = client.engine().retransmissions();
    client.tcp_close(qp).unwrap();
    let received = server_thread.join().expect("server thread");
    // let the FIN handshake drain; nothing is asserted about it (under
    // loss the teardown may outlive our patience — data already landed)
    let until = Instant::now() + Duration::from_millis(300);
    while Instant::now() < until {
        client.pump(Duration::from_millis(10)).unwrap();
    }
    (received, retransmissions)
}

/// Server side: one listening QP, keeps `QUEUE` receive WRs posted,
/// collects `count` messages, then closes.
fn run_server(mut server: XportNode, count: u32, len: usize) -> Vec<Vec<u8>> {
    const QUEUE: u32 = 64;
    let cq = server.create_cq();
    let qp = server.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
    server.tcp_listen(qp, 5001).unwrap();
    for i in 0..QUEUE {
        server.post_recv(qp, RecvWr { wr_id: u64::from(i), capacity: len }).unwrap();
    }
    let mut got = Vec::new();
    loop {
        let c = server.wait(cq).expect("server completion");
        match c.kind {
            CompletionKind::ConnectionEstablished => {}
            CompletionKind::Recv { data, .. } => {
                assert_eq!(c.status, CompletionStatus::Success);
                got.push(data);
                if got.len() as u32 == count {
                    break;
                }
                // recycle the consumed WR to keep the window open
                server.post_recv(qp, RecvWr { wr_id: 0, capacity: len }).unwrap();
            }
            CompletionKind::PeerDisconnected => {
                panic!("peer closed after {} of {count} messages", got.len())
            }
            other => panic!("unexpected completion {other:?}"),
        }
    }
    let _ = server.tcp_close(qp);
    let until = Instant::now() + Duration::from_millis(300);
    while Instant::now() < until {
        server.pump(Duration::from_millis(10)).unwrap();
    }
    got
}

fn assert_exactly_once_in_order(received: &[Vec<u8>], count: u32, len: usize) {
    assert_eq!(received.len() as u32, count, "message count");
    for (i, data) in received.iter().enumerate() {
        assert_eq!(data, &message(i as u32, len), "message {i} corrupted or misordered");
    }
}

#[test]
fn tcp_transfer_direct() {
    let mut client = node(FABRIC_A);
    let mut server = node(FABRIC_B);
    client.add_peer(FABRIC_B, server.local_addr().unwrap());
    server.add_peer(FABRIC_A, client.local_addr().unwrap());

    let (received, _retrans) = transfer(client, server, 100, 1024);
    assert_exactly_once_in_order(&received, 100, 1024);
}

/// The acceptance test: a transfer through the impairment proxy at 2%
/// loss plus reordering completes with exactly-once, in-order delivery
/// using the stock engine — its retransmission machinery, not the
/// wire, provides reliability.
#[test]
fn tcp_transfer_survives_loss_and_reordering() {
    let mut client = node(FABRIC_A);
    let mut server = node(FABRIC_B);
    let proxy = ImpairProxy::new(ImpairConfig {
        seed: 42,
        drop_per_mille: 20,    // 2% loss
        reorder_per_mille: 30, // 3% held for reordering
        hold_at_most: Duration::from_millis(15),
    })
    .route(FABRIC_A, client.local_addr().unwrap())
    .route(FABRIC_B, server.local_addr().unwrap())
    .spawn()
    .expect("spawn proxy");
    // both directions pass through the proxy
    client.add_peer(FABRIC_B, proxy.addr());
    server.add_peer(FABRIC_A, proxy.addr());

    let (count, len) = (300, 1024);
    let (received, retransmissions) = transfer(client, server, count, len);
    assert_exactly_once_in_order(&received, count, len);

    let stats = proxy.stats();
    assert!(stats.dropped > 0, "the proxy never dropped anything: {stats:?}");
    assert!(retransmissions > 0, "loss recovery never ran; proxy stats {stats:?}");
    proxy.stop();
}

/// Flight recorder on real wires: a lossy proxied transfer must leave
/// ≥1 retransmit event in the client's trace, and every retransmit's
/// sequence number must name a segment the trace also shows re-sent.
/// Event ordering and counts are wall-clock-dependent; the seq linkage
/// is not.
#[test]
fn lossy_proxied_transfer_traces_retransmits() {
    let mut client = node(FABRIC_A);
    let mut server = node(FABRIC_B);
    let rec = Arc::new(FlightRecorder::new(65536));
    client.set_tracer(Tracer::new(Arc::clone(&rec), 0));
    let proxy = ImpairProxy::new(ImpairConfig {
        seed: 7,
        drop_per_mille: 30, // 3% loss
        reorder_per_mille: 20,
        hold_at_most: Duration::from_millis(15),
    })
    .route(FABRIC_A, client.local_addr().unwrap())
    .route(FABRIC_B, server.local_addr().unwrap())
    .spawn()
    .expect("spawn proxy");
    client.add_peer(FABRIC_B, proxy.addr());
    server.add_peer(FABRIC_A, proxy.addr());

    let (count, len) = (300, 1024);
    let (received, retransmissions) = transfer(client, server, count, len);
    assert_exactly_once_in_order(&received, count, len);
    assert!(retransmissions > 0, "loss recovery never ran");
    proxy.stop();

    let events = rec.events();
    let retransmits: Vec<_> =
        events.iter().filter(|r| matches!(r.ev, TraceEvent::Retransmit { .. })).collect();
    assert!(!retransmits.is_empty(), "engine retransmitted but the trace recorded none");
    for r in &retransmits {
        let TraceEvent::Retransmit { seq, .. } = r.ev else { unreachable!() };
        let matched = events.iter().any(|e| {
            e.conn == r.conn
                && matches!(e.ev,
                    TraceEvent::SegTx { seq: s, retransmit: true, .. } if s == seq)
        });
        assert!(matched, "retransmit seq {seq} has no matching retransmitted SegTx");
    }
    // socket-level events landed too (node scope): the live transport
    // stamps rx/tx datagrams into the same recorder
    assert!(
        events.iter().any(|r| matches!(r.ev, TraceEvent::Sock { .. })),
        "no socket-level events traced"
    );
}

#[test]
fn messages_backlog_until_recv_wrs_are_posted() {
    let mut client = node(FABRIC_A);
    let mut server = node(FABRIC_B);
    client.add_peer(FABRIC_B, server.local_addr().unwrap());
    server.add_peer(FABRIC_A, client.local_addr().unwrap());

    // §5.1 flow control counts *bytes*, but one message consumes one
    // whole WR regardless of its size: two 1024-byte WRs advertise a
    // 2048-byte window, into which the client can land eight 100-byte
    // messages. Six of them find no WR and must park in the backlog.
    let server_thread = std::thread::spawn(move || {
        let cq = server.create_cq();
        let qp = server.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
        server.tcp_listen(qp, 5001).unwrap();
        server.post_recv(qp, RecvWr { wr_id: 0, capacity: 1024 }).unwrap();
        server.post_recv(qp, RecvWr { wr_id: 1, capacity: 1024 }).unwrap();
        let mut got = Vec::new();
        while got.len() < 2 {
            let c = server.wait(cq).expect("server completion");
            if let CompletionKind::Recv { data, .. } = c.kind {
                got.push(data);
            }
        }
        // both WRs are consumed but 1848 bytes of window remain: the
        // other six messages arrive and must park
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().tcp_backlogged == 0 {
            assert!(Instant::now() < deadline, "backlog never formed: {:?}", server.stats());
            server.pump(Duration::from_millis(10)).unwrap();
        }
        // now resupply; the backlog drains through the fresh WRs
        for _ in 0..6 {
            server.post_recv(qp, RecvWr { wr_id: 0, capacity: 1024 }).unwrap();
        }
        while got.len() < 8 {
            let c = server.wait(cq).expect("server completion");
            if let CompletionKind::Recv { data, .. } = c.kind {
                got.push(data);
            }
        }
        (got, server.stats())
    });

    let cq = client.create_cq();
    let qp = client.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
    client.tcp_connect(qp, 5000, Endpoint::new(FABRIC_B, 5001)).unwrap();
    let mut established = false;
    let mut sends_done = 0;
    for i in 0..8u32 {
        client
            .post_send(qp, SendWr { wr_id: u64::from(i), payload: message(i, 100), dst: None })
            .unwrap();
    }
    while !(established && sends_done == 8) {
        match client.wait(cq).expect("client completion").kind {
            CompletionKind::ConnectionEstablished => established = true,
            CompletionKind::Send => sends_done += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    let (got, sstats) = server_thread.join().expect("server");
    for (i, data) in got.iter().enumerate() {
        assert_eq!(data, &message(i as u32, 100));
    }
    assert!(sstats.tcp_backlogged > 0, "nothing ever backlogged: {sstats:?}");
}

#[test]
fn wait_times_out_with_diagnostic_instead_of_hanging() {
    let cfg = XportConfig { wait_timeout: Duration::from_millis(200), ..XportConfig::default() };
    let mut n = XportNode::bind(FABRIC_A, cfg).expect("bind");
    let cq = n.create_cq();
    let qp = n.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
    let _ = qp;
    let err = n.wait(cq).expect_err("nothing can complete");
    match err {
        XportError::WaitTimeout(d) => {
            assert!(d.contains("cq#0"), "diagnostic names the CQ: {d}");
            assert!(d.contains("qp#0"), "diagnostic lists QPs: {d}");
            assert!(d.contains("fabric"), "diagnostic names the node: {d}");
        }
        other => panic!("expected WaitTimeout, got {other:?}"),
    }
}

#[test]
fn verb_errors_on_bad_handles() {
    let mut n = node(FABRIC_A);
    let cq = n.create_cq();
    // unknown CQ on QP creation
    assert!(n.create_qp(ServiceType::ReliableTcp, cq, CqId(99)).is_err());
    // unknown QP and CQ handles on the hot verbs
    assert!(n.post_recv(QpId(99), RecvWr { wr_id: 0, capacity: 64 }).is_err());
    assert!(n.poll(CqId(99)).is_err());
    // service-type misuse
    let qp = n.create_qp(ServiceType::UnreliableUdp, cq, cq).unwrap();
    assert!(n.tcp_listen(qp, 9).is_err());
    assert!(n.tcp_connect(qp, 1, Endpoint::new(FABRIC_B, 2)).is_err());
    let tqp = n.create_qp(ServiceType::ReliableTcp, cq, cq).unwrap();
    assert!(n.udp_bind(tqp, 9).is_err());
    assert!(n.tcp_close(tqp).is_err(), "close before connect");
}
