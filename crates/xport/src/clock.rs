//! Wall-clock → simulation-clock mapping.
//!
//! The protocol engine is pure: it never reads a clock, it is handed a
//! [`SimTime`] with every call. Inside the DES worlds that instant comes
//! from the event kernel; here it comes from the machine. A [`WallClock`]
//! pins an [`Instant`] epoch at node creation and reports the elapsed
//! wall time since then as a `SimTime`, so one engine's timestamps are
//! monotone and strictly local — two nodes' clocks never need to agree,
//! exactly as two machines' TSCs never do.

use std::time::{Duration, Instant};

use qpip_sim::time::{SimDuration, SimTime};

/// A per-node monotonic clock mapping wall time onto the engine's
/// picosecond [`SimTime`] axis.
///
/// # Examples
///
/// ```
/// use qpip_xport::clock::WallClock;
///
/// let clock = WallClock::start();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts a clock; `now()` reports time elapsed since this call.
    pub fn start() -> Self {
        WallClock { epoch: Instant::now() }
    }

    /// The current instant on this node's simulation-time axis.
    pub fn now(&self) -> SimTime {
        // Instant::elapsed is monotonic; nanosecond precision is three
        // orders finer than the engine's coarsest-grained timer (the
        // 10 ms min RTO), and u64 picoseconds hold ~213 days of uptime.
        SimTime::from_picos(self.epoch.elapsed().as_nanos().saturating_mul(1_000) as u64)
    }

    /// Wall-clock duration until `deadline`, `Duration::ZERO` if due.
    pub fn until(&self, deadline: SimTime) -> Duration {
        let now = self.now();
        if deadline <= now {
            return Duration::ZERO;
        }
        sim_to_wall(deadline.duration_since(now))
    }
}

/// Converts an engine duration to a wall-clock duration.
pub fn sim_to_wall(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let c = WallClock::start();
        let mut prev = c.now();
        for _ in 0..100 {
            let t = c.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn until_is_zero_for_past_deadlines() {
        let c = WallClock::start();
        assert_eq!(c.until(SimTime::ZERO), Duration::ZERO);
    }

    #[test]
    fn until_tracks_future_deadlines() {
        let c = WallClock::start();
        let deadline = c.now() + SimDuration::from_millis(50);
        let d = c.until(deadline);
        assert!(d <= Duration::from_millis(50));
        assert!(d > Duration::from_millis(10), "epoch just started: ~50ms remain, got {d:?}");
    }

    #[test]
    fn sim_to_wall_converts_units() {
        assert_eq!(sim_to_wall(SimDuration::from_millis(3)), Duration::from_millis(3));
        assert_eq!(sim_to_wall(SimDuration::from_micros(7)), Duration::from_micros(7));
    }
}
