//! The [`XportNode`] runtime: QPIP verbs over a live UDP socket.
//!
//! One node owns one nonblocking-with-timeout `UdpSocket`, one
//! **unmodified** [`Engine`], and the same QP-multiplexing state machine
//! the simulated NIC firmware runs (receive-WR queues, SRAM backlog,
//! accept pools, send-token retirement, posted-WR receive windows —
//! §3/§5.1 of the paper), minus the cycle cost model: on real hardware
//! the cost model *is* the hardware.
//!
//! The event loop is [`XportNode::pump`]: fire due engine timers, block
//! on the socket for at most `min(budget, time-to-next-deadline)`, feed
//! any datagram to [`Engine::on_packet`], and transmit whatever the
//! engine emits through the peer table. [`XportNode::wait`] layers a
//! completion-queue wait on top with a hard timeout and a diagnostic
//! error instead of a hang.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{Ipv6Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use crate::clock::WallClock;
use qpip_netstack::engine::{Engine, EngineError};
use qpip_netstack::types::{ConnId, Emit, Endpoint, NetConfig, PacketOut, SendToken};
use qpip_nic::types::{
    Completion, CompletionKind, CompletionStatus, CqId, NicError, QpId, RecvWr, SendWr, ServiceType,
};
use qpip_trace::{Snapshot, TraceEvent, Tracer};

/// Largest datagram the runtime will receive in one `recv_from`. The
/// engine never builds a packet above the configured MTU, and the
/// default MTU (9000, jumbo-frame class like the paper's Myrinet MTU)
/// fits comfortably.
const RECV_BUF: usize = 65536;

/// Configuration for one live node.
#[derive(Debug, Clone)]
pub struct XportConfig {
    /// Protocol-engine configuration. Defaults to the paper's QPIP
    /// profile ([`NetConfig::qpip`]) at a 9000-byte MTU: one message per
    /// segment, immediate ACKs, 10 ms minimum RTO.
    pub net: NetConfig,
    /// Local socket address to bind. Port 0 lets the OS pick.
    pub bind: SocketAddr,
    /// Hard ceiling on [`XportNode::wait`]: a CQ wait that exceeds this
    /// returns [`XportError::WaitTimeout`] with a diagnostic.
    pub wait_timeout: Duration,
    /// Longest single socket block inside `wait` (the loop re-checks
    /// timers and CQs at least this often).
    pub pump_slice: Duration,
    /// How often an established connection re-advertises its posted-WR
    /// receive window. The engine (faithful to the paper's firmware)
    /// has no persist timer, and on a lossy wire a pure window-update
    /// ACK is neither acked nor retransmitted — a periodic re-send
    /// bounds the stall a lost update can cause.
    pub window_refresh: Duration,
}

impl Default for XportConfig {
    fn default() -> Self {
        XportConfig {
            net: NetConfig::qpip(9000),
            bind: "127.0.0.1:0".parse().expect("literal addr"),
            wait_timeout: Duration::from_secs(30),
            pump_slice: Duration::from_millis(10),
            window_refresh: Duration::from_millis(100),
        }
    }
}

/// Errors from the live runtime: verb-layer rejections, socket
/// failures, or a CQ wait that ran out of wall clock.
#[derive(Debug)]
pub enum XportError {
    /// The verbs layer or protocol engine rejected the call.
    Nic(NicError),
    /// The OS socket failed.
    Io(io::Error),
    /// [`XportNode::wait`] exceeded [`XportConfig::wait_timeout`]; the
    /// string describes the node's pending state.
    WaitTimeout(String),
}

impl fmt::Display for XportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XportError::Nic(e) => write!(f, "verbs: {e}"),
            XportError::Io(e) => write!(f, "socket: {e}"),
            XportError::WaitTimeout(d) => write!(f, "wait timed out: {d}"),
        }
    }
}

impl std::error::Error for XportError {}

impl From<NicError> for XportError {
    fn from(e: NicError) -> Self {
        XportError::Nic(e)
    }
}

impl From<io::Error> for XportError {
    fn from(e: io::Error) -> Self {
        XportError::Io(e)
    }
}

impl From<EngineError> for XportError {
    fn from(e: EngineError) -> Self {
        XportError::Nic(NicError::Engine(e))
    }
}

/// Runtime counters (datapath health; all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XportStats {
    /// Datagrams read off the socket.
    pub datagrams_rx: u64,
    /// Datagrams written to the socket.
    pub datagrams_tx: u64,
    /// Engine packets dropped because the destination fabric address
    /// has no peer-table entry.
    pub unroutable_drops: u64,
    /// UDP messages dropped because no receive WR was posted
    /// (unreliable service — §3).
    pub udp_no_wr_drops: u64,
    /// TCP messages parked in the backlog awaiting a receive WR.
    pub tcp_backlogged: u64,
}

impl XportStats {
    /// Renders the counters as a named snapshot (scope `"xport"`).
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("xport");
        s.push("datagrams_rx", self.datagrams_rx)
            .push("datagrams_tx", self.datagrams_tx)
            .push("unroutable_drops", self.unroutable_drops)
            .push("udp_no_wr_drops", self.udp_no_wr_drops)
            .push("tcp_backlogged", self.tcp_backlogged);
        s
    }
}

/// Per-QP multiplexing state (mirrors the simulated firmware's, minus
/// the cycle accounting).
#[derive(Debug)]
struct Qp {
    service: ServiceType,
    send_cq: CqId,
    recv_cq: CqId,
    conn: Option<ConnId>,
    local_port: u16,
    recv_queue: VecDeque<RecvWr>,
    posted_bytes: u64,
    backlog: VecDeque<(Vec<u8>, Option<Endpoint>)>,
    established: bool,
}

/// One live QPIP node: verbs in, UDP datagrams out.
///
/// See the crate docs for the frame/clock/timer mapping. The verb
/// surface mirrors `qpip::world::QpipWorld` minus the node index (a
/// node *is* the handle) — application code ports by swapping the world
/// handle for a node and threading `?` through the results.
pub struct XportNode {
    cfg: XportConfig,
    sock: UdpSocket,
    engine: Engine,
    clock: WallClock,
    peers: HashMap<Ipv6Addr, SocketAddr>,
    qps: HashMap<QpId, Qp>,
    cqs: HashMap<CqId, VecDeque<Completion>>,
    conn_to_qp: HashMap<ConnId, QpId>,
    udp_port_to_qp: HashMap<u16, QpId>,
    accept_pool: HashMap<u16, VecDeque<QpId>>,
    tokens: HashMap<u64, (QpId, u64)>,
    next_qp: u32,
    next_cq: u32,
    next_token: u64,
    last_refresh: Instant,
    buf: Vec<u8>,
    stats: XportStats,
    /// Flight-recorder handle; also installed into the embedded engine.
    /// Events are stamped with this node's wall-clock-mapped [`SimTime`].
    tracer: Option<Tracer>,
}

impl fmt::Debug for XportNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XportNode")
            .field("fabric_addr", &self.engine.local_addr())
            .field("qps", &self.qps.len())
            .field("peers", &self.peers.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl XportNode {
    /// Binds a live node: `fabric_addr` is its IPv6 identity on the
    /// fabric (what peers' engines address packets to), `cfg.bind` is
    /// the OS socket it answers on.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn bind(fabric_addr: Ipv6Addr, cfg: XportConfig) -> io::Result<XportNode> {
        let sock = UdpSocket::bind(cfg.bind)?;
        sock.set_read_timeout(Some(Duration::from_millis(1)))?;
        let engine = Engine::new(cfg.net.clone(), fabric_addr);
        Ok(XportNode {
            cfg,
            sock,
            engine,
            clock: WallClock::start(),
            peers: HashMap::new(),
            qps: HashMap::new(),
            cqs: HashMap::new(),
            conn_to_qp: HashMap::new(),
            udp_port_to_qp: HashMap::new(),
            accept_pool: HashMap::new(),
            tokens: HashMap::new(),
            next_qp: 0,
            next_cq: 0,
            next_token: 1,
            last_refresh: Instant::now(),
            buf: vec![0; RECV_BUF],
            stats: XportStats::default(),
            tracer: None,
        })
    }

    /// Installs a flight-recorder handle on the runtime and its embedded
    /// engine. Socket-level tx/rx are recorded node-scoped; protocol
    /// events carry their connection. Timestamps are this node's
    /// wall-clock-mapped simulation time.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The OS socket address this node receives on (the address to hand
    /// to peers' [`add_peer`](Self::add_peer), or to a proxy).
    ///
    /// # Errors
    ///
    /// Propagates `UdpSocket::local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// This node's fabric IPv6 address.
    pub fn fabric_addr(&self) -> Ipv6Addr {
        self.engine.local_addr()
    }

    /// Routes fabric address `fabric` to live socket `at` — the role
    /// the Myrinet source-route table played in the paper's testbed.
    /// Re-adding an address overwrites the route (e.g. to interpose a
    /// proxy).
    pub fn add_peer(&mut self, fabric: Ipv6Addr, at: SocketAddr) {
        self.peers.insert(fabric, at);
    }

    /// Runtime counters.
    pub fn stats(&self) -> XportStats {
        self.stats
    }

    /// The current instant on this node's wall-clock-backed simulation
    /// time axis (what completions' `visible_at` is stamped with).
    pub fn now(&self) -> qpip_sim::time::SimTime {
        self.clock.now()
    }

    /// Read-only view of the protocol engine (retransmission counters,
    /// connection state — useful for asserting that loss recovery
    /// actually ran).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs the embedded engine's TCB invariant oracle (full sweep; see
    /// [`qpip_netstack::invariant`]).
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn check_invariants(&mut self) -> Result<(), qpip_netstack::invariant::InvariantViolation> {
        self.engine.check_invariants()
    }

    // ----- verbs ----------------------------------------------------------

    /// Creates a completion queue.
    pub fn create_cq(&mut self) -> CqId {
        let id = CqId(self.next_cq);
        self.next_cq += 1;
        self.cqs.insert(id, VecDeque::new());
        id
    }

    /// Creates a queue pair bound to the given service and CQs.
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownCq`] if either CQ does not exist.
    pub fn create_qp(
        &mut self,
        service: ServiceType,
        send_cq: CqId,
        recv_cq: CqId,
    ) -> Result<QpId, XportError> {
        for cq in [send_cq, recv_cq] {
            if !self.cqs.contains_key(&cq) {
                return Err(NicError::UnknownCq(cq).into());
            }
        }
        let id = QpId(self.next_qp);
        self.next_qp += 1;
        self.qps.insert(
            id,
            Qp {
                service,
                send_cq,
                recv_cq,
                conn: None,
                local_port: 0,
                recv_queue: VecDeque::new(),
                posted_bytes: 0,
                backlog: VecDeque::new(),
                established: false,
            },
        );
        Ok(id)
    }

    /// Binds a UDP QP to a local port.
    ///
    /// # Errors
    ///
    /// [`NicError::InvalidState`] for a TCP QP; engine errors (e.g.
    /// port in use) via [`NicError::Engine`].
    pub fn udp_bind(&mut self, qp: QpId, port: u16) -> Result<(), XportError> {
        {
            let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
            if q.service != ServiceType::UnreliableUdp {
                return Err(NicError::InvalidState("udp_bind on a TCP QP").into());
            }
        }
        self.engine.udp_bind(port).map_err(NicError::Engine)?;
        self.qps.get_mut(&qp).expect("checked").local_port = port;
        self.udp_port_to_qp.insert(port, qp);
        Ok(())
    }

    /// Adds a TCP QP to the accept pool for `port` (and starts the
    /// listener if this is the first QP on that port) — §3's rendezvous
    /// model.
    ///
    /// # Errors
    ///
    /// [`NicError::InvalidState`] for a UDP or already-connected QP;
    /// engine errors via [`NicError::Engine`].
    pub fn tcp_listen(&mut self, qp: QpId, port: u16) -> Result<(), XportError> {
        {
            let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
            if q.service != ServiceType::ReliableTcp {
                return Err(NicError::InvalidState("tcp_listen on a UDP QP").into());
            }
            if q.conn.is_some() {
                return Err(NicError::InvalidState("tcp_listen on a connected QP").into());
            }
        }
        match self.engine.tcp_listen(port) {
            Ok(()) => {}
            // pooling more QPs behind one listening port is the normal
            // multi-accept pattern
            Err(EngineError::PortInUse(_)) if self.accept_pool.contains_key(&port) => {}
            Err(e) => return Err(NicError::Engine(e).into()),
        }
        self.qps.get_mut(&qp).expect("checked").local_port = port;
        self.accept_pool.entry(port).or_default().push_back(qp);
        Ok(())
    }

    /// Opens a connection from a TCP QP to `remote` (a fabric
    /// endpoint). The SYN leaves immediately; completion arrives later
    /// as a [`CompletionKind::ConnectionEstablished`] entry on the
    /// QP's receive CQ.
    ///
    /// # Errors
    ///
    /// [`NicError::InvalidState`] for a UDP or already-connected QP.
    pub fn tcp_connect(
        &mut self,
        qp: QpId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<(), XportError> {
        {
            let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
            if q.service != ServiceType::ReliableTcp {
                return Err(NicError::InvalidState("tcp_connect on a UDP QP").into());
            }
            if q.conn.is_some() {
                return Err(NicError::InvalidState("tcp_connect on a connected QP").into());
            }
        }
        let now = self.clock.now();
        let (conn, emits) = self.engine.tcp_connect(now, local_port, remote);
        let posted = {
            let q = self.qps.get_mut(&qp).expect("checked");
            q.conn = Some(conn);
            q.local_port = local_port;
            q.posted_bytes
        };
        self.conn_to_qp.insert(conn, qp);
        self.dispatch(emits)?;
        // announce the posted-WR window so the SYN-ACK peer sees real
        // space as soon as the handshake completes (§5.1)
        let upd = self.engine.set_recv_space(self.clock.now(), conn, posted)?;
        self.dispatch(upd)?;
        Ok(())
    }

    /// Posts a send work request. UDP sends complete immediately
    /// (handed to the wire); TCP sends complete when every byte is
    /// acknowledged (§3).
    ///
    /// # Errors
    ///
    /// [`NicError::InvalidState`] if the QP is not ready;
    /// [`NicError::Engine`] for engine rejections (e.g. message larger
    /// than one segment in message-per-segment mode).
    pub fn post_send(&mut self, qp: QpId, wr: SendWr) -> Result<(), XportError> {
        let (service, conn, local_port, send_cq) = {
            let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
            (q.service, q.conn, q.local_port, q.send_cq)
        };
        match service {
            ServiceType::UnreliableUdp => {
                let dst = wr.dst.ok_or(NicError::InvalidState("UDP send needs a destination"))?;
                let emit =
                    self.engine.udp_send(local_port, dst, &wr.payload).map_err(NicError::Engine)?;
                self.dispatch(vec![emit])?;
                let now = self.clock.now();
                self.complete(
                    send_cq,
                    Completion {
                        qp,
                        wr_id: wr.wr_id,
                        kind: CompletionKind::Send,
                        status: CompletionStatus::Success,
                        visible_at: now,
                    },
                );
                Ok(())
            }
            ServiceType::ReliableTcp => {
                let conn =
                    conn.ok_or(NicError::InvalidState("post_send on an unconnected TCP QP"))?;
                let token = self.next_token;
                self.next_token += 1;
                self.tokens.insert(token, (qp, wr.wr_id));
                let now = self.clock.now();
                match self.engine.tcp_send(now, conn, wr.payload, SendToken(token)) {
                    Ok(emits) => self.dispatch(emits),
                    Err(e) => {
                        self.tokens.remove(&token);
                        Err(NicError::Engine(e).into())
                    }
                }
            }
        }
    }

    /// Posts a receive work request, draining any backlog it can now
    /// absorb and growing the advertised window (§5.1: the window *is*
    /// the posted receive-WR space).
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownQp`] for a bad handle.
    pub fn post_recv(&mut self, qp: QpId, wr: RecvWr) -> Result<(), XportError> {
        let (was_small, conn, established) = {
            let q = self.qps.get_mut(&qp).ok_or(NicError::UnknownQp(qp))?;
            let was_small = q.posted_bytes < self.cfg.net.mtu as u64;
            q.posted_bytes += wr.capacity as u64;
            q.recv_queue.push_back(wr);
            (was_small, q.conn, q.established)
        };
        self.drain_backlog(qp);
        if let Some(conn) = conn {
            // read the posted space AFTER the drain: a backlogged
            // message may have consumed the WR just posted, and the
            // advertised window must equal the space actually available
            let posted = self.qps[&qp].posted_bytes;
            let emits = self.engine.set_recv_space(self.clock.now(), conn, posted)?;
            if was_small && established {
                self.dispatch(emits)?;
            }
            // otherwise: the window rides on normal ACKs; suppress the
            // extra update packet
        }
        Ok(())
    }

    /// Begins a graceful close of a connected TCP QP. The peer sees
    /// [`CompletionKind::PeerDisconnected`]; in-flight sends that can
    /// no longer complete are flushed with
    /// [`CompletionStatus::ConnectionError`] once the connection dies.
    ///
    /// # Errors
    ///
    /// [`NicError::InvalidState`] if the QP has no connection.
    pub fn tcp_close(&mut self, qp: QpId) -> Result<(), XportError> {
        let conn = {
            let q = self.qps.get(&qp).ok_or(NicError::UnknownQp(qp))?;
            q.conn.ok_or(NicError::InvalidState("tcp_close on an unconnected QP"))?
        };
        let now = self.clock.now();
        let emits = self.engine.tcp_close(now, conn)?;
        self.dispatch(emits)
    }

    /// Pops the oldest completion from a CQ, servicing the socket once
    /// (without blocking) first.
    ///
    /// # Errors
    ///
    /// [`NicError::UnknownCq`] for a bad handle; socket errors.
    pub fn poll(&mut self, cq: CqId) -> Result<Option<Completion>, XportError> {
        if !self.cqs.contains_key(&cq) {
            return Err(NicError::UnknownCq(cq).into());
        }
        self.pump(Duration::ZERO)?;
        Ok(self.cqs.get_mut(&cq).expect("checked").pop_front())
    }

    /// Blocks (servicing the socket and timers) until a completion
    /// lands on `cq`.
    ///
    /// # Errors
    ///
    /// [`XportError::WaitTimeout`] — with a pending-state diagnostic —
    /// after [`XportConfig::wait_timeout`] of no completion; socket
    /// errors.
    pub fn wait(&mut self, cq: CqId) -> Result<Completion, XportError> {
        if !self.cqs.contains_key(&cq) {
            return Err(NicError::UnknownCq(cq).into());
        }
        let start = Instant::now();
        loop {
            if let Some(c) = self.cqs.get_mut(&cq).expect("checked").pop_front() {
                return Ok(c);
            }
            if start.elapsed() > self.cfg.wait_timeout {
                return Err(XportError::WaitTimeout(self.pending_summary(cq)));
            }
            self.pump(self.cfg.pump_slice)?;
        }
    }

    /// Services the node once: fires due timers, blocks on the socket
    /// for at most `min(max_wait, time-to-next-deadline)`, processes
    /// one datagram if one arrived. Returns whether a datagram was
    /// processed. Call in a loop to run the node without waiting on a
    /// specific CQ (e.g. a server between requests).
    ///
    /// # Errors
    ///
    /// Socket errors other than timeout/would-block.
    pub fn pump(&mut self, max_wait: Duration) -> Result<bool, XportError> {
        self.fire_due_timers()?;
        self.refresh_windows()?;
        let mut budget = max_wait;
        if let Some(d) = self.engine.next_deadline() {
            budget = budget.min(self.clock.until(d));
        }
        let got = if budget.is_zero() {
            self.sock.set_nonblocking(true)?;
            let r = self.recv_once();
            self.sock.set_nonblocking(false)?;
            r?
        } else {
            // clamp: set_read_timeout(0) is an error, and sub-ms
            // timeouts just spin against OS timer granularity
            self.sock.set_read_timeout(Some(budget.max(Duration::from_millis(1))))?;
            self.recv_once()?
        };
        if got {
            // drain the burst behind the first datagram without
            // blocking, so queued packets don't sit out an RTO while
            // the loop sleeps between single reads
            self.sock.set_nonblocking(true)?;
            let mut drained = Ok(());
            for _ in 0..63 {
                match self.recv_once() {
                    Ok(true) => continue,
                    Ok(false) => break,
                    Err(e) => {
                        drained = Err(e);
                        break;
                    }
                }
            }
            self.sock.set_nonblocking(false)?;
            drained?;
        }
        self.fire_due_timers()?;
        Ok(got)
    }

    // ----- event loop internals -------------------------------------------

    fn fire_due_timers(&mut self) -> Result<(), XportError> {
        // loop: handling one batch takes real wall time, which may ripen
        // the next deadline
        while let Some(d) = self.engine.next_deadline() {
            let now = self.clock.now();
            if d > now {
                break;
            }
            let emits = self.engine.on_timer(now);
            self.dispatch(emits)?;
        }
        Ok(())
    }

    /// Re-advertises every established QP's posted-WR window. The
    /// engine has no persist timer (faithful to the paper's firmware),
    /// so a window-update ACK lost on a real wire would otherwise stall
    /// a zero-window sender forever.
    fn refresh_windows(&mut self) -> Result<(), XportError> {
        if self.last_refresh.elapsed() < self.cfg.window_refresh {
            return Ok(());
        }
        self.last_refresh = Instant::now();
        let live: Vec<(ConnId, u64)> = self
            .qps
            .values()
            .filter(|q| q.established)
            .filter_map(|q| q.conn.map(|c| (c, q.posted_bytes)))
            .collect();
        for (conn, posted) in live {
            let now = self.clock.now();
            if let Ok(emits) = self.engine.set_recv_space(now, conn, posted) {
                self.dispatch(emits)?;
            }
        }
        Ok(())
    }

    fn recv_once(&mut self) -> Result<bool, XportError> {
        match self.sock.recv_from(&mut self.buf) {
            Ok((n, _from)) => {
                self.stats.datagrams_rx += 1;
                let now = self.clock.now();
                if let Some(tr) = &self.tracer {
                    tr.emit_node(now, TraceEvent::Sock { op: "rx", bytes: n as u32 });
                }
                let emits = self.engine.on_packet(now, &self.buf[..n]);
                self.dispatch(emits)?;
                Ok(true)
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Ok(false)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Processes engine emissions iteratively (an emission handler may
    /// produce further emissions — e.g. an accepted connection with no
    /// idle QP emits an abort RST).
    fn dispatch(&mut self, emits: Vec<Emit>) -> Result<(), XportError> {
        // debug-build oracle gate: every engine interaction funnels
        // through here, so a latched TCB invariant violation surfaces
        // on the very next dispatch
        #[cfg(debug_assertions)]
        if let Some(v) = self.engine.take_invariant_violation() {
            panic!("TCB invariant `{}` violated in live transport: {}", v.invariant, v.detail);
        }
        let mut queue: VecDeque<Emit> = emits.into();
        while let Some(e) = queue.pop_front() {
            match e {
                Emit::Packet(p) => self.transmit(p)?,
                Emit::UdpDelivered { port, src, payload } => self.deliver_udp(port, src, payload),
                Emit::TcpDelivered { conn, data } => self.deliver_tcp(conn, data),
                Emit::TcpSendComplete { conn: _, token } => self.complete_send(token.0),
                Emit::TcpConnected { conn } => {
                    let more = self.connection_up(conn)?;
                    queue.extend(more);
                }
                Emit::TcpAccepted { listener_port, conn, peer: _ } => {
                    let more = self.mate_connection(listener_port, conn)?;
                    queue.extend(more);
                }
                Emit::TcpPeerClosed { conn } => self.peer_event(
                    conn,
                    CompletionKind::PeerDisconnected,
                    CompletionStatus::Success,
                ),
                Emit::TcpClosed { conn } => self.conn_down(conn, false),
                Emit::TcpReset { conn } => self.conn_down(conn, true),
            }
        }
        Ok(())
    }

    fn transmit(&mut self, p: PacketOut) -> Result<(), XportError> {
        let Some(&to) = self.peers.get(&p.dst) else {
            self.stats.unroutable_drops += 1;
            return Ok(());
        };
        self.sock.send_to(&p.bytes, to)?;
        self.stats.datagrams_tx += 1;
        if let Some(tr) = &self.tracer {
            tr.emit_node(
                self.clock.now(),
                TraceEvent::Sock { op: "tx", bytes: p.bytes.len() as u32 },
            );
        }
        Ok(())
    }

    fn complete(&mut self, cq: CqId, c: Completion) {
        self.cqs.entry(cq).or_default().push_back(c);
    }

    fn deliver_udp(&mut self, port: u16, src: Endpoint, payload: Vec<u8>) {
        let Some(&qp) = self.udp_port_to_qp.get(&port) else {
            self.stats.udp_no_wr_drops += 1;
            return;
        };
        let q = self.qps.get_mut(&qp).expect("bound port has a QP");
        let Some(wr) = q.recv_queue.pop_front() else {
            // no WR posted: the datagram is dropped (unreliable service)
            self.stats.udp_no_wr_drops += 1;
            return;
        };
        q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
        let recv_cq = q.recv_cq;
        self.place_message(qp, recv_cq, wr, payload, Some(src));
    }

    fn deliver_tcp(&mut self, conn: ConnId, data: Vec<u8>) {
        let Some(&qp) = self.conn_to_qp.get(&conn) else {
            return;
        };
        let q = self.qps.get_mut(&qp).expect("mapped conn has a QP");
        if let Some(wr) = q.recv_queue.pop_front() {
            q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
            let recv_cq = q.recv_cq;
            self.place_message(qp, recv_cq, wr, data, None);
        } else {
            // reliable service: park until the host posts a WR
            q.backlog.push_back((data, None));
            self.stats.tcp_backlogged += 1;
        }
    }

    fn place_message(
        &mut self,
        qp: QpId,
        recv_cq: CqId,
        wr: RecvWr,
        data: Vec<u8>,
        src: Option<Endpoint>,
    ) {
        let status = if data.len() > wr.capacity {
            CompletionStatus::LocalLengthError { len: data.len(), capacity: wr.capacity }
        } else {
            CompletionStatus::Success
        };
        let now = self.clock.now();
        self.complete(
            recv_cq,
            Completion {
                qp,
                wr_id: wr.wr_id,
                kind: CompletionKind::Recv { data, src },
                status,
                visible_at: now,
            },
        );
    }

    fn complete_send(&mut self, token: u64) {
        let Some((qp, wr_id)) = self.tokens.remove(&token) else {
            return;
        };
        let send_cq = self.qps[&qp].send_cq;
        let now = self.clock.now();
        self.complete(
            send_cq,
            Completion {
                qp,
                wr_id,
                kind: CompletionKind::Send,
                status: CompletionStatus::Success,
                visible_at: now,
            },
        );
    }

    fn connection_up(&mut self, conn: ConnId) -> Result<Vec<Emit>, XportError> {
        let Some(&qp) = self.conn_to_qp.get(&conn) else {
            return Ok(Vec::new());
        };
        let (posted, recv_cq) = {
            let q = self.qps.get_mut(&qp).expect("mapped");
            q.established = true;
            (q.posted_bytes, q.recv_cq)
        };
        let now = self.clock.now();
        self.complete(
            recv_cq,
            Completion {
                qp,
                wr_id: 0,
                kind: CompletionKind::ConnectionEstablished,
                status: CompletionStatus::Success,
                visible_at: now,
            },
        );
        // announce the real (posted-WR) window now that we are connected
        Ok(self.engine.set_recv_space(now, conn, posted).unwrap_or_default())
    }

    fn mate_connection(
        &mut self,
        listener_port: u16,
        conn: ConnId,
    ) -> Result<Vec<Emit>, XportError> {
        let Some(qp) = self.accept_pool.get_mut(&listener_port).and_then(VecDeque::pop_front)
        else {
            // no idle QP: refuse the connection
            let now = self.clock.now();
            return Ok(self.engine.tcp_abort(now, conn).unwrap_or_default());
        };
        self.conn_to_qp.insert(conn, qp);
        self.qps.get_mut(&qp).expect("pool QP exists").conn = Some(conn);
        self.connection_up(conn)
    }

    fn peer_event(&mut self, conn: ConnId, kind: CompletionKind, status: CompletionStatus) {
        let Some(&qp) = self.conn_to_qp.get(&conn) else {
            return;
        };
        let recv_cq = self.qps[&qp].recv_cq;
        let now = self.clock.now();
        self.complete(recv_cq, Completion { qp, wr_id: 0, kind, status, visible_at: now });
    }

    fn conn_down(&mut self, conn: ConnId, reset: bool) {
        let Some(qp) = self.conn_to_qp.remove(&conn) else {
            return;
        };
        if let Some(q) = self.qps.get_mut(&qp) {
            q.conn = None;
            q.established = false;
        }
        if reset {
            let recv_cq = self.qps[&qp].recv_cq;
            let now = self.clock.now();
            self.complete(
                recv_cq,
                Completion {
                    qp,
                    wr_id: 0,
                    kind: CompletionKind::PeerDisconnected,
                    status: CompletionStatus::ConnectionError,
                    visible_at: now,
                },
            );
        }
        self.flush_qp(qp);
    }

    /// Retires every in-flight send token owned by a dead QP with
    /// [`CompletionStatus::ConnectionError`].
    fn flush_qp(&mut self, qp: QpId) {
        let Some(q) = self.qps.get(&qp) else { return };
        let send_cq = q.send_cq;
        let stale: Vec<(u64, u64)> = self
            .tokens
            .iter()
            .filter(|(_, (owner, _))| *owner == qp)
            .map(|(&tok, &(_, wr_id))| (tok, wr_id))
            .collect();
        let now = self.clock.now();
        for (tok, wr_id) in stale {
            self.tokens.remove(&tok);
            self.complete(
                send_cq,
                Completion {
                    qp,
                    wr_id,
                    kind: CompletionKind::Send,
                    status: CompletionStatus::ConnectionError,
                    visible_at: now,
                },
            );
        }
    }

    fn drain_backlog(&mut self, qp: QpId) {
        loop {
            let q = self.qps.get_mut(&qp).expect("caller checked");
            if q.backlog.is_empty() || q.recv_queue.is_empty() {
                break;
            }
            let (data, src) = q.backlog.pop_front().expect("nonempty");
            let wr = q.recv_queue.pop_front().expect("nonempty");
            q.posted_bytes = q.posted_bytes.saturating_sub(wr.capacity as u64);
            let recv_cq = q.recv_cq;
            self.place_message(qp, recv_cq, wr, data, src);
        }
    }

    /// Describes the node's pending state for the wait-timeout
    /// diagnostic: which CQ was being waited on, what every QP still
    /// has outstanding, and what the engine thinks is in flight.
    fn pending_summary(&self, cq: CqId) -> String {
        use fmt::Write as _;
        let mut s = format!(
            "no completion on {cq} within {:?} (fabric {}, {} datagrams rx / {} tx)",
            self.cfg.wait_timeout,
            self.fabric_addr(),
            self.stats.datagrams_rx,
            self.stats.datagrams_tx,
        );
        let mut qps: Vec<_> = self.qps.iter().collect();
        qps.sort_by_key(|(id, _)| id.0);
        for (id, q) in qps {
            let _ = write!(
                s,
                "; {id}: {:?} conn={:?} established={} recv_wrs={} backlog={} posted={}B",
                q.service,
                q.conn,
                q.established,
                q.recv_queue.len(),
                q.backlog.len(),
                q.posted_bytes,
            );
        }
        let _ = write!(
            s,
            "; in-flight send tokens={}; engine conns={} retransmissions={}",
            self.tokens.len(),
            self.engine.conn_count(),
            self.engine.retransmissions(),
        );
        s
    }
}
