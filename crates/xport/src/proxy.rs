//! A userspace impairment proxy: drop, reorder and delay real
//! datagrams between live nodes.
//!
//! The DES worlds impair traffic inside the simulated fabric; on real
//! sockets the loopback interface is lossless and in-order, which
//! exercises none of the engine's recovery machinery. The proxy sits
//! between nodes — each node's peer table routes the *other* node's
//! fabric address at the proxy socket — and forwards datagrams to the
//! true destination, read from the IPv6 destination field the engine
//! already wrote (bytes 24..40 of every packet).
//!
//! Impairment decisions come from the in-tree [`SplitMix64`] stream,
//! so for a given seed the *decision sequence* (drop 7th, hold 12th,
//! …) is reproducible; what is not reproducible is which bytes the
//! OS delivers as the 7th datagram — that schedule belongs to the
//! kernel. Tests therefore assert delivery semantics, never timings.

use std::collections::HashMap;
use std::io;
use std::net::{Ipv6Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qpip_sim::rng::SplitMix64;

/// Impairment policy.
#[derive(Debug, Clone)]
pub struct ImpairConfig {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Per-datagram drop probability in units of 1/1000 (20 = 2%).
    pub drop_per_mille: u64,
    /// Per-datagram probability (1/1000) of being *held* so that at
    /// least one later datagram overtakes it.
    pub reorder_per_mille: u64,
    /// Longest a held datagram waits: if nothing overtakes it within
    /// this delay it is released anyway (pure extra latency).
    pub hold_at_most: Duration,
}

impl Default for ImpairConfig {
    fn default() -> Self {
        ImpairConfig {
            seed: 0x9e3779b97f4a7c15,
            drop_per_mille: 0,
            reorder_per_mille: 0,
            hold_at_most: Duration::from_millis(20),
        }
    }
}

/// Shared forwarding counters (all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Datagrams forwarded to a destination.
    pub forwarded: u64,
    /// Datagrams deliberately dropped.
    pub dropped: u64,
    /// Datagrams held and later released out of order.
    pub reordered: u64,
    /// Datagrams with no route for their IPv6 destination (or too
    /// short to carry one) — discarded.
    pub unroutable: u64,
}

impl ProxyStats {
    /// Renders the counters as a named snapshot (scope `"proxy"`).
    pub fn snapshot(&self) -> qpip_trace::Snapshot {
        let mut s = qpip_trace::Snapshot::new("proxy");
        s.push("forwarded", self.forwarded)
            .push("dropped", self.dropped)
            .push("reordered", self.reordered)
            .push("unroutable", self.unroutable);
        s
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    reordered: AtomicU64,
    unroutable: AtomicU64,
}

/// Builder for a proxy: impairment policy plus the fabric-address
/// routing table.
#[derive(Debug)]
pub struct ImpairProxy {
    cfg: ImpairConfig,
    routes: HashMap<Ipv6Addr, SocketAddr>,
}

impl ImpairProxy {
    /// Starts a builder with the given policy.
    pub fn new(cfg: ImpairConfig) -> Self {
        ImpairProxy { cfg, routes: HashMap::new() }
    }

    /// Routes datagrams whose IPv6 destination is `fabric` to the live
    /// socket `to` (a node's [`local_addr`](crate::XportNode::local_addr)).
    #[must_use]
    pub fn route(mut self, fabric: Ipv6Addr, to: SocketAddr) -> Self {
        self.routes.insert(fabric, to);
        self
    }

    /// Binds the proxy socket on 127.0.0.1 and starts the forwarding
    /// thread. Point each node's peer table at
    /// [`ProxyHandle::addr`] instead of the real peer.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration failures.
    pub fn spawn(self) -> io::Result<ProxyHandle> {
        let sock = UdpSocket::bind("127.0.0.1:0")?;
        sock.set_read_timeout(Some(Duration::from_millis(5)))?;
        let addr = sock.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsCells::default());
        let worker = ProxyWorker {
            sock,
            cfg: self.cfg,
            routes: self.routes,
            stop: Arc::clone(&stop),
            stats: Arc::clone(&stats),
        };
        let join = std::thread::Builder::new()
            .name("qpip-impair-proxy".into())
            .spawn(move || worker.run())?;
        Ok(ProxyHandle { addr, stop, stats, join: Some(join) })
    }
}

/// A running proxy. Dropping the handle stops the thread (held
/// datagrams are flushed first).
#[derive(Debug)]
pub struct ProxyHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsCells>,
    join: Option<JoinHandle<()>>,
}

impl ProxyHandle {
    /// The socket address nodes should use as their "peer".
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the forwarding counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            forwarded: self.stats.forwarded.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            reordered: self.stats.reordered.load(Ordering::Relaxed),
            unroutable: self.stats.unroutable.load(Ordering::Relaxed),
        }
    }

    /// Stops the forwarding thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ProxyHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ProxyWorker {
    sock: UdpSocket,
    cfg: ImpairConfig,
    routes: HashMap<Ipv6Addr, SocketAddr>,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsCells>,
}

impl ProxyWorker {
    fn run(self) {
        let mut rng = SplitMix64::new(self.cfg.seed);
        let mut buf = [0u8; 65536];
        // datagrams held back to force reordering: (dest, bytes, release-by)
        let mut held: Vec<(SocketAddr, Vec<u8>, Instant)> = Vec::new();
        while !self.stop.load(Ordering::Relaxed) {
            let now = Instant::now();
            // release anything that waited past its deadline without
            // being overtaken (degenerates to pure delay)
            held.retain(|(to, bytes, release_by)| {
                if *release_by <= now {
                    let _ = self.sock.send_to(bytes, *to);
                    self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            });
            let n = match self.sock.recv_from(&mut buf) {
                Ok((n, _src)) => n,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    continue;
                }
                Err(_) => break,
            };
            // IPv6 destination address lives at bytes 24..40 of the
            // fixed header the engine built
            if n < 40 {
                self.stats.unroutable.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut dst = [0u8; 16];
            dst.copy_from_slice(&buf[24..40]);
            let Some(&to) = self.routes.get(&Ipv6Addr::from(dst)) else {
                self.stats.unroutable.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            if rng.chance(self.cfg.drop_per_mille, 1000) {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if rng.chance(self.cfg.reorder_per_mille, 1000) {
                held.push((to, buf[..n].to_vec(), now + self.cfg.hold_at_most));
                continue;
            }
            let _ = self.sock.send_to(&buf[..n], to);
            self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
            // this datagram overtook everything held: release the held
            // ones now, counted as reordered
            for (hto, bytes, _) in held.drain(..) {
                let _ = self.sock.send_to(&bytes, hto);
                self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            }
        }
        // flush on shutdown so nothing is silently swallowed
        for (to, bytes, _) in held {
            let _ = self.sock.send_to(&bytes, to);
            self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}
