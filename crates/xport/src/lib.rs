//! # qpip-xport — the verbs API and NIC netstack over live OS sockets
//!
//! Everywhere else in this workspace, bytes move only inside the
//! discrete-event worlds: the fabric is simulated, time is simulated,
//! and the protocol engine's packets never leave the process. This
//! crate is the bridge to real I/O. An [`XportNode`] drives the
//! **unmodified** [`qpip_netstack::engine::Engine`] — the same IPv6/TCP/
//! UDP bytes from `qpip-wire`, the same TCBs, RTT estimators and
//! retransmit timers — over a `std::net::UdpSocket`:
//!
//! * **Frame mapping** — one engine output packet (a complete IPv6
//!   packet) is one UDP datagram; the fabric `Ipv6Addr` in the IPv6
//!   header names the node, and a peer table maps it to the live
//!   `SocketAddr` that reaches it (the role the Myrinet source routes
//!   played in the paper's testbed).
//! * **Clock mapping** — the engine wants a monotonically increasing
//!   [`SimTime`](qpip_sim::time::SimTime); the runtime feeds it the
//!   wall clock, measured from a per-node [`std::time::Instant`] epoch.
//! * **Timer mapping** — the socket read timeout is slaved to
//!   [`Engine::next_deadline`](qpip_netstack::engine::Engine::next_deadline),
//!   so retransmit and delayed-ACK timers fire on time without a
//!   dedicated timer thread.
//!
//! On top of the runtime sits a **verbs facade** mirroring the per-node
//! surface of `qpip::world::QpipWorld` (`create_cq`/`create_qp`/
//! `udp_bind`/`tcp_listen`/`tcp_connect`/`post_send`/`post_recv`/
//! `poll`/`wait`), reusing the `qpip-nic` work-request and completion
//! types, so application code written against the simulated world ports
//! by swapping the world handle for a node handle.
//!
//! [`proxy::ImpairProxy`] is a deterministic (SplitMix64-seeded)
//! drop/reorder/delay forwarder that sits between two nodes' sockets,
//! so the engine's loss-recovery machinery is exercised on real wires.
//!
//! Everything here is std-only — threads and socket timeouts, no async
//! runtime — and strictly additive: the DES worlds remain byte-identical
//! and fully deterministic. Code in this crate asserts delivery,
//! ordering and exactly-once semantics, never latencies, because the
//! wall clock jitters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod node;
pub mod proxy;

pub use clock::WallClock;
pub use node::{XportConfig, XportError, XportNode, XportStats};
pub use proxy::{ImpairConfig, ImpairProxy, ProxyHandle, ProxyStats};
