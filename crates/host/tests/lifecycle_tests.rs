//! Host-stack lifecycle coverage: close paths, resets, EOF semantics,
//! UDP errors and CPU breakdowns under the socket API.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_host::{HostOutput, HostStack, SendOutcome, SockError, SockId, StackConfig, WorkClass};
use qpip_netstack::types::Endpoint;
use qpip_sim::time::{SimDuration, SimTime};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

struct Net {
    a: HostStack,
    b: HostStack,
    now: SimTime,
    wire: VecDeque<(bool, SimTime, qpip_wire::Packet)>,
    events_a: Vec<HostOutput>,
    events_b: Vec<HostOutput>,
}

impl Net {
    fn new() -> Net {
        Net {
            a: HostStack::new(StackConfig::gige(), addr(1)),
            b: HostStack::new(StackConfig::gige(), addr(2)),
            now: SimTime::ZERO,
            wire: VecDeque::new(),
            events_a: Vec::new(),
            events_b: Vec::new(),
        }
    }

    fn absorb(&mut self, from_a: bool, outs: Vec<HostOutput>) {
        for o in outs {
            match o {
                HostOutput::Frame { at, bytes, .. } => {
                    self.wire.push_back((from_a, at + SimDuration::from_micros(10), bytes));
                }
                e => {
                    if from_a {
                        self.events_a.push(e)
                    } else {
                        self.events_b.push(e)
                    }
                }
            }
        }
    }

    fn run(&mut self) {
        let mut guard = 0;
        while let Some((from_a, at, bytes)) = self.wire.pop_front() {
            guard += 1;
            assert!(guard < 10_000);
            self.now = self.now.max(at);
            if from_a {
                let o = self.b.on_frame(self.now, &bytes);
                self.absorb(false, o);
            } else {
                let o = self.a.on_frame(self.now, &bytes);
                self.absorb(true, o);
            }
        }
    }

    fn fire_timers(&mut self) -> bool {
        let next = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        let Some(d) = next else { return false };
        self.now = self.now.max(d);
        let oa = self.a.on_timer(self.now);
        self.absorb(true, oa);
        let ob = self.b.on_timer(self.now);
        self.absorb(false, ob);
        self.run();
        true
    }

    fn connect(&mut self) -> (SockId, SockId) {
        let ls = self.b.tcp_socket();
        self.b.listen(ls, 80).unwrap();
        let cs = self.a.tcp_socket();
        let outs = self.a.connect(self.now, cs, 9000, Endpoint::new(addr(2), 80)).unwrap();
        self.absorb(true, outs);
        self.run();
        let ss = self
            .events_b
            .iter()
            .find_map(|e| match e {
                HostOutput::Accepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .expect("accepted");
        (cs, ss)
    }
}

#[test]
fn graceful_close_delivers_eof_after_data() {
    let mut n = Net::new();
    let (cs, ss) = n.connect();
    let (_, outs) = n.a.send(n.now, cs, b"last words".to_vec()).unwrap();
    n.absorb(true, outs);
    let outs = n.a.close(n.now, cs).unwrap();
    n.absorb(true, outs);
    n.run();
    n.fire_timers();
    // data first, then EOF
    let (data, _) = n.b.recv(n.now, ss, usize::MAX).unwrap();
    assert_eq!(data, b"last words");
    assert!(n.b.peer_closed(ss));
    assert!(n
        .events_b
        .iter()
        .any(|e| matches!(e, HostOutput::PeerClosed { sock, .. } if *sock == ss)));
}

#[test]
fn both_sides_closing_reaps_connections() {
    let mut n = Net::new();
    let (cs, ss) = n.connect();
    let o = n.a.close(n.now, cs).unwrap();
    n.absorb(true, o);
    n.run();
    let o = n.b.close(n.now, ss).unwrap();
    n.absorb(false, o);
    n.run();
    // pump TIME-WAIT out
    for _ in 0..4 {
        if !n.fire_timers() {
            break;
        }
    }
    // further sends fail: the connections are gone
    assert!(matches!(n.a.send(n.now, cs, vec![1]), Err(SockError::InvalidState(_))));
}

#[test]
fn send_after_peer_reset_reports_invalid_state() {
    let mut n = Net::new();
    let (cs, _ss) = n.connect();
    // b's stack is dropped from the wire: a's packets go nowhere; force
    // reset via retry exhaustion would take long, so instead test the
    // direct close-then-send path on a itself
    let o = n.a.close(n.now, cs).unwrap();
    n.absorb(true, o);
    assert!(matches!(
        n.a.send(n.now, cs, vec![1]),
        Err(SockError::Engine(_)) | Err(SockError::InvalidState(_))
    ));
}

#[test]
fn udp_send_on_unbound_socket_fails() {
    let mut n = Net::new();
    let s = n.a.udp_socket();
    assert!(matches!(
        n.a.udp_send(n.now, s, Endpoint::new(addr(2), 1), b"x"),
        Err(SockError::InvalidState(_))
    ));
    // and bind on a TCP socket fails
    let t = n.a.tcp_socket();
    assert!(matches!(n.a.udp_bind(t, 5), Err(SockError::InvalidState(_))));
}

#[test]
fn sndbuf_backpressure_releases_after_acks() {
    let mut n = Net::new();
    let (cs, ss) = n.connect();
    // fill the 64 KB sndbuf without draining the wire
    let mut accepted = 0usize;
    while let (SendOutcome::Sent { .. }, outs) = n.a.send(n.now, cs, vec![0; 16 * 1024]).unwrap() {
        accepted += 16 * 1024;
        n.absorb(true, outs);
        assert!(accepted <= 128 * 1024, "sndbuf never filled");
    }
    // drain the wire: ACKs come back and space frees
    n.run();
    n.fire_timers();
    assert!(n.events_a.iter().any(|e| matches!(e, HostOutput::SendSpace { .. })));
    let (outcome, _) = n.a.send(n.now, cs, vec![0; 1024]).unwrap();
    assert!(matches!(outcome, SendOutcome::Sent { .. }));
    let _ = ss;
}

#[test]
fn cpu_breakdown_covers_all_classes_on_a_transfer() {
    let mut n = Net::new();
    let (cs, ss) = n.connect();
    let (_, outs) = n.a.send(n.now, cs, vec![0; 32 * 1024]).unwrap();
    n.absorb(true, outs);
    n.run();
    n.fire_timers();
    let _ = n.b.recv(n.now, ss, usize::MAX).unwrap();
    for class in [
        WorkClass::Syscall,
        WorkClass::Protocol,
        WorkClass::Copy,
        WorkClass::Interrupt,
        WorkClass::Driver,
    ] {
        assert!(n.b.cpu().cycles(class) > 0, "{class:?} uncharged on the receiver");
    }
    // sender breakdown: no interrupts needed to send on this path beyond
    // wakeups; syscall + protocol + copy + driver must all appear
    for class in [WorkClass::Syscall, WorkClass::Protocol, WorkClass::Copy, WorkClass::Driver] {
        assert!(n.a.cpu().cycles(class) > 0, "{class:?} uncharged on the sender");
    }
}

#[test]
fn interrupt_coalescing_reduces_interrupts_in_bulk() {
    let mut n = Net::new();
    let (cs, ss) = n.connect();
    let before = n.b.interrupts();
    let (_, outs) = n.a.send(n.now, cs, vec![0; 64 * 1024 - 1024]).unwrap();
    n.absorb(true, outs);
    n.run();
    n.fire_timers();
    let frames = 63 * 1024 / 1428 + 1;
    let taken = n.b.interrupts() - before;
    assert!(taken < frames, "coalescing: {taken} interrupts for ~{frames} frames");
    let _ = ss;
}
