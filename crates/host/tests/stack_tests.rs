//! Host-stack integration: two socket nodes over a pseudo-wire, the
//! loopback overhead path (Table 1's methodology), and CPU accounting.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_host::{HostOutput, HostStack, SendOutcome, SockId, StackConfig, WorkClass};
use qpip_netstack::types::Endpoint;
use qpip_sim::params;
use qpip_sim::time::{SimDuration, SimTime};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

struct Net {
    a: HostStack,
    b: HostStack,
    now: SimTime,
    wire: VecDeque<(bool, SimTime, qpip_wire::Packet)>,
    events_a: Vec<HostOutput>,
    events_b: Vec<HostOutput>,
}

impl Net {
    fn new(cfg: StackConfig) -> Net {
        Net {
            a: HostStack::new(cfg.clone(), addr(1)),
            b: HostStack::new(cfg, addr(2)),
            now: SimTime::ZERO,
            wire: VecDeque::new(),
            events_a: Vec::new(),
            events_b: Vec::new(),
        }
    }

    fn absorb(&mut self, from_a: bool, outs: Vec<HostOutput>) {
        for o in outs {
            match o {
                HostOutput::Frame { at, bytes, .. } => {
                    self.wire.push_back((from_a, at + SimDuration::from_micros(10), bytes));
                }
                other => {
                    if from_a {
                        self.events_a.push(other);
                    } else {
                        self.events_b.push(other);
                    }
                }
            }
        }
    }

    fn run(&mut self) {
        let mut spins = 0;
        while let Some((from_a, at, bytes)) = self.wire.pop_front() {
            spins += 1;
            assert!(spins < 50_000, "wire did not quiesce");
            self.now = self.now.max(at);
            if from_a {
                let outs = self.b.on_frame(self.now, &bytes);
                self.absorb(false, outs);
            } else {
                let outs = self.a.on_frame(self.now, &bytes);
                self.absorb(true, outs);
            }
        }
    }

    fn fire_timers(&mut self) -> bool {
        let next = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        let Some(d) = next else { return false };
        self.now = self.now.max(d);
        let oa = self.a.on_timer(self.now);
        self.absorb(true, oa);
        let ob = self.b.on_timer(self.now);
        self.absorb(false, ob);
        self.run();
        true
    }

    fn connect(&mut self) -> (SockId, SockId) {
        let ls = self.b.tcp_socket();
        self.b.listen(ls, 5001).unwrap();
        let cs = self.a.tcp_socket();
        let outs = self.a.connect(self.now, cs, 4001, Endpoint::new(addr(2), 5001)).unwrap();
        self.absorb(true, outs);
        self.run();
        let accepted = self
            .events_b
            .iter()
            .find_map(|e| match e {
                HostOutput::Accepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .expect("accepted");
        assert!(self
            .events_a
            .iter()
            .any(|e| matches!(e, HostOutput::Connected { sock, .. } if *sock == cs)));
        (cs, accepted)
    }
}

#[test]
fn tcp_sockets_connect_over_gige() {
    let mut n = Net::new(StackConfig::gige());
    let (_, _) = n.connect();
}

#[test]
fn bulk_send_recv_delivers_all_bytes() {
    let mut n = Net::new(StackConfig::gige());
    let (cs, ss) = n.connect();
    let total = 100_000usize;
    let mut sent = 0usize;
    let mut received = Vec::new();
    let mut guard = 0;
    while received.len() < total {
        guard += 1;
        assert!(guard < 10_000, "stalled at {} bytes", received.len());
        if sent < total {
            let chunk = (total - sent).min(16 * 1024);
            match n.a.send(n.now, cs, vec![(sent % 251) as u8; chunk]) {
                Ok((SendOutcome::Sent { .. }, outs)) => {
                    sent += chunk;
                    n.absorb(true, outs);
                }
                Ok((SendOutcome::WouldBlock, _)) => {}
                Err(e) => panic!("{e}"),
            }
        }
        n.run();
        if n.b.readable(ss) > 0 {
            let (data, _) = n.b.recv(n.now, ss, usize::MAX).unwrap();
            received.extend(data);
        } else if sent >= total && !n.fire_timers() {
            break;
        }
    }
    assert_eq!(received.len(), total);
    // content spot-check: first byte of each chunk
    assert_eq!(received[0], 0);
    assert_eq!(n.a.retransmissions(), 0);
}

#[test]
fn sndbuf_applies_backpressure() {
    let mut n = Net::new(StackConfig::gige());
    let (cs, _ss) = n.connect();
    // don't run the wire: the buffer must fill and block
    let mut blocked = false;
    for _ in 0..64 {
        match n.a.send(n.now, cs, vec![0; 16 * 1024]).unwrap() {
            (SendOutcome::Sent { .. }, outs) => {
                let _ = outs; // frames intentionally not delivered
            }
            (SendOutcome::WouldBlock, _) => {
                blocked = true;
                break;
            }
        }
    }
    assert!(blocked, "send buffer never filled");
}

#[test]
fn udp_roundtrip_and_wakeup() {
    let mut n = Net::new(StackConfig::gige());
    let sa = n.a.udp_socket();
    let sb = n.b.udp_socket();
    n.a.udp_bind(sa, 7000).unwrap();
    n.b.udp_bind(sb, 7001).unwrap();
    let (_, outs) = n.a.udp_send(n.now, sa, Endpoint::new(addr(2), 7001), b"marco").unwrap();
    n.absorb(true, outs);
    n.run();
    assert!(n
        .events_b
        .iter()
        .any(|e| matches!(e, HostOutput::DataReady { sock, .. } if *sock == sb)));
    let (src, data, _) = n.b.udp_recv(n.now, sb).unwrap();
    assert_eq!(data, b"marco");
    assert_eq!(src, Endpoint::new(addr(1), 7000));
}

#[test]
fn gige_receive_path_charges_interrupts() {
    let mut n = Net::new(StackConfig::gige());
    let (cs, ss) = n.connect();
    let (_, outs) = n.a.send(n.now, cs, vec![0; 1000]).unwrap();
    n.absorb(true, outs);
    n.run();
    let _ = n.b.recv(n.now, ss, usize::MAX).unwrap();
    assert!(n.b.interrupts() >= 1);
    assert!(n.b.cpu().cycles(WorkClass::Interrupt) >= params::HOST_INTERRUPT_CYCLES);
    assert!(n.b.cpu().cycles(WorkClass::Protocol) > 0);
    assert!(n.b.cpu().cycles(WorkClass::Driver) > 0);
}

#[test]
fn gm_stack_charges_software_checksums() {
    let mut gige = Net::new(StackConfig::gige());
    let mut gm = Net::new(StackConfig::gm_myrinet());
    for n in [&mut gige, &mut gm] {
        let (cs, ss) = n.connect();
        let (_, outs) = n.a.send(n.now, cs, vec![0; 8000]).unwrap();
        n.absorb(true, outs);
        n.run();
        n.fire_timers();
        let _ = n.b.recv(n.now, ss, usize::MAX);
    }
    // GM (no checksum offload) burns more copy/checksum cycles per byte
    assert!(
        gm.a.cpu().cycles(WorkClass::Copy) > gige.a.cpu().cycles(WorkClass::Copy),
        "gm {} vs gige {}",
        gm.a.cpu().cycles(WorkClass::Copy),
        gige.a.cpu().cycles(WorkClass::Copy)
    );
}

/// Table 1 methodology: a 1-byte message through the loopback interface
/// — no driver, no interrupts — costs ≈ 16 445 host cycles ≈ 29.9 µs
/// for the send+receive pair.
#[test]
fn loopback_one_byte_overhead_matches_table1() {
    let mut host = HostStack::new(StackConfig::loopback(), addr(1));
    // loopback: the same stack owns both ends
    let ls = host.tcp_socket();
    host.listen(ls, 9000).unwrap();
    let cs = host.tcp_socket();
    let mut now = SimTime::ZERO;
    let mut frames: VecDeque<qpip_wire::Packet> = VecDeque::new();
    let mut events = Vec::new();
    let absorb = |outs: Vec<HostOutput>,
                  frames: &mut VecDeque<qpip_wire::Packet>,
                  events: &mut Vec<HostOutput>| {
        for o in outs {
            match o {
                HostOutput::Frame { bytes, .. } => frames.push_back(bytes),
                other => events.push(other),
            }
        }
    };
    let outs = host.connect(now, cs, 9001, Endpoint::new(addr(1), 9000)).unwrap();
    absorb(outs, &mut frames, &mut events);
    while let Some(f) = frames.pop_front() {
        now += SimDuration::from_nanos(100);
        let outs = host.on_frame(now, &f);
        absorb(outs, &mut frames, &mut events);
    }
    let server = events
        .iter()
        .find_map(|e| match e {
            HostOutput::Accepted { sock, .. } => Some(*sock),
            _ => None,
        })
        .expect("loopback accept");
    host.cpu_mut().reset_stats();

    // one 1-byte message, sender → receiver, then read it
    let (_, outs) = host.send(now, cs, vec![0x55]).unwrap();
    absorb(outs, &mut frames, &mut events);
    while let Some(f) = frames.pop_front() {
        now += SimDuration::from_nanos(100);
        let outs = host.on_frame(now, &f);
        absorb(outs, &mut frames, &mut events);
    }
    let (data, _) = host.recv(now, server, usize::MAX).unwrap();
    assert_eq!(data, vec![0x55]);

    // measured cycles: the send syscall path + receive path, minus the
    // pure-ACK processing the paper's RTT/2 measurement also averages in.
    let cycles = host.cpu().total_cycles();
    let us = cycles as f64 / params::HOST_CLOCK_MHZ as f64;
    assert!(
        (25.0..40.0).contains(&us),
        "loopback 1-byte send+recv = {cycles} cycles = {us:.1} µs (paper: 29.9)"
    );
    assert_eq!(host.interrupts(), 0, "loopback takes no interrupts");
    assert_eq!(host.cpu().cycles(WorkClass::Driver), 0, "no driver on loopback");
}
