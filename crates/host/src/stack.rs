//! The host-based baseline: a BSD-style socket layer over the same
//! protocol engine the QPIP firmware uses, with every class of host
//! work charged to the CPU ledger — syscalls, copies, protocol
//! processing, driver work, interrupts and wakeups.
//!
//! This is the "traditional inter-network protocol implementation" the
//! paper compares against (§4.2): IP over Gigabit Ethernet and IP over
//! Myrinet (GM). The identical wire behaviour comes from sharing
//! `qpip-netstack`; the cost difference is that all of it runs on the
//! 550 MHz host CPU instead of the NIC.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::engine::Engine;
use qpip_netstack::hash::FxHashMap;
use qpip_netstack::types::{ConnId, Emit, Endpoint, NetConfig, SendToken};
use qpip_nic::conventional::{ConvNicConfig, ConventionalNic};
use qpip_sim::params;
use qpip_sim::time::SimTime;

use crate::cpu::{CpuLedger, WorkClass};

/// Handle to a host socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u32);

/// Socket flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SockKind {
    Tcp,
    Udp,
}

/// Events surfaced by the host stack to the application/driver loop.
#[derive(Debug)]
pub enum HostOutput {
    /// A frame starts on the wire at `at`.
    Frame {
        /// Wire departure instant.
        at: SimTime,
        /// Destination address.
        dst: Ipv6Addr,
        /// IPv6 packet bytes (with transmit headroom in front).
        bytes: qpip_wire::Packet,
    },
    /// An active open completed.
    Connected {
        /// The socket.
        sock: SockId,
        /// Completion instant.
        at: SimTime,
    },
    /// A listener produced a new connected socket.
    Accepted {
        /// The listening socket.
        listener: SockId,
        /// The new socket.
        sock: SockId,
        /// Peer endpoint.
        peer: Endpoint,
        /// Completion instant.
        at: SimTime,
    },
    /// Data became readable (the blocked reader was woken).
    DataReady {
        /// The socket.
        sock: SockId,
        /// Wakeup instant.
        at: SimTime,
    },
    /// The send buffer drained below half: a blocked writer may retry.
    SendSpace {
        /// The socket.
        sock: SockId,
        /// Instant.
        at: SimTime,
    },
    /// The peer closed.
    PeerClosed {
        /// The socket.
        sock: SockId,
        /// Instant.
        at: SimTime,
    },
    /// Connection reset.
    Reset {
        /// The socket.
        sock: SockId,
        /// Instant.
        at: SimTime,
    },
}

/// Result of a send call.
#[derive(Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted into the send buffer; the syscall returned at `done`.
    Sent {
        /// Syscall return instant.
        done: SimTime,
    },
    /// The send buffer is full (a blocking socket would sleep here);
    /// retry after a [`HostOutput::SendSpace`] event.
    WouldBlock,
}

/// Host stack configuration.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Link MTU (1500 for GigE, 9000 for GM, §4.2.1).
    pub mtu: usize,
    /// The adapter verifies/generates transport checksums (true for the
    /// Pro/1000; false puts ~0.8 cycles/byte on the host).
    pub hw_checksum: bool,
    /// Socket send-buffer cap in bytes.
    pub sndbuf: usize,
    /// Adapter model; `None` is the loopback device (no DMA, no
    /// interrupts, no driver — the Table 1 measurement condition).
    pub nic: Option<ConvNicConfig>,
    /// The driver stages packets through pre-registered DMA buffers,
    /// costing one extra copy per byte each way (the GM IP driver's
    /// registered-memory staging).
    pub staging_copy: bool,
}

impl StackConfig {
    /// IP over Gigabit Ethernet (Intel Pro/1000, 1500-byte MTU).
    pub fn gige() -> Self {
        StackConfig {
            mtu: params::GIGE_MTU,
            hw_checksum: true,
            sndbuf: 64 * 1024,
            nic: Some(ConvNicConfig::gige()),
            staging_copy: false,
        }
    }

    /// IP over Myrinet via GM (9000-byte MTU, no checksum offload).
    pub fn gm_myrinet() -> Self {
        StackConfig {
            mtu: params::GM_MTU,
            hw_checksum: false,
            sndbuf: 64 * 1024,
            nic: Some(ConvNicConfig::gm_myrinet()),
            staging_copy: true,
        }
    }

    /// The loopback interface (Table 1's measurement methodology:
    /// "determined by measuring RTT through the loopback interface …
    /// they do not include instructions executed by a particular
    /// interface driver").
    pub fn loopback() -> Self {
        StackConfig {
            mtu: 16 * 1024,
            hw_checksum: true,
            sndbuf: 256 * 1024,
            nic: None,
            staging_copy: false,
        }
    }
}

#[derive(Debug)]
struct Sock {
    kind: SockKind,
    conn: Option<ConnId>,
    listen_port: Option<u16>,
    udp_port: Option<u16>,
    rx: VecDeque<u8>,
    udp_rx: VecDeque<(Endpoint, Vec<u8>)>,
    peer_closed: bool,
}

impl Sock {
    fn new(kind: SockKind) -> Sock {
        Sock {
            kind,
            conn: None,
            listen_port: None,
            udp_port: None,
            rx: VecDeque::new(),
            udp_rx: VecDeque::new(),
            peer_closed: false,
        }
    }
}

/// Errors from socket calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockError {
    /// Unknown socket handle.
    UnknownSock(SockId),
    /// Operation invalid for this socket's kind or state.
    InvalidState(&'static str),
    /// Engine-level failure (port in use, message too large, …).
    Engine(qpip_netstack::engine::EngineError),
}

impl core::fmt::Display for SockError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SockError::UnknownSock(s) => write!(f, "unknown socket {s:?}"),
            SockError::InvalidState(m) => write!(f, "invalid state: {m}"),
            SockError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for SockError {}

impl From<qpip_netstack::engine::EngineError> for SockError {
    fn from(e: qpip_netstack::engine::EngineError) -> Self {
        SockError::Engine(e)
    }
}

/// A complete host node: CPU + OS + sockets + conventional NIC.
#[derive(Debug)]
pub struct HostStack {
    cfg: StackConfig,
    cpu: CpuLedger,
    nic: Option<ConventionalNic>,
    engine: Engine,
    socks: FxHashMap<SockId, Sock>,
    conn_to_sock: FxHashMap<ConnId, SockId>,
    listen_to_sock: FxHashMap<u16, SockId>,
    udp_to_sock: FxHashMap<u16, SockId>,
    next_sock: u32,
    next_token: u64,
}

impl HostStack {
    /// Creates a host node at `addr`.
    pub fn new(cfg: StackConfig, addr: Ipv6Addr) -> Self {
        let net = NetConfig::host(cfg.mtu);
        let nic = cfg.nic.clone().map(ConventionalNic::new);
        HostStack {
            cfg,
            cpu: CpuLedger::new(),
            nic,
            engine: Engine::new(net, addr),
            socks: FxHashMap::default(),
            conn_to_sock: FxHashMap::default(),
            listen_to_sock: FxHashMap::default(),
            udp_to_sock: FxHashMap::default(),
            next_sock: 1,
            next_token: 1,
        }
    }

    /// This node's address.
    pub fn addr(&self) -> Ipv6Addr {
        self.engine.local_addr()
    }

    /// The CPU ledger (utilization and cycle breakdowns).
    pub fn cpu(&self) -> &CpuLedger {
        &self.cpu
    }

    /// Mutable CPU access (the application charges its own work here).
    pub fn cpu_mut(&mut self) -> &mut CpuLedger {
        &mut self.cpu
    }

    /// Adapter interrupt count (0 for loopback).
    pub fn interrupts(&self) -> u64 {
        self.nic.as_ref().map_or(0, ConventionalNic::interrupts)
    }

    /// TCP retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.engine.retransmissions()
    }

    /// Traffic/drop counters of the embedded protocol engine.
    pub fn engine_stats(&self) -> qpip_netstack::engine::EngineStats {
        self.engine.stats()
    }

    /// Runs the embedded engine's TCB invariant oracle (full sweep; see
    /// [`qpip_netstack::invariant`]).
    ///
    /// # Errors
    ///
    /// The first violation found.
    pub fn check_invariants(&mut self) -> Result<(), qpip_netstack::invariant::InvariantViolation> {
        self.engine.check_invariants()
    }

    /// Takes a violation latched by the engine's per-event debug hook —
    /// the O(1) probe the DES world polls after every event.
    pub fn take_invariant_violation(
        &mut self,
    ) -> Option<qpip_netstack::invariant::InvariantViolation> {
        self.engine.take_invariant_violation()
    }

    // ----- socket lifecycle ---------------------------------------------

    /// Creates a TCP socket.
    pub fn tcp_socket(&mut self) -> SockId {
        self.alloc(SockKind::Tcp)
    }

    /// Creates a UDP socket.
    pub fn udp_socket(&mut self) -> SockId {
        self.alloc(SockKind::Udp)
    }

    fn alloc(&mut self, kind: SockKind) -> SockId {
        let id = SockId(self.next_sock);
        self.next_sock += 1;
        self.socks.insert(id, Sock::new(kind));
        id
    }

    /// Binds a UDP socket to a local port.
    ///
    /// # Errors
    ///
    /// [`SockError`] for unknown sockets, TCP sockets or taken ports.
    pub fn udp_bind(&mut self, sock: SockId, port: u16) -> Result<(), SockError> {
        let s = self.socks.get_mut(&sock).ok_or(SockError::UnknownSock(sock))?;
        if s.kind != SockKind::Udp {
            return Err(SockError::InvalidState("udp_bind on TCP socket"));
        }
        self.engine.udp_bind(port)?;
        s.udp_port = Some(port);
        self.udp_to_sock.insert(port, sock);
        Ok(())
    }

    /// Starts listening on a TCP port.
    ///
    /// # Errors
    ///
    /// [`SockError`] as above.
    pub fn listen(&mut self, sock: SockId, port: u16) -> Result<(), SockError> {
        let s = self.socks.get_mut(&sock).ok_or(SockError::UnknownSock(sock))?;
        if s.kind != SockKind::Tcp {
            return Err(SockError::InvalidState("listen on UDP socket"));
        }
        self.engine.tcp_listen(port)?;
        s.listen_port = Some(port);
        self.listen_to_sock.insert(port, sock);
        Ok(())
    }

    /// Starts an active open.
    ///
    /// # Errors
    ///
    /// [`SockError`] as above.
    pub fn connect(
        &mut self,
        now: SimTime,
        sock: SockId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<Vec<HostOutput>, SockError> {
        let s = self.socks.get_mut(&sock).ok_or(SockError::UnknownSock(sock))?;
        if s.kind != SockKind::Tcp || s.conn.is_some() {
            return Err(SockError::InvalidState("connect on bound/UDP socket"));
        }
        let t = self.cpu.charge(
            now,
            WorkClass::Syscall,
            params::HOST_SYSCALL_CYCLES + params::HOST_SOCKET_LAYER_CYCLES,
        );
        let (conn, emits) = self.engine.tcp_connect(t, local_port, remote);
        self.socks.get_mut(&sock).expect("checked").conn = Some(conn);
        self.conn_to_sock.insert(conn, sock);
        let mut out = Vec::new();
        self.process_emits(t, emits, &mut out);
        Ok(out)
    }

    // ----- data path -------------------------------------------------------

    /// Writes `data` to a connected TCP socket.
    ///
    /// # Errors
    ///
    /// [`SockError`] for unknown/unconnected sockets.
    pub fn send(
        &mut self,
        now: SimTime,
        sock: SockId,
        data: Vec<u8>,
    ) -> Result<(SendOutcome, Vec<HostOutput>), SockError> {
        let s = self.socks.get(&sock).ok_or(SockError::UnknownSock(sock))?;
        let Some(conn) = s.conn else {
            return Err(SockError::InvalidState("send on unconnected socket"));
        };
        let buffered = self.engine.conn_bytes_buffered(conn).unwrap_or(0);
        if buffered + data.len() as u64 > self.cfg.sndbuf as u64 {
            // blocking socket: the writer sleeps; only the check costs
            self.cpu.charge(now, WorkClass::Syscall, params::HOST_SYSCALL_CYCLES);
            return Ok((SendOutcome::WouldBlock, Vec::new()));
        }
        let mut t = self.cpu.charge(
            now,
            WorkClass::Syscall,
            params::HOST_SYSCALL_CYCLES + params::HOST_SOCKET_LAYER_CYCLES,
        );
        t = self.cpu.charge(t, WorkClass::Copy, params::HOST_COPY_FROM_USER_BASE_CYCLES);
        t = self.cpu.charge_copy(t, data.len());
        if !self.cfg.hw_checksum {
            t = self.cpu.charge_checksum(t, data.len());
        }
        let token = SendToken(self.next_token);
        self.next_token += 1;
        let emits = self.engine.tcp_send(t, conn, data, token)?;
        let mut out = Vec::new();
        let done = self.process_emits(t, emits, &mut out);
        Ok((SendOutcome::Sent { done }, out))
    }

    /// Reads up to `max` buffered bytes from a TCP socket, charging the
    /// receive-side syscall/copy costs. Returns the data and the instant
    /// the call returns.
    ///
    /// # Errors
    ///
    /// [`SockError::UnknownSock`].
    pub fn recv(
        &mut self,
        now: SimTime,
        sock: SockId,
        max: usize,
    ) -> Result<(Vec<u8>, SimTime), SockError> {
        let s = self.socks.get_mut(&sock).ok_or(SockError::UnknownSock(sock))?;
        let take = s.rx.len().min(max);
        let data: Vec<u8> = s.rx.drain(..take).collect();
        let mut t = self.cpu.charge(
            now,
            WorkClass::Syscall,
            params::HOST_SYSCALL_CYCLES
                + params::HOST_SOCKET_LAYER_CYCLES
                + params::HOST_SOCK_DEQUEUE_CYCLES,
        );
        t = self.cpu.charge(t, WorkClass::Copy, params::HOST_COPY_TO_USER_BASE_CYCLES);
        t = self.cpu.charge_copy(t, data.len());
        Ok((data, t))
    }

    /// Bytes currently readable on a TCP socket.
    pub fn readable(&self, sock: SockId) -> usize {
        self.socks.get(&sock).map_or(0, |s| s.rx.len())
    }

    /// Whether the peer has closed (EOF after draining `readable`).
    pub fn peer_closed(&self, sock: SockId) -> bool {
        self.socks.get(&sock).is_some_and(|s| s.peer_closed)
    }

    /// Sends one UDP datagram.
    ///
    /// # Errors
    ///
    /// [`SockError`] for unbound sockets or oversized payloads.
    pub fn udp_send(
        &mut self,
        now: SimTime,
        sock: SockId,
        dst: Endpoint,
        data: &[u8],
    ) -> Result<(SimTime, Vec<HostOutput>), SockError> {
        let s = self.socks.get(&sock).ok_or(SockError::UnknownSock(sock))?;
        let Some(port) = s.udp_port else {
            return Err(SockError::InvalidState("udp_send on unbound socket"));
        };
        let mut t = self.cpu.charge(
            now,
            WorkClass::Syscall,
            params::HOST_SYSCALL_CYCLES + params::HOST_SOCKET_LAYER_CYCLES,
        );
        t = self.cpu.charge(t, WorkClass::Copy, params::HOST_COPY_FROM_USER_BASE_CYCLES);
        t = self.cpu.charge_copy(t, data.len());
        if !self.cfg.hw_checksum {
            t = self.cpu.charge_checksum(t, data.len());
        }
        t = self.cpu.charge(
            t,
            WorkClass::Protocol,
            params::HOST_UDP_OUTPUT_CYCLES + params::HOST_IP_OUTPUT_CYCLES,
        );
        let emit = self.engine.udp_send(port, dst, data)?;
        let mut out = Vec::new();
        let done = self.process_emits(t, vec![emit], &mut out);
        Ok((done, out))
    }

    /// Reads one queued UDP datagram, if any.
    pub fn udp_recv(&mut self, now: SimTime, sock: SockId) -> Option<(Endpoint, Vec<u8>, SimTime)> {
        let s = self.socks.get_mut(&sock)?;
        let (src, data) = s.udp_rx.pop_front()?;
        let mut t = self.cpu.charge(
            now,
            WorkClass::Syscall,
            params::HOST_SYSCALL_CYCLES
                + params::HOST_SOCKET_LAYER_CYCLES
                + params::HOST_SOCK_DEQUEUE_CYCLES,
        );
        t = self.cpu.charge(t, WorkClass::Copy, params::HOST_COPY_TO_USER_BASE_CYCLES);
        t = self.cpu.charge_copy(t, data.len());
        Some((src, data, t))
    }

    /// Closes the write side of a TCP socket (FIN).
    ///
    /// # Errors
    ///
    /// [`SockError`] for unknown/unconnected sockets.
    pub fn close(&mut self, now: SimTime, sock: SockId) -> Result<Vec<HostOutput>, SockError> {
        let s = self.socks.get(&sock).ok_or(SockError::UnknownSock(sock))?;
        let Some(conn) = s.conn else {
            return Err(SockError::InvalidState("close on unconnected socket"));
        };
        let t = self.cpu.charge(now, WorkClass::Syscall, params::HOST_SYSCALL_CYCLES);
        let emits = self.engine.tcp_close(t, conn)?;
        let mut out = Vec::new();
        self.process_emits(t, emits, &mut out);
        Ok(out)
    }

    // ----- wire input --------------------------------------------------------

    /// A frame's last byte arrived from the wire at `now`.
    pub fn on_frame(&mut self, now: SimTime, bytes: &[u8]) -> Vec<HostOutput> {
        // adapter: DMA to the host ring and (maybe) interrupt
        let (data_ready, interrupt) = match self.nic.as_mut() {
            Some(nic) => {
                let o = nic.rx(now, bytes.len());
                (o.data_ready, o.interrupt)
            }
            None => (now, false), // loopback: no device
        };
        let mut t = data_ready;
        if interrupt {
            t = self.cpu.charge(t, WorkClass::Interrupt, params::HOST_INTERRUPT_CYCLES);
        }
        if self.nic.is_some() {
            t = self.cpu.charge(t, WorkClass::Driver, params::HOST_DRIVER_RX_CYCLES);
        }
        if self.cfg.staging_copy {
            t = self.cpu.charge_copy(t, bytes.len());
        }
        t = self.cpu.charge(t, WorkClass::Interrupt, params::HOST_SOFTIRQ_CYCLES);
        t = self.cpu.charge(t, WorkClass::Protocol, params::HOST_IP_INPUT_CYCLES);
        let is_udp = bytes.len() > 6 && bytes[6] == 17;
        if !self.cfg.hw_checksum {
            t = self.cpu.charge_checksum(t, bytes.len().saturating_sub(40));
        }
        t = self.cpu.charge(
            t,
            WorkClass::Protocol,
            if is_udp { params::HOST_UDP_INPUT_CYCLES } else { params::HOST_TCP_INPUT_CYCLES },
        );
        let emits = self.engine.on_packet(t, bytes);
        let _ = self.engine.take_ops();
        let mut out = Vec::new();
        self.process_emits(t, emits, &mut out);
        out
    }

    // ----- timers ---------------------------------------------------------------

    /// Earliest protocol timer deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.engine.next_deadline()
    }

    /// Fires due protocol timers.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<HostOutput> {
        let emits = self.engine.on_timer(now);
        let mut out = Vec::new();
        self.process_emits(now, emits, &mut out);
        out
    }

    // ----- internals --------------------------------------------------------------

    /// Handles engine emissions; returns the CPU completion time of the
    /// last charged work.
    fn process_emits(
        &mut self,
        t: SimTime,
        emits: Vec<Emit>,
        out: &mut Vec<HostOutput>,
    ) -> SimTime {
        let mut t = t;
        for emit in emits {
            match emit {
                Emit::Packet(pkt) => {
                    // per-packet protocol output cost + driver + adapter DMA
                    let proto = if matches!(pkt.kind, qpip_netstack::types::PacketKind::Udp) {
                        0 // UDP output charged at the syscall site
                    } else {
                        params::HOST_TCP_OUTPUT_CYCLES + params::HOST_IP_OUTPUT_CYCLES
                    };
                    t = self.cpu.charge(t, WorkClass::Protocol, proto);
                    if self.cfg.staging_copy {
                        t = self.cpu.charge_copy(t, pkt.bytes.len());
                    }
                    let at = match self.nic.as_mut() {
                        Some(nic) => {
                            let td = self.cpu.charge(
                                t,
                                WorkClass::Driver,
                                params::HOST_DRIVER_TX_CYCLES,
                            );
                            nic.tx(td, pkt.bytes.len())
                        }
                        None => t,
                    };
                    out.push(HostOutput::Frame { at, dst: pkt.dst, bytes: pkt.bytes });
                }
                Emit::UdpDelivered { port, src, payload } => {
                    if let Some(&sock) = self.udp_to_sock.get(&port) {
                        let s = self.socks.get_mut(&sock).expect("mapped");
                        let was_empty = s.udp_rx.is_empty();
                        s.udp_rx.push_back((src, payload));
                        if was_empty {
                            t = self.cpu.charge(
                                t,
                                WorkClass::Interrupt,
                                params::HOST_WAKEUP_CYCLES,
                            );
                            out.push(HostOutput::DataReady { sock, at: t });
                        }
                    }
                }
                Emit::TcpDelivered { conn, data } => {
                    if let Some(&sock) = self.conn_to_sock.get(&conn) {
                        let s = self.socks.get_mut(&sock).expect("mapped");
                        let was_empty = s.rx.is_empty();
                        s.rx.extend(data);
                        if was_empty {
                            t = self.cpu.charge(
                                t,
                                WorkClass::Interrupt,
                                params::HOST_WAKEUP_CYCLES,
                            );
                            out.push(HostOutput::DataReady { sock, at: t });
                        }
                    }
                }
                Emit::TcpSendComplete { conn, .. } => {
                    if let Some(&sock) = self.conn_to_sock.get(&conn) {
                        let buffered = self.engine.conn_bytes_buffered(conn).unwrap_or(0);
                        if buffered <= (self.cfg.sndbuf / 2) as u64 {
                            out.push(HostOutput::SendSpace { sock, at: t });
                        }
                    }
                }
                Emit::TcpConnected { conn } => {
                    if let Some(&sock) = self.conn_to_sock.get(&conn) {
                        out.push(HostOutput::Connected { sock, at: t });
                    }
                }
                Emit::TcpAccepted { listener_port, conn, peer } => {
                    if let Some(&listener) = self.listen_to_sock.get(&listener_port) {
                        let sock = self.alloc(SockKind::Tcp);
                        self.socks.get_mut(&sock).expect("new").conn = Some(conn);
                        self.conn_to_sock.insert(conn, sock);
                        t = self.cpu.charge(t, WorkClass::Interrupt, params::HOST_WAKEUP_CYCLES);
                        out.push(HostOutput::Accepted { listener, sock, peer, at: t });
                    }
                }
                Emit::TcpPeerClosed { conn } => {
                    if let Some(&sock) = self.conn_to_sock.get(&conn) {
                        self.socks.get_mut(&sock).expect("mapped").peer_closed = true;
                        out.push(HostOutput::PeerClosed { sock, at: t });
                    }
                }
                Emit::TcpClosed { conn } => {
                    if let Some(sock) = self.conn_to_sock.remove(&conn) {
                        if let Some(s) = self.socks.get_mut(&sock) {
                            s.conn = None;
                        }
                    }
                }
                Emit::TcpReset { conn } => {
                    if let Some(sock) = self.conn_to_sock.remove(&conn) {
                        if let Some(s) = self.socks.get_mut(&sock) {
                            s.conn = None;
                            s.peer_closed = true;
                        }
                        out.push(HostOutput::Reset { sock, at: t });
                    }
                }
            }
        }
        t
    }
}
