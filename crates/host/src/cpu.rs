//! Host CPU cycle accounting.
//!
//! The paper reports host overhead in cycles of the 550 MHz Pentium III
//! (Table 1) and CPU utilization of the ttcp/NBD workloads (Figures 4
//! and 7). [`CpuLedger`] charges every class of host work onto a serial
//! timeline and keeps a per-category cycle breakdown so both numbers
//! fall out of one mechanism.

use std::collections::HashMap;

use qpip_sim::params;
use qpip_sim::resource::SerialResource;
use qpip_sim::time::{Clock, Cycles, SimDuration, SimTime};

/// What a burst of host cycles was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkClass {
    /// Application-level work (benchmark loop bodies, filesystem).
    App,
    /// System-call entry/exit and socket-layer bookkeeping.
    Syscall,
    /// TCP/UDP/IP protocol processing.
    Protocol,
    /// Data movement (user↔kernel copies, checksums).
    Copy,
    /// Interrupt and softirq handling.
    Interrupt,
    /// Device-driver descriptor work.
    Driver,
    /// Filesystem/block-layer processing (the ≥26 % floor in Fig. 7).
    Filesystem,
    /// QPIP verb calls (posts, doorbells, CQ polls).
    Verbs,
}

/// A host processor timeline with categorized cycle accounting.
///
/// # Examples
///
/// ```
/// use qpip_host::cpu::{CpuLedger, WorkClass};
/// use qpip_sim::time::SimTime;
///
/// let mut cpu = CpuLedger::new();
/// // a syscall's worth of work: 550 cycles at 550 MHz is 1 µs
/// let done = cpu.charge(SimTime::ZERO, WorkClass::Syscall, 550);
/// assert_eq!(done, SimTime::from_micros(1));
/// assert_eq!(cpu.cycles(WorkClass::Syscall), 550);
/// ```
#[derive(Debug)]
pub struct CpuLedger {
    clock: Clock,
    timeline: SerialResource,
    by_class: HashMap<WorkClass, u64>,
}

impl CpuLedger {
    /// Creates a ledger on the paper's 550 MHz host clock.
    pub fn new() -> Self {
        CpuLedger {
            clock: params::host_clock(),
            timeline: SerialResource::new("host-cpu"),
            by_class: HashMap::new(),
        }
    }

    /// The host clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Charges `cycles` of `class` work starting no earlier than `now`;
    /// returns when the work completes.
    pub fn charge(&mut self, now: SimTime, class: WorkClass, cycles: u64) -> SimTime {
        if cycles == 0 {
            return now.max(self.timeline.next_free());
        }
        *self.by_class.entry(class).or_insert(0) += cycles;
        let d = self.clock.cycles_to_duration(Cycles(cycles));
        self.timeline.acquire(now, d)
    }

    /// Charges per-byte copy work (`bytes` × the era copy cost).
    pub fn charge_copy(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let cycles = (bytes as u64 * params::HOST_COPY_CYCLES_PER_BYTE_X100) / 100;
        self.charge(now, WorkClass::Copy, cycles)
    }

    /// Charges per-byte software-checksum work.
    pub fn charge_checksum(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let cycles = (bytes as u64 * params::HOST_CSUM_CYCLES_PER_BYTE_X100) / 100;
        self.charge(now, WorkClass::Copy, cycles)
    }

    /// Instant the CPU next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.timeline.next_free()
    }

    /// Total busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.timeline.busy_time()
    }

    /// Utilization of one processor over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.timeline.utilization(horizon)
    }

    /// Total cycles charged to a class.
    pub fn cycles(&self, class: WorkClass) -> u64 {
        self.by_class.get(&class).copied().unwrap_or(0)
    }

    /// Total cycles charged across all classes.
    pub fn total_cycles(&self) -> u64 {
        self.by_class.values().sum()
    }

    /// Per-class breakdown, sorted.
    pub fn breakdown(&self) -> Vec<(WorkClass, u64)> {
        let mut v: Vec<_> = self.by_class.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort();
        v
    }

    /// Forgets accumulated statistics (the timeline position is kept).
    pub fn reset_stats(&mut self) {
        self.by_class.clear();
        self.timeline.reset_stats();
    }
}

impl Default for CpuLedger {
    fn default() -> Self {
        CpuLedger::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_convert_at_550mhz() {
        let mut cpu = CpuLedger::new();
        let end = cpu.charge(SimTime::ZERO, WorkClass::Protocol, 550);
        assert_eq!(end, SimTime::from_micros(1));
        assert_eq!(cpu.cycles(WorkClass::Protocol), 550);
    }

    #[test]
    fn work_serializes_on_the_timeline() {
        let mut cpu = CpuLedger::new();
        let a = cpu.charge(SimTime::ZERO, WorkClass::App, 5500);
        let b = cpu.charge(SimTime::ZERO, WorkClass::Interrupt, 5500);
        assert_eq!(a, SimTime::from_micros(10));
        assert_eq!(b, SimTime::from_micros(20));
        assert_eq!(cpu.total_cycles(), 11_000);
    }

    #[test]
    fn copy_and_checksum_costs_scale_with_bytes() {
        let mut cpu = CpuLedger::new();
        cpu.charge_copy(SimTime::ZERO, 1000);
        assert_eq!(cpu.cycles(WorkClass::Copy), 1250); // 1.25 c/B
        cpu.charge_checksum(SimTime::ZERO, 1000);
        assert_eq!(cpu.cycles(WorkClass::Copy), 1250 + 800); // +0.8 c/B
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut cpu = CpuLedger::new();
        cpu.charge(SimTime::ZERO, WorkClass::App, 55_000); // 100 us
        let u = cpu.utilization(SimTime::from_micros(1000));
        assert!((u - 0.1).abs() < 1e-6, "{u}");
    }

    #[test]
    fn zero_cycles_cost_nothing_but_respect_queue() {
        let mut cpu = CpuLedger::new();
        cpu.charge(SimTime::ZERO, WorkClass::App, 550 * 10);
        let t = cpu.charge(SimTime::ZERO, WorkClass::App, 0);
        assert_eq!(t, SimTime::from_micros(10));
        assert_eq!(cpu.total_cycles(), 5_500);
    }

    #[test]
    fn breakdown_and_reset() {
        let mut cpu = CpuLedger::new();
        cpu.charge(SimTime::ZERO, WorkClass::Syscall, 10);
        cpu.charge(SimTime::ZERO, WorkClass::App, 20);
        assert_eq!(cpu.breakdown().len(), 2);
        cpu.reset_stats();
        assert_eq!(cpu.total_cycles(), 0);
        assert_eq!(cpu.busy_time(), SimDuration::ZERO);
    }
}
