//! # qpip-host — the host system model and socket baseline
//!
//! Models the paper's Dell PowerEdge 6350 host (§4.2): a 550 MHz
//! Pentium III CPU ledger with categorized cycle accounting
//! ([`cpu::CpuLedger`]) and a Linux-2.4-class socket stack
//! ([`stack::HostStack`]) running the *same* protocol engine as the
//! QPIP firmware — just on the host CPU, behind syscalls, copies,
//! softirqs and interrupts.
//!
//! This is the baseline side of every comparison in the paper: IP over
//! Gigabit Ethernet and IP over Myrinet (GM) for Figures 3, 4 and 7,
//! and the loopback configuration that produces Table 1's host-overhead
//! row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod stack;

pub use cpu::{CpuLedger, WorkClass};
pub use stack::{HostOutput, HostStack, SendOutcome, SockError, SockId, StackConfig};
