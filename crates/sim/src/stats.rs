//! Measurement primitives: counters, running summaries and histograms.
//!
//! Every experiment harness reports through these so that the tables and
//! figures are produced from one consistent measurement path.

use std::fmt;

use crate::time::SimDuration;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming summary of a series of samples: count, min, max, mean and
/// (exactly, by retention) percentiles.
///
/// Samples are kept in full — experiment populations here are at most a
/// few hundred thousand — so percentiles are exact rather than sketched.
///
/// # Examples
///
/// ```
/// use qpip_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.percentile(50.0), Some(2.0)); // nearest rank
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample {v}");
        self.samples.push(v);
        self.sorted = false;
        self.sum += v;
    }

    /// Records a duration sample in microseconds.
    pub fn record_duration_us(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Exact `p`-th percentile (nearest-rank), `0 <= p <= 100`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Population standard deviation, or 0.0 with < 2 samples.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }
}

/// A fixed-width-bucket histogram over `[0, width * buckets)` with an
/// overflow bucket; useful for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets each `width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `buckets == 0`.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0 && buckets > 0);
        Histogram { width, buckets: vec![0; buckets], overflow: 0, count: 0 }
    }

    /// Records a sample (negative samples land in bucket 0).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let idx = (v.max(0.0) / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterator over `(bucket_lower_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets.iter().enumerate().map(move |(i, &c)| (i as f64 * self.width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_percentiles_nearest_rank() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(f64::from(v));
        }
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(99.0), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn summary_empty_behaviour() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn summary_records_durations() {
        let mut s = Summary::new();
        s.record_duration_us(SimDuration::from_micros(73));
        assert_eq!(s.mean(), 73.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 3); // [0,10) [10,20) [20,30)
        for v in [0.0, 5.0, 15.0, 25.0, 99.0, -1.0] {
            h.record(v);
        }
        let counts: Vec<u64> = h.iter().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![3, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
    }
}
