//! The discrete-event simulation kernel.
//!
//! [`Simulator`] is a generic calendar queue: callers schedule events of
//! some type `E` at absolute instants or relative delays, then drain them
//! in time order. Ties are broken by insertion order, which makes every
//! run fully deterministic.
//!
//! Cancellation is generation-checked: every scheduled event owns a slot
//! in a slab whose generation counter is bumped when the event is
//! delivered or its cancelled entry drains, so a stale [`EventId`]
//! (delivered, double-cancelled, or from a reused slot) is always
//! rejected. Cancelled entries stay in the heap as tombstones, but the
//! kernel compacts the heap whenever tombstones outnumber live entries —
//! TCP reschedules its retransmit timer on every ACK, and without
//! compaction a long transfer accretes one dead entry per ACK.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Instant;

use crate::time::{SimDuration, SimTime};

/// A handle identifying a scheduled event, usable to cancel it.
///
/// Ids are never reused: the slot index may be recycled, but only with a
/// bumped generation, so a stale handle can never cancel a later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Slab cell backing one in-flight event. `live` is false once the event
/// is cancelled (tombstone awaiting drain) or the slot is on the free
/// list; the generation disambiguates the two for stale handles.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    live: bool,
}

/// Minimum heap size before tombstone compaction is considered; below
/// this the O(n) rebuild costs more than the tombstones it removes.
const COMPACT_MIN: usize = 64;

/// A deterministic discrete-event scheduler over events of type `E`.
///
/// # Examples
///
/// ```
/// use qpip_sim::kernel::Simulator;
/// use qpip_sim::time::{SimDuration, SimTime};
///
/// let mut sim: Simulator<&str> = Simulator::new();
/// sim.schedule_after(SimDuration::from_micros(10), "b");
/// sim.schedule_after(SimDuration::from_micros(5), "a");
/// let (t, e) = sim.next().unwrap();
/// assert_eq!((t, e), (SimTime::from_micros(5), "a"));
/// let (t, e) = sim.next().unwrap();
/// assert_eq!((t, e), (SimTime::from_micros(10), "b"));
/// assert!(sim.next().is_none());
/// ```
pub struct Simulator<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<E>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Cancelled entries still in the heap (tombstones).
    dead: usize,
    compactions: u64,
    processed: u64,
    /// Wall-clock instant of the first delivery, for the events/sec meter.
    first_pop: Option<Instant>,
}

impl<E> fmt::Debug for Simulator<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            dead: 0,
            compactions: 0,
            processed: 0,
            first_pop: None,
        }
    }

    /// The current simulated time (the timestamp of the last event
    /// returned by [`Simulator::next`], or zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live events currently pending. Cancelled tombstones not
    /// yet drained from the heap are excluded.
    pub fn pending(&self) -> usize {
        self.queue.len() - self.dead
    }

    /// Raw heap size, tombstones included. Bounded by compaction at
    /// roughly 2× [`Simulator::pending`] (plus the [`COMPACT_MIN`] floor)
    /// no matter how many timers are rescheduled.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Heap compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Wall-clock delivery rate: events delivered per second of real time
    /// since the first delivery. Zero before any event is delivered. This
    /// meters the simulator itself and never feeds back into simulated
    /// time.
    pub fn events_per_sec(&self) -> f64 {
        match self.first_pop {
            Some(t0) => {
                let secs = t0.elapsed().as_secs_f64();
                if secs > 0.0 {
                    self.processed as f64 / secs
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// Returns `true` if no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation
    /// cannot deliver events into its own past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: {at} < now {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].live = true;
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("slot index fits u32");
                self.slots.push(Slot { gen: 0, live: true });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.queue.push(Entry { at, seq, slot, event });
        EventId { slot, gen }
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` only if the
    /// event was still pending: ids of delivered or already-cancelled
    /// events are stale (their slot generation has moved on) and report
    /// `false` without corrupting the pending count.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.live => {
                s.live = false;
                self.dead += 1;
                if self.dead * 2 > self.queue.len() && self.queue.len() >= COMPACT_MIN {
                    self.compact();
                }
                true
            }
            _ => false,
        }
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.queue.peek().map(|e| e.at)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // calendar pop, not Iterator
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.queue.pop()?;
        self.release_slot(entry.slot);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        if self.first_pop.is_none() {
            self.first_pop = Some(Instant::now());
        }
        Some((entry.at, entry.event))
    }

    /// Frees a slot whose heap entry has left the queue, invalidating all
    /// outstanding ids for it.
    fn release_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        self.free.push(slot);
    }

    fn skip_cancelled(&mut self) {
        while let Some(head) = self.queue.peek() {
            if self.slots[head.slot as usize].live {
                break;
            }
            let entry = self.queue.pop().expect("peeked entry");
            self.release_slot(entry.slot);
            self.dead -= 1;
        }
    }

    /// Rebuilds the heap without tombstones. O(n), amortized against the
    /// cancellations that created the tombstones.
    fn compact(&mut self) {
        let mut entries = std::mem::take(&mut self.queue).into_vec();
        entries.retain(|e| {
            if self.slots[e.slot as usize].live {
                true
            } else {
                let s = &mut self.slots[e.slot as usize];
                s.gen = s.gen.wrapping_add(1);
                self.free.push(e.slot);
                false
            }
        });
        self.queue = BinaryHeap::from(entries);
        self.dead = 0;
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(30), 3);
        sim.schedule_at(SimTime::from_micros(10), 1);
        sim.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_micros(7), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.next();
        assert_eq!(sim.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(10), ());
        sim.next();
        sim.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), "a");
        sim.schedule_at(SimTime::from_micros(2), "b");
        assert!(sim.cancel(a));
        assert!(!sim.cancel(a), "double-cancel reports false");
        let (_, e) = sim.next().unwrap();
        assert_eq!(e, "b");
        assert!(sim.next().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(!sim.cancel(EventId { slot: 42, gen: 0 }));
    }

    /// Regression: ids of already-delivered events must not be accepted.
    /// The old `HashSet` scheme recorded any id below the insertion
    /// counter, returning `true` and desynchronizing `pending()` to the
    /// point of usize underflow.
    #[test]
    fn cancel_after_delivery_is_false_and_pending_cannot_underflow() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), "a");
        assert_eq!(sim.next().unwrap().1, "a");
        assert!(!sim.cancel(a), "delivered event must not cancel");
        assert_eq!(sim.pending(), 0, "no underflow");
        assert!(sim.is_idle());
        // queue must still work normally afterwards
        let b = sim.schedule_at(SimTime::from_micros(2), "b");
        assert_eq!(sim.pending(), 1);
        assert!(!sim.cancel(a), "stale id stays stale after slot reuse");
        assert!(sim.cancel(b));
        assert_eq!(sim.pending(), 0);
        assert!(sim.next().is_none());
    }

    /// Regression: a stale id whose slot was recycled must not cancel the
    /// new occupant.
    #[test]
    fn stale_id_never_cancels_slot_reuser() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), "a");
        sim.next();
        let b = sim.schedule_at(SimTime::from_micros(2), "b");
        assert!(!sim.cancel(a));
        assert_eq!(sim.next().unwrap().1, "b", "b survives stale cancel");
        let _ = b;
    }

    #[test]
    fn pending_counts_live_events_only() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), ());
        sim.schedule_at(SimTime::from_micros(2), ());
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        assert!(!sim.is_idle());
        sim.next();
        assert!(sim.is_idle());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), ());
        sim.schedule_at(SimTime::from_micros(2), ());
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn events_processed_counts() {
        let mut sim = Simulator::new();
        for i in 0..5u32 {
            sim.schedule_after(SimDuration::from_nanos(u64::from(i)), i);
        }
        while sim.next().is_some() {}
        assert_eq!(sim.events_processed(), 5);
    }

    /// The timer-churn pattern: one long-lived event plus a timer that is
    /// cancelled and rescheduled once per "ACK". The heap must stay
    /// bounded instead of accreting one tombstone per reschedule.
    #[test]
    fn per_ack_rescheduling_does_not_grow_the_heap() {
        let mut sim = Simulator::new();
        let mut timer = sim.schedule_at(SimTime::from_micros(1_000_000), 0u64);
        let mut max_depth = 0;
        for i in 1..=100_000u64 {
            assert!(sim.cancel(timer), "timer was live");
            timer = sim.schedule_at(SimTime::from_micros(1_000_000 + i), i);
            max_depth = max_depth.max(sim.queue_depth());
            assert_eq!(sim.pending(), 1);
        }
        assert!(max_depth <= COMPACT_MIN.max(4), "tombstones accreted: depth reached {max_depth}");
        assert!(sim.compactions() > 0, "compaction actually ran");
        // the surviving timer is the last one scheduled
        assert_eq!(sim.next().unwrap().1, 100_000);
        assert!(sim.next().is_none());
    }

    /// Interleaved schedule/cancel across many slots keeps ids unique and
    /// delivery exact.
    #[test]
    fn mass_cancellation_delivers_exact_complement() {
        let mut sim = Simulator::new();
        let ids: Vec<_> =
            (0..1000u64).map(|i| sim.schedule_at(SimTime::from_nanos(i % 97), i)).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(sim.cancel(*id));
            }
        }
        let mut got: Vec<u64> = Vec::new();
        while let Some((_, e)) = sim.next() {
            got.push(e);
        }
        let mut expect: Vec<u64> = (0..1000).filter(|i| i % 3 != 0).collect();
        expect.sort_by_key(|&i| (i % 97, i));
        assert_eq!(got, expect);
    }

    #[test]
    fn events_per_sec_meter_reports_after_deliveries() {
        let mut sim = Simulator::new();
        assert_eq!(sim.events_per_sec(), 0.0, "no deliveries yet");
        for i in 0..1000u64 {
            sim.schedule_after(SimDuration::from_nanos(i), i);
        }
        while sim.next().is_some() {}
        assert!(sim.events_per_sec() > 0.0);
    }
}
