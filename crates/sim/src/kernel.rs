//! The discrete-event simulation kernel.
//!
//! [`Simulator`] is a generic calendar queue: callers schedule events of
//! some type `E` at absolute instants or relative delays, then drain them
//! in time order. Ties are broken by insertion order, which makes every
//! run fully deterministic.

use std::cmp::Ordering;
use std::fmt;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// A handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler over events of type `E`.
///
/// # Examples
///
/// ```
/// use qpip_sim::kernel::Simulator;
/// use qpip_sim::time::{SimDuration, SimTime};
///
/// let mut sim: Simulator<&str> = Simulator::new();
/// sim.schedule_after(SimDuration::from_micros(10), "b");
/// sim.schedule_after(SimDuration::from_micros(5), "a");
/// let (t, e) = sim.next().unwrap();
/// assert_eq!((t, e), (SimTime::from_micros(5), "a"));
/// let (t, e) = sim.next().unwrap();
/// assert_eq!((t, e), (SimTime::from_micros(10), "b"));
/// assert!(sim.next().is_none());
/// ```
pub struct Simulator<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    processed: u64,
}

impl<E> fmt::Debug for Simulator<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// The current simulated time (the timestamp of the last event
    /// returned by [`Simulator::next`], or zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including cancelled entries not
    /// yet drained).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Returns `true` if no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation
    /// cannot deliver events into its own past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // We cannot remove from the heap cheaply; record the id and skip
        // the entry when it surfaces.
        if id.0 < self.seq {
            self.cancelled.insert(id.0)
        } else {
            false
        }
    }

    /// The timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.queue.peek().map(|e| e.at)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // calendar pop, not Iterator
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.queue.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    fn skip_cancelled(&mut self) {
        while let Some(head) = self.queue.peek() {
            if self.cancelled.remove(&head.seq) {
                self.queue.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(30), 3);
        sim.schedule_at(SimTime::from_micros(10), 1);
        sim.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            sim.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_micros(7), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.next();
        assert_eq!(sim.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_micros(10), ());
        sim.next();
        sim.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), "a");
        sim.schedule_at(SimTime::from_micros(2), "b");
        assert!(sim.cancel(a));
        assert!(!sim.cancel(a), "double-cancel reports false");
        let (_, e) = sim.next().unwrap();
        assert_eq!(e, "b");
        assert!(sim.next().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(!sim.cancel(EventId(42)));
    }

    #[test]
    fn pending_counts_live_events_only() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), ());
        sim.schedule_at(SimTime::from_micros(2), ());
        assert_eq!(sim.pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        assert!(!sim.is_idle());
        sim.next();
        assert!(sim.is_idle());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut sim = Simulator::new();
        let a = sim.schedule_at(SimTime::from_micros(1), ());
        sim.schedule_at(SimTime::from_micros(2), ());
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn events_processed_counts() {
        let mut sim = Simulator::new();
        for i in 0..5u32 {
            sim.schedule_after(SimDuration::from_nanos(u64::from(i)), i);
        }
        while sim.next().is_some() {}
        assert_eq!(sim.events_processed(), 5);
    }
}
