//! Serial-resource models: processors, buses and links that can do one
//! thing at a time.
//!
//! Throughput in the full-system simulation emerges from contention on
//! these resources: a packet's wire time, a DMA engine's PCI occupancy
//! and a NIC processor's stage costs all serialize here, so pipelining
//! falls out naturally (stage start = max(arrival, resource free time)).

use crate::time::{SimDuration, SimTime};

/// A FIFO serial resource: each job occupies it for a caller-supplied
/// duration; jobs that arrive while it is busy queue behind it.
///
/// Tracks cumulative busy time so utilization over any interval can be
/// reported (used for the CPU-utilization axes of Figures 4 and 7).
///
/// # Examples
///
/// ```
/// use qpip_sim::resource::SerialResource;
/// use qpip_sim::time::{SimDuration, SimTime};
///
/// let mut link = SerialResource::new("link");
/// let t0 = SimTime::ZERO;
/// let fin1 = link.acquire(t0, SimDuration::from_micros(4));
/// let fin2 = link.acquire(t0, SimDuration::from_micros(4));
/// assert_eq!(fin1, SimTime::from_micros(4));
/// assert_eq!(fin2, SimTime::from_micros(8)); // queued behind the first
/// ```
#[derive(Debug, Clone)]
pub struct SerialResource {
    name: &'static str,
    next_free: SimTime,
    busy: SimDuration,
    jobs: u64,
}

impl SerialResource {
    /// Creates an idle resource labeled `name` (for diagnostics).
    pub fn new(name: &'static str) -> Self {
        SerialResource { name, next_free: SimTime::ZERO, busy: SimDuration::ZERO, jobs: 0 }
    }

    /// The diagnostic label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Occupies the resource for `work` starting no earlier than `now`,
    /// returning the completion instant.
    pub fn acquire(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let start = now.max(self.next_free);
        let finish = start + work;
        self.next_free = finish;
        self.busy += work;
        self.jobs += 1;
        finish
    }

    /// The instant at which the resource next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Whether a job arriving at `now` would start immediately.
    pub fn is_free_at(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Fraction of the interval `[0, horizon]` spent busy (0.0–1.0).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }

    /// Forgets accumulated busy time/jobs (the free instant is kept).
    pub fn reset_stats(&mut self) {
        self.busy = SimDuration::ZERO;
        self.jobs = 0;
    }
}

/// A fixed-rate pipe (bus or link): converts byte counts into occupancy
/// on an internal [`SerialResource`].
///
/// # Examples
///
/// ```
/// use qpip_sim::resource::BandwidthPipe;
/// use qpip_sim::time::SimTime;
///
/// // The paper's PCI bus: 64 bit x 33 MHz = 266 MB/s burst.
/// let mut pci = BandwidthPipe::new("pci", 266_000_000);
/// let done = pci.transfer(SimTime::ZERO, 16 * 1024);
/// assert!((done.as_micros_f64() - 61.6).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthPipe {
    inner: SerialResource,
    bytes_per_sec: u64,
    bytes_moved: u64,
}

impl BandwidthPipe {
    /// Creates a pipe with the given capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(name: &'static str, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "pipe capacity must be nonzero");
        BandwidthPipe { inner: SerialResource::new(name), bytes_per_sec, bytes_moved: 0 }
    }

    /// The configured capacity in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Moves `bytes` through the pipe starting no earlier than `now`,
    /// returning the completion instant.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.bytes_moved += bytes;
        self.inner.acquire(now, SimDuration::for_bytes(bytes, self.bytes_per_sec))
    }

    /// Serialization delay for `bytes` without occupying the pipe.
    pub fn latency_for(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.bytes_per_sec)
    }

    /// The instant at which the pipe next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.inner.next_free()
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Fraction of `[0, horizon]` spent transferring.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.inner.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resource_queues_fifo() {
        let mut r = SerialResource::new("r");
        let f1 = r.acquire(SimTime::ZERO, SimDuration::from_micros(10));
        let f2 = r.acquire(SimTime::from_micros(3), SimDuration::from_micros(5));
        assert_eq!(f1, SimTime::from_micros(10));
        assert_eq!(f2, SimTime::from_micros(15));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = SerialResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_micros(10));
        // arrives long after the first job finished
        r.acquire(SimTime::from_micros(100), SimDuration::from_micros(10));
        assert_eq!(r.busy_time(), SimDuration::from_micros(20));
        let util = r.utilization(SimTime::from_micros(200));
        assert!((util - 0.1).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut r = SerialResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_micros(100));
        assert_eq!(r.utilization(SimTime::from_micros(50)), 1.0);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_stats_keeps_schedule() {
        let mut r = SerialResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_micros(10));
        r.reset_stats();
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.jobs(), 0);
        assert_eq!(r.next_free(), SimTime::from_micros(10));
    }

    #[test]
    fn pipe_rate_math() {
        let mut link = BandwidthPipe::new("myrinet", 250_000_000); // 2 Gb/s
        let done = link.transfer(SimTime::ZERO, 2500);
        assert_eq!(done, SimTime::from_micros(10));
        assert_eq!(link.bytes_moved(), 2500);
    }

    #[test]
    fn pipe_latency_for_does_not_occupy() {
        let link = BandwidthPipe::new("l", 1_000_000);
        assert_eq!(link.latency_for(1000), SimDuration::from_millis(1));
        assert_eq!(link.next_free(), SimTime::ZERO);
    }

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut pci = BandwidthPipe::new("pci", 266_000_000);
        let a = pci.transfer(SimTime::ZERO, 16 * 1024);
        let b = pci.transfer(SimTime::ZERO, 16 * 1024);
        assert!(b > a);
        assert_eq!(b.as_picos(), 2 * a.as_picos());
    }
}
