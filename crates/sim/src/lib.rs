//! # qpip-sim — discrete-event simulation kernel
//!
//! The foundation of the QPIP reproduction: a deterministic calendar
//! queue ([`kernel::Simulator`]), picosecond time and cycle arithmetic
//! ([`time`]), serial-resource contention models ([`resource`]),
//! measurement primitives ([`stats`]) and the single authoritative table
//! of calibration constants ([`params`]).
//!
//! Everything above this crate — fabric, NIC, host, verbs — is a state
//! machine advanced by events from one of these simulators. All runs are
//! bit-for-bit reproducible: event ties break by insertion order and no
//! wall-clock time or ambient randomness is consulted anywhere.
//!
//! ## Example
//!
//! ```
//! use qpip_sim::kernel::Simulator;
//! use qpip_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     PacketArrives,
//!     TimerFires,
//! }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_after(SimDuration::from_micros(50), Ev::TimerFires);
//! sim.schedule_after(SimDuration::from_micros(10), Ev::PacketArrives);
//!
//! let (t, ev) = sim.next().unwrap();
//! assert_eq!(ev, Ev::PacketArrives);
//! assert_eq!(t, SimTime::from_micros(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod params;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use kernel::{EventId, Simulator};
pub use time::{Clock, Cycles, SimDuration, SimTime};
