//! Small deterministic pseudo-random number generator.
//!
//! The simulation itself consults no ambient randomness — every run is
//! bit-for-bit reproducible — but fault injection and randomized test
//! suites need a seeded, portable stream of pseudo-random values. This
//! is Steele & Vigna's SplitMix64: tiny, fast, and statistically solid
//! for everything short of cryptography. Keeping it in-tree avoids an
//! external dependency and guarantees the stream never changes under a
//! crate upgrade (seeded experiment outputs stay stable forever).

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at
    /// most 2⁻⁶⁴·bound, far below anything a test could observe.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }

    /// A fresh `Vec` of `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn known_answer_first_outputs_of_seed_zero() {
        // reference values from the published SplitMix64 algorithm
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(1);
        let hits = (0..10_000).filter(|_| r.chance(100, 1000)).count();
        assert!((800..1200).contains(&hits), "≈10%, got {hits}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = SplitMix64::new(3);
        for len in 0..17 {
            let v = r.bytes(len);
            assert_eq!(v.len(), len);
        }
    }
}
