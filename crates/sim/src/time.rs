//! Simulation time and processor-cycle arithmetic.
//!
//! The simulation clock counts **picoseconds** in a `u64`, which gives a
//! little over 5 × 10⁶ simulated seconds of range — far more than any
//! experiment in this workspace needs — while resolving a single cycle of
//! the fastest modeled clock (the 550 MHz host CPU, ≈ 1 818 ps/cycle)
//! exactly enough that cycle accounting never collapses to zero.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in picoseconds since time zero.
///
/// # Examples
///
/// ```
/// use qpip_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_picos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in picoseconds.
///
/// # Examples
///
/// ```
/// use qpip_sim::time::SimDuration;
///
/// let d = SimDuration::from_nanos(1500);
/// assert_eq!(d.as_micros_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Raw picoseconds since time zero.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Time since zero, in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time since zero, in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (debug builds), saturating
    /// to zero in release builds.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier:?} > {self:?}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a duration from floating-point microseconds, rounding to
    /// the nearest picosecond.
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0);
        SimDuration((us * 1e6).round() as u64)
    }

    /// The time needed to move `bytes` bytes through a pipe of
    /// `bytes_per_sec` capacity.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        debug_assert!(bytes_per_sec > 0);
        SimDuration(((bytes as u128 * 1_000_000_000_000u128) / bytes_per_sec as u128) as u64)
    }

    /// Raw picoseconds.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Duration in nanoseconds, truncating.
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration scaled by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

/// A count of processor clock cycles on some [`Clock`].
///
/// # Examples
///
/// ```
/// use qpip_sim::time::{Clock, Cycles};
///
/// let host = Clock::from_mhz(550);
/// // Table 1 of the paper: 16 445 cycles at 550 MHz is 29.9 µs.
/// let d = host.cycles_to_duration(Cycles(16_445));
/// assert!((d.as_micros_f64() - 29.9).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Raw cycle count.
    pub const fn count(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Self {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A fixed-frequency clock used to convert between cycles and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    hz: u64,
}

impl Clock {
    /// Creates a clock running at `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be nonzero");
        Clock { hz }
    }

    /// Creates a clock running at `mhz` megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Clock::new(mhz * 1_000_000)
    }

    /// The clock frequency in hertz.
    pub fn hz(self) -> u64 {
        self.hz
    }

    /// Converts a cycle count to wall (simulated) time, rounding down but
    /// never below one picosecond for a nonzero count.
    pub fn cycles_to_duration(self, c: Cycles) -> SimDuration {
        if c.0 == 0 {
            return SimDuration::ZERO;
        }
        let ps = (c.0 as u128 * 1_000_000_000_000u128) / self.hz as u128;
        SimDuration::from_picos((ps as u64).max(1))
    }

    /// Converts a duration to a cycle count, rounding down.
    pub fn duration_to_cycles(self, d: SimDuration) -> Cycles {
        Cycles(((d.as_picos() as u128 * self.hz as u128) / 1_000_000_000_000u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_conversions() {
        assert_eq!(SimTime::from_micros(1).as_picos(), 1_000_000);
        assert_eq!(SimTime::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_picos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs(1).as_picos(), 1_000_000_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_micros(10);
        let t1 = t0 + SimDuration::from_micros(5);
        assert_eq!(t1, SimTime::from_micros(15));
        assert_eq!(t1 - t0, SimDuration::from_micros(5));
        assert_eq!(t1.duration_since(t0), SimDuration::from_micros(5));
    }

    #[test]
    fn duration_for_bytes_matches_link_rate() {
        // 2 Gb/s = 250 MB/s: 250 bytes take 1 us.
        let d = SimDuration::for_bytes(250, 250_000_000);
        assert_eq!(d, SimDuration::from_micros(1));
        // zero bytes take zero time
        assert_eq!(SimDuration::for_bytes(0, 250_000_000), SimDuration::ZERO);
    }

    #[test]
    fn clock_roundtrip() {
        let nic = Clock::from_mhz(133);
        let d = nic.cycles_to_duration(Cycles(133));
        assert_eq!(d, SimDuration::from_micros(1));
        assert_eq!(nic.duration_to_cycles(d), Cycles(133));
    }

    #[test]
    fn host_clock_matches_paper_table1() {
        let host = Clock::from_mhz(550);
        let d = host.cycles_to_duration(Cycles(16_445));
        assert!((d.as_micros_f64() - 29.9).abs() < 0.01, "{d}");
        let d = host.cycles_to_duration(Cycles(1_386));
        assert!((d.as_micros_f64() - 2.52).abs() < 0.01, "{d}");
    }

    #[test]
    fn nonzero_cycles_never_round_to_zero_time() {
        let fast = Clock::new(u64::MAX / 2);
        assert!(fast.cycles_to_duration(Cycles(1)) > SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_nanos(1500).to_string(), "1.500us");
        assert_eq!(Cycles(7).to_string(), "7 cycles");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }
}
