//! Calibration constants for the whole QPIP reproduction.
//!
//! Every number here is either taken directly from the paper (§4.1–§4.2:
//! hardware inventory, Tables 1–3) or from era-appropriate published
//! measurements of the same component class (PCI burst rates, Linux 2.4
//! per-packet costs in the Kay & Pasquale decomposition the paper cites).
//! All downstream crates pull their costs from this module so that a
//! single model produces *all* figures — nothing is tuned per-figure.

use crate::time::Clock;

// ---------------------------------------------------------------------
// Host platform: Dell PowerEdge 6350 (§4.2)
// ---------------------------------------------------------------------

/// Host CPU clock: 550 MHz Pentium III (§4.2).
pub const HOST_CLOCK_MHZ: u64 = 550;

/// Number of host processors (4 × P-III, §4.2).
pub const HOST_NUM_CPUS: usize = 4;

/// The host CPU clock as a [`Clock`].
pub fn host_clock() -> Clock {
    Clock::from_mhz(HOST_CLOCK_MHZ)
}

/// I/O bus: 64-bit / 33 MHz PCI (§4.2) ⇒ 266 MB/s burst bandwidth,
/// shared by all devices and both NIC DMA engines.
pub const PCI_BYTES_PER_SEC: u64 = 266_000_000;

/// Sustained DMA *read* bandwidth (device reading host memory, the
/// transmit-side data fetch). The PowerEdge 6350's Intel 450NX chipset
/// was notorious for poor PCI read performance — sustained device reads
/// in the 70–90 MB/s range despite the 266 MB/s burst rate — and this,
/// not the link, is what bounds QPIP's native-MTU throughput (§4.2.1's
/// 75.6 MB/s).
pub const PCI_DMA_READ_BYTES_PER_SEC: u64 = 80_000_000;

/// Sustained DMA *write* bandwidth (device writing host memory, the
/// receive-side data placement); chipset writes post and combine, so
/// they run much closer to burst.
pub const PCI_DMA_WRITE_BYTES_PER_SEC: u64 = 170_000_000;

/// Latency to start a PCI DMA transaction (arbitration + address phase),
/// charged once per transfer in addition to serialization time.
pub const PCI_DMA_SETUP_NS: u64 = 700;

/// A single uncached programmed-I/O write across PCI (doorbell ring),
/// in *host* cycles. ~0.4 µs on this class of machine.
pub const HOST_PIO_WRITE_CYCLES: u64 = 220;

/// Host memory-copy cost per byte, in host cycles (≈ 440 MB/s effective
/// copy bandwidth on a 550 MHz P-III — era STREAM-class number).
pub const HOST_COPY_CYCLES_PER_BYTE_X100: u64 = 125; // 1.25 cycles/byte

/// Host software internet-checksum cost per byte, in host cycles × 100.
pub const HOST_CSUM_CYCLES_PER_BYTE_X100: u64 = 80; // 0.80 cycles/byte

// ---------------------------------------------------------------------
// Host OS cost model (Linux 2.4 class). Calibrated so the send+receive
// path for a 1-byte TCP message sums to Table 1's 16 445 cycles
// (= 29.9 µs at 550 MHz), measured the way the paper measured it:
// through the loopback interface, excluding any device driver cost.
// ---------------------------------------------------------------------

/// System-call entry + exit.
pub const HOST_SYSCALL_CYCLES: u64 = 900;

/// Socket layer per call: fd lookup, locking, sockbuf bookkeeping.
pub const HOST_SOCKET_LAYER_CYCLES: u64 = 1_400;

/// Fixed cost of `copy_from_user` (plus per-byte above).
pub const HOST_COPY_FROM_USER_BASE_CYCLES: u64 = 400;

/// Fixed cost of `copy_to_user` (plus per-byte above).
pub const HOST_COPY_TO_USER_BASE_CYCLES: u64 = 500;

/// TCP output processing (segment construction, TCB update).
pub const HOST_TCP_OUTPUT_CYCLES: u64 = 2_600;

/// IP output processing (route, header).
pub const HOST_IP_OUTPUT_CYCLES: u64 = 700;

/// Softirq / protocol dispatch on the receive path.
pub const HOST_SOFTIRQ_CYCLES: u64 = 1_400;

/// IP input processing.
pub const HOST_IP_INPUT_CYCLES: u64 = 700;

/// TCP input processing (header prediction fast path).
pub const HOST_TCP_INPUT_CYCLES: u64 = 2_600;

/// Waking the blocked receiver (scheduler activation).
pub const HOST_WAKEUP_CYCLES: u64 = 2_000;

/// Dequeueing data from the socket receive buffer.
pub const HOST_SOCK_DEQUEUE_CYCLES: u64 = 945;

/// Hardware interrupt service (entry, handler, exit). Charged per
/// interrupt on real-NIC paths; the loopback path (Table 1) has none.
pub const HOST_INTERRUPT_CYCLES: u64 = 3_300;

/// UDP output processing (no TCB, no congestion state).
pub const HOST_UDP_OUTPUT_CYCLES: u64 = 1_300;

/// UDP input processing.
pub const HOST_UDP_INPUT_CYCLES: u64 = 1_200;

/// Per-packet device-driver cost on real-NIC paths (descriptor ring
/// maintenance, buffer management) — excluded from Table 1 by design.
pub const HOST_DRIVER_TX_CYCLES: u64 = 1_200;
/// Per-packet receive-side driver cost.
pub const HOST_DRIVER_RX_CYCLES: u64 = 1_500;

/// Sum of the host-stack cycle costs on the transmit path for a 1-byte
/// message (no driver, per Table 1 methodology).
pub const fn host_tx_path_cycles_1b() -> u64 {
    HOST_SYSCALL_CYCLES
        + HOST_SOCKET_LAYER_CYCLES
        + HOST_COPY_FROM_USER_BASE_CYCLES
        + HOST_TCP_OUTPUT_CYCLES
        + HOST_IP_OUTPUT_CYCLES
}

/// Sum of the host-stack cycle costs on the receive path for a 1-byte
/// message (no driver, per Table 1 methodology).
pub const fn host_rx_path_cycles_1b() -> u64 {
    HOST_SOFTIRQ_CYCLES
        + HOST_IP_INPUT_CYCLES
        + HOST_TCP_INPUT_CYCLES
        + HOST_WAKEUP_CYCLES
        + HOST_SOCK_DEQUEUE_CYCLES
        + HOST_SYSCALL_CYCLES
        + HOST_SOCKET_LAYER_CYCLES
        + HOST_COPY_TO_USER_BASE_CYCLES
}

// ---------------------------------------------------------------------
// QPIP verbs host-side cost model. Calibrated so post_send + post_recv
// + poll for a 1-byte message sums to Table 1's 1 386 cycles (2.5 µs).
// ---------------------------------------------------------------------

/// Building a work request and appending it to the in-memory queue.
pub const QPIP_BUILD_WR_CYCLES: u64 = 280;

/// Ringing the doorbell: one uncached PIO write ([`HOST_PIO_WRITE_CYCLES`])
/// plus queue-state update.
pub const QPIP_DOORBELL_CYCLES: u64 = HOST_PIO_WRITE_CYCLES + 80;

/// One completion-queue poll that finds an entry (cache-resident read +
/// entry decode).
pub const QPIP_POLL_HIT_CYCLES: u64 = 226;

/// One completion-queue poll that finds nothing (spin iteration in the
/// processor cache — the cache-coherent polling the paper highlights).
pub const QPIP_POLL_MISS_CYCLES: u64 = 40;

/// Host cycles for a complete post_send (build + doorbell).
pub const fn qpip_post_cycles() -> u64 {
    QPIP_BUILD_WR_CYCLES + QPIP_DOORBELL_CYCLES
}

// ---------------------------------------------------------------------
// NIC: Myrinet LANai 9 (§4.1)
// ---------------------------------------------------------------------

/// NIC processor clock: 133 MHz RISC (§4.1).
pub const NIC_CLOCK_MHZ: u64 = 133;

/// The NIC clock as a [`Clock`].
pub fn nic_clock() -> Clock {
    Clock::from_mhz(NIC_CLOCK_MHZ)
}

/// On-board SRAM: 2 MB (§4.1).
pub const NIC_SRAM_BYTES: usize = 2 * 1024 * 1024;

/// Software multiply on the LANai (no hardware multiply, §4.2.2):
/// shift-and-add loop, ~155 cycles per 32-bit multiply.
pub const NIC_SOFT_MUL_CYCLES: u64 = 155;

/// Hardware multiply cost used by the `--hw-multiply` ablation.
pub const NIC_HW_MUL_CYCLES: u64 = 5;

/// Firmware (software) internet checksum on the NIC, cycles per byte.
/// 5 cycles/byte at 133 MHz over a 16 KB segment ≈ 616 µs, which is what
/// limits the firmware-checksum configuration to ≈ 26 MB/s (§4.2.1).
pub const NIC_FW_CSUM_CYCLES_PER_BYTE: u64 = 5;

// Per-stage firmware base costs, in NIC cycles. Chosen once so that the
// single-segment TCP stage costs land on Tables 2 & 3 (µs × 133); the
// same constants then produce Figures 3 and 4.

/// Doorbell FSM: pop FIFO, update QP state table (Table 2/3: 1 µs).
pub const NIC_STAGE_DOORBELL_CYCLES: u64 = 133;
/// Scheduler: scan/select next active endpoint (Table 2: 2 µs).
pub const NIC_STAGE_SCHEDULE_CYCLES: u64 = 266;
/// Fetch a work request from host memory by DMA (Table 2/3: 5.5 µs,
/// dominated by PCI round-trip latency).
pub const NIC_STAGE_GET_WR_CYCLES: u64 = 731;
/// Start/complete the data DMA for a small message (Table 2/3: 4.5 µs
/// fixed part; bulk data serialization is charged to the PCI pipe).
pub const NIC_STAGE_GET_DATA_CYCLES: u64 = 598;
/// Build a TCP header incl. options (Table 2: 5 µs).
pub const NIC_STAGE_BUILD_TCP_CYCLES: u64 = 665;
/// Build a UDP header (smaller: no options, no sequence state).
pub const NIC_STAGE_BUILD_UDP_CYCLES: u64 = 399;
/// Build an IPv6 header (Table 2: 1 µs).
pub const NIC_STAGE_BUILD_IP_CYCLES: u64 = 133;
/// Hand the packet to the network transmit engine (Table 2: 1 µs).
pub const NIC_STAGE_MEDIA_XMT_CYCLES: u64 = 133;
/// Post-send status update to WR/QP (Table 2: 1.5 µs).
pub const NIC_STAGE_UPDATE_TX_CYCLES: u64 = 200;
/// Receive-side media engine service (Table 3: 1 µs).
pub const NIC_STAGE_MEDIA_RCV_CYCLES: u64 = 133;
/// Parse an IPv6 header (Table 3: 1.5 µs).
pub const NIC_STAGE_IP_PARSE_CYCLES: u64 = 200;
/// Parse a TCP header, fast path, excluding RTT-estimator math
/// (Table 3: 7 µs for data; ACKs add the multiplies below).
pub const NIC_STAGE_TCP_PARSE_CYCLES: u64 = 931;
/// Parse a UDP header.
pub const NIC_STAGE_UDP_PARSE_CYCLES: u64 = 399;
/// Number of 32-bit multiplies in the RTT estimator / RTO update run on
/// each ACK (§4.2.2: "a series of multiply operations"). 6 × 155 ≈ 930
/// cycles ≈ 7 µs, lifting ACK TCP parse to Table 3's 14 µs.
pub const NIC_RTT_UPDATE_MULS: u64 = 6;
/// Deliver data to the host buffer: DMA start fixed part (Table 3: 4.5 µs).
pub const NIC_STAGE_PUT_DATA_CYCLES: u64 = 598;
/// Receive-side WR/CQ update for data (Table 3: 1.5 µs).
pub const NIC_STAGE_UPDATE_RX_CYCLES: u64 = 200;
/// Receive-side update for an ACK: retire the send WR, write the CQ
/// entry, roll the TCB forward (Table 3: 9 µs).
pub const NIC_STAGE_UPDATE_ACK_CYCLES: u64 = 1_197;
/// Timer check / retransmit scan folded into the scheduler pass.
pub const NIC_STAGE_TIMER_SCAN_CYCLES: u64 = 90;

// ---------------------------------------------------------------------
// Fabrics
// ---------------------------------------------------------------------

/// Myrinet link rate: 2.0 Gb/s full duplex (§4.1) = 250 MB/s per
/// direction.
pub const MYRINET_BYTES_PER_SEC: u64 = 250_000_000;
/// Myrinet crossbar cut-through latency per switch hop.
pub const MYRINET_SWITCH_LATENCY_NS: u64 = 300;
/// Cable propagation per hop.
pub const MYRINET_CABLE_LATENCY_NS: u64 = 100;
/// Myrinet link-level header bytes (route bytes + type + CRC).
pub const MYRINET_LINK_OVERHEAD_BYTES: usize = 16;

/// Gigabit Ethernet link rate = 125 MB/s.
pub const GIGE_BYTES_PER_SEC: u64 = 125_000_000;
/// Store-and-forward switch adds its own forwarding latency per hop…
pub const GIGE_SWITCH_LATENCY_NS: u64 = 2_000;
/// …plus full re-serialization of the frame (modeled by the fabric).
pub const GIGE_CABLE_LATENCY_NS: u64 = 100;
/// Ethernet framing overhead: preamble(8) + header(14) + FCS(4) + IFG(12).
pub const GIGE_FRAME_OVERHEAD_BYTES: usize = 38;
/// Ethernet MTU (§4.2.1).
pub const GIGE_MTU: usize = 1_500;

/// Jumbo MTU used for the IP-over-Myrinet (GM) baseline (§4.2.1).
pub const GM_MTU: usize = 9_000;
/// Native QPIP MTU (§4.2.1: "16KB in the case of QPIP").
pub const QPIP_NATIVE_MTU: usize = 16 * 1024;

/// Per-packet firmware cost inside the GM NIC on the IP-over-Myrinet
/// baseline path: GM's general-purpose send queue handling, event
/// posting and registered-buffer bookkeeping per IP frame.
pub const GM_NIC_TX_CYCLES: u64 = 900;
/// GM receive-side firmware cost per packet.
pub const GM_NIC_RX_CYCLES: u64 = 1_100;

/// Interrupt coalescing on the GigE adapter: interrupts are charged once
/// per this many back-to-back receive packets in a bulk stream (the
/// Pro/1000's absolute-delay moderation; ping-pong traffic still takes
/// one interrupt per packet because the timer expires first).
pub const GIGE_INTR_COALESCE_PKTS: u64 = 4;

// ---------------------------------------------------------------------
// Benchmarks (§4.2)
// ---------------------------------------------------------------------

/// ttcp transfer size: 10 MB (§4.2.1).
pub const TTCP_TRANSFER_BYTES: u64 = 10 * 1024 * 1024;
/// ttcp write size: 16 KB chunks (§4.2.1).
pub const TTCP_CHUNK_BYTES: usize = 16 * 1024;
/// NBD benchmark: 409 MB sequential read and write (§4.2.3).
pub const NBD_TRANSFER_BYTES: u64 = 409 * 1024 * 1024;

// ---------------------------------------------------------------------
// NBD storage model (§4.2.3)
// ---------------------------------------------------------------------

/// Client-side filesystem + block-layer cost per byte (× 100): ext2
/// page-cache copy, buffer management and block submission. Sized so
/// filesystem processing accounts for the ≥ 26 % CPU floor the paper
/// reports during the NBD runs.
pub const NBD_FS_CYCLES_PER_BYTE_X100: u64 = 400;

/// Client-side fixed cost per block request (ext2 metadata, block-layer
/// queueing, request construction).
pub const NBD_FS_PER_REQUEST_CYCLES: u64 = 8_000;

/// Server-side per-request handling (file offset lookup, page-cache
/// insertion/lookup).
pub const NBD_SERVER_PER_REQUEST_CYCLES: u64 = 6_000;

/// Server writeback rate to the backing store. Writes land in the
/// server's page cache and flush concurrently; the benchmark's final
/// `sync` waits for the tail (the 409 MB file fits the server's 1 GB
/// RAM, so reads after the write phase come from the cache).
pub const NBD_DISK_BYTES_PER_SEC: u64 = 100_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Cycles;

    #[test]
    fn host_path_cycles_sum_to_table1() {
        // Table 1: host-based IP send+receive = 16 445 cycles = 29.9 µs.
        assert_eq!(host_tx_path_cycles_1b() + host_rx_path_cycles_1b(), 16_445);
        let d = host_clock()
            .cycles_to_duration(Cycles(host_tx_path_cycles_1b() + host_rx_path_cycles_1b()));
        assert!((d.as_micros_f64() - 29.9).abs() < 0.01);
    }

    #[test]
    fn qpip_verbs_cycles_sum_to_table1() {
        // Table 1: QPIP = 1 386 cycles = 2.5 µs. The measured path is
        // post_send + post_recv + the completing poll.
        let total = qpip_post_cycles() * 2 + QPIP_POLL_HIT_CYCLES;
        assert_eq!(total, 1_386);
        let d = host_clock().cycles_to_duration(Cycles(total));
        assert!((d.as_micros_f64() - 2.52).abs() < 0.01);
    }

    #[test]
    fn nic_stage_costs_match_table2_tx_data() {
        // Table 2, data send column, in µs at 133 MHz.
        let us = |c: u64| c as f64 / NIC_CLOCK_MHZ as f64;
        assert!((us(NIC_STAGE_DOORBELL_CYCLES) - 1.0).abs() < 0.01);
        assert!((us(NIC_STAGE_SCHEDULE_CYCLES) - 2.0).abs() < 0.01);
        assert!((us(NIC_STAGE_GET_WR_CYCLES) - 5.5).abs() < 0.01);
        assert!((us(NIC_STAGE_GET_DATA_CYCLES) - 4.5).abs() < 0.01);
        assert!((us(NIC_STAGE_BUILD_TCP_CYCLES) - 5.0).abs() < 0.01);
        assert!((us(NIC_STAGE_BUILD_IP_CYCLES) - 1.0).abs() < 0.01);
        assert!((us(NIC_STAGE_MEDIA_XMT_CYCLES) - 1.0).abs() < 0.01);
        assert!((us(NIC_STAGE_UPDATE_TX_CYCLES) - 1.5).abs() < 0.01);
    }

    #[test]
    fn nic_stage_costs_match_table3_rx() {
        let us = |c: u64| c as f64 / NIC_CLOCK_MHZ as f64;
        assert!((us(NIC_STAGE_MEDIA_RCV_CYCLES) - 1.0).abs() < 0.01);
        assert!((us(NIC_STAGE_IP_PARSE_CYCLES) - 1.5).abs() < 0.01);
        assert!((us(NIC_STAGE_TCP_PARSE_CYCLES) - 7.0).abs() < 0.01);
        // ACK parse = base + RTT-estimator soft multiplies ≈ 14 µs.
        let ack = NIC_STAGE_TCP_PARSE_CYCLES + NIC_RTT_UPDATE_MULS * NIC_SOFT_MUL_CYCLES;
        assert!((us(ack) - 14.0).abs() < 0.05, "{}", us(ack));
        assert!((us(NIC_STAGE_PUT_DATA_CYCLES) - 4.5).abs() < 0.01);
        assert!((us(NIC_STAGE_UPDATE_RX_CYCLES) - 1.5).abs() < 0.01);
        assert!((us(NIC_STAGE_UPDATE_ACK_CYCLES) - 9.0).abs() < 0.01);
    }

    #[test]
    fn firmware_checksum_limits_throughput_near_paper() {
        // 16 KB at 5 cycles/byte on 133 MHz ≈ 616 µs per segment ⇒ the
        // firmware-checksum configuration lands in the mid-20s MB/s
        // (§4.2.1 reports 26.4 MB/s).
        let seg = 16_384u64;
        let csum_s = (seg * NIC_FW_CSUM_CYCLES_PER_BYTE) as f64 / (NIC_CLOCK_MHZ as f64 * 1e6);
        let mbps = seg as f64 / csum_s / 1e6;
        assert!((20.0..30.0).contains(&mbps), "{mbps}");
    }

    #[test]
    fn pci_is_266_mbytes_per_sec() {
        // 64-bit × 33 MHz
        assert_eq!(PCI_BYTES_PER_SEC, 8 * 33_250_000 * 1000 / 1000);
    }
}
