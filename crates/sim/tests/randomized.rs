//! Randomized tests for the simulation kernel's ordering guarantees —
//! the foundation every result in this workspace rests on. Cases come
//! from a seeded [`SplitMix64`] stream so every failure reproduces.

use qpip_sim::kernel::Simulator;
use qpip_sim::resource::{BandwidthPipe, SerialResource};
use qpip_sim::rng::SplitMix64;
use qpip_sim::time::{SimDuration, SimTime};

const CASES: usize = 128;

/// Events pop in nondecreasing time order regardless of insertion
/// order, and equal-time events pop in insertion order.
#[test]
fn events_pop_sorted_with_stable_ties() {
    let mut r = SplitMix64::new(0x51e_0001);
    for _ in 0..CASES {
        let times: Vec<u64> = (0..r.range_usize(1, 200)).map(|_| r.below(1_000)).collect();
        let mut sim = Simulator::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((t, idx)) = sim.next() {
            count += 1;
            if let Some((lt, lidx)) = last {
                assert!(t >= lt, "time went backwards");
                if t == lt {
                    assert!(idx > lidx, "tie broke out of insertion order");
                }
            }
            assert_eq!(t, SimTime::from_nanos(times[idx]));
            last = Some((t, idx));
        }
        assert_eq!(count, times.len());
    }
}

/// Cancelling any subset delivers exactly the complement, in order.
#[test]
fn cancellation_delivers_exact_complement() {
    let mut r = SplitMix64::new(0x51e_0002);
    for _ in 0..CASES {
        let times: Vec<u64> = (0..r.range_usize(1, 100)).map(|_| r.below(1_000)).collect();
        let cancel_mask: Vec<bool> = (0..r.range_usize(1, 100)).map(|_| r.flip()).collect();
        let mut sim = Simulator::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids {
            let cancelled = cancel_mask.get(i).copied().unwrap_or(false);
            if cancelled {
                assert!(sim.cancel(id));
            } else {
                expect.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, idx)) = sim.next() {
            got.push(idx);
        }
        expect.sort_by_key(|&i| (times[i], i));
        assert_eq!(got, expect);
    }
}

/// A serial resource never overlaps jobs: total busy time equals
/// the sum of work, and completion times are strictly ordered by
/// submission when requests arrive at the same instant.
#[test]
fn serial_resource_never_overlaps() {
    let mut r = SplitMix64::new(0x51e_0003);
    for _ in 0..CASES {
        let jobs: Vec<(u64, u64)> =
            (0..r.range_usize(1, 100)).map(|_| (r.below(500), r.range(1, 200))).collect();
        let mut res = SerialResource::new("prop");
        let mut total = SimDuration::ZERO;
        let mut last_finish = SimTime::ZERO;
        let mut prev_arrival = 0u64;
        for (gap, work) in jobs {
            prev_arrival += gap;
            let arrive = SimTime::from_nanos(prev_arrival);
            let work_d = SimDuration::from_nanos(work);
            let finish = res.acquire(arrive, work_d);
            // starts no earlier than both the arrival and the prior job
            assert!(finish >= arrive + work_d);
            assert!(finish >= last_finish + work_d);
            last_finish = finish;
            total += work_d;
        }
        assert_eq!(res.busy_time(), total);
        // utilization can never exceed 1 over the busy horizon
        let u = res.utilization(last_finish);
        assert!(u <= 1.0 + 1e-9, "{u}");
    }
}

/// A bandwidth pipe's completion times imply a rate that never
/// exceeds its configured capacity.
#[test]
fn pipe_rate_never_exceeds_capacity() {
    let mut r = SplitMix64::new(0x51e_0004);
    for _ in 0..CASES {
        let transfers: Vec<u64> = (0..r.range_usize(1, 50)).map(|_| r.range(1, 100_000)).collect();
        let rate = r.range(1_000_000, 1_000_000_000);
        let mut pipe = BandwidthPipe::new("prop", rate);
        let mut last = SimTime::ZERO;
        for bytes in &transfers {
            last = pipe.transfer(SimTime::ZERO, *bytes);
        }
        let total: u64 = transfers.iter().sum();
        let implied = total as f64 / last.as_secs_f64();
        assert!(implied <= rate as f64 * 1.001, "implied {implied} > {rate}");
        assert_eq!(pipe.bytes_moved(), total);
    }
}
