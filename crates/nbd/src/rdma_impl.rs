//! NBD over QPIP with RDMA reads: the storage idiom the iWARP lineage
//! standardized (NFS/RDMA, iSER) on exactly this kind of transport.
//!
//! The client registers its block buffer as a memory region and sends
//! the rkey with each read request; the server's NIC RDMA-Writes the
//! data straight into the client's buffer — no receive WRs consumed on
//! the data path, no per-message completions — and a single
//! send-receive reply signals completion. Writes use the ordinary
//! send-receive path (the server must see them to commit).

use qpip::world::QpipWorld;
use qpip::{CompletionKind, MrKey, NicConfig, NodeIdx, RdmaWriteWr, RecvWr, SendWr, ServiceType};
use qpip_host::WorkClass;
use qpip_netstack::types::Endpoint;
use qpip_sim::params;
use qpip_sim::time::SimTime;

use crate::disk::ServerDisk;
use crate::proto::{NbdOp, NbdRequest};
use crate::qpip_impl::NbdConfig;
use crate::result::PhaseResult;

/// An NBD read request extended with the client's region key: the
/// "where to put it" that turns the reply into a one-sided write.
fn encode_read_request(req: &NbdRequest, rkey: MrKey, buf_offset: u64) -> Vec<u8> {
    let mut b = req.encode();
    b.extend_from_slice(&rkey.0.to_be_bytes());
    b.extend_from_slice(&buf_offset.to_be_bytes());
    b
}

fn parse_read_request(data: &[u8]) -> (NbdRequest, MrKey, u64) {
    let req = NbdRequest::parse(data).expect("request header");
    let tail = &data[crate::proto::REQUEST_LEN..];
    let rkey = MrKey(u32::from_be_bytes(tail[..4].try_into().expect("sized")));
    let off = u64::from_be_bytes(tail[4..12].try_into().expect("sized"));
    (req, rkey, off)
}

/// Runs the sequential-read phase of the Figure 7 benchmark with RDMA
/// data placement, for comparison with the send-receive NBD.
pub fn run_read(cfg: NbdConfig) -> PhaseResult {
    let nic = NicConfig { mtu: params::GM_MTU, rdma_framing: true, ..NicConfig::paper_default() };
    let mut w = QpipWorld::new(qpip_fabric::FabricConfig {
        mtu: params::GM_MTU,
        ..qpip_fabric::FabricConfig::myrinet()
    });
    let client = w.add_node(nic.clone());
    let server = w.add_node(nic.clone());
    let cqc = w.create_cq(client);
    let cqs = w.create_cq(server);
    let qc = w.create_qp(client, ServiceType::ReliableTcp, cqc, cqc).unwrap();
    let qs = w.create_qp(server, ServiceType::ReliableTcp, cqs, cqs).unwrap();
    let data_msg = qpip_netstack::types::NetConfig::qpip(nic.mtu).max_tcp_payload()
        - qpip_nic::rdma::RDMA_FRAME_LEN;
    let mut recv_seq = 0u64;
    let post = |w: &mut QpipWorld, node: NodeIdx, qp: qpip::QpId, seq: &mut u64| {
        *seq += 1;
        w.post_recv(node, qp, RecvWr { wr_id: *seq, capacity: 16 * 1024 }).unwrap();
    };
    for _ in 0..32 {
        post(&mut w, server, qs, &mut recv_seq);
        post(&mut w, client, qc, &mut recv_seq);
    }
    w.tcp_listen(server, 10809, qs).unwrap();
    let dst = Endpoint::new(w.addr(server), 10809);
    w.tcp_connect(client, qc, 40000, dst).unwrap();
    w.wait_matching(client, cqc, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(server, cqs, |c| c.kind == CompletionKind::ConnectionEstablished);

    // the client's block-buffer arena, registered once
    let arena = w.register_mr(client, cfg.block * cfg.queue_depth as usize);
    let mut disk = ServerDisk::new();

    let nblocks = cfg.total_bytes / cfg.block as u64;
    let t0 = w.app_time(client);
    let busy0 = w.cpu(client).busy_time();
    let fs0 = w.cpu(client).cycles(WorkClass::App);
    let mut sent = 0u64;
    let mut done = 0u64;
    let mut t_end = SimTime::ZERO;
    while done < nblocks {
        while sent < nblocks && sent - done < cfg.queue_depth {
            w.charge_app(client, params::NBD_FS_PER_REQUEST_CYCLES);
            let req = NbdRequest {
                op: NbdOp::Read,
                handle: sent,
                offset: sent * cfg.block as u64,
                len: cfg.block as u32,
            };
            let slot = (sent % cfg.queue_depth) * cfg.block as u64;
            w.post_send(
                client,
                qc,
                SendWr { wr_id: sent, payload: encode_read_request(&req, arena, slot), dst: None },
            )
            .unwrap();
            sent += 1;
        }
        // server: answer each request with RDMA writes + a tiny reply
        if let Some(c) = w.try_wait(server, cqs) {
            if let CompletionKind::Recv { data, .. } = c.kind {
                post(&mut w, server, qs, &mut recv_seq);
                let (req, rkey, slot) = parse_read_request(&data);
                let now = w.app_time(server);
                disk.read(now, req.len as usize);
                w.charge_app(
                    server,
                    params::NBD_SERVER_PER_REQUEST_CYCLES
                        + (u64::from(req.len) * params::HOST_COPY_CYCLES_PER_BYTE_X100) / 100,
                );
                let mut remaining = req.len as usize;
                let mut off = slot;
                while remaining > 0 {
                    let n = remaining.min(data_msg);
                    remaining -= n;
                    w.post_rdma_write(
                        server,
                        qs,
                        RdmaWriteWr {
                            wr_id: req.handle,
                            data: vec![0xd1; n],
                            rkey,
                            remote_offset: off,
                        },
                    )
                    .unwrap();
                    off += n as u64;
                }
                // completion notification rides an ordinary send; TCP
                // ordering guarantees the RDMA data landed first
                w.post_send(
                    server,
                    qs,
                    SendWr {
                        wr_id: req.handle,
                        payload: req.handle.to_be_bytes().to_vec(),
                        dst: None,
                    },
                )
                .unwrap();
            }
            continue;
        }
        // client: ONE completion per block, regardless of block size
        let c = w.wait(client, cqc);
        if matches!(c.kind, CompletionKind::Recv { .. }) {
            post(&mut w, client, qc, &mut recv_seq);
            w.charge_app(client, (cfg.block as u64 * params::NBD_FS_CYCLES_PER_BYTE_X100) / 100);
            done += 1;
            t_end = w.app_time(client);
        }
    }
    let elapsed = t_end.duration_since(t0).as_secs_f64();
    let busy = (w.cpu(client).busy_time() - busy0).as_secs_f64();
    let fs = w.cpu(client).cycles(WorkClass::App) - fs0;
    let mb = (nblocks * cfg.block as u64) as f64 / 1e6;
    PhaseResult {
        mbytes_per_sec: mb / elapsed,
        client_cpu: busy / elapsed,
        mb_per_cpu_sec: mb / busy,
        fs_fraction: (fs as f64 / params::HOST_CLOCK_MHZ as f64 / 1e6) / elapsed,
        elapsed_s: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_read_phase_moves_data_with_one_completion_per_block() {
        let cfg = NbdConfig { total_bytes: 8 * 1024 * 1024, block: 64 * 1024, queue_depth: 4 };
        let r = run_read(cfg);
        assert!(r.mbytes_per_sec > 20.0, "{r:?}");
        assert!(r.client_cpu < 0.8, "{r:?}");
    }

    #[test]
    fn rdma_read_reduces_client_verb_work_vs_send_receive() {
        let cfg = NbdConfig { total_bytes: 8 * 1024 * 1024, block: 64 * 1024, queue_depth: 4 };
        let rdma = run_read(cfg);
        let sr = crate::qpip_impl::run(cfg).read;
        // same data volume; the RDMA client takes ~1/8 the completions
        // (one per 64 KB block instead of one per 8.9 KB message), so its
        // CPU effectiveness is at least as good
        assert!(
            rdma.mb_per_cpu_sec >= sr.mb_per_cpu_sec * 0.95,
            "rdma {rdma:?} vs send-recv {sr:?}"
        );
    }
}
