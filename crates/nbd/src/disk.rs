//! The server-side storage model: a page-cached file with concurrent
//! writeback to a backing disk.
//!
//! §4.2.3's benchmark writes and reads a 409 MB file; the server is a
//! user-level process on a 1 GB machine, so the file stays cache-warm —
//! reads are memory-speed (CPU-charged copies), writes land in the cache
//! and trickle to the disk at the writeback rate, and the client's
//! closing `sync` waits for the writeback tail.

use qpip_sim::params;
use qpip_sim::resource::BandwidthPipe;
use qpip_sim::time::SimTime;

/// The emulated network-attached disk behind the NBD server.
///
/// Timing-only by default (benchmarks move hundreds of megabytes);
/// [`ServerDisk::with_content`] additionally retains the written bytes
/// so integrity tests can read them back.
///
/// # Examples
///
/// ```
/// use qpip_nbd::disk::ServerDisk;
/// use qpip_sim::time::SimTime;
///
/// let mut disk = ServerDisk::with_content();
/// disk.write_data(SimTime::ZERO, 4096, b"block");
/// assert_eq!(disk.read_data(SimTime::ZERO, 4096, 5), b"block");
/// assert!(disk.sync_done() > SimTime::ZERO); // writeback in flight
/// ```
#[derive(Debug)]
pub struct ServerDisk {
    writeback: BandwidthPipe,
    bytes_written: u64,
    bytes_read: u64,
    /// Written extents by offset, kept only in content mode.
    content: Option<std::collections::BTreeMap<u64, Vec<u8>>>,
}

impl ServerDisk {
    /// Creates a timing-only disk with the default writeback rate.
    pub fn new() -> Self {
        ServerDisk {
            writeback: BandwidthPipe::new("nbd-disk", params::NBD_DISK_BYTES_PER_SEC),
            bytes_written: 0,
            bytes_read: 0,
            content: None,
        }
    }

    /// Creates a disk that also stores written bytes (integrity tests).
    pub fn with_content() -> Self {
        ServerDisk { content: Some(std::collections::BTreeMap::new()), ..ServerDisk::new() }
    }

    /// Accepts a write of `len` bytes at `now`: it is durable in the
    /// page cache immediately (the reply can go out); writeback proceeds
    /// in the background.
    pub fn write(&mut self, now: SimTime, len: usize) {
        self.bytes_written += len as u64;
        self.writeback.transfer(now, len as u64);
    }

    /// Accepts a write and stores its bytes (content mode).
    pub fn write_data(&mut self, now: SimTime, offset: u64, data: &[u8]) {
        self.write(now, data.len());
        if let Some(map) = &mut self.content {
            map.insert(offset, data.to_vec());
        }
    }

    /// Serves a read of `len` bytes: cache-warm, no media time.
    pub fn read(&mut self, _now: SimTime, len: usize) {
        self.bytes_read += len as u64;
    }

    /// Serves a read and returns the stored bytes (content mode;
    /// unwritten ranges read as zeros). Only whole previously-written
    /// extents are stitched; partial overlaps read as zeros, which is
    /// all the block-aligned NBD workloads need.
    pub fn read_data(&mut self, now: SimTime, offset: u64, len: usize) -> Vec<u8> {
        self.read(now, len);
        let mut out = vec![0u8; len];
        if let Some(map) = &self.content {
            for (&off, data) in map.range(..offset + len as u64) {
                let end = off + data.len() as u64;
                if end <= offset {
                    continue;
                }
                let copy_start = off.max(offset);
                let copy_end = end.min(offset + len as u64);
                let src = &data[(copy_start - off) as usize..(copy_end - off) as usize];
                out[(copy_start - offset) as usize..(copy_end - offset) as usize]
                    .copy_from_slice(src);
            }
        }
        out
    }

    /// When all accepted writes are on the media (what `sync` waits for).
    pub fn sync_done(&self) -> SimTime {
        self.writeback.next_free()
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl Default for ServerDisk {
    fn default() -> Self {
        ServerDisk::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpip_sim::time::SimDuration;

    #[test]
    fn writeback_trails_writes_at_disk_rate() {
        let mut d = ServerDisk::new();
        d.write(SimTime::ZERO, 10_000_000); // 10 MB
                                            // 10 MB at 100 MB/s = 100 ms
        assert_eq!(d.sync_done(), SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(d.bytes_written(), 10_000_000);
    }

    #[test]
    fn concurrent_writeback_overlaps_with_arrivals() {
        let mut d = ServerDisk::new();
        d.write(SimTime::ZERO, 5_000_000);
        // second write arrives while the first is still flushing
        d.write(SimTime::from_millis(10), 5_000_000);
        assert_eq!(d.sync_done(), SimTime::from_millis(100));
    }

    #[test]
    fn reads_cost_no_media_time() {
        let mut d = ServerDisk::new();
        d.read(SimTime::ZERO, 1_000_000);
        assert_eq!(d.sync_done(), SimTime::ZERO);
        assert_eq!(d.bytes_read(), 1_000_000);
    }

    #[test]
    fn content_mode_stores_and_returns_bytes() {
        let mut d = ServerDisk::with_content();
        d.write_data(SimTime::ZERO, 0, b"hello");
        d.write_data(SimTime::ZERO, 100, b"world");
        assert_eq!(d.read_data(SimTime::ZERO, 0, 5), b"hello");
        assert_eq!(d.read_data(SimTime::ZERO, 100, 5), b"world");
        // unwritten gap reads as zeros
        assert_eq!(d.read_data(SimTime::ZERO, 50, 4), vec![0; 4]);
        // a read spanning written and unwritten ranges stitches both
        let span = d.read_data(SimTime::ZERO, 98, 9);
        assert_eq!(&span[2..7], b"world");
        assert_eq!(&span[..2], &[0, 0]);
    }

    #[test]
    fn timing_only_mode_reads_zeros() {
        let mut d = ServerDisk::new();
        d.write_data(SimTime::ZERO, 0, b"dropped");
        assert_eq!(d.read_data(SimTime::ZERO, 0, 7), vec![0; 7]);
        assert_eq!(d.bytes_written(), 7, "timing still accounted");
    }
}
