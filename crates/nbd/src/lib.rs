//! # qpip-nbd — the Network Block Device over sockets and over QPIP
//!
//! The storage application of §4.2.3 (Figures 5–7): a client-side block
//! driver forwards block I/O to a server emulating a network-attached
//! disk. Two transports are implemented:
//!
//! * [`socket_impl`] — the conventional layering (Figure 5): NBD above
//!   a kernel socket, host TCP/IP at both ends, over GigE or Myrinet/GM.
//! * [`qpip_impl`] — the QPIP layering (Figure 6): the driver posts
//!   block requests directly onto a QP; no host protocol stack anywhere.
//! * [`rdma_impl`] — an extension: reads served by one-sided RDMA
//!   writes into the client's registered buffer (the idiom NFS/RDMA and
//!   iSER later built on iWARP, of which QPIP is a precursor).
//! * [`xport_impl`] — the same QP layering on **live sockets**: the
//!   identical wire protocol over `qpip-xport` nodes, so the block
//!   driver written against the simulated world runs against real I/O.
//!
//! The benchmark is the paper's: a 409 MB sequential write (flushed with
//! `sync`) and sequential read, reporting throughput and CPU
//! effectiveness (MB per CPU-second).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod proto;
pub mod qpip_impl;
pub mod rdma_impl;
pub mod result;
pub mod socket_impl;
pub mod xport_impl;

pub use qpip_impl::NbdConfig;
pub use result::{NbdResult, PhaseResult};
pub use xport_impl::{NbdXportError, XportNbdClient, XportNbdServer};
