//! NBD over QPIP (Figure 6): the client-side block driver posts work
//! requests straight onto a QP — no host TCP/IP at either end — and the
//! server runs its disk loop off receive completions.
//!
//! "Integrating the QP interface into NBD was straightforward and proved
//! simpler than the socket implementation by eliminating multiple socket
//! calls and OS specific wrappers" (§4.2.3). Block requests are carried
//! as one header message plus MTU-sized data messages (9000-byte MTU,
//! per the paper's NBD configuration).

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, NodeIdx, RecvWr, SendWr, ServiceType};
use qpip_host::WorkClass;
use qpip_netstack::types::Endpoint;
use qpip_sim::params;
use qpip_sim::time::SimTime;

use crate::disk::ServerDisk;
use crate::proto::{NbdOp, NbdRequest};
use crate::result::{NbdResult, PhaseResult};

/// Benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct NbdConfig {
    /// Total file bytes (the paper uses 409 MB).
    pub total_bytes: u64,
    /// Logical block size per request.
    pub block: usize,
    /// Outstanding block requests (block-layer queue depth).
    pub queue_depth: u64,
}

impl Default for NbdConfig {
    fn default() -> Self {
        NbdConfig { total_bytes: params::NBD_TRANSFER_BYTES, block: 64 * 1024, queue_depth: 4 }
    }
}

struct Bench {
    w: QpipWorld,
    client: NodeIdx,
    server: NodeIdx,
    cqc: qpip::CqId,
    cqs: qpip::CqId,
    qc: qpip::QpId,
    qs: qpip::QpId,
    data_msg: usize,
    disk: ServerDisk,
    recv_seq: u64,
}

impl Bench {
    fn new() -> Bench {
        // the paper ran the QPIP NBD at a 9000-byte MTU (§4.2.3)
        let nic = NicConfig { mtu: params::GM_MTU, ..NicConfig::paper_default() };
        let mut w = QpipWorld::new(qpip_fabric::FabricConfig {
            mtu: params::GM_MTU,
            ..qpip_fabric::FabricConfig::myrinet()
        });
        let client = w.add_node(nic.clone());
        let server = w.add_node(nic.clone());
        let cqc = w.create_cq(client);
        let cqs = w.create_cq(server);
        let qc = w.create_qp(client, ServiceType::ReliableTcp, cqc, cqc).unwrap();
        let qs = w.create_qp(server, ServiceType::ReliableTcp, cqs, cqs).unwrap();
        let data_msg = qpip_netstack::types::NetConfig::qpip(nic.mtu).max_tcp_payload();
        let mut b = Bench {
            w,
            client,
            server,
            cqc,
            cqs,
            qc,
            qs,
            data_msg,
            disk: ServerDisk::new(),
            recv_seq: 0,
        };
        // both sides pre-post generous message buffers
        for _ in 0..64 {
            b.post_recv(b.server, b.qs);
            b.post_recv(b.client, b.qc);
        }
        b.w.tcp_listen(b.server, 10809, qs).unwrap();
        let remote = Endpoint::new(b.w.addr(b.server), 10809);
        b.w.tcp_connect(b.client, qc, 40000, remote).unwrap();
        b.w.wait_matching(b.client, cqc, |c| c.kind == CompletionKind::ConnectionEstablished);
        b.w.wait_matching(b.server, cqs, |c| c.kind == CompletionKind::ConnectionEstablished);
        b
    }

    fn post_recv(&mut self, node: NodeIdx, qp: qpip::QpId) {
        self.recv_seq += 1;
        let wr = RecvWr { wr_id: self.recv_seq, capacity: self.data_msg };
        self.w.post_recv(node, qp, wr).unwrap();
    }

    fn msgs_per_block(&self, block: usize) -> u64 {
        block.div_ceil(self.data_msg) as u64
    }

    /// Client-side filesystem work for one block (ext2 + block layer).
    fn charge_fs(&mut self, node: NodeIdx, block: usize) {
        let cycles = params::NBD_FS_PER_REQUEST_CYCLES
            + (block as u64 * params::NBD_FS_CYCLES_PER_BYTE_X100) / 100;
        self.w.charge_app(node, cycles);
    }

    fn phase_result(
        &self,
        bytes: u64,
        t0: SimTime,
        t1: SimTime,
        busy0: qpip_sim::time::SimDuration,
        fs_cycles: u64,
    ) -> PhaseResult {
        let elapsed = t1.duration_since(t0).as_secs_f64();
        let busy = (self.w.cpu(self.client).busy_time() - busy0).as_secs_f64();
        let mb = bytes as f64 / 1e6;
        PhaseResult {
            mbytes_per_sec: mb / elapsed,
            client_cpu: busy / elapsed,
            mb_per_cpu_sec: mb / busy,
            fs_fraction: (fs_cycles as f64 / params::HOST_CLOCK_MHZ as f64 / 1e6) / elapsed,
            elapsed_s: elapsed,
        }
    }

    /// Sequential write phase: client streams blocks, server commits to
    /// the page cache/disk and acknowledges; ends with `sync`.
    fn run_write(&mut self, cfg: NbdConfig) -> PhaseResult {
        let nblocks = cfg.total_bytes / cfg.block as u64;
        let msgs = self.msgs_per_block(cfg.block);
        let t0 = self.w.app_time(self.client);
        let busy0 = self.w.cpu(self.client).busy_time();
        let fs0 = self.w.cpu(self.client).cycles(WorkClass::App);
        let mut sent = 0u64;
        let mut done = 0u64;
        let mut srv_msgs_pending = 0u64; // messages of the in-progress block
        while done < nblocks {
            while sent < nblocks && sent - done < cfg.queue_depth {
                self.charge_fs(self.client, cfg.block);
                let req = NbdRequest {
                    op: NbdOp::Write,
                    handle: sent,
                    offset: sent * cfg.block as u64,
                    len: cfg.block as u32,
                };
                self.w
                    .post_send(
                        self.client,
                        self.qc,
                        SendWr { wr_id: sent * 100, payload: req.encode(), dst: None },
                    )
                    .unwrap();
                let mut left = cfg.block;
                for m in 0..msgs {
                    let n = left.min(self.data_msg);
                    left -= n;
                    self.w
                        .post_send(
                            self.client,
                            self.qc,
                            SendWr { wr_id: sent * 100 + 1 + m, payload: vec![0x5a; n], dst: None },
                        )
                        .unwrap();
                }
                sent += 1;
            }
            // server consumes one message at a time; a block is committed
            // when its header + all data messages arrived
            let c = self.w.wait(self.server, self.cqs);
            if matches!(c.kind, CompletionKind::Recv { .. }) {
                self.post_recv(self.server, self.qs);
                srv_msgs_pending += 1;
                if srv_msgs_pending == 1 + msgs {
                    srv_msgs_pending = 0;
                    self.w.charge_app(
                        self.server,
                        params::NBD_SERVER_PER_REQUEST_CYCLES
                            + (cfg.block as u64 * params::HOST_COPY_CYCLES_PER_BYTE_X100) / 100,
                    );
                    let now = self.w.app_time(self.server);
                    self.disk.write(now, cfg.block);
                    self.w
                        .post_send(
                            self.server,
                            self.qs,
                            SendWr {
                                wr_id: done,
                                payload: crate::proto::NbdReply { error: 0, handle: done }.encode(),
                                dst: None,
                            },
                        )
                        .unwrap();
                }
            }
            // client reaps replies without spinning
            while let Some(c) = self.w.try_wait(self.client, self.cqc) {
                if matches!(c.kind, CompletionKind::Recv { .. }) {
                    self.post_recv(self.client, self.qc);
                    done += 1;
                }
            }
        }
        // sync: wait for the server's writeback tail
        let sync_done = self.disk.sync_done();
        let t1 = self.w.app_time(self.client).max(sync_done);
        let fs = self.w.cpu(self.client).cycles(WorkClass::App) - fs0;
        self.phase_result(nblocks * cfg.block as u64, t0, t1, busy0, fs)
    }

    /// Sequential read phase: cache-warm server streams blocks back.
    fn run_read(&mut self, cfg: NbdConfig) -> PhaseResult {
        let nblocks = cfg.total_bytes / cfg.block as u64;
        let msgs = self.msgs_per_block(cfg.block);
        let t0 = self.w.app_time(self.client);
        let busy0 = self.w.cpu(self.client).busy_time();
        let fs0 = self.w.cpu(self.client).cycles(WorkClass::App);
        let mut sent = 0u64;
        let mut done = 0u64;
        let mut cli_msgs_pending = 0u64;
        while done < nblocks {
            while sent < nblocks && sent - done < cfg.queue_depth {
                // the block layer submits the read request
                self.w.charge_app(self.client, params::NBD_FS_PER_REQUEST_CYCLES);
                let req = NbdRequest {
                    op: NbdOp::Read,
                    handle: sent,
                    offset: sent * cfg.block as u64,
                    len: cfg.block as u32,
                };
                self.w
                    .post_send(
                        self.client,
                        self.qc,
                        SendWr { wr_id: sent, payload: req.encode(), dst: None },
                    )
                    .unwrap();
                sent += 1;
            }
            // server answers each request with the data messages
            if let Some(c) = self.w.try_wait(self.server, self.cqs) {
                if let CompletionKind::Recv { data, .. } = c.kind {
                    self.post_recv(self.server, self.qs);
                    let req = NbdRequest::parse(&data).expect("well-formed request");
                    assert_eq!(req.op, NbdOp::Read);
                    let now = self.w.app_time(self.server);
                    self.disk.read(now, req.len as usize);
                    self.w.charge_app(
                        self.server,
                        params::NBD_SERVER_PER_REQUEST_CYCLES
                            + (u64::from(req.len) * params::HOST_COPY_CYCLES_PER_BYTE_X100) / 100,
                    );
                    let mut left = req.len as usize;
                    for m in 0..msgs {
                        let n = left.min(self.data_msg);
                        left -= n;
                        self.w
                            .post_send(
                                self.server,
                                self.qs,
                                SendWr {
                                    wr_id: req.handle * 100 + m,
                                    payload: vec![0xc3; n],
                                    dst: None,
                                },
                            )
                            .unwrap();
                    }
                }
                continue;
            }
            // client collects a whole block, then the fs layer processes it
            let c = self.w.wait(self.client, self.cqc);
            if matches!(c.kind, CompletionKind::Recv { .. }) {
                self.post_recv(self.client, self.qc);
                cli_msgs_pending += 1;
                if cli_msgs_pending == msgs {
                    cli_msgs_pending = 0;
                    self.charge_fs(self.client, cfg.block);
                    done += 1;
                }
            }
        }
        let t1 = self.w.app_time(self.client);
        let fs = self.w.cpu(self.client).cycles(WorkClass::App) - fs0;
        self.phase_result(nblocks * cfg.block as u64, t0, t1, busy0, fs)
    }
}

/// Runs the Figure 7 benchmark over QPIP: sequential write (+sync),
/// then sequential read of the same file.
pub fn run(cfg: NbdConfig) -> NbdResult {
    let mut b = Bench::new();
    let write = b.run_write(cfg);
    let read = b.run_read(cfg);
    NbdResult { write, read }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NbdConfig {
        NbdConfig { total_bytes: 8 * 1024 * 1024, block: 64 * 1024, queue_depth: 4 }
    }

    #[test]
    fn qpip_nbd_moves_data_both_ways() {
        let r = run(small());
        assert!(r.write.mbytes_per_sec > 10.0, "{r:?}");
        assert!(r.read.mbytes_per_sec > 10.0, "{r:?}");
        assert!(r.read.mbytes_per_sec >= r.write.mbytes_per_sec * 0.8, "{r:?}");
    }

    #[test]
    fn qpip_nbd_cpu_is_mostly_filesystem() {
        // §4.2.3: "For QPIP, none of this is associated with the TCP/IP
        // stack as this is entirely within the adapter."
        let r = run(small());
        assert!(r.write.fs_fraction > 0.5 * r.write.client_cpu, "{r:?}");
        // almost all of the client's CPU is ext2/block-layer work, not
        // protocol processing (which lives in the NIC)
        assert!(r.read.fs_fraction > 0.9 * r.read.client_cpu, "{r:?}");
    }
}
