//! NBD over sockets (Figure 5): the conventional configuration — client
//! block driver above a kernel socket, user-level server, TCP/IP on the
//! host at both ends.

use qpip::baseline::SocketWorld;
use qpip::NodeIdx;
use qpip_host::stack::StackConfig;
use qpip_host::{SockId, WorkClass};
use qpip_netstack::types::Endpoint;
use qpip_sim::params;
use qpip_sim::time::SimTime;

use crate::disk::ServerDisk;
use crate::proto::{NbdOp, NbdReply, NbdRequest, REPLY_LEN, REQUEST_LEN};
use crate::qpip_impl::NbdConfig;
use crate::result::{NbdResult, PhaseResult};

/// Which host baseline carries the NBD traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// IP over Gigabit Ethernet.
    GigE,
    /// IP over Myrinet (GM).
    GmMyrinet,
}

struct Bench {
    w: SocketWorld,
    client: NodeIdx,
    server: NodeIdx,
    cs: SockId,
    ss: SockId,
    disk: ServerDisk,
}

impl Bench {
    fn new(transport: Transport) -> Bench {
        let (mut w, cfg) = match transport {
            Transport::GigE => (SocketWorld::gige(), StackConfig::gige()),
            Transport::GmMyrinet => (SocketWorld::gm_myrinet(), StackConfig::gm_myrinet()),
        };
        let client = w.add_node(cfg.clone());
        let server = w.add_node(cfg);
        let ls = w.tcp_socket(server);
        w.listen(server, ls, 10809).unwrap();
        let cs = w.tcp_socket(client);
        let remote = Endpoint::new(w.addr(server), 10809);
        w.connect_blocking(client, cs, 40000, remote).unwrap();
        let ss = w.accept_blocking(server, ls);
        Bench { w, client, server, cs, ss, disk: ServerDisk::new() }
    }

    fn charge_fs(&mut self, block: usize) {
        let cycles = params::NBD_FS_PER_REQUEST_CYCLES
            + (block as u64 * params::NBD_FS_CYCLES_PER_BYTE_X100) / 100;
        self.w.charge_app(self.client, cycles);
    }

    fn phase_result(
        &self,
        bytes: u64,
        t0: SimTime,
        t1: SimTime,
        busy0: qpip_sim::time::SimDuration,
        fs_cycles: u64,
    ) -> PhaseResult {
        let elapsed = t1.duration_since(t0).as_secs_f64();
        let busy = (self.w.cpu(self.client).busy_time() - busy0).as_secs_f64();
        let mb = bytes as f64 / 1e6;
        PhaseResult {
            mbytes_per_sec: mb / elapsed,
            client_cpu: busy / elapsed,
            mb_per_cpu_sec: mb / busy,
            fs_fraction: (fs_cycles as f64 / params::HOST_CLOCK_MHZ as f64 / 1e6) / elapsed,
            elapsed_s: elapsed,
        }
    }

    /// Sequential write phase over the socket pair.
    fn run_write(&mut self, cfg: NbdConfig) -> PhaseResult {
        let nblocks = cfg.total_bytes / cfg.block as u64;
        let t0 = self.w.app_time(self.client);
        let busy0 = self.w.cpu(self.client).busy_time();
        let fs0 = self.w.cpu(self.client).cycles(WorkClass::App);
        let mut sent = 0u64; // blocks fully handed to the socket
        let mut done = 0u64; // replies received
                             // server-side in-progress request state
        let mut srv_need = REQUEST_LEN; // bytes still needed for this step
        let mut srv_have: Vec<u8> = Vec::new();
        let mut srv_reading_data = false;
        let mut srv_data_left = 0usize;
        // client partial-send state
        let mut pending: Option<Vec<u8>> = None;
        while done < nblocks {
            let mut progress = false;
            // client issues requests up to the queue depth
            if pending.is_none() && sent < nblocks && sent - done < cfg.queue_depth {
                self.charge_fs(cfg.block);
                let req = NbdRequest {
                    op: NbdOp::Write,
                    handle: sent,
                    offset: sent * cfg.block as u64,
                    len: cfg.block as u32,
                };
                let mut msg = req.encode();
                msg.extend(std::iter::repeat_n(0x5au8, cfg.block));
                pending = Some(msg);
                sent += 1;
            }
            if let Some(msg) = pending.as_mut() {
                // the driver writes in ≤16 KB pieces, like the kernel
                // socket path does
                let n = msg.len().min(16 * 1024);
                let chunk = msg[..n].to_vec();
                if self.w.try_send(self.client, self.cs, chunk).expect("send") {
                    msg.drain(..n);
                    if msg.is_empty() {
                        pending = None;
                    }
                    progress = true;
                }
            }
            // server consumes the stream
            let avail = self.w.readable(self.server, self.ss);
            if avail > 0 {
                let want = if srv_reading_data { srv_data_left } else { srv_need - srv_have.len() };
                let data = self.w.recv_available(self.server, self.ss, want);
                if !data.is_empty() {
                    progress = true;
                    if srv_reading_data {
                        srv_data_left -= data.len();
                        if srv_data_left == 0 {
                            // block complete: commit and reply
                            let req = NbdRequest::parse(&srv_have).expect("header");
                            self.w.charge_app(self.server, params::NBD_SERVER_PER_REQUEST_CYCLES);
                            let now = self.w.app_time(self.server);
                            self.disk.write(now, req.len as usize);
                            let reply = NbdReply { error: 0, handle: req.handle }.encode();
                            // replies are small; block until accepted
                            while !self.w.try_send(self.server, self.ss, reply.clone()).unwrap() {
                                assert!(self.w.step(), "nbd write deadlock (reply)");
                            }
                            srv_have.clear();
                            srv_reading_data = false;
                            srv_need = REQUEST_LEN;
                        }
                    } else {
                        srv_have.extend(data);
                        if srv_have.len() == REQUEST_LEN {
                            let req = NbdRequest::parse(&srv_have).expect("header");
                            srv_reading_data = true;
                            srv_data_left = req.len as usize;
                        }
                    }
                }
            }
            // client reaps replies
            while self.w.readable(self.client, self.cs) >= REPLY_LEN {
                let data = self.w.recv_available(self.client, self.cs, REPLY_LEN);
                let _ = NbdReply::parse(&data).expect("reply");
                done += 1;
                progress = true;
            }
            if !progress {
                assert!(self.w.step(), "nbd write deadlocked at {done}/{nblocks}");
            }
        }
        let sync_done = self.disk.sync_done();
        let t1 = self.w.app_time(self.client).max(sync_done);
        let fs = self.w.cpu(self.client).cycles(WorkClass::App) - fs0;
        self.phase_result(nblocks * cfg.block as u64, t0, t1, busy0, fs)
    }

    /// Sequential read phase over the socket pair.
    fn run_read(&mut self, cfg: NbdConfig) -> PhaseResult {
        let nblocks = cfg.total_bytes / cfg.block as u64;
        let t0 = self.w.app_time(self.client);
        let busy0 = self.w.cpu(self.client).busy_time();
        let fs0 = self.w.cpu(self.client).cycles(WorkClass::App);
        let mut sent = 0u64;
        let mut done = 0u64;
        let mut srv_have: Vec<u8> = Vec::new();
        let mut cli_block_left = 0usize; // data bytes outstanding for current reply
        let mut cli_seen_reply = false;
        let mut srv_pending: Option<Vec<u8>> = None;
        while done < nblocks {
            let mut progress = false;
            if sent < nblocks && sent - done < cfg.queue_depth {
                self.w.charge_app(self.client, params::NBD_FS_PER_REQUEST_CYCLES);
                let req = NbdRequest {
                    op: NbdOp::Read,
                    handle: sent,
                    offset: sent * cfg.block as u64,
                    len: cfg.block as u32,
                };
                if self.w.try_send(self.client, self.cs, req.encode()).unwrap() {
                    sent += 1;
                    progress = true;
                }
            }
            // server: parse requests, stream replies
            if srv_pending.is_none() && self.w.readable(self.server, self.ss) > 0 {
                let want = REQUEST_LEN - srv_have.len();
                let data = self.w.recv_available(self.server, self.ss, want);
                srv_have.extend(data);
                if srv_have.len() == REQUEST_LEN {
                    let req = NbdRequest::parse(&srv_have).expect("header");
                    srv_have.clear();
                    let now = self.w.app_time(self.server);
                    self.disk.read(now, req.len as usize);
                    self.w.charge_app(self.server, params::NBD_SERVER_PER_REQUEST_CYCLES);
                    let mut msg = NbdReply { error: 0, handle: req.handle }.encode();
                    msg.extend(std::iter::repeat_n(0xc3u8, req.len as usize));
                    srv_pending = Some(msg);
                    progress = true;
                }
            }
            if let Some(msg) = srv_pending.as_mut() {
                let n = msg.len().min(16 * 1024);
                let chunk = msg[..n].to_vec();
                if self.w.try_send(self.server, self.ss, chunk).unwrap() {
                    msg.drain(..n);
                    if msg.is_empty() {
                        srv_pending = None;
                    }
                    progress = true;
                }
            }
            // client: drain reply header + block data
            let avail = self.w.readable(self.client, self.cs);
            if avail > 0 {
                if !cli_seen_reply {
                    if avail >= REPLY_LEN {
                        let data = self.w.recv_available(self.client, self.cs, REPLY_LEN);
                        let _ = NbdReply::parse(&data).expect("reply");
                        cli_seen_reply = true;
                        cli_block_left = cfg.block;
                        progress = true;
                    }
                } else {
                    let data = self.w.recv_available(self.client, self.cs, cli_block_left);
                    if !data.is_empty() {
                        cli_block_left -= data.len();
                        progress = true;
                        if cli_block_left == 0 {
                            cli_seen_reply = false;
                            self.charge_fs(cfg.block);
                            done += 1;
                        }
                    }
                }
            }
            if !progress {
                assert!(self.w.step(), "nbd read deadlocked at {done}/{nblocks}");
            }
        }
        let t1 = self.w.app_time(self.client);
        let fs = self.w.cpu(self.client).cycles(WorkClass::App) - fs0;
        self.phase_result(nblocks * cfg.block as u64, t0, t1, busy0, fs)
    }
}

/// Runs the Figure 7 benchmark over a socket transport.
pub fn run(transport: Transport, cfg: NbdConfig) -> NbdResult {
    let mut b = Bench::new(transport);
    let write = b.run_write(cfg);
    let read = b.run_read(cfg);
    NbdResult { write, read }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NbdConfig {
        NbdConfig { total_bytes: 4 * 1024 * 1024, block: 64 * 1024, queue_depth: 4 }
    }

    #[test]
    fn socket_nbd_over_gige_completes() {
        let r = run(Transport::GigE, small());
        assert!(r.write.mbytes_per_sec > 3.0, "{r:?}");
        assert!(r.read.mbytes_per_sec > 3.0, "{r:?}");
    }

    #[test]
    fn socket_nbd_burns_more_client_cpu_than_fs_alone() {
        let r = run(Transport::GigE, small());
        // host TCP/IP sits on top of the filesystem work (§4.2.3)
        assert!(r.read.client_cpu > r.read.fs_fraction, "{r:?}");
    }
}
