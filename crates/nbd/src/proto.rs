//! The Network Block Device wire protocol (request/reply framing).
//!
//! Modeled on the Linux NBD protocol the paper modified (§4.2.3): a
//! fixed-size request header naming the operation, a 64-bit handle, an
//! offset and a length; replies echo the handle with an error code, and
//! read replies carry the data.

use qpip_wire::error::ParseWireError;

/// Request magic.
pub const NBD_REQUEST_MAGIC: u32 = 0x2560_9513;
/// Reply magic.
pub const NBD_REPLY_MAGIC: u32 = 0x6744_6698;
/// Encoded request size in bytes.
pub const REQUEST_LEN: usize = 28;
/// Encoded reply header size in bytes.
pub const REPLY_LEN: usize = 16;

/// Block operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NbdOp {
    /// Read `len` bytes at `offset`.
    Read,
    /// Write `len` bytes at `offset` (data follows the header).
    Write,
    /// Tear down the session.
    Disconnect,
}

impl NbdOp {
    fn code(self) -> u32 {
        match self {
            NbdOp::Read => 0,
            NbdOp::Write => 1,
            NbdOp::Disconnect => 2,
        }
    }

    fn from_code(c: u32) -> Option<NbdOp> {
        match c {
            0 => Some(NbdOp::Read),
            1 => Some(NbdOp::Write),
            2 => Some(NbdOp::Disconnect),
            _ => None,
        }
    }
}

/// A block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbdRequest {
    /// Operation.
    pub op: NbdOp,
    /// Caller handle echoed in the reply.
    pub handle: u64,
    /// Byte offset on the device.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

impl NbdRequest {
    /// Encodes to the 28-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(REQUEST_LEN);
        b.extend_from_slice(&NBD_REQUEST_MAGIC.to_be_bytes());
        b.extend_from_slice(&self.op.code().to_be_bytes());
        b.extend_from_slice(&self.handle.to_be_bytes());
        b.extend_from_slice(&self.offset.to_be_bytes());
        b.extend_from_slice(&self.len.to_be_bytes());
        b
    }

    /// Decodes from the front of `data`.
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] / [`ParseWireError::BadVersion`]
    /// (wrong magic) / [`ParseWireError::BadOption`] (unknown op).
    pub fn parse(data: &[u8]) -> Result<NbdRequest, ParseWireError> {
        if data.len() < REQUEST_LEN {
            return Err(ParseWireError::Truncated { needed: REQUEST_LEN, have: data.len() });
        }
        let magic = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        if magic != NBD_REQUEST_MAGIC {
            return Err(ParseWireError::BadVersion { found: data[0] });
        }
        let op = NbdOp::from_code(u32::from_be_bytes([data[4], data[5], data[6], data[7]]))
            .ok_or(ParseWireError::BadOption)?;
        Ok(NbdRequest {
            op,
            handle: u64::from_be_bytes(data[8..16].try_into().expect("sized")),
            offset: u64::from_be_bytes(data[16..24].try_into().expect("sized")),
            len: u32::from_be_bytes(data[24..28].try_into().expect("sized")),
        })
    }
}

/// A reply header (read data follows on the stream/message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbdReply {
    /// 0 on success.
    pub error: u32,
    /// The request's handle.
    pub handle: u64,
}

impl NbdReply {
    /// Encodes to the 16-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(REPLY_LEN);
        b.extend_from_slice(&NBD_REPLY_MAGIC.to_be_bytes());
        b.extend_from_slice(&self.error.to_be_bytes());
        b.extend_from_slice(&self.handle.to_be_bytes());
        b
    }

    /// Decodes from the front of `data`.
    ///
    /// # Errors
    ///
    /// As for [`NbdRequest::parse`].
    pub fn parse(data: &[u8]) -> Result<NbdReply, ParseWireError> {
        if data.len() < REPLY_LEN {
            return Err(ParseWireError::Truncated { needed: REPLY_LEN, have: data.len() });
        }
        let magic = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        if magic != NBD_REPLY_MAGIC {
            return Err(ParseWireError::BadVersion { found: data[0] });
        }
        Ok(NbdReply {
            error: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            handle: u64::from_be_bytes(data[8..16].try_into().expect("sized")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = NbdRequest { op: NbdOp::Write, handle: 42, offset: 1 << 33, len: 65536 };
        let b = r.encode();
        assert_eq!(b.len(), REQUEST_LEN);
        assert_eq!(NbdRequest::parse(&b).unwrap(), r);
    }

    #[test]
    fn reply_roundtrip() {
        let r = NbdReply { error: 0, handle: 7 };
        let b = r.encode();
        assert_eq!(b.len(), REPLY_LEN);
        assert_eq!(NbdReply::parse(&b).unwrap(), r);
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let mut b = NbdRequest { op: NbdOp::Read, handle: 0, offset: 0, len: 1 }.encode();
        b[0] ^= 0xff;
        assert!(NbdRequest::parse(&b).is_err());
        assert!(NbdRequest::parse(&[0; 10]).is_err());
        assert!(NbdReply::parse(&[0; 10]).is_err());
    }

    #[test]
    fn rejects_unknown_op() {
        let mut b = NbdRequest { op: NbdOp::Read, handle: 0, offset: 0, len: 1 }.encode();
        b[7] = 99;
        assert_eq!(NbdRequest::parse(&b), Err(ParseWireError::BadOption));
    }

    #[test]
    fn all_ops_roundtrip() {
        for op in [NbdOp::Read, NbdOp::Write, NbdOp::Disconnect] {
            let r = NbdRequest { op, handle: 1, offset: 2, len: 3 };
            assert_eq!(NbdRequest::parse(&r.encode()).unwrap().op, op);
        }
    }
}
