//! NBD over live sockets: the same block driver and wire protocol as
//! [`qpip_impl`](crate::qpip_impl), but the QP runs on a real
//! [`XportNode`] instead of a simulated world.
//!
//! The protocol layer ([`crate::proto`]) is reused byte-for-byte: a
//! block request is one header message ([`NbdRequest`], 28 bytes)
//! followed by MTU-sized data messages; replies are one header message
//! ([`NbdReply`]) followed by data messages for reads. Because the
//! engine maps one QP message onto one TCP segment
//! (message-per-segment, §4.1), message boundaries survive the wire and
//! neither side ever reframes a byte stream — the simplification §4.2.3
//! reports over the socket NBD.

use std::net::{Ipv6Addr, SocketAddr};

use qpip_netstack::types::Endpoint;
use qpip_nic::types::{CompletionKind, CqId, QpId, RecvWr, SendWr, ServiceType};
use qpip_wire::error::ParseWireError;
use qpip_xport::{XportConfig, XportError, XportNode};

use crate::disk::ServerDisk;
use crate::proto::{NbdOp, NbdReply, NbdRequest};

/// The NBD server port (Linux NBD's default).
pub const NBD_PORT: u16 = 10809;

/// Receive WRs each side keeps posted.
const RECV_DEPTH: u32 = 64;

/// Errors from the live NBD endpoints.
#[derive(Debug)]
pub enum NbdXportError {
    /// The transport failed.
    Xport(XportError),
    /// A peer message did not parse as NBD protocol.
    Proto(ParseWireError),
    /// The server reported a nonzero NBD error code.
    Remote(u32),
    /// The connection ended mid-operation.
    Disconnected,
}

impl std::fmt::Display for NbdXportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NbdXportError::Xport(e) => write!(f, "transport: {e}"),
            NbdXportError::Proto(e) => write!(f, "protocol: {e:?}"),
            NbdXportError::Remote(code) => write!(f, "server error {code}"),
            NbdXportError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for NbdXportError {}

impl From<XportError> for NbdXportError {
    fn from(e: XportError) -> Self {
        NbdXportError::Xport(e)
    }
}

impl From<ParseWireError> for NbdXportError {
    fn from(e: ParseWireError) -> Self {
        NbdXportError::Proto(e)
    }
}

/// Largest data message: one engine segment.
fn data_msg_len(cfg: &XportConfig) -> usize {
    cfg.net.max_tcp_payload()
}

fn msgs_for(len: usize, data_msg: usize) -> usize {
    len.div_ceil(data_msg)
}

// ----- server --------------------------------------------------------------

/// What a serve loop did, for reporting and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Write requests served.
    pub writes: u64,
    /// Read requests served.
    pub reads: u64,
    /// Total data bytes written to the disk.
    pub bytes_written: u64,
    /// Total data bytes read from the disk.
    pub bytes_read: u64,
}

/// The live NBD server: a listening QP in front of a [`ServerDisk`]
/// in content mode.
#[derive(Debug)]
pub struct XportNbdServer {
    node: XportNode,
    cq: CqId,
    send_cq: CqId,
    qp: QpId,
    data_msg: usize,
    disk: ServerDisk,
}

impl XportNbdServer {
    /// Binds a server node and starts listening on [`NBD_PORT`].
    ///
    /// # Errors
    ///
    /// Transport bind/listen failures.
    pub fn start(fabric: Ipv6Addr, cfg: XportConfig) -> Result<XportNbdServer, NbdXportError> {
        let data_msg = data_msg_len(&cfg);
        let mut node = XportNode::bind(fabric, cfg).map_err(XportError::Io)?;
        let cq = node.create_cq();
        let send_cq = node.create_cq();
        let qp = node.create_qp(ServiceType::ReliableTcp, send_cq, cq)?;
        node.tcp_listen(qp, NBD_PORT)?;
        for i in 0..RECV_DEPTH {
            node.post_recv(qp, RecvWr { wr_id: u64::from(i), capacity: data_msg })?;
        }
        Ok(XportNbdServer { node, cq, send_cq, qp, data_msg, disk: ServerDisk::with_content() })
    }

    /// The OS socket address clients (or a proxy) reach this server at.
    ///
    /// # Errors
    ///
    /// Socket introspection failure.
    pub fn local_addr(&self) -> Result<SocketAddr, NbdXportError> {
        Ok(self.node.local_addr().map_err(XportError::Io)?)
    }

    /// Routes a fabric address (the client's) to a live socket.
    pub fn add_peer(&mut self, fabric: Ipv6Addr, at: SocketAddr) {
        self.node.add_peer(fabric, at);
    }

    /// The backing disk (content mode), for integrity checks.
    pub fn disk(&self) -> &ServerDisk {
        &self.disk
    }

    /// Serves one client session: accepts a connection, answers block
    /// requests until the client sends [`NbdOp::Disconnect`] (or the
    /// connection drops), then returns counters.
    ///
    /// # Errors
    ///
    /// Transport errors and protocol violations.
    pub fn serve(&mut self) -> Result<ServeSummary, NbdXportError> {
        let mut summary = ServeSummary::default();
        // a write in progress: the parsed header and the data collected
        let mut pending_write: Option<(NbdRequest, Vec<u8>)> = None;
        loop {
            let c = self.node.wait(self.cq)?;
            let data = match c.kind {
                CompletionKind::ConnectionEstablished => continue,
                CompletionKind::PeerDisconnected => break,
                CompletionKind::Recv { data, .. } => data,
                _ => continue,
            };
            self.node.post_recv(self.qp, RecvWr { wr_id: 0, capacity: self.data_msg })?;
            match pending_write.take() {
                Some((req, mut got)) => {
                    got.extend_from_slice(&data);
                    if got.len() < req.len as usize {
                        pending_write = Some((req, got));
                        continue;
                    }
                    let now = self.node.now();
                    self.disk.write_data(now, req.offset, &got);
                    summary.writes += 1;
                    summary.bytes_written += u64::from(req.len);
                    self.reply(NbdReply { error: 0, handle: req.handle }, &[])?;
                }
                None => {
                    let req = NbdRequest::parse(&data)?;
                    match req.op {
                        NbdOp::Write => pending_write = Some((req, Vec::new())),
                        NbdOp::Read => {
                            let now = self.node.now();
                            let bytes = self.disk.read_data(now, req.offset, req.len as usize);
                            summary.reads += 1;
                            summary.bytes_read += u64::from(req.len);
                            self.reply(NbdReply { error: 0, handle: req.handle }, &bytes)?;
                        }
                        NbdOp::Disconnect => break,
                    }
                }
            }
        }
        // retire our own send completions and close our half
        while self.node.poll(self.send_cq)?.is_some() {}
        let _ = self.node.tcp_close(self.qp);
        let until = std::time::Instant::now() + std::time::Duration::from_millis(300);
        while std::time::Instant::now() < until {
            self.node.pump(std::time::Duration::from_millis(10))?;
        }
        Ok(summary)
    }

    fn reply(&mut self, header: NbdReply, data: &[u8]) -> Result<(), NbdXportError> {
        self.node.post_send(
            self.qp,
            SendWr { wr_id: header.handle, payload: header.encode(), dst: None },
        )?;
        for chunk in data.chunks(self.data_msg) {
            self.node.post_send(
                self.qp,
                SendWr { wr_id: header.handle, payload: chunk.to_vec(), dst: None },
            )?;
        }
        // keep the send CQ drained (completions arrive as ACKs do)
        while self.node.poll(self.send_cq)?.is_some() {}
        Ok(())
    }
}

// ----- client --------------------------------------------------------------

/// The live NBD client: the block-driver side of the protocol on one
/// connected QP.
#[derive(Debug)]
pub struct XportNbdClient {
    node: XportNode,
    recv_cq: CqId,
    send_cq: CqId,
    qp: QpId,
    data_msg: usize,
    next_handle: u64,
}

impl XportNbdClient {
    /// Binds a client node, not yet connected — so its
    /// [`local_addr`](Self::local_addr) can be wired into peer tables
    /// or a proxy before [`connect`](Self::connect).
    ///
    /// # Errors
    ///
    /// Transport bind failures.
    pub fn bind(fabric: Ipv6Addr, cfg: XportConfig) -> Result<XportNbdClient, NbdXportError> {
        let data_msg = data_msg_len(&cfg);
        let mut node = XportNode::bind(fabric, cfg).map_err(XportError::Io)?;
        let recv_cq = node.create_cq();
        let send_cq = node.create_cq();
        let qp = node.create_qp(ServiceType::ReliableTcp, send_cq, recv_cq)?;
        for i in 0..RECV_DEPTH {
            node.post_recv(qp, RecvWr { wr_id: u64::from(i), capacity: data_msg })?;
        }
        Ok(XportNbdClient { node, recv_cq, send_cq, qp, data_msg, next_handle: 1 })
    }

    /// Connects to the server whose fabric address is `server_fabric`,
    /// reachable at live address `server_at` (the server itself, or a
    /// proxy in front of it), and waits for the handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or a wait timeout if the handshake never
    /// completes.
    pub fn connect(
        &mut self,
        server_fabric: Ipv6Addr,
        server_at: SocketAddr,
    ) -> Result<(), NbdXportError> {
        self.node.add_peer(server_fabric, server_at);
        self.node.tcp_connect(self.qp, 40000, Endpoint::new(server_fabric, NBD_PORT))?;
        loop {
            let c = self.node.wait(self.recv_cq)?;
            match c.kind {
                CompletionKind::ConnectionEstablished => return Ok(()),
                CompletionKind::PeerDisconnected => return Err(NbdXportError::Disconnected),
                _ => continue,
            }
        }
    }

    /// The OS socket address the server (or a proxy) reaches this
    /// client at.
    ///
    /// # Errors
    ///
    /// Socket introspection failure.
    pub fn local_addr(&self) -> Result<SocketAddr, NbdXportError> {
        Ok(self.node.local_addr().map_err(XportError::Io)?)
    }

    /// Writes one block at `offset` and waits for the server's ack.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server-reported error.
    pub fn write_block(&mut self, offset: u64, data: &[u8]) -> Result<(), NbdXportError> {
        let handle = self.next_handle;
        self.next_handle += 1;
        let req = NbdRequest { op: NbdOp::Write, handle, offset, len: data.len() as u32 };
        self.send_msg(req.encode())?;
        for chunk in data.chunks(self.data_msg) {
            self.send_msg(chunk.to_vec())?;
        }
        let reply = NbdReply::parse(&self.recv_msg()?)?;
        if reply.handle != handle {
            return Err(NbdXportError::Proto(ParseWireError::BadOption));
        }
        if reply.error != 0 {
            return Err(NbdXportError::Remote(reply.error));
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures or a server-reported error.
    pub fn read_block(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, NbdXportError> {
        let handle = self.next_handle;
        self.next_handle += 1;
        let req = NbdRequest { op: NbdOp::Read, handle, offset, len: len as u32 };
        self.send_msg(req.encode())?;
        let reply = NbdReply::parse(&self.recv_msg()?)?;
        if reply.handle != handle {
            return Err(NbdXportError::Proto(ParseWireError::BadOption));
        }
        if reply.error != 0 {
            return Err(NbdXportError::Remote(reply.error));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..msgs_for(len, self.data_msg) {
            out.extend_from_slice(&self.recv_msg()?);
        }
        Ok(out)
    }

    /// Sends [`NbdOp::Disconnect`] and closes the connection.
    ///
    /// # Errors
    ///
    /// Transport failures while the teardown is sent.
    pub fn disconnect(mut self) -> Result<(), NbdXportError> {
        let req = NbdRequest { op: NbdOp::Disconnect, handle: self.next_handle, offset: 0, len: 0 };
        self.send_msg(req.encode())?;
        // the FIN sequences after the Disconnect message, so TCP
        // ordering guarantees the server sees the request first
        while self.node.poll(self.send_cq)?.is_some() {}
        self.node.tcp_close(self.qp)?;
        let until = std::time::Instant::now() + std::time::Duration::from_millis(300);
        while std::time::Instant::now() < until {
            self.node.pump(std::time::Duration::from_millis(10))?;
        }
        Ok(())
    }

    fn send_msg(&mut self, payload: Vec<u8>) -> Result<(), NbdXportError> {
        self.node.post_send(self.qp, SendWr { wr_id: 0, payload, dst: None })?;
        // retire finished sends so the CQ stays bounded
        while self.node.poll(self.send_cq)?.is_some() {}
        Ok(())
    }

    fn recv_msg(&mut self) -> Result<Vec<u8>, NbdXportError> {
        loop {
            let c = self.node.wait(self.recv_cq)?;
            match c.kind {
                CompletionKind::Recv { data, .. } => {
                    self.node.post_recv(self.qp, RecvWr { wr_id: 0, capacity: self.data_msg })?;
                    return Ok(data);
                }
                CompletionKind::PeerDisconnected => return Err(NbdXportError::Disconnected),
                _ => continue,
            }
        }
    }
}
