//! Measurement record shared by both NBD implementations.

/// Outcome of one sequential NBD phase (read or write).
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Goodput in MB/s (10⁶ bytes per second of file data).
    pub mbytes_per_sec: f64,
    /// Client CPU utilization during the phase (fraction of one CPU).
    pub client_cpu: f64,
    /// CPU effectiveness: MB transferred per client CPU-second (the
    /// y2-axis of Figure 7).
    pub mb_per_cpu_sec: f64,
    /// Fraction of client busy cycles spent in filesystem processing
    /// (the ≥ 26 % floor of §4.2.3).
    pub fs_fraction: f64,
    /// Elapsed simulated seconds.
    pub elapsed_s: f64,
}

/// Both phases of the Figure 7 benchmark.
#[derive(Debug, Clone, Copy)]
pub struct NbdResult {
    /// Sequential write of the file (flushed with `sync`).
    pub write: PhaseResult,
    /// Sequential read back (client cache invalidated by the unmount).
    pub read: PhaseResult,
}
