//! NBD-over-live-sockets integrity: write a file image through the
//! impairment proxy, read it back, compare byte-for-byte. The wire
//! protocol (`qpip_nbd::proto`) is the one the DES benchmark uses,
//! unchanged; only the transport underneath differs.

use std::net::Ipv6Addr;
use std::time::Duration;

use qpip_nbd::xport_impl::{XportNbdClient, XportNbdServer};
use qpip_xport::{ImpairConfig, ImpairProxy, XportConfig};

const CLIENT_FABRIC: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 0x10);
const SERVER_FABRIC: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 0x20);

fn block_pattern(index: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (index.wrapping_mul(131) as usize + i * 7) as u8).collect()
}

fn run_session(through_proxy: bool) {
    let mut server =
        XportNbdServer::start(SERVER_FABRIC, XportConfig::default()).expect("server start");
    let mut client = XportNbdClient::bind(CLIENT_FABRIC, XportConfig::default()).expect("client");

    let mut _proxy = None;
    let (client_route, server_route) = if through_proxy {
        let p = ImpairProxy::new(ImpairConfig {
            seed: 7,
            drop_per_mille: 10, // 1% loss
            reorder_per_mille: 20,
            hold_at_most: Duration::from_millis(10),
        })
        .route(SERVER_FABRIC, server.local_addr().expect("server addr"))
        .route(CLIENT_FABRIC, client.local_addr().expect("client addr"))
        .spawn()
        .expect("proxy");
        let at = p.addr();
        _proxy = Some(p);
        (at, at)
    } else {
        (server.local_addr().expect("server addr"), client.local_addr().expect("client addr"))
    };
    server.add_peer(CLIENT_FABRIC, server_route);

    let server_thread = std::thread::spawn(move || {
        let summary = server.serve().expect("serve");
        (summary, server.disk().bytes_written(), server.disk().bytes_read())
    });
    client.connect(SERVER_FABRIC, client_route).expect("connect");

    let block = 64 * 1024;
    let blocks = 8u64;
    for i in 0..blocks {
        client.write_block(i * block as u64, &block_pattern(i, block)).expect("write");
    }
    for i in 0..blocks {
        let data = client.read_block(i * block as u64, block).expect("read");
        assert_eq!(data, block_pattern(i, block), "block {i} corrupted");
    }
    client.disconnect().expect("disconnect");

    let (summary, written, read) = server_thread.join().expect("server thread");
    assert_eq!(summary.writes, blocks);
    assert_eq!(summary.reads, blocks);
    assert_eq!(written, blocks * block as u64);
    assert_eq!(read, blocks * block as u64);
}

#[test]
fn nbd_round_trips_over_clean_loopback() {
    run_session(false);
}

#[test]
fn nbd_blocks_survive_an_impaired_wire() {
    run_session(true);
}
