//! End-to-end NBD data integrity: patterned blocks written through the
//! QPIP transport into a content-bearing server disk, then read back
//! and verified byte-for-byte.

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, NodeIdx, RecvWr, SendWr, ServiceType};
use qpip_nbd::disk::ServerDisk;
use qpip_nbd::proto::{NbdOp, NbdReply, NbdRequest};
use qpip_netstack::types::Endpoint;

struct Rig {
    w: QpipWorld,
    client: NodeIdx,
    server: NodeIdx,
    qc: qpip::QpId,
    qs: qpip::QpId,
    cqc: qpip::CqId,
    cqs: qpip::CqId,
    disk: ServerDisk,
    data_msg: usize,
    recv_seq: u64,
}

fn pattern(block: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((block as usize).wrapping_mul(131) ^ i.wrapping_mul(7)) as u8).collect()
}

impl Rig {
    fn new() -> Rig {
        let nic = NicConfig { mtu: 9000, ..NicConfig::paper_default() };
        let mut w = QpipWorld::new(qpip_fabric::FabricConfig::myrinet_gm());
        let client = w.add_node(nic.clone());
        let server = w.add_node(nic.clone());
        let cqc = w.create_cq(client);
        let cqs = w.create_cq(server);
        let qc = w.create_qp(client, ServiceType::ReliableTcp, cqc, cqc).unwrap();
        let qs = w.create_qp(server, ServiceType::ReliableTcp, cqs, cqs).unwrap();
        let data_msg = qpip_netstack::types::NetConfig::qpip(nic.mtu).max_tcp_payload();
        let mut r = Rig {
            w,
            client,
            server,
            qc,
            qs,
            cqc,
            cqs,
            disk: ServerDisk::with_content(),
            data_msg,
            recv_seq: 0,
        };
        for _ in 0..64 {
            r.post_recv(r.server, r.qs);
            r.post_recv(r.client, r.qc);
        }
        r.w.tcp_listen(r.server, 10809, qs).unwrap();
        let dst = Endpoint::new(r.w.addr(r.server), 10809);
        r.w.tcp_connect(r.client, qc, 40000, dst).unwrap();
        r.w.wait_matching(r.client, cqc, |c| c.kind == CompletionKind::ConnectionEstablished);
        r.w.wait_matching(r.server, cqs, |c| c.kind == CompletionKind::ConnectionEstablished);
        r
    }

    fn post_recv(&mut self, node: NodeIdx, qp: qpip::QpId) {
        self.recv_seq += 1;
        let wr = RecvWr { wr_id: self.recv_seq, capacity: self.data_msg };
        self.w.post_recv(node, qp, wr).unwrap();
    }

    /// Writes one patterned block through the NBD protocol.
    fn write_block(&mut self, block: u64, block_size: usize) {
        let data = pattern(block, block_size);
        let req = NbdRequest {
            op: NbdOp::Write,
            handle: block,
            offset: block * block_size as u64,
            len: block_size as u32,
        };
        self.w
            .post_send(self.client, self.qc, SendWr { wr_id: 1, payload: req.encode(), dst: None })
            .unwrap();
        for chunk in data.chunks(self.data_msg) {
            self.w
                .post_send(
                    self.client,
                    self.qc,
                    SendWr { wr_id: 2, payload: chunk.to_vec(), dst: None },
                )
                .unwrap();
        }
        // server: gather header + data, commit, reply
        let mut header: Option<NbdRequest> = None;
        let mut body = Vec::new();
        while header.is_none() || body.len() < header.expect("set").len as usize {
            let c = self.w.wait_matching(self.server, self.cqs, |c| {
                matches!(c.kind, CompletionKind::Recv { .. })
            });
            self.post_recv(self.server, self.qs);
            let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
            if header.is_none() {
                header = Some(NbdRequest::parse(&data).expect("request header"));
            } else {
                body.extend(data);
            }
        }
        let req = header.expect("set");
        let now = self.w.app_time(self.server);
        self.disk.write_data(now, req.offset, &body);
        self.w
            .post_send(
                self.server,
                self.qs,
                SendWr {
                    wr_id: 3,
                    payload: NbdReply { error: 0, handle: req.handle }.encode(),
                    dst: None,
                },
            )
            .unwrap();
        let c = self.w.wait_matching(self.client, self.cqc, |c| {
            matches!(c.kind, CompletionKind::Recv { .. })
        });
        self.post_recv(self.client, self.qc);
        let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
        let reply = NbdReply::parse(&data).expect("reply");
        assert_eq!(reply.handle, block);
        assert_eq!(reply.error, 0);
    }

    /// Reads one block back and returns its bytes.
    fn read_block(&mut self, block: u64, block_size: usize) -> Vec<u8> {
        let req = NbdRequest {
            op: NbdOp::Read,
            handle: block,
            offset: block * block_size as u64,
            len: block_size as u32,
        };
        self.w
            .post_send(self.client, self.qc, SendWr { wr_id: 1, payload: req.encode(), dst: None })
            .unwrap();
        let c = self.w.wait_matching(self.server, self.cqs, |c| {
            matches!(c.kind, CompletionKind::Recv { .. })
        });
        self.post_recv(self.server, self.qs);
        let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
        let req = NbdRequest::parse(&data).expect("request");
        assert_eq!(req.op, NbdOp::Read);
        let now = self.w.app_time(self.server);
        let content = self.disk.read_data(now, req.offset, req.len as usize);
        for chunk in content.chunks(self.data_msg) {
            self.w
                .post_send(
                    self.server,
                    self.qs,
                    SendWr { wr_id: 4, payload: chunk.to_vec(), dst: None },
                )
                .unwrap();
        }
        let mut body = Vec::new();
        while body.len() < block_size {
            let c = self.w.wait_matching(self.client, self.cqc, |c| {
                matches!(c.kind, CompletionKind::Recv { .. })
            });
            self.post_recv(self.client, self.qc);
            let CompletionKind::Recv { data, .. } = c.kind else { unreachable!() };
            body.extend(data);
        }
        body
    }
}

#[test]
fn written_blocks_read_back_identically() {
    let mut r = Rig::new();
    let block_size = 32 * 1024;
    for b in 0..6u64 {
        r.write_block(b, block_size);
    }
    // read back out of order
    for b in [3u64, 0, 5, 1, 4, 2] {
        let got = r.read_block(b, block_size);
        assert_eq!(got, pattern(b, block_size), "block {b} corrupted in transit");
    }
}

#[test]
fn rewrite_overwrites_previous_content() {
    let mut r = Rig::new();
    let block_size = 8 * 1024;
    r.write_block(0, block_size);
    // overwrite block 0 with block-7 pattern via a direct protocol write
    let data = pattern(7, block_size);
    let now = r.w.app_time(r.server);
    r.disk.write_data(now, 0, &data);
    let got = r.read_block(0, block_size);
    assert_eq!(got, pattern(7, block_size));
}

#[test]
fn unwritten_blocks_read_as_zeros() {
    let mut r = Rig::new();
    let got = r.read_block(9, 4096);
    assert_eq!(got, vec![0u8; 4096]);
}
