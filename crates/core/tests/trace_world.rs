//! Flight recorder against a lossy DES world: seeded fabric loss must
//! show up in the trace as retransmit events whose sequence numbers
//! match actually-retransmitted segments, and the `qpip-trace` summary
//! rollup must agree exactly with the engine's own counters — the
//! recorder and `EngineStats` are two views of one history.

use std::collections::HashMap;
use std::sync::Arc;

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_fabric::FaultPlan;
use qpip_netstack::types::Endpoint;
use qpip_trace::export::summarize;
use qpip_trace::{FlightRecorder, TraceEvent};

const MESSAGES: usize = 64;
const MESSAGE_LEN: usize = 2048;

/// One client streaming into one server through a fabric dropping 2%
/// of packets from a seeded stream, with a recorder installed.
fn lossy_traced_world() -> (QpipWorld, Arc<FlightRecorder>) {
    let nic = NicConfig::paper_default();
    let mut w = QpipWorld::myrinet();
    let rec = Arc::new(FlightRecorder::new(8192));
    w.install_recorder(Arc::clone(&rec));
    w.set_fault_plan(FaultPlan::DropRandom { permille: 20, seed: 0xfeed_beef });

    let server = w.add_node(nic.clone());
    let cq_s = w.create_cq(server);
    let qp_s = w.create_qp(server, ServiceType::ReliableTcp, cq_s, cq_s).unwrap();
    for i in 0..MESSAGES {
        w.post_recv(server, qp_s, RecvWr { wr_id: i as u64, capacity: MESSAGE_LEN }).unwrap();
    }
    w.tcp_listen(server, 5000, qp_s).unwrap();

    let client = w.add_node(nic);
    let cq_c = w.create_cq(client);
    let qp_c = w.create_qp(client, ServiceType::ReliableTcp, cq_c, cq_c).unwrap();
    w.tcp_connect(client, qp_c, 4000, Endpoint::new(w.addr(server), 5000)).unwrap();
    w.wait_matching(client, cq_c, |c| c.kind == CompletionKind::ConnectionEstablished);

    for m in 0..MESSAGES {
        w.post_send(
            client,
            qp_c,
            SendWr { wr_id: m as u64, payload: vec![0xd7; MESSAGE_LEN], dst: None },
        )
        .unwrap();
    }
    let mut got = 0usize;
    while got < MESSAGES {
        if let CompletionKind::Recv { .. } = w.wait(server, cq_s).kind {
            got += 1;
        }
    }
    (w, rec)
}

#[test]
fn lossy_transfer_traces_retransmits_with_matching_seq() {
    let (w, rec) = lossy_traced_world();
    let events = rec.events();

    // no ring overwrote, so every count below is exact
    for (node, conn) in rec.scopes() {
        assert_eq!(rec.overwritten(node, conn), 0, "ring ({node},{conn}) overwrote");
    }

    // 2% loss over ~100+ data packets must force at least one
    // retransmission, and each retransmit event's seq must name a
    // segment the same connection actually re-sent on the wire
    let retransmits: Vec<_> =
        events.iter().filter(|r| matches!(r.ev, TraceEvent::Retransmit { .. })).collect();
    assert!(!retransmits.is_empty(), "lossy run traced no retransmit events");
    for r in &retransmits {
        let TraceEvent::Retransmit { seq, .. } = r.ev else { unreachable!() };
        let matched = events.iter().any(|e| {
            e.node == r.node
                && e.conn == r.conn
                && matches!(e.ev,
                    TraceEvent::SegTx { seq: s, retransmit: true, .. } if s == seq)
        });
        assert!(matched, "retransmit seq {seq} has no matching retransmitted SegTx");
    }

    // the fabric attributed every injected drop to a node-scoped event
    let injected = w.fabric().snapshot().get("injected_drops").unwrap();
    let traced_drops = events
        .iter()
        .filter(|r| matches!(r.ev, TraceEvent::FabricDrop { reason: "injected", .. }))
        .count() as u64;
    assert!(injected > 0, "fault plan never fired");
    assert_eq!(traced_drops, injected, "fabric drop events vs injected_drops counter");
}

#[test]
fn trace_summary_matches_engine_counters_exactly() {
    let (w, rec) = lossy_traced_world();
    for (node, conn) in rec.scopes() {
        assert_eq!(rec.overwritten(node, conn), 0, "ring ({node},{conn}) overwrote");
    }

    // per-node rollup of the per-connection summaries the CLI prints
    let mut per_node: HashMap<u32, (u64, u64, u64, u64)> = HashMap::new();
    for s in summarize(&rec.events()) {
        let e = per_node.entry(s.node).or_default();
        e.0 += s.rto_retransmits;
        e.1 += s.fast_retransmits;
        e.2 += s.dupacks;
        e.3 += s.zero_windows;
    }

    for node in 0..2u32 {
        let stats = w.engine_stats(qpip::world::NodeIdx(node as usize));
        let (rto, fast, dupacks, zerowin) = per_node.get(&node).copied().unwrap_or_default();
        assert_eq!(stats.rto_retransmits, rto, "node {node} rto_retransmits");
        assert_eq!(stats.fast_retransmits, fast, "node {node} fast_retransmits");
        assert_eq!(stats.dupacks_rx, dupacks, "node {node} dupacks_rx");
        assert_eq!(stats.zero_window_events, zerowin, "node {node} zero_window_events");
    }
}
