//! The full QPIP system: hosts with QPIP NICs on a switched SAN.
//!
//! [`QpipWorld`] owns the discrete-event loop that ties together the
//! host CPU model (`qpip-host`), the intelligent NIC (`qpip-nic`) and
//! the fabric (`qpip-fabric`), and exposes the **verbs API** of §4.1 —
//! `post_send`, `post_recv`, `poll`, `wait` plus QP/CQ creation and
//! connection management — with the host-side cycle costs of Table 1
//! charged on every call.
//!
//! Applications written against this API read like the paper's
//! pseudo-code: post receives, connect, post a send, wait on the CQ.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv6Addr;
use std::sync::Arc;

use qpip_fabric::{Fabric, FabricConfig, TransmitOutcome};
use qpip_host::cpu::{CpuLedger, WorkClass};
use qpip_netstack::types::Endpoint;
use qpip_nic::{
    Completion, CompletionKind, CqId, MrKey, NicConfig, NicError, NicOutput, QpId, QpipNic,
    RdmaReadWr, RdmaWriteWr, RecvWr, SendWr, ServiceType,
};
use qpip_sim::kernel::{EventId, Simulator};
use qpip_sim::params;
use qpip_sim::time::{SimDuration, SimTime};
use qpip_trace::{FlightRecorder, Tracer};

/// Index of a node (host + NIC pair) in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub usize);

/// Extra latency of the doorbell PIO write crossing PCI (posted write).
const DOORBELL_PCI_LATENCY: SimDuration = SimDuration::from_nanos(200);

#[derive(Debug)]
enum WorldEvent {
    Packet { node: usize, bytes: qpip_wire::Packet },
    Timer { node: usize },
}

struct Node {
    nic: QpipNic,
    cpu: CpuLedger,
    /// When this node's application thread is next free.
    app_time: SimTime,
    cqs: HashMap<CqId, VecDeque<Completion>>,
    fabric_id: qpip_fabric::NodeId,
    timer_event: Option<(SimTime, EventId)>,
}

/// A simulated SAN of QPIP nodes.
pub struct QpipWorld {
    sim: Simulator<WorldEvent>,
    fabric: Fabric,
    nodes: Vec<Node>,
    /// Fabric port → node index (dense: ports are assigned in attach
    /// order), so packet delivery is O(1) at any fleet size.
    fabric_to_node: Vec<usize>,
    /// Shared flight recorder, when tracing is on; nodes added later
    /// are wired up automatically.
    recorder: Option<Arc<FlightRecorder>>,
}

impl core::fmt::Debug for QpipWorld {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QpipWorld")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl QpipWorld {
    /// Creates a world over the given fabric (usually
    /// [`FabricConfig::myrinet`]).
    pub fn new(fabric: FabricConfig) -> Self {
        QpipWorld {
            sim: Simulator::new(),
            fabric: Fabric::new(fabric),
            nodes: Vec::new(),
            fabric_to_node: Vec::new(),
            recorder: None,
        }
    }

    /// A Myrinet world with the QPIP native MTU (the paper's testbed).
    pub fn myrinet() -> Self {
        QpipWorld::new(FabricConfig::myrinet())
    }

    /// A Myrinet world whose fabric is a chain of `switches` switches.
    pub fn myrinet_chain(switches: usize) -> Self {
        QpipWorld {
            sim: Simulator::new(),
            fabric: Fabric::with_switches(FabricConfig::myrinet(), switches),
            nodes: Vec::new(),
            fabric_to_node: Vec::new(),
            recorder: None,
        }
    }

    /// Adds a node with the given NIC configuration; its address is
    /// `fc00::{n+1}`.
    pub fn add_node(&mut self, nic_cfg: NicConfig) -> NodeIdx {
        self.add_node_at(nic_cfg, 0)
    }

    /// Adds a node attached to a specific switch of a multi-switch
    /// fabric.
    pub fn add_node_at(&mut self, nic_cfg: NicConfig, switch: usize) -> NodeIdx {
        let n = self.nodes.len();
        let addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, (n + 1) as u16);
        let mut cfg = nic_cfg;
        cfg.mtu = cfg.mtu.min(self.fabric.config().mtu);
        let fabric_id = self.fabric.attach_at(addr, switch);
        debug_assert_eq!(fabric_id.0 as usize, self.fabric_to_node.len());
        self.fabric_to_node.push(n);
        let mut nic = QpipNic::new(cfg, addr);
        if let Some(rec) = &self.recorder {
            nic.set_tracer(Tracer::new(Arc::clone(rec), n as u32));
        }
        self.nodes.push(Node {
            nic,
            cpu: CpuLedger::new(),
            app_time: SimTime::ZERO,
            cqs: HashMap::new(),
            fabric_id,
            timer_event: None,
        });
        NodeIdx(n)
    }

    /// Installs a shared flight recorder: every node's firmware and
    /// protocol engine (existing and future) plus the fabric record
    /// into it. Traces are stamped with simulated time, so the same
    /// seed and workload produce byte-identical exports.
    pub fn install_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            n.nic.set_tracer(Tracer::new(Arc::clone(&recorder), i as u32));
        }
        self.fabric.set_recorder(Arc::clone(&recorder));
        self.recorder = Some(recorder);
    }

    /// The installed flight recorder, if tracing is on.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The IPv6 address of a node.
    pub fn addr(&self, node: NodeIdx) -> Ipv6Addr {
        self.nodes[node.0].nic.addr()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// A node's application-thread clock.
    pub fn app_time(&self, node: NodeIdx) -> SimTime {
        self.nodes[node.0].app_time
    }

    /// Host CPU ledger of a node (utilization, cycle breakdown).
    pub fn cpu(&self, node: NodeIdx) -> &CpuLedger {
        &self.nodes[node.0].cpu
    }

    /// Charges application-level cycles on a node (benchmark loop
    /// bodies, filesystem work in NBD).
    pub fn charge_app(&mut self, node: NodeIdx, cycles: u64) {
        let n = &mut self.nodes[node.0];
        n.app_time = n.cpu.charge(n.app_time, WorkClass::App, cycles);
    }

    /// NIC access for instrumentation (occupancy tables, stats).
    pub fn nic(&self, node: NodeIdx) -> &QpipNic {
        &self.nodes[node.0].nic
    }

    /// Mutable NIC access (resetting occupancy between phases).
    pub fn nic_mut(&mut self, node: NodeIdx) -> &mut QpipNic {
        &mut self.nodes[node.0].nic
    }

    /// Fabric statistics.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Traffic and drop counters of a node's offloaded protocol engine
    /// (rx/tx packets, checksum/demux/addr/parse drops).
    pub fn engine_stats(&self, node: NodeIdx) -> qpip_netstack::engine::EngineStats {
        self.nodes[node.0].nic.engine_stats()
    }

    /// Total discrete events the world's simulator has delivered.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Wall-clock drain rate of the event loop (events per real
    /// second since the first delivery) — the benches' scaling metric.
    pub fn events_per_sec(&self) -> f64 {
        self.sim.events_per_sec()
    }

    /// Installs a fault plan on the fabric (tests).
    pub fn set_fault_plan(&mut self, plan: qpip_fabric::FaultPlan) {
        self.fabric.set_fault_plan(plan);
    }

    /// Unified counter snapshots for the whole world: per-node engine
    /// and NIC firmware counters folded into one fleet-wide `"engine"`
    /// and one `"nic"` snapshot, plus the fabric's. This is the
    /// `counters` section the benches stamp into their JSON reports.
    pub fn counter_snapshots(&self) -> Vec<qpip_trace::Snapshot> {
        let mut engine = qpip_trace::Snapshot::new("engine");
        let mut nic = qpip_trace::Snapshot::new("nic");
        for n in &self.nodes {
            engine.absorb(&n.nic.engine_stats().snapshot());
            nic.absorb(&n.nic.stats().snapshot());
        }
        vec![engine, nic, self.fabric.snapshot()]
    }

    // ----- management verbs ------------------------------------------------

    /// Creates a completion queue on a node.
    pub fn create_cq(&mut self, node: NodeIdx) -> CqId {
        let cq = self.nodes[node.0].nic.create_cq();
        self.nodes[node.0].cqs.insert(cq, VecDeque::new());
        cq
    }

    /// Creates a queue pair on a node.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`] for invalid CQ handles.
    pub fn create_qp(
        &mut self,
        node: NodeIdx,
        service: ServiceType,
        send_cq: CqId,
        recv_cq: CqId,
    ) -> Result<QpId, NicError> {
        self.nodes[node.0].nic.create_qp(service, send_cq, recv_cq)
    }

    /// Binds a UDP QP to a port.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn udp_bind(&mut self, node: NodeIdx, qp: QpId, port: u16) -> Result<(), NicError> {
        self.nodes[node.0].nic.udp_bind(qp, port)
    }

    /// Monitors a TCP port, queuing `qp` for the next incoming
    /// connection (§3's rendezvous).
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn tcp_listen(&mut self, node: NodeIdx, port: u16, qp: QpId) -> Result<(), NicError> {
        self.nodes[node.0].nic.tcp_listen(port, qp)
    }

    /// Starts a connection from a node's QP.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn tcp_connect(
        &mut self,
        node: NodeIdx,
        qp: QpId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<(), NicError> {
        let t = self.verbs_preamble(node, params::QPIP_BUILD_WR_CYCLES);
        let db = t + DOORBELL_PCI_LATENCY;
        self.pump_until_time(db);
        let outs = self.nodes[node.0].nic.tcp_connect(db, qp, local_port, remote)?;
        self.absorb(node.0, outs);
        Ok(())
    }

    // ----- data verbs ---------------------------------------------------------

    /// Posts a send work request (Table 1: build WR + ring doorbell on
    /// the host; everything else happens on the NIC).
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn post_send(&mut self, node: NodeIdx, qp: QpId, wr: SendWr) -> Result<(), NicError> {
        let t = self.verbs_preamble(node, params::QPIP_BUILD_WR_CYCLES);
        let db = t + DOORBELL_PCI_LATENCY;
        self.pump_until_time(db);
        let outs = self.nodes[node.0].nic.post_send(db, qp, wr)?;
        self.absorb(node.0, outs);
        Ok(())
    }

    /// Registers host memory on a node for remote access (the RDMA
    /// transaction class, §2.1). The returned key is shared with peers
    /// out of band — typically via a send-receive message, exactly as
    /// the paper prescribes.
    pub fn register_mr(&mut self, node: NodeIdx, len: usize) -> MrKey {
        self.nodes[node.0].nic.register_mr(len)
    }

    /// Host-side write into a locally registered region.
    pub fn mr_write(&mut self, node: NodeIdx, key: MrKey, offset: usize, data: &[u8]) {
        self.nodes[node.0].nic.mr_write(key, offset, data);
    }

    /// Host-side read of a locally registered region.
    pub fn mr_read(&self, node: NodeIdx, key: MrKey, offset: usize, len: usize) -> Vec<u8> {
        self.nodes[node.0].nic.mr_read(key, offset, len)
    }

    /// Posts an RDMA Write work request.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`] (requires an RDMA-enabled NIC).
    pub fn post_rdma_write(
        &mut self,
        node: NodeIdx,
        qp: QpId,
        wr: RdmaWriteWr,
    ) -> Result<(), NicError> {
        let t = self.verbs_preamble(node, params::QPIP_BUILD_WR_CYCLES);
        let db = t + DOORBELL_PCI_LATENCY;
        self.pump_until_time(db);
        let outs = self.nodes[node.0].nic.post_rdma_write(db, qp, wr)?;
        self.absorb(node.0, outs);
        Ok(())
    }

    /// Posts an RDMA Read work request.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`] (requires an RDMA-enabled NIC).
    pub fn post_rdma_read(
        &mut self,
        node: NodeIdx,
        qp: QpId,
        wr: RdmaReadWr,
    ) -> Result<(), NicError> {
        let t = self.verbs_preamble(node, params::QPIP_BUILD_WR_CYCLES);
        let db = t + DOORBELL_PCI_LATENCY;
        self.pump_until_time(db);
        let outs = self.nodes[node.0].nic.post_rdma_read(db, qp, wr)?;
        self.absorb(node.0, outs);
        Ok(())
    }

    /// Posts a receive work request.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn post_recv(&mut self, node: NodeIdx, qp: QpId, wr: RecvWr) -> Result<(), NicError> {
        let t = self.verbs_preamble(node, params::QPIP_BUILD_WR_CYCLES);
        let db = t + DOORBELL_PCI_LATENCY;
        self.pump_until_time(db);
        let outs = self.nodes[node.0].nic.post_recv(db, qp, wr)?;
        self.absorb(node.0, outs);
        Ok(())
    }

    /// Polls a CQ once. A hit charges the cache-resident poll cost; a
    /// miss charges one spin iteration (§5.1: pollers spin in the
    /// processor cache).
    pub fn poll(&mut self, node: NodeIdx, cq: CqId) -> Option<Completion> {
        self.pump_ready(node);
        let app_time = self.nodes[node.0].app_time;
        let head_visible =
            self.nodes[node.0].cqs.get(&cq).and_then(|q| q.front()).map(|c| c.visible_at);
        match head_visible {
            Some(v) if v <= app_time => {
                let n = &mut self.nodes[node.0];
                n.app_time =
                    n.cpu.charge(n.app_time, WorkClass::Verbs, params::QPIP_POLL_HIT_CYCLES);
                Some(n.cqs.get_mut(&cq).expect("cq exists").pop_front().expect("head"))
            }
            _ => {
                let n = &mut self.nodes[node.0];
                n.app_time =
                    n.cpu.charge(n.app_time, WorkClass::Verbs, params::QPIP_POLL_MISS_CYCLES);
                None
            }
        }
    }

    /// Blocks the application until the CQ delivers an entry: the thread
    /// sleeps (no CPU burned while idle — how ttcp achieves < 1 %
    /// utilization in Figure 4) and is woken when the entry lands.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs dry with nothing to deliver — a
    /// deadlocked workload is a bug in the caller. The panic message
    /// describes what every node still has in flight (CQ contents,
    /// posted WRs, backlogs, open connections) so the missing post or
    /// the wrong-CQ wait is visible from the message alone.
    pub fn wait(&mut self, node: NodeIdx, cq: CqId) -> Completion {
        loop {
            // take a visible head entry if one exists
            let app_time = self.nodes[node.0].app_time;
            if let Some(head) = self.nodes[node.0].cqs.get(&cq).and_then(|q| q.front()) {
                let visible = head.visible_at;
                let n = &mut self.nodes[node.0];
                // sleep until the entry lands, then pay the poll that
                // finds it
                n.app_time = n.cpu.charge(
                    app_time.max(visible),
                    WorkClass::Verbs,
                    params::QPIP_POLL_HIT_CYCLES,
                );
                return n.cqs.get_mut(&cq).expect("cq").pop_front().expect("head");
            }
            if !self.step() {
                panic!("{}", self.deadlock_report(node, cq));
            }
        }
    }

    /// Builds the `wait()` deadlock panic message: which wait starved,
    /// then a per-node dump of CQ depths, posted WRs, backlogs and open
    /// connections across the whole world (the entry a waiter is
    /// missing is usually stuck on *another* node or another CQ).
    fn deadlock_report(&self, node: NodeIdx, cq: CqId) -> String {
        use core::fmt::Write as _;
        let mut s = format!(
            "wait() deadlocked at t={}: simulation ran dry with {cq} empty on node {}\n",
            self.sim.now(),
            node.0
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(s, "  node {i} (addr {}):", n.nic.addr());
            let mut cqs: Vec<_> = n.cqs.iter().collect();
            cqs.sort_by_key(|(id, _)| id.0);
            for (id, entries) in cqs {
                let kinds: Vec<String> = entries
                    .iter()
                    .take(4)
                    .map(|c| match &c.kind {
                        CompletionKind::Send => "Send".into(),
                        CompletionKind::Recv { data, .. } => format!("Recv({}B)", data.len()),
                        CompletionKind::ConnectionEstablished => "ConnectionEstablished".into(),
                        CompletionKind::PeerDisconnected => "PeerDisconnected".into(),
                        CompletionKind::RdmaWrite => "RdmaWrite".into(),
                        CompletionKind::RdmaRead { data } => format!("RdmaRead({}B)", data.len()),
                    })
                    .collect();
                let more = entries.len().saturating_sub(4);
                let suffix = if more > 0 { format!(" (+{more} more)") } else { String::new() };
                let _ = writeln!(
                    s,
                    "    {id}: {} entries [{}]{suffix}",
                    entries.len(),
                    kinds.join(", ")
                );
            }
            let _ = write!(s, "{}", n.nic.pending_summary());
            if let Some(rec) = &self.recorder {
                let node32 = i as u32;
                for (_, conn) in rec.scopes().into_iter().filter(|&(nn, _)| nn == node32) {
                    let tail = rec.last_events(node32, conn, 8);
                    if tail.is_empty() {
                        continue;
                    }
                    let scope = if conn == qpip_trace::NODE_SCOPE {
                        "node scope".to_string()
                    } else {
                        format!("conn {conn}")
                    };
                    let _ = writeln!(s, "    flight recorder ({scope}), last {}:", tail.len());
                    for line in qpip_trace::export::dump(&tail).lines() {
                        let _ = writeln!(s, "      {line}");
                    }
                }
            }
        }
        s.push_str("  hint: a missing post_recv/post_send, a wait on the wrong CQ, or a\n");
        s.push_str("  peer that never answers leaves the event queue dry.");
        s
    }

    /// Consumes the head CQ entry if one has been produced, sleeping
    /// forward to its visibility instant (no spin cycles). Returns
    /// `None` when the CQ is empty — the non-blocking companion of
    /// [`QpipWorld::wait`] for callers juggling several queues.
    pub fn try_wait(&mut self, node: NodeIdx, cq: CqId) -> Option<Completion> {
        self.pump_ready(node);
        let head_visible =
            self.nodes[node.0].cqs.get(&cq).and_then(|q| q.front()).map(|c| c.visible_at)?;
        let n = &mut self.nodes[node.0];
        n.app_time = n.cpu.charge(
            n.app_time.max(head_visible),
            WorkClass::Verbs,
            params::QPIP_POLL_HIT_CYCLES,
        );
        n.cqs.get_mut(&cq).expect("cq").pop_front()
    }

    /// Convenience: wait until a completion matching the predicate
    /// arrives on `cq`; non-matching entries are consumed and discarded.
    pub fn wait_matching(
        &mut self,
        node: NodeIdx,
        cq: CqId,
        mut pred: impl FnMut(&Completion) -> bool,
    ) -> Completion {
        loop {
            let c = self.wait(node, cq);
            if pred(&c) {
                return c;
            }
        }
    }

    // ----- event loop -----------------------------------------------------------

    /// Processes one simulation event; `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.sim.next() else {
            return false;
        };
        match ev {
            WorldEvent::Packet { node, bytes } => {
                let outs = self.nodes[node].nic.on_packet(t, &bytes);
                self.absorb(node, outs);
                self.enforce_oracle(node);
            }
            WorldEvent::Timer { node } => {
                self.nodes[node].timer_event = None;
                let outs = self.nodes[node].nic.on_timer(t);
                self.absorb(node, outs);
                self.enforce_oracle(node);
            }
        }
        true
    }

    /// Debug-build oracle gate: after every event, surface any TCB
    /// invariant violation the engine's per-event hook latched, naming
    /// the invariant and dumping the connection's recent history.
    ///
    /// # Panics
    ///
    /// Panics with [`QpipWorld::oracle_report`] on a latched violation.
    #[cfg(debug_assertions)]
    fn enforce_oracle(&mut self, node: usize) {
        if let Some(v) = self.nodes[node].nic.take_invariant_violation() {
            panic!("{}", self.oracle_report(node, &v));
        }
    }

    #[cfg(not(debug_assertions))]
    fn enforce_oracle(&mut self, _node: usize) {}

    /// Renders an invariant violation with the failing invariant's name
    /// and the connection's last flight-recorder events (when a
    /// recorder is installed).
    #[cfg(debug_assertions)]
    fn oracle_report(
        &self,
        node: usize,
        v: &qpip_netstack::invariant::InvariantViolation,
    ) -> String {
        use core::fmt::Write as _;
        let mut s =
            format!("TCB invariant `{}` violated on node {node}: {}\n", v.invariant, v.detail);
        match (&self.recorder, v.conn) {
            (Some(rec), Some(conn)) => {
                let tail = rec.last_events(node as u32, conn.0, 8);
                let _ = writeln!(s, "  last {} flight-recorder events for {conn}:", tail.len());
                for line in qpip_trace::export::dump(&tail).lines() {
                    let _ = writeln!(s, "    {line}");
                }
            }
            _ => s.push_str("  (install a flight recorder for per-connection event history)"),
        }
        s
    }

    /// Runs the event loop until nothing is pending.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    fn pump_until_time(&mut self, t: SimTime) {
        while let Some(next) = self.sim.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
    }

    /// Drains events that are already due relative to the node's app
    /// clock (so polls observe everything that "has happened").
    fn pump_ready(&mut self, node: NodeIdx) {
        let t = self.nodes[node.0].app_time;
        self.pump_until_time(t);
    }

    fn verbs_preamble(&mut self, node: NodeIdx, build_cycles: u64) -> SimTime {
        let n = &mut self.nodes[node.0];
        // the app cannot act before the sim's current instant
        n.app_time = n.app_time.max(self.sim.now());
        let t = n.cpu.charge(n.app_time, WorkClass::Verbs, build_cycles);
        let t = n.cpu.charge(t, WorkClass::Verbs, params::QPIP_DOORBELL_CYCLES);
        n.app_time = t;
        t
    }

    fn absorb(&mut self, node: usize, outs: Vec<NicOutput>) {
        for o in outs {
            match o {
                NicOutput::Transmit { at, dst, bytes, .. } => {
                    let from = self.nodes[node].fabric_id;
                    match self.fabric.transmit(at, from, dst, bytes.len()) {
                        TransmitOutcome::Delivered { to, at: arrive, marked } => {
                            let dest = self.fabric_to_node[to.0 as usize];
                            // RED/ECN: the switch marks ECN-capable
                            // packets instead of dropping (§5.2)
                            let mut bytes = bytes;
                            if marked
                                && qpip_wire::ipv6::Ipv6Header::ecn_of_packet(&bytes)
                                    == qpip_wire::ipv6::Ecn::Capable
                            {
                                qpip_wire::ipv6::Ipv6Header::set_ecn_in_packet(
                                    &mut bytes,
                                    qpip_wire::ipv6::Ecn::CongestionExperienced,
                                );
                            }
                            // deliveries cannot be scheduled into the past
                            let arrive = arrive.max(self.sim.now());
                            self.sim.schedule_at(arrive, WorldEvent::Packet { node: dest, bytes });
                        }
                        TransmitOutcome::Dropped(_) => {}
                    }
                }
                NicOutput::Complete(cq, c) => {
                    self.nodes[node].cqs.entry(cq).or_default().push_back(c);
                }
            }
        }
        self.refresh_timer(node);
    }

    fn refresh_timer(&mut self, node: usize) {
        let deadline = self.nodes[node].nic.next_deadline();
        let current = self.nodes[node].timer_event;
        match (deadline, current) {
            (Some(d), Some((t, _))) if t <= d => {} // existing timer fires first
            (Some(d), existing) => {
                if let Some((_, id)) = existing {
                    self.sim.cancel(id);
                }
                let at = d.max(self.sim.now());
                let id = self.sim.schedule_at(at, WorldEvent::Timer { node });
                self.nodes[node].timer_event = Some((at, id));
            }
            (None, Some((_, id))) => {
                self.sim.cancel(id);
                self.nodes[node].timer_event = None;
            }
            (None, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpip_nic::CompletionKind;

    /// Two nodes, TCP QPs, full verb-level exchange.
    fn connected_world() -> (QpipWorld, NodeIdx, NodeIdx, QpId, QpId, CqId, CqId) {
        let mut w = QpipWorld::myrinet();
        let a = w.add_node(NicConfig::paper_default());
        let b = w.add_node(NicConfig::paper_default());
        let cqa = w.create_cq(a);
        let cqb = w.create_cq(b);
        let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
        let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
        for i in 0..8 {
            w.post_recv(b, qb, RecvWr { wr_id: 100 + i, capacity: 16 * 1024 }).unwrap();
            w.post_recv(a, qa, RecvWr { wr_id: 200 + i, capacity: 16 * 1024 }).unwrap();
        }
        w.tcp_listen(b, 5000, qb).unwrap();
        let remote = Endpoint::new(w.addr(b), 5000);
        w.tcp_connect(a, qa, 4000, remote).unwrap();
        let c = w.wait(a, cqa);
        assert_eq!(c.kind, CompletionKind::ConnectionEstablished);
        let c = w.wait(b, cqb);
        assert_eq!(c.kind, CompletionKind::ConnectionEstablished);
        (w, a, b, qa, qb, cqa, cqb)
    }

    #[test]
    fn verbs_level_message_exchange() {
        let (mut w, a, b, qa, _qb, cqa, cqb) = connected_world();
        w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![7; 4096], dst: None }).unwrap();
        // receiver blocks until the message lands
        let c = w.wait(b, cqb);
        match c.kind {
            CompletionKind::Recv { data, .. } => assert_eq!(data, vec![7; 4096]),
            k => panic!("{k:?}"),
        }
        // sender's completion arrives once the data is acknowledged
        let c = w.wait(a, cqa);
        assert_eq!(c.kind, CompletionKind::Send);
        assert_eq!(c.wr_id, 1);
    }

    #[test]
    fn ping_pong_round_trip_time_is_tens_of_microseconds() {
        let (mut w, a, b, qa, qb, cqa, cqb) = connected_world();
        // warm up one round
        w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![0], dst: None }).unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        w.post_send(b, qb, SendWr { wr_id: 2, payload: vec![0], dst: None }).unwrap();
        w.wait_matching(a, cqa, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        // timed round
        let t0 = w.app_time(a);
        w.post_send(a, qa, SendWr { wr_id: 3, payload: vec![0], dst: None }).unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        w.post_send(b, qb, SendWr { wr_id: 4, payload: vec![0], dst: None }).unwrap();
        w.wait_matching(a, cqa, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        let rtt = w.app_time(a).duration_since(t0).as_micros_f64();
        assert!((40.0..180.0).contains(&rtt), "rtt {rtt} µs");
    }

    #[test]
    fn poll_miss_charges_spin_and_hit_returns_entry() {
        let (mut w, a, b, qa, _qb, _cqa, cqb) = connected_world();
        let spin_before = w.cpu(b).cycles(WorkClass::Verbs);
        assert!(w.poll(b, cqb).is_none());
        assert!(w.cpu(b).cycles(WorkClass::Verbs) > spin_before);
        w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![1], dst: None }).unwrap();
        w.run_until_idle();
        // advance the app clock past delivery by spinning
        let mut got = None;
        for _ in 0..100_000 {
            if let Some(c) = w.poll(b, cqb) {
                got = Some(c);
                break;
            }
        }
        let c = got.expect("poll eventually hits");
        assert!(matches!(c.kind, CompletionKind::Recv { .. }));
    }

    #[test]
    fn host_cpu_work_is_only_verbs_calls() {
        let (mut w, a, b, qa, qb, cqa, cqb) = connected_world();
        for i in 0..10 {
            // keep the receive queue topped up (8 were pre-posted)
            w.post_recv(b, qb, RecvWr { wr_id: 300 + i, capacity: 16 * 1024 }).unwrap();
            w.post_send(a, qa, SendWr { wr_id: i, payload: vec![0; 8192], dst: None }).unwrap();
            w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
            w.wait_matching(a, cqa, |c| c.kind == CompletionKind::Send);
        }
        let cpu = w.cpu(a);
        assert_eq!(cpu.cycles(WorkClass::Protocol), 0, "no host protocol work");
        assert_eq!(cpu.cycles(WorkClass::Interrupt), 0, "no interrupts");
        // the verbs path is Table 1 sized: ~806 cycles per message pair
        let verbs = cpu.cycles(WorkClass::Verbs);
        assert!(verbs < 30_000, "{verbs} cycles for 10 sends is too much");
    }

    #[test]
    fn udp_qps_exchange_datagrams() {
        let mut w = QpipWorld::myrinet();
        let a = w.add_node(NicConfig::paper_default());
        let b = w.add_node(NicConfig::paper_default());
        let cqa = w.create_cq(a);
        let cqb = w.create_cq(b);
        let qa = w.create_qp(a, ServiceType::UnreliableUdp, cqa, cqa).unwrap();
        let qb = w.create_qp(b, ServiceType::UnreliableUdp, cqb, cqb).unwrap();
        w.udp_bind(a, qa, 9000).unwrap();
        w.udp_bind(b, qb, 9001).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: 5, capacity: 1024 }).unwrap();
        let dst = Endpoint::new(w.addr(b), 9001);
        w.post_send(a, qa, SendWr { wr_id: 1, payload: b"dgram".to_vec(), dst: Some(dst) })
            .unwrap();
        // UDP send completes immediately
        let c = w.wait(a, cqa);
        assert_eq!(c.kind, CompletionKind::Send);
        let c = w.wait(b, cqb);
        match c.kind {
            CompletionKind::Recv { data, src } => {
                assert_eq!(data, b"dgram");
                assert_eq!(src.unwrap().port, 9000);
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn loss_on_fabric_is_recovered_transparently() {
        let (mut w, a, b, qa, _qb, cqa, cqb) = connected_world();
        // drop the next packet on the fabric (the fresh injector indexes
        // from zero): that is the data segment of the send below
        w.set_fault_plan(qpip_fabric::FaultPlan::DropIndices(vec![0]));
        w.post_send(a, qa, SendWr { wr_id: 77, payload: vec![9; 2048], dst: None }).unwrap();
        let c = w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        match c.kind {
            CompletionKind::Recv { data, .. } => assert_eq!(data, vec![9; 2048]),
            _ => unreachable!(),
        }
        let c = w.wait_matching(a, cqa, |c| c.kind == CompletionKind::Send);
        assert_eq!(c.wr_id, 77);
        assert!(w.nic(a).retransmissions() >= 1, "loss forced a retransmission");
    }

    /// Waiting on a CQ that can never produce must panic with a
    /// diagnostic that names the starved wait and shows where the
    /// completions actually went — not just "deadlocked".
    #[test]
    fn wait_deadlock_panic_names_the_pending_state() {
        let (mut w, a, b, qa, _qb, _cqa, _cqb) = connected_world();
        // a message flies a→b, so a Recv entry lands on b's CQ and a
        // Send entry on a's CQ — but we wait on a freshly created CQ
        // nothing feeds. Once the ACK exchange drains, the event queue
        // runs dry and wait() must explain the world state.
        w.post_send(a, qa, SendWr { wr_id: 5, payload: vec![3; 1024], dst: None }).unwrap();
        let wrong_cq = w.create_cq(a);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            w.wait(a, wrong_cq);
        }))
        .expect_err("wait() on a starved CQ must panic, not hang");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a message");
        assert!(msg.contains("wait() deadlocked"), "headline missing: {msg}");
        assert!(
            msg.contains(&format!("{wrong_cq} empty on node {}", a.0)),
            "starved wait not named: {msg}"
        );
        // the diagnostic shows where the completions actually are
        assert!(msg.contains("Send"), "sender's pending Send entry not shown: {msg}");
        assert!(msg.contains("Recv(1024B)"), "receiver's pending Recv entry not shown: {msg}");
        assert!(msg.contains(&format!("node {}", b.0)), "other node's state not dumped: {msg}");
        assert!(msg.contains("qp#"), "per-QP state not dumped: {msg}");
        assert!(msg.contains("hint:"), "hint missing: {msg}");
    }

    /// When the oracle trips inside a DES world, the report must name
    /// the failing invariant and include the connection's recent
    /// flight-recorder events — not just "invariant violated".
    #[test]
    fn oracle_report_names_invariant_and_dumps_recorder_tail() {
        let mut w = QpipWorld::myrinet();
        let a = w.add_node(NicConfig::paper_default());
        let b = w.add_node(NicConfig::paper_default());
        let rec = Arc::new(FlightRecorder::new(64));
        w.install_recorder(Arc::clone(&rec));
        let cqa = w.create_cq(a);
        let cqb = w.create_cq(b);
        let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
        let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: 1, capacity: 16 * 1024 }).unwrap();
        w.post_recv(a, qa, RecvWr { wr_id: 2, capacity: 16 * 1024 }).unwrap();
        w.tcp_listen(b, 5000, qb).unwrap();
        w.tcp_connect(a, qa, 4000, Endpoint::new(w.addr(b), 5000)).unwrap();
        w.wait(a, cqa);
        w.wait(b, cqb);

        // the handshake was recorded; pick node a's traced connection
        let conn = rec
            .scopes()
            .into_iter()
            .find(|&(n, c)| n == 0 && c != qpip_trace::NODE_SCOPE)
            .map(|(_, c)| c)
            .expect("handshake left a per-connection trace");
        let violation = qpip_netstack::invariant::InvariantViolation {
            invariant: "snd_seq_order",
            conn: Some(qpip_netstack::ConnId(conn)),
            detail: "snd_una=5 snd_nxt=3 buffered_end=9".to_string(),
        };
        let report = w.oracle_report(a.0, &violation);
        assert!(report.contains("TCB invariant `snd_seq_order` violated on node 0"), "{report}");
        assert!(report.contains("snd_una=5"), "detail missing: {report}");
        assert!(report.contains("flight-recorder events"), "{report}");
        // the dump shows real handshake traffic for that connection
        assert!(report.contains("flags S"), "recorder tail missing segment events: {report}");
        assert!(report.contains("syn_sent -> established"), "state transitions missing: {report}");
    }
}
