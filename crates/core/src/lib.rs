//! # qpip — Queue Pair IP
//!
//! A reproduction of *"Queue Pair IP: A Hybrid Architecture for System
//! Area Networks"* (Buonadonna & Culler, ISCA 2002): the Infiniband-style
//! **queue pair** communication abstraction implemented directly over
//! standard **TCP/UDP/IPv6** offloaded into an intelligent network
//! interface.
//!
//! The crate ties together the substrates of this workspace into the
//! paper's two testbeds:
//!
//! * [`world::QpipWorld`] — hosts with QPIP NICs (LANai-9-class
//!   firmware running the offloaded stack) on a Myrinet SAN, programmed
//!   through the **verbs API**: `create_qp`/`create_cq`,
//!   `post_send`/`post_recv`, `poll`/`wait`, `tcp_listen`/`tcp_connect`
//!   (§3, §4.1). Host-side verb costs follow Table 1 (≈ 2.5 µs per
//!   1-byte message); everything else happens on the NIC.
//! * [`baseline::SocketWorld`] — conventional hosts with host-resident
//!   stacks and sockets over Gigabit Ethernet or Myrinet/GM (§4.2's
//!   comparison systems).
//!
//! Both worlds share the protocol engine, the wire formats and the
//! measurement machinery, so every figure of the paper compares like
//! with like.
//!
//! ## Quickstart
//!
//! ```
//! use qpip::world::QpipWorld;
//! use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
//! use qpip_netstack::types::Endpoint;
//!
//! let mut world = QpipWorld::myrinet();
//! let client = world.add_node(NicConfig::paper_default());
//! let server = world.add_node(NicConfig::paper_default());
//!
//! // server: create a QP, post a receive buffer, monitor a port
//! let scq = world.create_cq(server);
//! let sqp = world.create_qp(server, ServiceType::ReliableTcp, scq, scq)?;
//! world.post_recv(server, sqp, RecvWr { wr_id: 1, capacity: 16 * 1024 })?;
//! world.tcp_listen(server, 5000, sqp)?;
//!
//! // client: connect and send one message
//! let ccq = world.create_cq(client);
//! let cqp = world.create_qp(client, ServiceType::ReliableTcp, ccq, ccq)?;
//! let dst = Endpoint::new(world.addr(server), 5000);
//! world.tcp_connect(client, cqp, 4000, dst)?;
//! let c = world.wait(client, ccq);
//! assert_eq!(c.kind, CompletionKind::ConnectionEstablished);
//!
//! world.post_send(client, cqp, SendWr { wr_id: 2, payload: b"hello".to_vec(), dst: None })?;
//! let c = world.wait_matching(server, scq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
//! if let CompletionKind::Recv { data, .. } = c.kind {
//!     assert_eq!(data, b"hello");
//! }
//! # Ok::<(), qpip_nic::NicError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod mixed;
pub mod world;

pub use mixed::MixedWorld;
pub use qpip_nic::{
    ChecksumMode, Completion, CompletionKind, CompletionStatus, CqId, MrKey, NicConfig, NicError,
    QpId, RdmaReadWr, RdmaWriteWr, RecvWr, SendWr, ServiceType,
};
pub use world::{NodeIdx, QpipWorld};
