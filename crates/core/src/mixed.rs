//! A mixed fabric: QPIP nodes and conventional socket hosts side by
//! side on one network.
//!
//! §3: "Using inter-network protocols … provides a straightforward
//! means to bridge the SAN to external networks … Communication can
//! occur between QPIP applications or QPIP and traditional (socket)
//! systems. QP to QP is the high performance mode … In the latter mode,
//! the remote end sees a conventional IP socket, but the QP end is
//! aware of the remote limitations and may have to re-assemble incoming
//! data into a complete unit."
//!
//! [`MixedWorld`] realizes exactly that: the same wire, one node with
//! the stack in its NIC behind queue pairs, the other with the stack on
//! its host behind sockets — both with their full cost models.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv6Addr;

use qpip_fabric::{Fabric, FabricConfig, TransmitOutcome};
use qpip_host::cpu::{CpuLedger, WorkClass};
use qpip_host::stack::{HostOutput, HostStack, SendOutcome, SockId, StackConfig};
use qpip_netstack::types::Endpoint;
use qpip_nic::{Completion, CqId, NicConfig, NicError, NicOutput, QpId, QpipNic, RecvWr, SendWr};
use qpip_sim::kernel::{EventId, Simulator};
use qpip_sim::params;
use qpip_sim::time::{SimDuration, SimTime};

use crate::world::NodeIdx;

#[derive(Debug)]
enum Ev {
    Packet { node: usize, bytes: qpip_wire::Packet },
    Timer { node: usize },
}

enum Backend {
    Qpip { nic: Box<QpipNic>, cpu: CpuLedger, cqs: HashMap<CqId, VecDeque<Completion>> },
    Host { stack: Box<HostStack>, events: Vec<HostOutput> },
}

struct Node {
    backend: Backend,
    app_time: SimTime,
    fabric_id: qpip_fabric::NodeId,
    timer_event: Option<(SimTime, EventId)>,
}

/// A network mixing QPIP and socket nodes.
pub struct MixedWorld {
    sim: Simulator<Ev>,
    fabric: Fabric,
    nodes: Vec<Node>,
    /// Fabric port → node index (dense: ports are assigned in attach
    /// order), so packet delivery is O(1) at any fleet size.
    fabric_to_node: Vec<usize>,
}

impl core::fmt::Debug for MixedWorld {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MixedWorld")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl MixedWorld {
    /// Creates a mixed world over the given fabric. The fabric MTU must
    /// suit both node kinds (e.g. 9000 for Myrinet carrying both).
    pub fn new(fabric: FabricConfig) -> Self {
        MixedWorld {
            sim: Simulator::new(),
            fabric: Fabric::new(fabric),
            nodes: Vec::new(),
            fabric_to_node: Vec::new(),
        }
    }

    /// Adds a QPIP node (stack in the NIC, queue-pair interface).
    pub fn add_qpip_node(&mut self, cfg: NicConfig) -> NodeIdx {
        let n = self.nodes.len();
        let addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0xaaaa, (n + 1) as u16);
        let mut cfg = cfg;
        cfg.mtu = cfg.mtu.min(self.fabric.config().mtu);
        let fabric_id = self.fabric.attach(addr);
        debug_assert_eq!(fabric_id.0 as usize, self.fabric_to_node.len());
        self.fabric_to_node.push(n);
        self.nodes.push(Node {
            backend: Backend::Qpip {
                nic: Box::new(QpipNic::new(cfg, addr)),
                cpu: CpuLedger::new(),
                cqs: HashMap::new(),
            },
            app_time: SimTime::ZERO,
            fabric_id,
            timer_event: None,
        });
        NodeIdx(n)
    }

    /// Adds a conventional socket host (stack on the host CPU).
    pub fn add_host_node(&mut self, cfg: StackConfig) -> NodeIdx {
        let n = self.nodes.len();
        let addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0xbbbb, (n + 1) as u16);
        let fabric_id = self.fabric.attach(addr);
        debug_assert_eq!(fabric_id.0 as usize, self.fabric_to_node.len());
        self.fabric_to_node.push(n);
        self.nodes.push(Node {
            backend: Backend::Host {
                stack: Box::new(HostStack::new(cfg, addr)),
                events: Vec::new(),
            },
            app_time: SimTime::ZERO,
            fabric_id,
            timer_event: None,
        });
        NodeIdx(n)
    }

    /// The address of a node.
    pub fn addr(&self, node: NodeIdx) -> Ipv6Addr {
        match &self.nodes[node.0].backend {
            Backend::Qpip { nic, .. } => nic.addr(),
            Backend::Host { stack, .. } => stack.addr(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Traffic and drop counters of a node's protocol engine, wherever
    /// it runs (NIC firmware or host kernel).
    pub fn engine_stats(&self, node: NodeIdx) -> qpip_netstack::engine::EngineStats {
        match &self.nodes[node.0].backend {
            Backend::Qpip { nic, .. } => nic.engine_stats(),
            Backend::Host { stack, .. } => stack.engine_stats(),
        }
    }

    /// Total discrete events the world's simulator has delivered.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Wall-clock drain rate of the event loop.
    pub fn events_per_sec(&self) -> f64 {
        self.sim.events_per_sec()
    }

    fn qpip(
        &mut self,
        node: NodeIdx,
    ) -> (&mut QpipNic, &mut CpuLedger, &mut HashMap<CqId, VecDeque<Completion>>, &mut SimTime)
    {
        let n = &mut self.nodes[node.0];
        match &mut n.backend {
            Backend::Qpip { nic, cpu, cqs } => (nic, cpu, cqs, &mut n.app_time),
            Backend::Host { .. } => panic!("node {} is a socket host", node.0),
        }
    }

    fn host(&mut self, node: NodeIdx) -> (&mut HostStack, &mut Vec<HostOutput>, &mut SimTime) {
        let n = &mut self.nodes[node.0];
        match &mut n.backend {
            Backend::Host { stack, events } => (stack, events, &mut n.app_time),
            Backend::Qpip { .. } => panic!("node {} is a QPIP node", node.0),
        }
    }

    // ----- QPIP-node verbs (subset mirroring QpipWorld) -------------------

    /// Creates a CQ on a QPIP node.
    pub fn create_cq(&mut self, node: NodeIdx) -> CqId {
        let (nic, _, cqs, _) = self.qpip(node);
        let cq = nic.create_cq();
        cqs.insert(cq, VecDeque::new());
        cq
    }

    /// Creates a QP on a QPIP node.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn create_qp(
        &mut self,
        node: NodeIdx,
        service: qpip_nic::ServiceType,
        send_cq: CqId,
        recv_cq: CqId,
    ) -> Result<QpId, NicError> {
        self.qpip(node).0.create_qp(service, send_cq, recv_cq)
    }

    /// Monitors a TCP port on a QPIP node.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn tcp_listen(&mut self, node: NodeIdx, port: u16, qp: QpId) -> Result<(), NicError> {
        self.qpip(node).0.tcp_listen(port, qp)
    }

    /// Connects a QPIP node's QP to any peer (QPIP or socket).
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn tcp_connect(
        &mut self,
        node: NodeIdx,
        qp: QpId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<(), NicError> {
        let t = self.verbs_preamble(node);
        let (nic, _, _, _) = self.qpip(node);
        let outs = nic.tcp_connect(t, qp, local_port, remote)?;
        self.absorb_qpip(node.0, outs);
        Ok(())
    }

    /// Posts a send WR on a QPIP node.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn post_send(&mut self, node: NodeIdx, qp: QpId, wr: SendWr) -> Result<(), NicError> {
        let t = self.verbs_preamble(node);
        let (nic, _, _, _) = self.qpip(node);
        let outs = nic.post_send(t, qp, wr)?;
        self.absorb_qpip(node.0, outs);
        Ok(())
    }

    /// Posts a receive WR on a QPIP node.
    ///
    /// # Errors
    ///
    /// Propagates [`NicError`].
    pub fn post_recv(&mut self, node: NodeIdx, qp: QpId, wr: RecvWr) -> Result<(), NicError> {
        let t = self.verbs_preamble(node);
        let (nic, _, _, _) = self.qpip(node);
        let outs = nic.post_recv(t, qp, wr)?;
        self.absorb_qpip(node.0, outs);
        Ok(())
    }

    /// Blocks a QPIP node's application until a CQ entry arrives.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs dry first.
    pub fn wait(&mut self, node: NodeIdx, cq: CqId) -> Completion {
        loop {
            {
                let (_, cpu, cqs, app_time) = self.qpip(node);
                if let Some(head) = cqs.get(&cq).and_then(|q| q.front()) {
                    let visible = head.visible_at;
                    *app_time = cpu.charge(
                        (*app_time).max(visible),
                        WorkClass::Verbs,
                        params::QPIP_POLL_HIT_CYCLES,
                    );
                    return cqs.get_mut(&cq).expect("cq").pop_front().expect("head");
                }
            }
            assert!(self.step(), "mixed wait() deadlocked on node {}", node.0);
        }
    }

    /// Waits for a matching completion, discarding others.
    pub fn wait_matching(
        &mut self,
        node: NodeIdx,
        cq: CqId,
        mut pred: impl FnMut(&Completion) -> bool,
    ) -> Completion {
        loop {
            let c = self.wait(node, cq);
            if pred(&c) {
                return c;
            }
        }
    }

    fn verbs_preamble(&mut self, node: NodeIdx) -> SimTime {
        let now = self.sim.now();
        let (_, cpu, _, app_time) = self.qpip(node);
        *app_time = (*app_time).max(now);
        let t = cpu.charge(*app_time, WorkClass::Verbs, params::qpip_post_cycles());
        *app_time = t;
        t + SimDuration::from_nanos(200)
    }

    // ----- socket-node API (subset mirroring SocketWorld) -----------------

    /// Creates a TCP socket on a host node.
    pub fn tcp_socket(&mut self, node: NodeIdx) -> SockId {
        self.host(node).0.tcp_socket()
    }

    /// Listens on a host node.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn listen(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        port: u16,
    ) -> Result<(), qpip_host::SockError> {
        self.host(node).0.listen(sock, port)
    }

    /// Connects a host socket to any peer, blocking until established.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn connect_blocking(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<(), qpip_host::SockError> {
        let t = {
            let now = self.sim.now();
            let (_, _, app_time) = self.host(node);
            (*app_time).max(now)
        };
        let outs = {
            let (stack, _, _) = self.host(node);
            stack.connect(t, sock, local_port, remote)?
        };
        self.absorb_host(node.0, outs);
        loop {
            {
                let (_, events, _) = self.host(node);
                if events
                    .iter()
                    .any(|e| matches!(e, HostOutput::Connected { sock: s, .. } if *s == sock))
                {
                    return Ok(());
                }
            }
            assert!(self.step(), "connect_blocking deadlocked");
        }
    }

    /// Accepts a connection on a listening host socket.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn accept_blocking(&mut self, node: NodeIdx, listener: SockId) -> SockId {
        loop {
            {
                let (_, events, app_time) = self.host(node);
                if let Some(pos) = events.iter().position(
                    |e| matches!(e, HostOutput::Accepted { listener: l, .. } if *l == listener),
                ) {
                    let HostOutput::Accepted { sock, at, .. } = events.remove(pos) else {
                        unreachable!()
                    };
                    *app_time = (*app_time).max(at);
                    return sock;
                }
            }
            assert!(self.step(), "accept_blocking deadlocked");
        }
    }

    /// Sends bytes from a host socket, blocking on buffer space.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn send_blocking(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        data: Vec<u8>,
    ) -> Result<(), qpip_host::SockError> {
        // a blocking write loops over pieces the socket buffer can hold
        let mut offset = 0;
        while offset < data.len() {
            let n = (data.len() - offset).min(16 * 1024);
            let t = {
                let now = self.sim.now();
                let (_, _, app_time) = self.host(node);
                (*app_time).max(now)
            };
            let (outcome, outs) = {
                let (stack, _, _) = self.host(node);
                stack.send(t, sock, data[offset..offset + n].to_vec())?
            };
            self.absorb_host(node.0, outs);
            match outcome {
                SendOutcome::Sent { done } => {
                    offset += n;
                    let (_, _, app_time) = self.host(node);
                    *app_time = (*app_time).max(done);
                }
                SendOutcome::WouldBlock => {
                    assert!(self.step(), "send_blocking deadlocked");
                }
            }
        }
        Ok(())
    }

    /// Receives exactly `len` bytes on a host socket.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn recv_exact(&mut self, node: NodeIdx, sock: SockId, len: usize) -> Vec<u8> {
        let mut got = Vec::with_capacity(len);
        while got.len() < len {
            let readable = self.host(node).0.readable(sock);
            if readable == 0 {
                assert!(self.step(), "recv_exact deadlocked at {} bytes", got.len());
                continue;
            }
            let t = {
                let now = self.sim.now();
                let (_, _, app_time) = self.host(node);
                (*app_time).max(now)
            };
            let (data, done) = {
                let (stack, _, _) = self.host(node);
                stack.recv(t, sock, len - got.len()).expect("known socket")
            };
            got.extend(data);
            let (_, _, app_time) = self.host(node);
            *app_time = (*app_time).max(done);
        }
        got
    }

    // ----- event loop ------------------------------------------------------

    /// Processes one event; `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.sim.next() else {
            return false;
        };
        match ev {
            Ev::Packet { node, bytes } => match &mut self.nodes[node].backend {
                Backend::Qpip { nic, .. } => {
                    let outs = nic.on_packet(t, &bytes);
                    self.absorb_qpip(node, outs);
                    self.enforce_oracle(node);
                }
                Backend::Host { stack, .. } => {
                    let outs = stack.on_frame(t, &bytes);
                    self.absorb_host(node, outs);
                    self.enforce_oracle(node);
                }
            },
            Ev::Timer { node } => {
                self.nodes[node].timer_event = None;
                match &mut self.nodes[node].backend {
                    Backend::Qpip { nic, .. } => {
                        let outs = nic.on_timer(t);
                        self.absorb_qpip(node, outs);
                    }
                    Backend::Host { stack, .. } => {
                        let outs = stack.on_timer(t);
                        self.absorb_host(node, outs);
                    }
                }
                self.enforce_oracle(node);
            }
        }
        true
    }

    /// Debug-build oracle gate: after every event, surface any TCB
    /// invariant violation latched by either backend's engine.
    ///
    /// # Panics
    ///
    /// Panics naming the violated invariant.
    #[cfg(debug_assertions)]
    fn enforce_oracle(&mut self, node: usize) {
        let v = match &mut self.nodes[node].backend {
            Backend::Qpip { nic, .. } => nic.take_invariant_violation(),
            Backend::Host { stack, .. } => stack.take_invariant_violation(),
        };
        if let Some(v) = v {
            panic!("TCB invariant `{}` violated on node {node}: {}", v.invariant, v.detail);
        }
    }

    #[cfg(not(debug_assertions))]
    fn enforce_oracle(&mut self, _node: usize) {}

    fn transmit(&mut self, node: usize, at: SimTime, dst: Ipv6Addr, bytes: qpip_wire::Packet) {
        let from = self.nodes[node].fabric_id;
        if let TransmitOutcome::Delivered { to, at: arrive, marked } =
            self.fabric.transmit(at, from, dst, bytes.len())
        {
            let dest = self.fabric_to_node[to.0 as usize];
            let mut bytes = bytes;
            if marked
                && qpip_wire::ipv6::Ipv6Header::ecn_of_packet(&bytes)
                    == qpip_wire::ipv6::Ecn::Capable
            {
                qpip_wire::ipv6::Ipv6Header::set_ecn_in_packet(
                    &mut bytes,
                    qpip_wire::ipv6::Ecn::CongestionExperienced,
                );
            }
            let arrive = arrive.max(self.sim.now());
            self.sim.schedule_at(arrive, Ev::Packet { node: dest, bytes });
        }
    }

    fn absorb_qpip(&mut self, node: usize, outs: Vec<NicOutput>) {
        for o in outs {
            match o {
                NicOutput::Transmit { at, dst, bytes, .. } => self.transmit(node, at, dst, bytes),
                NicOutput::Complete(cq, c) => {
                    let Backend::Qpip { cqs, .. } = &mut self.nodes[node].backend else {
                        unreachable!()
                    };
                    cqs.entry(cq).or_default().push_back(c);
                }
            }
        }
        self.refresh_timer(node);
    }

    fn absorb_host(&mut self, node: usize, outs: Vec<HostOutput>) {
        for o in outs {
            match o {
                HostOutput::Frame { at, dst, bytes } => self.transmit(node, at, dst, bytes),
                ev => {
                    if let HostOutput::DataReady { at, .. }
                    | HostOutput::Connected { at, .. }
                    | HostOutput::SendSpace { at, .. }
                    | HostOutput::Accepted { at, .. } = &ev
                    {
                        let n = &mut self.nodes[node];
                        n.app_time = n.app_time.max(*at);
                    }
                    let Backend::Host { events, .. } = &mut self.nodes[node].backend else {
                        unreachable!()
                    };
                    events.push(ev);
                }
            }
        }
        self.refresh_timer(node);
    }

    fn refresh_timer(&mut self, node: usize) {
        let deadline = match &self.nodes[node].backend {
            Backend::Qpip { nic, .. } => nic.next_deadline(),
            Backend::Host { stack, .. } => stack.next_deadline(),
        };
        let current = self.nodes[node].timer_event;
        match (deadline, current) {
            (Some(d), Some((t, _))) if t <= d => {}
            (Some(d), existing) => {
                if let Some((_, id)) = existing {
                    self.sim.cancel(id);
                }
                let at = d.max(self.sim.now());
                let id = self.sim.schedule_at(at, Ev::Timer { node });
                self.nodes[node].timer_event = Some((at, id));
            }
            (None, Some((_, id))) => {
                self.sim.cancel(id);
                self.nodes[node].timer_event = None;
            }
            (None, None) => {}
        }
    }
}
