//! The baseline testbed: host-based socket stacks over a fabric.
//!
//! [`SocketWorld`] is the counterpart of [`crate::world::QpipWorld`] for
//! the paper's comparison systems — IP over Gigabit Ethernet and IP over
//! Myrinet/GM (§4.2) — wiring `qpip-host` stacks to a `qpip-fabric`
//! network with the same event loop discipline, so both sides of every
//! figure are measured the same way.

use qpip_fabric::{Fabric, FabricConfig, TransmitOutcome};
use qpip_host::cpu::CpuLedger;
use qpip_host::stack::{HostOutput, HostStack, SendOutcome, SockError, SockId, StackConfig};
use qpip_netstack::types::Endpoint;
use qpip_sim::kernel::{EventId, Simulator};
use qpip_sim::time::SimTime;

use crate::world::NodeIdx;

#[derive(Debug)]
enum WorldEvent {
    Frame { node: usize, bytes: qpip_wire::Packet },
    Timer { node: usize },
}

struct Node {
    stack: HostStack,
    app_time: SimTime,
    fabric_id: qpip_fabric::NodeId,
    timer_event: Option<(SimTime, EventId)>,
    events: Vec<HostOutput>,
}

/// A simulated network of conventional socket hosts.
pub struct SocketWorld {
    sim: Simulator<WorldEvent>,
    fabric: Fabric,
    nodes: Vec<Node>,
    /// Fabric port → node index (dense: ports are assigned in attach
    /// order), so packet delivery is O(1) at any fleet size.
    fabric_to_node: Vec<usize>,
}

impl core::fmt::Debug for SocketWorld {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SocketWorld")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl SocketWorld {
    /// Creates a world over the given fabric.
    pub fn new(fabric: FabricConfig) -> Self {
        SocketWorld {
            sim: Simulator::new(),
            fabric: Fabric::new(fabric),
            nodes: Vec::new(),
            fabric_to_node: Vec::new(),
        }
    }

    /// The IP-over-Gigabit-Ethernet testbed (§4.2.1).
    pub fn gige() -> Self {
        SocketWorld::new(FabricConfig::gigabit_ethernet())
    }

    /// The IP-over-Myrinet (GM, 9000-byte MTU) testbed (§4.2.1).
    pub fn gm_myrinet() -> Self {
        SocketWorld::new(FabricConfig::myrinet_gm())
    }

    /// Adds a host; the stack configuration should match the fabric.
    pub fn add_node(&mut self, cfg: StackConfig) -> NodeIdx {
        let n = self.nodes.len();
        let addr = std::net::Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, (n + 1) as u16);
        let fabric_id = self.fabric.attach(addr);
        debug_assert_eq!(fabric_id.0 as usize, self.fabric_to_node.len());
        self.fabric_to_node.push(n);
        self.nodes.push(Node {
            stack: HostStack::new(cfg, addr),
            app_time: SimTime::ZERO,
            fabric_id,
            timer_event: None,
            events: Vec::new(),
        });
        NodeIdx(n)
    }

    /// The address of a node.
    pub fn addr(&self, node: NodeIdx) -> std::net::Ipv6Addr {
        self.nodes[node.0].stack.addr()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// A node's application clock.
    pub fn app_time(&self, node: NodeIdx) -> SimTime {
        self.nodes[node.0].app_time
    }

    /// Host CPU ledger of a node.
    pub fn cpu(&self, node: NodeIdx) -> &CpuLedger {
        self.nodes[node.0].stack.cpu()
    }

    /// Charges application cycles on a node.
    pub fn charge_app(&mut self, node: NodeIdx, cycles: u64) {
        let n = &mut self.nodes[node.0];
        n.app_time = n.stack.cpu_mut().charge(n.app_time, qpip_host::WorkClass::App, cycles);
    }

    /// Stack access for instrumentation.
    pub fn stack(&self, node: NodeIdx) -> &HostStack {
        &self.nodes[node.0].stack
    }

    // ----- sockets ---------------------------------------------------------

    /// Creates a TCP socket.
    pub fn tcp_socket(&mut self, node: NodeIdx) -> SockId {
        self.nodes[node.0].stack.tcp_socket()
    }

    /// Creates a UDP socket.
    pub fn udp_socket(&mut self, node: NodeIdx) -> SockId {
        self.nodes[node.0].stack.udp_socket()
    }

    /// Binds a UDP socket.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    pub fn udp_bind(&mut self, node: NodeIdx, sock: SockId, port: u16) -> Result<(), SockError> {
        self.nodes[node.0].stack.udp_bind(sock, port)
    }

    /// Listens on a TCP port.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    pub fn listen(&mut self, node: NodeIdx, sock: SockId, port: u16) -> Result<(), SockError> {
        self.nodes[node.0].stack.listen(sock, port)
    }

    /// Connects and blocks until established; returns the connected
    /// socket on success.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks before the handshake finishes.
    pub fn connect_blocking(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<(), SockError> {
        let t = self.nodes[node.0].app_time.max(self.sim.now());
        let outs = self.nodes[node.0].stack.connect(t, sock, local_port, remote)?;
        self.absorb(node.0, outs);
        self.block_until(node, |evs| {
            evs.iter().any(|e| matches!(e, HostOutput::Connected { sock: s, .. } if *s == sock))
        });
        Ok(())
    }

    /// Blocks until a listener produces a connection; returns the new
    /// socket.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn accept_blocking(&mut self, node: NodeIdx, listener: SockId) -> SockId {
        self.block_until(node, |evs| {
            evs.iter()
                .any(|e| matches!(e, HostOutput::Accepted { listener: l, .. } if *l == listener))
        });
        let evs = &mut self.nodes[node.0].events;
        let pos = evs
            .iter()
            .position(|e| matches!(e, HostOutput::Accepted { listener: l, .. } if *l == listener))
            .expect("just observed");
        let HostOutput::Accepted { sock, at, .. } = evs.remove(pos) else { unreachable!() };
        let n = &mut self.nodes[node.0];
        n.app_time = n.app_time.max(at);
        sock
    }

    /// Sends all of `data`, blocking (and retrying) when the socket
    /// buffer is full. Returns when the final write syscall returns.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock while waiting for send space.
    pub fn send_blocking(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        data: Vec<u8>,
    ) -> Result<(), SockError> {
        // a blocking write loops over pieces the socket buffer can hold
        let mut offset = 0;
        while offset < data.len() {
            let n = (data.len() - offset).min(16 * 1024);
            let piece = data[offset..offset + n].to_vec();
            let t = self.nodes[node.0].app_time.max(self.sim.now());
            let (outcome, outs) = self.nodes[node.0].stack.send(t, sock, piece)?;
            self.absorb(node.0, outs);
            match outcome {
                SendOutcome::Sent { done } => {
                    offset += n;
                    let nd = &mut self.nodes[node.0];
                    nd.app_time = nd.app_time.max(done);
                }
                SendOutcome::WouldBlock => {
                    // sleep until the stack signals space
                    self.nodes[node.0]
                        .events
                        .retain(|e| !matches!(e, HostOutput::SendSpace { .. }));
                    self.block_until(node, |evs| {
                        evs.iter().any(|e| matches!(e, HostOutput::SendSpace { .. }))
                    });
                }
            }
        }
        Ok(())
    }

    /// Receives exactly `len` bytes, blocking as needed.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn recv_exact(&mut self, node: NodeIdx, sock: SockId, len: usize) -> Vec<u8> {
        let mut got = Vec::with_capacity(len);
        while got.len() < len {
            if self.nodes[node.0].stack.readable(sock) == 0 {
                self.block_until(node, |evs| {
                    evs.iter()
                        .any(|e| matches!(e, HostOutput::DataReady { sock: s, .. } if *s == sock))
                });
                self.nodes[node.0]
                    .events
                    .retain(|e| !matches!(e, HostOutput::DataReady { sock: s, .. } if *s == sock));
            }
            let t = self.nodes[node.0].app_time.max(self.sim.now());
            let (data, done) =
                self.nodes[node.0].stack.recv(t, sock, len - got.len()).expect("known socket");
            got.extend(data);
            let n = &mut self.nodes[node.0];
            n.app_time = n.app_time.max(done);
        }
        got
    }

    /// Non-blocking send attempt: returns `true` when accepted, `false`
    /// when the send buffer is full (use [`SocketWorld::step`] to make
    /// progress and retry) — the building block for pumped workloads
    /// like ttcp where one driver loop plays both endpoints.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    pub fn try_send(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        data: Vec<u8>,
    ) -> Result<bool, SockError> {
        let t = self.nodes[node.0].app_time.max(self.sim.now());
        let (outcome, outs) = self.nodes[node.0].stack.send(t, sock, data)?;
        self.absorb(node.0, outs);
        match outcome {
            SendOutcome::Sent { done } => {
                let n = &mut self.nodes[node.0];
                n.app_time = n.app_time.max(done);
                Ok(true)
            }
            SendOutcome::WouldBlock => Ok(false),
        }
    }

    /// Bytes currently readable on a socket.
    pub fn readable(&self, node: NodeIdx, sock: SockId) -> usize {
        self.nodes[node.0].stack.readable(sock)
    }

    /// Drains up to `max` readable bytes without blocking.
    pub fn recv_available(&mut self, node: NodeIdx, sock: SockId, max: usize) -> Vec<u8> {
        if self.readable(node, sock) == 0 {
            return Vec::new();
        }
        let t = self.nodes[node.0].app_time.max(self.sim.now());
        let (data, done) = self.nodes[node.0].stack.recv(t, sock, max).expect("known socket");
        let n = &mut self.nodes[node.0];
        n.app_time = n.app_time.max(done);
        data
    }

    /// Sends one UDP datagram.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    pub fn udp_send(
        &mut self,
        node: NodeIdx,
        sock: SockId,
        dst: Endpoint,
        data: &[u8],
    ) -> Result<(), SockError> {
        let t = self.nodes[node.0].app_time.max(self.sim.now());
        let (done, outs) = self.nodes[node.0].stack.udp_send(t, sock, dst, data)?;
        self.absorb(node.0, outs);
        let n = &mut self.nodes[node.0];
        n.app_time = n.app_time.max(done);
        Ok(())
    }

    /// Blocks until a UDP datagram is readable, then returns it.
    ///
    /// # Panics
    ///
    /// Panics on simulation deadlock.
    pub fn udp_recv_blocking(&mut self, node: NodeIdx, sock: SockId) -> (Endpoint, Vec<u8>) {
        loop {
            let t = self.nodes[node.0].app_time.max(self.sim.now());
            if let Some((src, data, done)) = self.nodes[node.0].stack.udp_recv(t, sock) {
                let n = &mut self.nodes[node.0];
                n.app_time = n.app_time.max(done);
                return (src, data);
            }
            assert!(self.step(), "udp_recv deadlocked");
        }
    }

    /// Half-closes a TCP socket.
    ///
    /// # Errors
    ///
    /// Propagates [`SockError`].
    pub fn close(&mut self, node: NodeIdx, sock: SockId) -> Result<(), SockError> {
        let t = self.nodes[node.0].app_time.max(self.sim.now());
        let outs = self.nodes[node.0].stack.close(t, sock)?;
        self.absorb(node.0, outs);
        Ok(())
    }

    // ----- event loop -------------------------------------------------------

    /// Processes one event; `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.sim.next() else {
            return false;
        };
        match ev {
            WorldEvent::Frame { node, bytes } => {
                let outs = self.nodes[node].stack.on_frame(t, &bytes);
                self.absorb(node, outs);
                self.enforce_oracle(node);
            }
            WorldEvent::Timer { node } => {
                self.nodes[node].timer_event = None;
                let outs = self.nodes[node].stack.on_timer(t);
                self.absorb(node, outs);
                self.enforce_oracle(node);
            }
        }
        true
    }

    /// Debug-build oracle gate: after every event, surface any TCB
    /// invariant violation the engine's per-event hook latched.
    ///
    /// # Panics
    ///
    /// Panics naming the violated invariant.
    #[cfg(debug_assertions)]
    fn enforce_oracle(&mut self, node: usize) {
        if let Some(v) = self.nodes[node].stack.take_invariant_violation() {
            panic!("TCB invariant `{}` violated on node {node}: {}", v.invariant, v.detail);
        }
    }

    #[cfg(not(debug_assertions))]
    fn enforce_oracle(&mut self, _node: usize) {}

    /// Runs until idle.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    fn block_until(&mut self, node: NodeIdx, pred: impl Fn(&[HostOutput]) -> bool) {
        loop {
            if pred(&self.nodes[node.0].events) {
                // the waking event's timestamp lifts the app clock
                return;
            }
            assert!(self.step(), "socket world deadlocked waiting on node {}", node.0);
        }
    }

    fn absorb(&mut self, node: usize, outs: Vec<HostOutput>) {
        for o in outs {
            match o {
                HostOutput::Frame { at, dst, bytes } => {
                    let from = self.nodes[node].fabric_id;
                    match self.fabric.transmit(at, from, dst, bytes.len()) {
                        TransmitOutcome::Delivered { to, at: arrive, marked } => {
                            let dest = self.fabric_to_node[to.0 as usize];
                            let mut bytes = bytes;
                            if marked
                                && qpip_wire::ipv6::Ipv6Header::ecn_of_packet(&bytes)
                                    == qpip_wire::ipv6::Ecn::Capable
                            {
                                qpip_wire::ipv6::Ipv6Header::set_ecn_in_packet(
                                    &mut bytes,
                                    qpip_wire::ipv6::Ecn::CongestionExperienced,
                                );
                            }
                            let arrive = arrive.max(self.sim.now());
                            self.sim.schedule_at(arrive, WorldEvent::Frame { node: dest, bytes });
                        }
                        TransmitOutcome::Dropped(_) => {}
                    }
                }
                ev => {
                    // lift the app clock to wakeup instants when blocked
                    if let HostOutput::DataReady { at, .. }
                    | HostOutput::Connected { at, .. }
                    | HostOutput::SendSpace { at, .. } = &ev
                    {
                        let n = &mut self.nodes[node];
                        n.app_time = n.app_time.max(*at);
                    }
                    self.nodes[node].events.push(ev);
                }
            }
        }
        self.refresh_timer(node);
    }

    fn refresh_timer(&mut self, node: usize) {
        let deadline = self.nodes[node].stack.next_deadline();
        let current = self.nodes[node].timer_event;
        match (deadline, current) {
            (Some(d), Some((t, _))) if t <= d => {}
            (Some(d), existing) => {
                if let Some((_, id)) = existing {
                    self.sim.cancel(id);
                }
                let at = d.max(self.sim.now());
                let id = self.sim.schedule_at(at, WorldEvent::Timer { node });
                self.nodes[node].timer_event = Some((at, id));
            }
            (None, Some((_, id))) => {
                self.sim.cancel(id);
                self.nodes[node].timer_event = None;
            }
            (None, None) => {}
        }
    }

    /// Discards buffered application events on a node (between phases).
    pub fn clear_events(&mut self, node: NodeIdx) {
        self.nodes[node.0].events.clear();
    }

    /// Buffered application events on a node (wakeups not yet consumed).
    pub fn events(&self, node: NodeIdx) -> &[HostOutput] {
        &self.nodes[node.0].events
    }

    /// Fabric statistics.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Traffic and drop counters of a node's in-kernel protocol engine.
    pub fn engine_stats(&self, node: NodeIdx) -> qpip_netstack::engine::EngineStats {
        self.nodes[node.0].stack.engine_stats()
    }

    /// Total discrete events the world's simulator has delivered.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Wall-clock drain rate of the event loop.
    pub fn events_per_sec(&self) -> f64 {
        self.sim.events_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_gige() -> (SocketWorld, NodeIdx, NodeIdx, SockId, SockId) {
        let mut w = SocketWorld::gige();
        let a = w.add_node(StackConfig::gige());
        let b = w.add_node(StackConfig::gige());
        let ls = w.tcp_socket(b);
        w.listen(b, ls, 5000).unwrap();
        let cs = w.tcp_socket(a);
        let remote = Endpoint::new(w.addr(b), 5000);
        w.connect_blocking(a, cs, 4000, remote).unwrap();
        let ss = w.accept_blocking(b, ls);
        (w, a, b, cs, ss)
    }

    #[test]
    fn sockets_connect_and_transfer_over_gige_fabric() {
        let (mut w, a, b, cs, ss) = connected_gige();
        let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        w.send_blocking(a, cs, payload.clone()).unwrap();
        let got = w.recv_exact(b, ss, payload.len());
        assert_eq!(got, payload);
    }

    #[test]
    fn gige_transfer_burns_host_cpu_on_both_sides() {
        let (mut w, a, b, cs, ss) = connected_gige();
        w.send_blocking(a, cs, vec![0; 64 * 1024]).unwrap();
        let _ = w.recv_exact(b, ss, 64 * 1024);
        assert!(w.cpu(a).total_cycles() > 50_000, "{}", w.cpu(a).total_cycles());
        assert!(w.cpu(b).total_cycles() > 50_000, "{}", w.cpu(b).total_cycles());
        assert!(w.stack(b).interrupts() > 0);
    }

    #[test]
    fn udp_round_trip_over_gige() {
        let mut w = SocketWorld::gige();
        let a = w.add_node(StackConfig::gige());
        let b = w.add_node(StackConfig::gige());
        let sa = w.udp_socket(a);
        let sb = w.udp_socket(b);
        w.udp_bind(a, sa, 7000).unwrap();
        w.udp_bind(b, sb, 7001).unwrap();
        let db = Endpoint::new(w.addr(b), 7001);
        w.udp_send(a, sa, db, b"ping").unwrap();
        let (src, data) = w.udp_recv_blocking(b, sb);
        assert_eq!(data, b"ping");
        let da = src;
        w.udp_send(b, sb, da, b"pong").unwrap();
        let (_, data) = w.udp_recv_blocking(a, sa);
        assert_eq!(data, b"pong");
        // round trip took tens of microseconds of simulated time
        let rtt = w.app_time(a).as_micros_f64();
        assert!((30.0..400.0).contains(&rtt), "{rtt}");
    }

    #[test]
    fn gm_world_uses_jumbo_frames() {
        let mut w = SocketWorld::gm_myrinet();
        let a = w.add_node(StackConfig::gm_myrinet());
        let b = w.add_node(StackConfig::gm_myrinet());
        let ls = w.tcp_socket(b);
        w.listen(b, ls, 5000).unwrap();
        let cs = w.tcp_socket(a);
        let remote = Endpoint::new(w.addr(b), 5000);
        w.connect_blocking(a, cs, 4000, remote).unwrap();
        let ss = w.accept_blocking(b, ls);
        w.send_blocking(a, cs, vec![3; 32 * 1024]).unwrap();
        let got = w.recv_exact(b, ss, 32 * 1024);
        assert_eq!(got.len(), 32 * 1024);
        // 9000-byte MTU → at most ceil(32768/8928) + handshake frames
        let frames = w.fabric().stats().delivered;
        assert!(frames < 30, "{frames} frames is too many for jumbo MTU");
    }
}
