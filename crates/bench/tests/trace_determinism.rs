//! Determinism of the flight-recorder pipeline: the DES is seeded and
//! tracing is passive, so the same workload must produce byte-identical
//! JSONL exports run over run — the property that makes traces diffable
//! across machines and commits.

use std::sync::Arc;

use qpip::NicConfig;
use qpip_bench::workloads::pingpong::qpip_tcp_rtt_observed;
use qpip_trace::FlightRecorder;

fn traced_pingpong_jsonl() -> (String, f64) {
    let rec = Arc::new(FlightRecorder::new(4096));
    let (rtt, _) = qpip_tcp_rtt_observed(NicConfig::paper_default(), 1, 10, Some(Arc::clone(&rec)));
    (rec.export_jsonl(), rtt.mean_us)
}

#[test]
fn same_seed_produces_byte_identical_jsonl_traces() {
    let (a, rtt_a) = traced_pingpong_jsonl();
    let (b, rtt_b) = traced_pingpong_jsonl();
    assert!(!a.is_empty(), "traced pingpong produced no events");
    assert!(a.lines().count() > 50, "suspiciously short trace: {} lines", a.lines().count());
    assert_eq!(a, b, "two identically-seeded runs diverged in their trace bytes");
    assert_eq!(rtt_a, rtt_b, "two identically-seeded runs diverged in RTT");
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let untraced = qpip_bench::workloads::pingpong::qpip_tcp_rtt(NicConfig::paper_default(), 1, 10);
    let (_, traced_rtt) = traced_pingpong_jsonl();
    assert_eq!(untraced.mean_us, traced_rtt, "installing a recorder changed the simulation");
}
