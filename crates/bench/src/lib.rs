//! # qpip-bench — experiment harnesses for the QPIP reproduction
//!
//! One binary per table/figure of the paper's evaluation (§4.2):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3_rtt` | Figure 3 — application-to-application RTT |
//! | `fig4_throughput` | Figure 4 — throughput & CPU utilization |
//! | `table1_overhead` | Table 1 — host send/receive overhead |
//! | `tables23_occupancy` | Tables 2 & 3 — NIC per-stage occupancy |
//! | `fig7_nbd` | Figure 7 — NBD client performance |
//! | `ablations` | design-choice sweeps (checksum, multiply, MTU) |
//!
//! The library half holds the reusable workload generators
//! ([`workloads`]) and the report formatting ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;
pub mod report;
pub mod workloads;
