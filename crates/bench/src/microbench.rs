//! Minimal wall-clock micro-benchmark harness.
//!
//! A self-contained replacement for Criterion: adaptive batch sizing so
//! each sample runs long enough for the OS timer to resolve, a handful
//! of samples, and the median ns/op. No external crates, no statistics
//! beyond what a perf-trajectory JSON needs. Simulation results never
//! depend on this module — it measures the simulator, not the model.

use std::hint::black_box;
use std::time::Instant;

/// Target wall-clock time per sample batch.
const BATCH_NANOS: u128 = 20_000_000; // 20 ms
/// Samples taken per benchmark (median reported).
const SAMPLES: usize = 9;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `checksum/9000`.
    pub name: String,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
    /// Iterations per sample batch (diagnostic).
    pub batch_iters: u64,
}

impl Measurement {
    /// Operations per second implied by the median.
    pub fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op
    }
}

fn time_batch<R>(iters: u64, f: &mut impl FnMut() -> R) -> u128 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos()
}

/// Measures `f`, returning the median ns per call.
///
/// Warm-up doubles the batch size until one batch takes at least
/// [`BATCH_NANOS`]; then [`SAMPLES`] batches run and the median
/// per-iteration time is reported, which rejects scheduler noise in
/// either direction.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    let mut iters = 1u64;
    loop {
        let nanos = time_batch(iters, &mut f);
        if nanos >= BATCH_NANOS || iters >= 1 << 40 {
            break;
        }
        // jump straight towards the target rather than doubling blindly
        let factor = (BATCH_NANOS / nanos.max(1)).clamp(2, 1 << 10) as u64;
        iters = iters.saturating_mul(factor);
    }
    let mut samples: Vec<f64> =
        (0..SAMPLES).map(|_| time_batch(iters, &mut f) as f64 / iters as f64).collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    Measurement { name: name.to_string(), ns_per_op: samples[SAMPLES / 2], batch_iters: iters }
}

/// A before/after pair for the perf-trajectory report.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline (pre-optimization reference implementation) ns/op.
    pub baseline_ns: f64,
    /// Current implementation ns/op.
    pub current_ns: f64,
}

impl Comparison {
    /// How many times faster the current implementation is.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.current_ns
    }
}

/// Benchmarks `current` against `baseline` under one name.
pub fn compare<R, S>(
    name: &str,
    mut baseline: impl FnMut() -> R,
    mut current: impl FnMut() -> S,
) -> Comparison {
    let b = bench(&format!("{name}/baseline"), &mut baseline);
    let c = bench(&format!("{name}/current"), &mut current);
    Comparison { name: name.to_string(), baseline_ns: b.ns_per_op, current_ns: c.ns_per_op }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("noop_add", || black_box(1u64) + black_box(2u64));
        assert!(m.ns_per_op > 0.0);
        assert!(m.batch_iters >= 1);
        assert!(m.ops_per_sec() > 0.0);
    }

    #[test]
    fn speedup_is_ratio() {
        let c = Comparison { name: "x".into(), baseline_ns: 30.0, current_ns: 10.0 };
        assert!((c.speedup() - 3.0).abs() < 1e-12);
    }
}
