//! Table/figure output helpers: every experiment binary prints the same
//! paper-vs-measured layout so EXPERIMENTS.md can be assembled directly
//! from harness output.
//!
//! Every JSON emitter stamps [`SCHEMA_VERSION`] so downstream dashboards
//! can detect layout changes, and none of them may embed anything
//! host- or time-identifying (hostnames, usernames, paths, dates):
//! measured *values* naturally vary with the machine, but the document
//! itself must not say which machine or when.

use qpip_trace::snapshot::{counters_json, Snapshot};

/// Version of the JSON layouts below. Bump when a field is added,
/// renamed or removed in any emitter.
///
/// v3: every document gains a `counters` section — the unified
/// [`Snapshot`] rendering of the workload's stats structs — and the
/// per-stream `retransmissions`/`proxy_dropped` fields of the xport
/// report moved into it (as `<scenario>_engine.*_retransmits` and
/// `<scenario>_proxy.dropped`).
pub const SCHEMA_VERSION: u32 = 3;

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<w$}", c, w = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Renders the datapath perf-trajectory report as JSON.
///
/// Hand-rolled serialization (no serde in the workspace): the schema is
/// a flat list of `{name, baseline_ns, current_ns, speedup}` objects
/// plus free-form scalar metrics and the unified counter snapshots of
/// a reference DES run, which is all a trend dashboard needs.
///
/// ```json
/// {
///   "schema_version": 3,
///   "benches": [
///     {"name": "checksum/9000", "baseline_ns": 1.0, "current_ns": 0.2, "speedup": 5.0}
///   ],
///   "metrics": {"des_events_per_sec": 1.0e7},
///   "counters": {"engine": {"rx_packets": 96}}
/// }
/// ```
pub fn datapath_json(
    benches: &[crate::microbench::Comparison],
    metrics: &[(&str, f64)],
    counters: &[Snapshot],
) -> String {
    let mut out = format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"benches\": [\n");
    for (i, c) in benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.2}, \"current_ns\": {:.2}, \"speedup\": {:.3}}}{}\n",
            c.name,
            c.baseline_ns,
            c.current_ns,
            c.speedup(),
            if i + 1 < benches.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        out.push_str(&format!(
            "    \"{k}\": {v:.2}{}\n",
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"counters\": {}\n}}\n", counters_json(counters, 2)));
    out
}

/// Renders the many-flow fan-in report as JSON, one object per fleet
/// size plus summary metrics.
///
/// ```json
/// {
///   "schema_version": 3,
///   "scales": [
///     {"flows": 64, "wall_s": 0.1, "des_events": 10000,
///      "des_events_per_sec": 1.0e6, "events_per_flow": 156.2,
///      "timer_scan_ns": 800.0, "timer_indexed_ns": 20.0,
///      "timer_speedup": 40.0}
///   ],
///   "metrics": {"timer_speedup_at_max_flows": 40.0},
///   "counters": {"engine": {"rx_packets": 4096}}
/// }
/// ```
///
/// `counters` carries the fleet-wide snapshots of the largest scale's
/// world (engine + NIC summed across every node, plus the fabric).
pub fn manyflow_json(
    scales: &[crate::workloads::manyflow::ManyflowScale],
    counters: &[Snapshot],
) -> String {
    let mut out = format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"scales\": [\n");
    for (i, s) in scales.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"flows\": {}, \"wall_s\": {:.3}, \"des_events\": {}, \
             \"des_events_per_sec\": {:.0}, \"events_per_flow\": {:.1}, \
             \"timer_scan_ns\": {:.1}, \"timer_indexed_ns\": {:.1}, \
             \"timer_speedup\": {:.2}}}{}\n",
            s.flows,
            s.wall_s,
            s.des_events,
            s.des_events_per_sec,
            s.events_per_flow,
            s.timer.baseline_ns,
            s.timer.current_ns,
            s.timer.speedup(),
            if i + 1 < scales.len() { "," } else { "" },
        ));
    }
    let speedup_at_max = scales.last().map_or(0.0, |s| s.timer.speedup());
    let flatness = match (scales.first(), scales.last()) {
        (Some(a), Some(b)) if a.events_per_flow > 0.0 => b.events_per_flow / a.events_per_flow,
        _ => 0.0,
    };
    out.push_str("  ],\n  \"metrics\": {\n");
    out.push_str(&format!("    \"timer_speedup_at_max_flows\": {speedup_at_max:.2},\n"));
    out.push_str(&format!("    \"events_per_flow_growth\": {flatness:.3}\n"));
    out.push_str("  },\n");
    out.push_str(&format!("  \"counters\": {}\n}}\n", counters_json(counters, 2)));
    out
}

/// Renders the live-socket (xport) ttcp report as JSON: one RTT
/// object, one streaming object per scenario, and the DES references
/// the live numbers sit next to.
///
/// ```json
/// {
///   "schema_version": 3,
///   "rtt": {"rounds": 200, "payload": 64, "mean_us": 90.0, "p50_us": 85.0, "min_us": 60.0},
///   "streams": [
///     {"scenario": "direct", "messages": 2000, "message_len": 8928,
///      "bytes": 17856000, "wall_s": 0.5, "mbytes_per_sec": 35.7}
///   ],
///   "des_reference": {"fig3_rtt_us": 73.1, "fig4_mbytes_per_sec": 100.0},
///   "counters": {"direct_engine": {"rto_retransmits": 0}}
/// }
/// ```
///
/// Retransmission and proxy-drop counts live in `counters`, scoped per
/// scenario (`direct_engine`, `impaired_proxy`, …), replacing the old
/// per-stream fields.
pub fn xport_json(
    rtt: &crate::workloads::xport::LiveRtt,
    streams: &[(&str, crate::workloads::xport::LiveStream)],
    des_rtt_us: f64,
    des_mbytes_per_sec: f64,
    counters: &[Snapshot],
) -> String {
    let mut out = format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n");
    out.push_str(&format!(
        "  \"rtt\": {{\"rounds\": {}, \"payload\": {}, \"mean_us\": {:.1}, \
         \"p50_us\": {:.1}, \"min_us\": {:.1}}},\n",
        rtt.rounds, rtt.payload, rtt.mean_us, rtt.p50_us, rtt.min_us,
    ));
    out.push_str("  \"streams\": [\n");
    for (i, (scenario, s)) in streams.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{scenario}\", \"messages\": {}, \"message_len\": {}, \
             \"bytes\": {}, \"wall_s\": {:.3}, \"mbytes_per_sec\": {:.1}}}{}\n",
            s.messages,
            s.message_len,
            s.bytes,
            s.wall_s,
            s.mbytes_per_sec,
            if i + 1 < streams.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"des_reference\": {{\"fig3_rtt_us\": {des_rtt_us:.1}, \
         \"fig4_mbytes_per_sec\": {des_mbytes_per_sec:.1}}},\n"
    ));
    out.push_str(&format!("  \"counters\": {}\n}}\n", counters_json(counters, 2)));
    out
}

/// Asserts a JSON document carries nothing host- or time-identifying.
/// Used by the emitter tests; exported so binaries can self-check in
/// debug builds.
pub fn assert_host_independent(json: &str) {
    let lower = json.to_lowercase();
    for needle in ["hostname", "username", "/root", "/home", "date", "timestamp", "epoch"] {
        assert!(!lower.contains(needle), "JSON embeds host/time marker {needle:?}: {json}");
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("longer  2.5"));
        // header aligned with widest cell
        assert!(s.lines().nth(1).unwrap().starts_with("name  "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_mismatched_rows() {
        Table::new("T", &["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(0.756), "75.6%");
    }

    fn fixture_comparison() -> crate::microbench::Comparison {
        crate::microbench::Comparison {
            name: "checksum/9000".into(),
            baseline_ns: 10.0,
            current_ns: 2.0,
        }
    }

    fn fixture_scale() -> crate::workloads::manyflow::ManyflowScale {
        crate::workloads::manyflow::ManyflowScale {
            flows: 64,
            wall_s: 0.25,
            sim_s: 0.001,
            des_events: 10_000,
            des_events_per_sec: 40_000.0,
            events_per_flow: 156.25,
            bytes_received: 65_536,
            timer: fixture_comparison(),
            counters: fixture_counters(),
        }
    }

    fn fixture_rtt() -> crate::workloads::xport::LiveRtt {
        crate::workloads::xport::LiveRtt {
            rounds: 200,
            payload: 64,
            mean_us: 91.5,
            p50_us: 88.0,
            min_us: 61.2,
        }
    }

    fn fixture_stream() -> crate::workloads::xport::LiveStream {
        crate::workloads::xport::LiveStream {
            messages: 2000,
            message_len: 8928,
            bytes: 17_856_000,
            wall_s: 0.5,
            mbytes_per_sec: 35.7,
            retransmissions: 3,
            proxy_dropped: 12,
        }
    }

    fn fixture_counters() -> Vec<Snapshot> {
        let mut engine = Snapshot::new("engine");
        engine.push("rx_packets", 96).push("rto_retransmits", 2);
        let mut fabric = Snapshot::new("fabric");
        fabric.push("delivered", 96).push("dropped", 1);
        vec![engine, fabric]
    }

    #[test]
    fn json_emitters_stamp_schema_version_and_stay_host_independent() {
        let cnt = fixture_counters();
        let dp = datapath_json(&[fixture_comparison()], &[("des_events_per_sec", 1e7)], &cnt);
        let mf = manyflow_json(&[fixture_scale()], &cnt);
        let xp = xport_json(&fixture_rtt(), &[("direct", fixture_stream())], 73.1, 100.0, &cnt);
        for json in [&dp, &mf, &xp] {
            assert!(
                json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")),
                "missing schema_version: {json}"
            );
            assert!(
                json.contains("\"counters\": {") && json.contains("\"rto_retransmits\": 2"),
                "missing counters section: {json}"
            );
            assert_host_independent(json);
        }
    }

    #[test]
    fn json_emitters_are_deterministic_for_fixed_input() {
        // same input, same bytes — nothing may read clocks, tempdirs,
        // map iteration order or the environment
        let cnt = fixture_counters();
        let a = xport_json(&fixture_rtt(), &[("direct", fixture_stream())], 73.1, 100.0, &cnt);
        let b = xport_json(&fixture_rtt(), &[("direct", fixture_stream())], 73.1, 100.0, &cnt);
        assert_eq!(a, b);
        assert_eq!(
            manyflow_json(&[fixture_scale()], &cnt),
            manyflow_json(&[fixture_scale()], &cnt)
        );
        assert_eq!(
            datapath_json(&[fixture_comparison()], &[("m", 1.0)], &cnt),
            datapath_json(&[fixture_comparison()], &[("m", 1.0)], &cnt),
        );
    }

    #[test]
    fn host_marker_check_catches_leaks() {
        let result = std::panic::catch_unwind(|| {
            assert_host_independent("{\"path\": \"/root/repo/out.json\"}");
        });
        assert!(result.is_err(), "a /root path must be rejected");
    }
}
