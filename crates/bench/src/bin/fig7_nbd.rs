//! Figure 7 — NBD client throughput and CPU effectiveness.
//!
//! §4.2.3: a 409 MB sequential write (flushed with `sync`) and read over
//! an ext2 filesystem on an NBD device, for socket NBD over GigE and
//! Myrinet/GM versus the QPIP NBD at a 9000-byte MTU. Paper: QPIP gives
//! 40–137 % higher throughput at up to 133 % better CPU effectiveness
//! (MB per CPU-second), with ≥ 26 % of CPU going to the filesystem in
//! every configuration.
//!
//! Pass `--full` to run the complete 409 MB transfer (the default runs
//! 64 MB, which reaches the same steady state in a fraction of the
//! time).

use qpip_bench::report::{f1, pct, Table};
use qpip_nbd::socket_impl::{self, Transport};
use qpip_nbd::{qpip_impl, NbdConfig, NbdResult};
use qpip_sim::params;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let total = if full { params::NBD_TRANSFER_BYTES } else { 64 * 1024 * 1024 };
    let cfg = NbdConfig { total_bytes: total, ..NbdConfig::default() };
    println!(
        "Figure 7: NBD client performance ({} MB sequential write+sync, then read)\n",
        total / (1024 * 1024)
    );

    let gige = socket_impl::run(Transport::GigE, cfg);
    let gm = socket_impl::run(Transport::GmMyrinet, cfg);
    let qpip = qpip_impl::run(cfg);
    let rdma_read = qpip_nbd::rdma_impl::run_read(cfg);

    let mut t = Table::new(
        "NBD client throughput & CPU effectiveness",
        &[
            "implementation",
            "write MB/s",
            "read MB/s",
            "write MB/CPU·s",
            "read MB/CPU·s",
            "fs CPU (read)",
        ],
    );
    let row = |name: &str, r: &NbdResult| {
        [
            name.to_string(),
            f1(r.write.mbytes_per_sec),
            f1(r.read.mbytes_per_sec),
            f1(r.write.mb_per_cpu_sec),
            f1(r.read.mb_per_cpu_sec),
            pct(r.read.fs_fraction),
        ]
    };
    t.row(&row("IP/GigE", &gige));
    t.row(&row("IP/Myrinet", &gm));
    t.row(&row("QPIP (9000 MTU)", &qpip));
    t.row(&[
        "QPIP+RDMA reads (ext)".into(),
        "-".into(),
        f1(rdma_read.mbytes_per_sec),
        "-".into(),
        f1(rdma_read.mb_per_cpu_sec),
        pct(rdma_read.fs_fraction),
    ]);
    t.print();

    let imp = |q: f64, b: f64| (q / b - 1.0) * 100.0;
    println!("\nQPIP throughput improvement over baselines (paper: +40%…+137%):");
    println!(
        "  write vs GigE:    {:+.0}%",
        imp(qpip.write.mbytes_per_sec, gige.write.mbytes_per_sec)
    );
    println!(
        "  write vs Myrinet: {:+.0}%",
        imp(qpip.write.mbytes_per_sec, gm.write.mbytes_per_sec)
    );
    println!(
        "  read  vs GigE:    {:+.0}%",
        imp(qpip.read.mbytes_per_sec, gige.read.mbytes_per_sec)
    );
    println!("  read  vs Myrinet: {:+.0}%", imp(qpip.read.mbytes_per_sec, gm.read.mbytes_per_sec));
    println!("\nQPIP CPU-effectiveness improvement (paper: up to +133%):");
    println!(
        "  write: {:+.0}%  read: {:+.0}%",
        imp(qpip.write.mb_per_cpu_sec, gige.write.mb_per_cpu_sec.max(gm.write.mb_per_cpu_sec)),
        imp(qpip.read.mb_per_cpu_sec, gige.read.mb_per_cpu_sec.max(gm.read.mb_per_cpu_sec))
    );

    println!("\nShape checks (paper §4.2.3):");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check(
        "QPIP beats both baselines on read and write throughput",
        qpip.write.mbytes_per_sec > gige.write.mbytes_per_sec
            && qpip.write.mbytes_per_sec > gm.write.mbytes_per_sec
            && qpip.read.mbytes_per_sec > gige.read.mbytes_per_sec
            && qpip.read.mbytes_per_sec > gm.read.mbytes_per_sec,
    );
    check("throughput improvement lands in the paper's 40–137% envelope", {
        let worst = imp(qpip.read.mbytes_per_sec, gm.read.mbytes_per_sec)
            .min(imp(qpip.write.mbytes_per_sec, gm.write.mbytes_per_sec));
        let best = imp(qpip.read.mbytes_per_sec, gige.read.mbytes_per_sec)
            .max(imp(qpip.write.mbytes_per_sec, gige.write.mbytes_per_sec));
        worst > 15.0 && best < 250.0
    });
    check(
        "QPIP is more CPU-effective than both baselines",
        qpip.read.mb_per_cpu_sec > gige.read.mb_per_cpu_sec
            && qpip.read.mb_per_cpu_sec > gm.read.mb_per_cpu_sec,
    );
    check(
        "filesystem processing is a large share of QPIP's client CPU",
        qpip.read.fs_fraction > 0.5 * qpip.read.client_cpu,
    );
}
