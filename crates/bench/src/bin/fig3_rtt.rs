//! Figure 3 — application-to-application round-trip time.
//!
//! "The round-trip time refers to the latency of a single 1 byte
//! message to travel from one application to another and back" (§4.2.1),
//! for IP/GigE, IP/Myrinet and QPIP, over both UDP and TCP. The paper
//! quotes QPIP's firmware-checksum latencies explicitly: 73 µs (UDP)
//! and 113 µs (TCP); the figure's bars use the emulated hardware
//! checksum.

//! With `--trace FILE`, additionally re-runs the QPIP TCP pingpong with
//! a flight recorder installed and writes the JSONL trace export to
//! FILE (inspect with the `qpip-trace` CLI). Tracing is passive: the
//! traced run produces the same RTT numbers as the untraced ones.

use std::sync::Arc;

use qpip::NicConfig;
use qpip_bench::report::{f1, Table};
use qpip_bench::workloads::pingpong::{
    qpip_tcp_rtt, qpip_tcp_rtt_observed, qpip_udp_rtt, socket_tcp_rtt, socket_udp_rtt, Baseline,
};
use qpip_trace::FlightRecorder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).expect("--trace needs a file path").clone());
    let rounds = 40;
    println!("Figure 3: application-to-application RTT, 1-byte message\n");

    let gige_udp = socket_udp_rtt(Baseline::GigE, 1, rounds);
    let gige_tcp = socket_tcp_rtt(Baseline::GigE, 1, rounds);
    let gm_udp = socket_udp_rtt(Baseline::GmMyrinet, 1, rounds);
    let gm_tcp = socket_tcp_rtt(Baseline::GmMyrinet, 1, rounds);
    let qpip_udp = qpip_udp_rtt(NicConfig::paper_default(), 1, rounds);
    let qpip_tcp = qpip_tcp_rtt(NicConfig::paper_default(), 1, rounds);
    let qpip_udp_fw = qpip_udp_rtt(NicConfig::firmware_checksum(), 1, rounds);
    let qpip_tcp_fw = qpip_tcp_rtt(NicConfig::firmware_checksum(), 1, rounds);

    let mut t =
        Table::new("Application RTT (µs)", &["implementation", "UDP", "TCP", "paper (TCP ref)"]);
    t.row(&["IP/GigE".into(), f1(gige_udp.mean_us), f1(gige_tcp.mean_us), "(bars only)".into()]);
    t.row(&["IP/Myrinet".into(), f1(gm_udp.mean_us), f1(gm_tcp.mean_us), "(bars only)".into()]);
    t.row(&[
        "QPIP (hw csum, as figures)".into(),
        f1(qpip_udp.mean_us),
        f1(qpip_tcp.mean_us),
        "≤ baselines".into(),
    ]);
    t.row(&[
        "QPIP (fw csum)".into(),
        f1(qpip_udp_fw.mean_us),
        f1(qpip_tcp_fw.mean_us),
        "73 / 113".into(),
    ]);
    t.print();

    println!("\nShape checks (paper §4.2.1):");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check(
        "QPIP (hw csum) TCP RTT is comparable to or better than host baselines",
        qpip_tcp.mean_us <= gige_tcp.mean_us.max(gm_tcp.mean_us) * 1.1,
    );
    check(
        "UDP is faster than TCP on every implementation",
        gige_udp.mean_us < gige_tcp.mean_us
            && gm_udp.mean_us < gm_tcp.mean_us
            && qpip_udp.mean_us < qpip_tcp.mean_us,
    );
    check(
        "firmware checksum costs extra latency (73→ vs hw UDP)",
        qpip_udp_fw.mean_us > qpip_udp.mean_us && qpip_tcp_fw.mean_us > qpip_tcp.mean_us,
    );
    check(
        "QPIP fw-csum UDP within 25% of paper's 73 µs",
        (qpip_udp_fw.mean_us - 73.0).abs() / 73.0 < 0.25,
    );
    check(
        "QPIP fw-csum TCP within 25% of paper's 113 µs",
        (qpip_tcp_fw.mean_us - 113.0).abs() / 113.0 < 0.25,
    );

    if let Some(path) = trace_path {
        let rec = Arc::new(FlightRecorder::new(4096));
        let (traced, _) =
            qpip_tcp_rtt_observed(NicConfig::paper_default(), 1, rounds, Some(Arc::clone(&rec)));
        assert_eq!(traced.mean_us, qpip_tcp.mean_us, "tracing must not perturb the simulation");
        std::fs::write(&path, rec.export_jsonl()).expect("write trace JSONL");
        println!("\nwrote {} trace events to {path}", rec.total_recorded());
    }
}
