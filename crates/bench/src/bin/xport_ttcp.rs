//! ttcp over live sockets: the Fig. 3/4 RTT and throughput workloads
//! run between two real `XportNode`s on 127.0.0.1, printed next to the
//! DES QPIP numbers they correspond to.
//!
//! The DES columns are deterministic model outputs; the live columns
//! are wall-clock measurements that vary with machine and load — they
//! sanity-check that the same engine behaves on real wires (including
//! through a 2%-loss impairment proxy), they do not reproduce figures.
//!
//! Flags: `--smoke` (small counts, for CI), `--json` (also write
//! `BENCH_xport.json` to the current directory).

use std::time::Duration;

use qpip_bench::report::{f1, xport_json, Table};
use qpip_bench::workloads::pingpong::qpip_tcp_rtt;
use qpip_bench::workloads::ttcp::qpip_ttcp;
use qpip_bench::workloads::xport::{live_rtt, live_stream};
use qpip_nic::types::NicConfig;
use qpip_xport::ImpairConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let (rounds, messages, message): (u32, u32, usize) =
        if smoke { (50, 200, 4096) } else { (400, 2000, 8192) };
    let impaired_messages = if smoke { 100 } else { 500 };

    println!("ttcp over live sockets: two XportNodes on 127.0.0.1\n");

    // DES reference points (deterministic)
    let des_rtt = qpip_tcp_rtt(NicConfig::paper_default(), 64, 40);
    let des_ttcp =
        qpip_ttcp(NicConfig::paper_default(), u64::from(messages) * message as u64, 16 * 1024);

    let rtt = live_rtt(rounds, 64);
    let (direct, direct_counters) = live_stream(messages, message, None);
    let (impaired, impaired_counters) = live_stream(
        impaired_messages,
        message,
        Some(ImpairConfig {
            seed: 42,
            drop_per_mille: 20, // 2% loss
            reorder_per_mille: 30,
            hold_at_most: Duration::from_millis(15),
        }),
    );

    let mut t = Table::new("RTT, 64 B message", &["path", "rounds", "mean us", "p50 us", "min us"]);
    t.row(&[
        "live loopback".into(),
        rtt.rounds.to_string(),
        f1(rtt.mean_us),
        f1(rtt.p50_us),
        f1(rtt.min_us),
    ]);
    t.row(&["DES QPIP (Fig. 3)".into(), "40".into(), f1(des_rtt.mean_us), "-".into(), "-".into()]);
    t.print();
    println!();

    let mut t = Table::new(
        "Streaming throughput",
        &["path", "messages", "msg B", "MB/s", "retrans", "proxy drops"],
    );
    t.row(&[
        "live direct".into(),
        direct.messages.to_string(),
        direct.message_len.to_string(),
        f1(direct.mbytes_per_sec),
        direct.retransmissions.to_string(),
        "0".into(),
    ]);
    t.row(&[
        "live 2% loss + reorder".into(),
        impaired.messages.to_string(),
        impaired.message_len.to_string(),
        f1(impaired.mbytes_per_sec),
        impaired.retransmissions.to_string(),
        impaired.proxy_dropped.to_string(),
    ]);
    t.row(&[
        "DES QPIP (Fig. 4)".into(),
        "-".into(),
        "16384".into(),
        f1(des_ttcp.mbytes_per_sec),
        des_ttcp.retransmissions.to_string(),
        "-".into(),
    ]);
    t.print();

    println!("\nShape checks:");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check("every direct message delivered in order", direct.messages == messages);
    check(
        "impaired stream delivered exactly-once despite drops",
        impaired.messages == impaired_messages && impaired.proxy_dropped > 0,
    );
    check("loss recovery engaged on the impaired path", impaired.retransmissions > 0);

    if json {
        // one counters object for the whole document: each scenario's
        // snapshots disambiguated by a scope prefix
        let counters: Vec<qpip_trace::Snapshot> = direct_counters
            .iter()
            .map(|s| ("direct", s))
            .chain(impaired_counters.iter().map(|s| ("impaired", s)))
            .map(|(prefix, s)| s.clone().rescoped(format!("{prefix}_{}", s.scope())))
            .collect();
        let doc = xport_json(
            &rtt,
            &[("direct", direct), ("impaired_2pct_loss", impaired)],
            des_rtt.mean_us,
            des_ttcp.mbytes_per_sec,
            &counters,
        );
        std::fs::write("BENCH_xport.json", &doc).expect("write BENCH_xport.json");
        println!("\nwrote BENCH_xport.json");
    }
}
