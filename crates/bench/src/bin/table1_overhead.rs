//! Table 1 — host overhead for transmit and receive paths.
//!
//! Methodology (§4.2.2): the host-based number comes from the loopback
//! interface (no driver, no interrupts); the QPIP number from directly
//! timing the communication methods (post_send + post_recv + the poll
//! that completes). Paper: host-based IP 29.9 µs / 16 445 cycles,
//! QPIP 2.5 µs / 1 386 cycles.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_bench::report::{f1, Table};
use qpip_host::stack::{HostOutput, HostStack, StackConfig};
use qpip_host::WorkClass;
use qpip_netstack::types::Endpoint;
use qpip_sim::params;
use qpip_sim::time::{SimDuration, SimTime};

/// Measures host-stack cycles for one 1-byte send+receive through the
/// loopback interface.
fn host_loopback_cycles() -> u64 {
    let addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
    let mut host = HostStack::new(StackConfig::loopback(), addr);
    let ls = host.tcp_socket();
    host.listen(ls, 9000).unwrap();
    let cs = host.tcp_socket();
    let mut now = SimTime::ZERO;
    let mut frames: VecDeque<qpip_wire::Packet> = VecDeque::new();
    let mut server = None;
    let pump = |host: &mut HostStack,
                now: &mut SimTime,
                frames: &mut VecDeque<qpip_wire::Packet>,
                server: &mut Option<qpip_host::SockId>| {
        while let Some(f) = frames.pop_front() {
            *now += SimDuration::from_nanos(100);
            for o in host.on_frame(*now, &f) {
                match o {
                    HostOutput::Frame { bytes, .. } => frames.push_back(bytes),
                    HostOutput::Accepted { sock, .. } => *server = Some(sock),
                    _ => {}
                }
            }
        }
    };
    for o in host.connect(now, cs, 9001, Endpoint::new(addr, 9000)).unwrap() {
        if let HostOutput::Frame { bytes, .. } = o {
            frames.push_back(bytes);
        }
    }
    pump(&mut host, &mut now, &mut frames, &mut server);
    let server = server.expect("loopback accept");
    host.cpu_mut().reset_stats();

    // the paper measures loopback RTT and halves it: a 1-byte ping-pong
    // where the echo's data piggybacks the ACK, so each direction costs
    // exactly one send path + one receive path
    let rounds = 16u64;
    for _ in 0..rounds {
        for (tx_sock, rx_sock) in [(cs, server), (server, cs)] {
            let (_, outs) = host.send(now, tx_sock, vec![0x55]).unwrap();
            for o in outs {
                if let HostOutput::Frame { bytes, .. } = o {
                    frames.push_back(bytes);
                }
            }
            let mut sink = Some(server);
            pump(&mut host, &mut now, &mut frames, &mut sink);
            let (data, _) = host.recv(now, rx_sock, usize::MAX).unwrap();
            assert_eq!(data.len(), 1);
        }
    }
    host.cpu().total_cycles() / (2 * rounds)
}

/// Measures QPIP verb cycles for one 1-byte message: post_send on the
/// sender plus post_recv + completing poll on the receiver.
fn qpip_verbs_cycles() -> u64 {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(NicConfig::paper_default());
    let b = w.add_node(NicConfig::paper_default());
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    for i in 0..4 {
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(a, qa, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(b, 5000, qb).unwrap();
    let remote = Endpoint::new(w.addr(b), 5000);
    w.tcp_connect(a, qa, 4000, remote).unwrap();
    w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);
    // measured region: sender posts, receiver posts + polls
    let before = w.cpu(a).cycles(WorkClass::Verbs) + w.cpu(b).cycles(WorkClass::Verbs);
    let rounds = 16u64;
    for i in 0..rounds {
        w.post_recv(b, qb, RecvWr { wr_id: 100 + i, capacity: 16 * 1024 }).unwrap();
        w.post_send(a, qa, SendWr { wr_id: i, payload: vec![1], dst: None }).unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
    }
    let after = w.cpu(a).cycles(WorkClass::Verbs) + w.cpu(b).cycles(WorkClass::Verbs);
    (after - before) / rounds
}

fn main() {
    println!("Table 1: host overhead for transmit and receive paths (1-byte TCP message)\n");
    let host_cycles = host_loopback_cycles();
    let qpip_cycles = qpip_verbs_cycles();
    let mhz = params::HOST_CLOCK_MHZ as f64;

    let mut t = Table::new(
        "Host overhead",
        &["implementation", "time (µs)", "cycles", "paper µs", "paper cycles"],
    );
    t.row(&[
        "Host-based IP".into(),
        f1(host_cycles as f64 / mhz),
        host_cycles.to_string(),
        "29.9".into(),
        "16445".into(),
    ]);
    t.row(&[
        "QPIP".into(),
        f1(qpip_cycles as f64 / mhz),
        qpip_cycles.to_string(),
        "2.5".into(),
        "1386".into(),
    ]);
    t.print();

    let ratio = host_cycles as f64 / qpip_cycles as f64;
    println!("\noverhead ratio host/QPIP: {ratio:.1}x (paper: 11.9x)");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check(
        "host-based overhead within 20% of 16 445 cycles",
        (host_cycles as f64 - 16_445.0).abs() / 16_445.0 < 0.20,
    );
    check(
        "QPIP overhead within 20% of 1 386 cycles",
        (qpip_cycles as f64 - 1_386.0).abs() / 1_386.0 < 0.20,
    );
    check("QPIP is an order of magnitude cheaper", ratio > 8.0);
}
