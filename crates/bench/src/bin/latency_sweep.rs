//! Latency vs. message size — not a paper figure, but the natural
//! companion series: where does each implementation's RTT go as the
//! payload grows from the 1-byte point of Figure 3 toward the 16 KB
//! messages of Figure 4?

use qpip::NicConfig;
use qpip_bench::report::{f1, Table};
use qpip_bench::workloads::pingpong::{qpip_tcp_rtt, socket_tcp_rtt, Baseline};

fn main() {
    println!("Latency sweep: TCP request-response RTT vs message size\n");
    let rounds = 16;
    let sizes = [1usize, 64, 256, 1024, 4096, 8192];
    let mut t =
        Table::new("TCP RTT (µs) by payload size", &["size", "IP/GigE", "IP/Myrinet", "QPIP"]);
    let mut series = Vec::new();
    for &s in &sizes {
        // GigE cannot carry >1428 in one segment; the stream splits it —
        // still a valid RTT, just more packets
        let ge = socket_tcp_rtt(Baseline::GigE, s, rounds).mean_us;
        let gm = socket_tcp_rtt(Baseline::GmMyrinet, s, rounds).mean_us;
        let qp = qpip_tcp_rtt(NicConfig::paper_default(), s, rounds).mean_us;
        series.push((s, ge, gm, qp));
        t.row(&[s.to_string(), f1(ge), f1(gm), f1(qp)]);
    }
    t.print();

    println!("\nShape checks:");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check(
        "RTT grows monotonically-ish with size on every implementation",
        series
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 * 0.95 && w[1].2 >= w[0].2 * 0.95 && w[1].3 >= w[0].3 * 0.95),
    );
    check("QPIP's size sensitivity is dominated by the PCI read path", {
        // going 1 B → 8 KB should add roughly 2 × (DMA read + wire)
        let delta = series.last().unwrap().3 - series.first().unwrap().3;
        // 8 KB at 80 MB/s ≈ 102 µs each way, plus wire ≈ 33 µs each way
        (150.0..400.0).contains(&delta)
    });
    check(
        "QPIP beats both baselines at every size",
        series.iter().all(|&(_, ge, gm, qp)| qp <= ge.max(gm) * 1.05),
    );
}
