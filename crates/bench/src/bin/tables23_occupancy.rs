//! Tables 2 & 3 — network-interface per-stage processing costs.
//!
//! Reproduces the LANai-cycle-counter measurement of §4.2.2: one-way
//! 1-byte TCP messages from node A to node B, with the hardware-assisted
//! receive checksum the paper's figures assume. Node A's occupancy table
//! yields Table 2's data-send column and Table 3's ACK-receive column;
//! node B yields Table 3's data-receive column and Table 2's ACK-send
//! column.
//!
//! Pass `--hw-multiply` to ablate the software-multiply penalty the
//! paper calls out ("A more specialized interface design would
//! dramatically reduce these costs").

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_bench::report::Table;
use qpip_netstack::types::Endpoint;
use qpip_nic::{PacketClass, Stage};

fn run(hw_multiply: bool) -> (QpipWorld, qpip::NodeIdx, qpip::NodeIdx) {
    let cfg = NicConfig { hw_multiply, ..NicConfig::paper_default() };
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(cfg.clone());
    let b = w.add_node(cfg);
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    for i in 0..8 {
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 4096 }).unwrap();
    }
    w.tcp_listen(b, 5000, qb).unwrap();
    let remote = Endpoint::new(w.addr(b), 5000);
    w.tcp_connect(a, qa, 4000, remote).unwrap();
    w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);
    // instrument only the steady-state data flow
    w.nic_mut(a).reset_occupancy();
    w.nic_mut(b).reset_occupancy();
    for i in 0..32u64 {
        w.post_recv(b, qb, RecvWr { wr_id: 100 + i, capacity: 4096 }).unwrap();
        w.post_send(a, qa, SendWr { wr_id: i, payload: vec![0x5a], dst: None }).unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        // harvest send completions (arrive with the ACKs)
        while w.try_wait(a, cqa).is_some() {}
    }
    w.run_until_idle();
    (w, a, b)
}

fn cell(w: &QpipWorld, node: qpip::NodeIdx, stage: Stage, class: PacketClass) -> String {
    match w.nic(node).occupancy().mean_us(stage, class) {
        Some(us) => format!("{us:.1}"),
        None => "-".into(),
    }
}

fn main() {
    let hw_multiply = std::env::args().any(|a| a == "--hw-multiply");
    let (w, a, b) = run(hw_multiply);
    let title_suffix = if hw_multiply { " [ablation: hardware multiply]" } else { "" };

    println!("Tables 2 & 3: NIC per-stage processing costs, 1-byte TCP messages{title_suffix}\n");

    let mut t2 = Table::new(
        "Table 2 — transmit side (µs)",
        &["stage", "data send", "paper", "ACK send", "paper"],
    );
    let rows2: &[(&str, Stage, &str, &str)] = &[
        ("Doorbell Process", Stage::DoorbellProcess, "1", "1"),
        ("Schedule", Stage::Schedule, "2", "2"),
        ("Get WR", Stage::GetWr, "5.5", "-"),
        ("Get Data", Stage::GetData, "4.5", "-"),
        ("Build TCP Hdr", Stage::BuildTcpHdr, "5", "5"),
        ("Build IP Hdr", Stage::BuildIpHdr, "1", "1"),
        ("Send", Stage::MediaXmt, "1", "1"),
        ("Update", Stage::UpdateTx, "1.5", "1.5"),
    ];
    for (label, stage, p_data, p_ack) in rows2 {
        t2.row(&[
            label.to_string(),
            cell(&w, a, *stage, PacketClass::DataSend),
            p_data.to_string(),
            cell(&w, b, *stage, PacketClass::AckSend),
            p_ack.to_string(),
        ]);
    }
    t2.print();

    println!();
    let mut t3 = Table::new(
        "Table 3 — receive side (µs)",
        &["stage", "data recv", "paper", "ACK recv", "paper"],
    );
    let rows3: &[(&str, Stage, &str, &str)] = &[
        ("Doorbell Process", Stage::DoorbellProcess, "1", "1"),
        ("Media Rcv", Stage::MediaRcv, "1", "1"),
        ("IP Parse", Stage::IpParse, "1.5", "1.5"),
        ("TCP Parse", Stage::TcpParse, "7", "14"),
        ("Get WR", Stage::GetWr, "5.5", "-"),
        ("Put Data", Stage::PutData, "4.5", "-"),
        ("Update", Stage::UpdateRx, "1.5", "9 (WR+QP)"),
    ];
    for (label, stage, p_data, p_ack) in rows3 {
        t3.row(&[
            label.to_string(),
            cell(&w, b, *stage, PacketClass::DataRecv),
            p_data.to_string(),
            cell(&w, a, *stage, PacketClass::AckRecv),
            p_ack.to_string(),
        ]);
    }
    t3.print();

    println!("\nShape checks (paper §4.2.2):");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    let parse_data = w.nic(b).occupancy().mean_us(Stage::TcpParse, PacketClass::DataRecv);
    let parse_ack = w.nic(a).occupancy().mean_us(Stage::TcpParse, PacketClass::AckRecv);
    match (parse_data, parse_ack, hw_multiply) {
        (Some(d), Some(ack), false) => {
            check("TCP parse of an ACK costs ~2x a data parse (soft multiply)", ack > 1.6 * d);
            check("ACK parse near the paper's 14 µs", (ack - 14.0).abs() < 2.0);
            check("data parse near the paper's 7 µs", (d - 7.0).abs() < 1.5);
        }
        (Some(d), Some(ack), true) => {
            check("hardware multiply collapses the ACK-parse penalty", (ack - d).abs() < 2.0);
        }
        _ => check("both parse cells populated", false),
    }
    let upd_ack = w.nic(a).occupancy().mean_us(Stage::UpdateRx, PacketClass::AckRecv);
    check(
        "ACK-receive update (WR retire + CQ) near the paper's 9 µs",
        upd_ack.is_some_and(|u| (u - 9.0).abs() < 1.5),
    );
}
