//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! * **checksum placement** (§4.2.1): hardware-assisted vs firmware;
//! * **hardware multiply** (§4.2.2): the LANai's missing multiplier;
//! * **MTU sweep** (§4.2.1): where the NIC processor becomes the
//!   bottleneck;
//! * **segmentation mapping** (§4.1): the message-per-segment design
//!   against conventional MSS streaming on the same hardware budget.

use qpip::NicConfig;
use qpip_bench::report::{f1, Table};
use qpip_bench::workloads::pingpong::{qpip_tcp_rtt, qpip_udp_rtt};
use qpip_bench::workloads::ttcp::qpip_ttcp;
use qpip_sim::params;

fn main() {
    let total = 4 * 1024 * 1024u64;
    let chunk = params::TTCP_CHUNK_BYTES;

    // -- checksum placement ------------------------------------------------
    let mut t = Table::new(
        "Ablation: checksum placement (16 KB messages)",
        &["configuration", "ttcp MB/s", "UDP RTT µs", "TCP RTT µs"],
    );
    for (name, cfg) in [
        ("hardware (DMA-engine)", NicConfig::paper_default()),
        ("firmware (5 cyc/B)", NicConfig::firmware_checksum()),
    ] {
        let thr = qpip_ttcp(cfg.clone(), total, chunk);
        let udp = qpip_udp_rtt(cfg.clone(), 1, 12);
        let tcp = qpip_tcp_rtt(cfg, 1, 12);
        t.row(&[name.into(), f1(thr.mbytes_per_sec), f1(udp.mean_us), f1(tcp.mean_us)]);
    }
    t.print();
    println!();

    // -- hardware multiply ---------------------------------------------------
    let mut t = Table::new(
        "Ablation: NIC multiplier (§4.2.2: \"a more specialized interface\n   design would dramatically reduce these costs\")",
        &["configuration", "TCP RTT µs", "ttcp MB/s @1500"],
    );
    for (name, hw_multiply) in [("software multiply (LANai)", false), ("hardware multiply", true)] {
        let cfg = NicConfig { hw_multiply, ..NicConfig::paper_default() };
        let rtt = qpip_tcp_rtt(cfg.clone(), 1, 12);
        let thr = qpip_ttcp(NicConfig { mtu: 1500, ..cfg }, total, chunk);
        t.row(&[name.into(), f1(rtt.mean_us), f1(thr.mbytes_per_sec)]);
    }
    t.print();
    println!();

    // -- MTU sweep ---------------------------------------------------------
    let mut t = Table::new(
        "Ablation: MTU sweep (one message per segment)",
        &["MTU", "ttcp MB/s", "NIC-bound?"],
    );
    for mtu in [1500usize, 3000, 4500, 9000, 16 * 1024] {
        let cfg = NicConfig { mtu, ..NicConfig::paper_default() };
        let r = qpip_ttcp(cfg, total, chunk);
        // below the PCI-read ceiling the per-message processor cost rules
        let nic_bound = r.mbytes_per_sec < 70.0;
        t.row(&[
            mtu.to_string(),
            f1(r.mbytes_per_sec),
            if nic_bound { "processor" } else { "PCI DMA" }.into(),
        ]);
    }
    t.print();

    println!("\nShape checks:");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    let sweep: Vec<f64> = [1500usize, 3000, 4500, 9000, 16 * 1024]
        .into_iter()
        .map(|mtu| {
            qpip_ttcp(NicConfig { mtu, ..NicConfig::paper_default() }, total, chunk).mbytes_per_sec
        })
        .collect();
    check("throughput grows monotonically with MTU", sweep.windows(2).all(|w| w[1] >= w[0] * 0.98));
    let hw = qpip_tcp_rtt(NicConfig { hw_multiply: true, ..NicConfig::paper_default() }, 1, 12);
    let sw = qpip_tcp_rtt(NicConfig::paper_default(), 1, 12);
    check(
        "hardware multiply shaves the RTT (RTT-estimator math off the path)",
        hw.mean_us < sw.mean_us - 5.0,
    );
}
