//! RDMA extension benchmark: the §2.1 transaction class QPIP's
//! prototype left unimplemented, measured against send-receive on the
//! same simulated hardware.
//!
//! Three comparisons per message size:
//! * send-receive (two-sided: the target posts buffers and takes a
//!   completion per message);
//! * RDMA Write (one-sided: direct placement, target silent);
//! * RDMA Read (one-sided fetch: request/response through the target's
//!   NIC only).

use qpip::world::QpipWorld;
use qpip::{
    CompletionKind, NicConfig, NodeIdx, RdmaReadWr, RdmaWriteWr, RecvWr, SendWr, ServiceType,
};
use qpip_bench::report::{f1, Table};
use qpip_netstack::types::Endpoint;

struct Rig {
    w: QpipWorld,
    a: NodeIdx,
    b: NodeIdx,
    qa: qpip::QpId,
    qb: qpip::QpId,
    cqa: qpip::CqId,
    cqb: qpip::CqId,
    region: qpip::MrKey,
}

fn rig() -> Rig {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(NicConfig::with_rdma());
    let b = w.add_node(NicConfig::with_rdma());
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    for i in 0..64 {
        w.post_recv(a, qa, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(b, 5000, qb).unwrap();
    let dst = Endpoint::new(w.addr(b), 5000);
    w.tcp_connect(a, qa, 4000, dst).unwrap();
    w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);
    let region = w.register_mr(b, 1 << 20);
    Rig { w, a, b, qa, qb, cqa, cqb, region }
}

/// Round-trip completion latency of one operation, averaged.
fn latency_us(rounds: usize, size: usize, mut op: impl FnMut(&mut Rig, u64) -> f64) -> f64 {
    let mut r = rig();
    let _ = size;
    let mut total = 0.0;
    let warmup = 3;
    for i in 0..rounds + warmup {
        let us = op(&mut r, i as u64);
        if i >= warmup {
            total += us;
        }
    }
    total / rounds as f64
}

fn main() {
    println!("RDMA extension: one-sided ops vs send-receive (completion latency)\n");
    let rounds = 12;
    let mut t = Table::new(
        "Completion latency (µs) by message size",
        &["size", "send-recv", "rdma write", "rdma read", "target completions"],
    );
    for size in [64usize, 1024, 8192] {
        // operations are issued in pairs so the second segment triggers
        // the firmware's every-other-segment ACK; an isolated operation
        // instead completes on the 300 µs delayed-ACK timer (a real
        // property of the BSD-derived firmware, reported separately)
        let sr = latency_us(rounds, size, |r, i| {
            let t0 = r.w.app_time(r.a);
            for k in 0..2u64 {
                r.w.post_recv(r.b, r.qb, RecvWr { wr_id: 500 + 2 * i + k, capacity: 16 * 1024 })
                    .unwrap();
                r.w.post_send(
                    r.a,
                    r.qa,
                    SendWr { wr_id: 2 * i + k, payload: vec![7; size], dst: None },
                )
                .unwrap();
            }
            // two-sided: target takes completions, initiator completes on ack
            for _ in 0..2 {
                r.w.wait_matching(r.b, r.cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
                r.w.wait_matching(r.a, r.cqa, |c| c.kind == CompletionKind::Send);
            }
            r.w.app_time(r.a).duration_since(t0).as_micros_f64() / 2.0
        });
        let (wr_lat, target_quiet) = {
            let mut r = rig();
            let mut total = 0.0;
            let warmup = 3;
            for i in 0..rounds + warmup {
                let t0 = r.w.app_time(r.a);
                for k in 0..2u64 {
                    r.w.post_rdma_write(
                        r.a,
                        r.qa,
                        RdmaWriteWr {
                            wr_id: 2 * i as u64 + k,
                            data: vec![7; size],
                            rkey: r.region,
                            remote_offset: 0,
                        },
                    )
                    .unwrap();
                }
                r.w.wait_matching(r.a, r.cqa, |c| c.kind == CompletionKind::RdmaWrite);
                r.w.wait_matching(r.a, r.cqa, |c| c.kind == CompletionKind::RdmaWrite);
                if i >= warmup {
                    total += r.w.app_time(r.a).duration_since(t0).as_micros_f64() / 2.0;
                }
            }
            // the target application saw nothing throughout
            let quiet = r.w.try_wait(r.b, r.cqb).is_none();
            (total / rounds as f64, quiet)
        };
        let rd = latency_us(rounds, size, |r, i| {
            let t0 = r.w.app_time(r.a);
            r.w.post_rdma_read(
                r.a,
                r.qa,
                RdmaReadWr { wr_id: i, len: size as u32, rkey: r.region, remote_offset: 0 },
            )
            .unwrap();
            r.w.wait_matching(r.a, r.cqa, |c| matches!(c.kind, CompletionKind::RdmaRead { .. }));
            r.w.app_time(r.a).duration_since(t0).as_micros_f64()
        });
        t.row(&[
            size.to_string(),
            f1(sr),
            f1(wr_lat),
            f1(rd),
            if target_quiet { "none (one-sided)" } else { "UNEXPECTED" }.into(),
        ]);
    }
    t.print();
    println!(
        "\n(two-sided/write ops are issued in pairs: the firmware acks every\n second segment; a lone operation completes on the 300 µs delayed-ACK\n timer instead. RDMA Read has no such floor — the response data is its\n own completion.)"
    );

    println!("\nShape checks:");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    let rd_small = latency_us(8, 64, |r, i| {
        let t0 = r.w.app_time(r.a);
        r.w.post_rdma_read(
            r.a,
            r.qa,
            RdmaReadWr { wr_id: i, len: 64, rkey: r.region, remote_offset: 0 },
        )
        .unwrap();
        r.w.wait_matching(r.a, r.cqa, |c| matches!(c.kind, CompletionKind::RdmaRead { .. }));
        r.w.app_time(r.a).duration_since(t0).as_micros_f64()
    });
    check(
        "RDMA read ≈ one round trip through both NICs (tens of µs)",
        (30.0..200.0).contains(&rd_small),
    );
}
