//! Figure 4 — application-to-application throughput and CPU
//! utilization.
//!
//! ttcp v1.4 methodology (§4.2.1): 10 MB transferred in 16 KB writes
//! with TCP_NODELAY, native MTUs (GigE 1500, Myrinet/GM 9000, QPIP
//! 16 KB). Paper results: QPIP 75.6 MB/s at <1% CPU natively;
//! 35.4 MB/s at 1500 (22% below GigE); 70.1 MB/s at 9000; 26.4 MB/s
//! with the firmware checksum; the host stacks burn ½–¾ of a CPU.

use qpip::NicConfig;
use qpip_bench::report::{f1, pct, Table};
use qpip_bench::workloads::pingpong::Baseline;
use qpip_bench::workloads::ttcp::{qpip_ttcp, socket_ttcp};
use qpip_sim::params;

fn main() {
    let total = params::TTCP_TRANSFER_BYTES; // 10 MB
    let chunk = params::TTCP_CHUNK_BYTES; // 16 KB
    println!("Figure 4: ttcp throughput & CPU utilization (10 MB / 16 KB writes)\n");

    let gige = socket_ttcp(Baseline::GigE, total, chunk);
    let gm = socket_ttcp(Baseline::GmMyrinet, total, chunk);
    let qpip_native = qpip_ttcp(NicConfig::paper_default(), total, chunk);
    let qpip_1500 = qpip_ttcp(NicConfig { mtu: 1500, ..NicConfig::paper_default() }, total, chunk);
    let qpip_9000 = qpip_ttcp(NicConfig { mtu: 9000, ..NicConfig::paper_default() }, total, chunk);
    let qpip_fw = qpip_ttcp(NicConfig::firmware_checksum(), total, chunk);
    let qpip_1500_frag = qpip_ttcp(NicConfig::fragmented(1500), total, chunk);

    let mut t = Table::new(
        "Throughput & CPU utilization",
        &["implementation", "MB/s", "CPU (send)", "CPU (recv)", "paper MB/s"],
    );
    let row = |name: &str, r: &qpip_bench::workloads::ttcp::TtcpResult, paper: &str| {
        [
            name.to_string(),
            f1(r.mbytes_per_sec),
            pct(r.sender_cpu),
            pct(r.receiver_cpu),
            paper.to_string(),
        ]
    };
    t.row(&row("IP/GigE (1500)", &gige, "~45 (bar)"));
    t.row(&row("IP/Myrinet (9000)", &gm, "~55 (bar)"));
    t.row(&row("QPIP native (16K)", &qpip_native, "75.6"));
    t.row(&row("QPIP @1500", &qpip_1500, "35.4"));
    t.row(&row("QPIP @9000", &qpip_9000, "70.1"));
    t.row(&row("QPIP fw csum (16K)", &qpip_fw, "26.4"));
    t.row(&row("QPIP @1500 +ipfrag", &qpip_1500_frag, "(ext)"));
    t.print();

    println!("\nShape checks (paper §4.2.1):");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check(
        "QPIP native beats both host baselines",
        qpip_native.mbytes_per_sec > gige.mbytes_per_sec
            && qpip_native.mbytes_per_sec > gm.mbytes_per_sec,
    );
    check(
        "QPIP CPU utilization < 1% at native MTU and with fw checksum",
        qpip_native.sender_cpu < 0.01
            && qpip_native.receiver_cpu < 0.01
            && qpip_fw.sender_cpu < 0.01,
    );
    check(
        "QPIP CPU stays single-digit at small MTUs (paper: <1%; our
       per-segment WR posting inflates it slightly — see EXPERIMENTS.md)",
        qpip_1500.sender_cpu < 0.06 && qpip_9000.sender_cpu < 0.03,
    );
    check(
        "host ttcp processes consume half to three quarters of a CPU",
        (0.35..=0.85).contains(&gige.sender_cpu) && (0.35..=0.85).contains(&gm.sender_cpu),
    );
    check(
        "QPIP @1500 loses to GigE (paper: by 22%)",
        qpip_1500.mbytes_per_sec < gige.mbytes_per_sec,
    );
    check("QPIP @9000 beats IP/Myrinet", qpip_9000.mbytes_per_sec > gm.mbytes_per_sec);
    check(
        "firmware checksum limits QPIP to the mid-20s MB/s",
        (20.0..33.0).contains(&qpip_fw.mbytes_per_sec),
    );
    check(
        "QPIP native within 25% of paper's 75.6 MB/s",
        (qpip_native.mbytes_per_sec - 75.6).abs() / 75.6 < 0.25,
    );
    check(
        "IPv6 fragmentation restores <1% host CPU at the small MTU",
        qpip_1500_frag.sender_cpu < 0.01,
    );
    println!(
        "\nQPIP@1500 vs GigE deficit: {:.0}% (paper: 22%)",
        (1.0 - qpip_1500.mbytes_per_sec / gige.mbytes_per_sec) * 100.0
    );
}
