//! Many-flow fan-in scalability: N clients (64 → 4096, geometric)
//! streaming into one QPIP server over Myrinet.
//!
//! Not a paper figure — a scalability check on the reproduction itself.
//! The paper's SAN sessions are long-lived and numerous (§3); the engine
//! must hold thousands of connections without per-flow cost growing with
//! the fleet. Reported per scale: wall time, DES events/sec, events per
//! flow (flatness metric), and the cost of one idle timer tick on the
//! indexed engine vs a replica of the old scan-all-connections path.
//!
//! Flags: `--smoke` (small scales, for CI), `--json` (also write
//! `BENCH_manyflow.json` to the current directory).

use qpip_bench::report::{f1, f2, manyflow_json, Table};
use qpip_bench::workloads::manyflow::{run_scale, ManyflowScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");

    let (scales, messages, message): (&[usize], usize, usize) =
        if smoke { (&[16, 64], 2, 512) } else { (&[64, 256, 1024, 4096], 4, 1024) };

    println!(
        "Many-flow fan-in: N clients -> 1 server, {messages} x {message} B messages per flow\n"
    );

    let results: Vec<ManyflowScale> =
        scales.iter().map(|&n| run_scale(n, messages, message)).collect();

    let mut t = Table::new(
        "Fan-in scalability",
        &[
            "flows",
            "wall s",
            "DES events",
            "events/s",
            "events/flow",
            "tick scan ns",
            "tick index ns",
            "speedup",
        ],
    );
    for r in &results {
        t.row(&[
            r.flows.to_string(),
            format!("{:.3}", r.wall_s),
            r.des_events.to_string(),
            format!("{:.0}", r.des_events_per_sec),
            f1(r.events_per_flow),
            f1(r.timer.baseline_ns),
            f1(r.timer.current_ns),
            f2(r.timer.speedup()),
        ]);
    }
    t.print();

    let first = results.first().expect("at least one scale");
    let last = results.last().expect("at least one scale");
    let growth = last.events_per_flow / first.events_per_flow;
    println!("\nShape checks:");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "MISS" }, name);
    };
    check(
        "every message delivered at every scale",
        results.iter().all(|r| r.bytes_received == (r.flows * messages * message) as u64),
    );
    check(
        &format!(
            "events per flow roughly flat across {}x fleet growth ({:.1} -> {:.1}, x{:.2})",
            last.flows / first.flows,
            first.events_per_flow,
            last.events_per_flow,
            growth
        ),
        growth < 2.0,
    );
    check(
        &format!(
            "timer tick beats the scan replica at {} flows (x{:.1})",
            last.flows,
            last.timer.speedup()
        ),
        last.timer.speedup() >= 3.0,
    );

    if json {
        let path = "BENCH_manyflow.json";
        std::fs::write(path, manyflow_json(&results, &last.counters)).expect("write JSON report");
        println!("\nwrote {path}");
    }
}
