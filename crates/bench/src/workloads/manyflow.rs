//! Many-flow fan-in workload: N clients streaming into one QPIP server
//! over Myrinet, exercising the engine's timer index and connection
//! tables at fleet scale (64 → 4096 flows).
//!
//! Two measurements per scale:
//!
//! 1. **Fan-in run** — the full simulated workload; reports wall time,
//!    DES events, and events/sec. With the O(1) timer index and slab
//!    tables, events/sec should stay roughly flat per flow as the fleet
//!    grows; with the old scan-based timers it degraded quadratically.
//! 2. **Timer tick** — a microbenchmark of `next_deadline` + `on_timer`
//!    on a real [`Engine`] holding N armed connections, against
//!    [`ScanReplica`], an in-bench replica of the old O(n)
//!    scan-all-connections timer path.

use std::time::Instant;

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_fabric::FabricConfig;
use qpip_netstack::engine::Engine;
use qpip_netstack::tcp::Tcb;
use qpip_netstack::types::{Endpoint, NetConfig, OpCounters};
use qpip_sim::time::SimTime;
use qpip_wire::tcp::SeqNum;

use crate::microbench::{compare, Comparison};

/// One fan-in run at a fixed fleet size.
#[derive(Debug, Clone)]
pub struct ManyflowScale {
    /// Number of client flows fanning into the one server.
    pub flows: usize,
    /// Host wall-clock seconds for the whole run (setup + stream).
    pub wall_s: f64,
    /// Simulated seconds the run covered.
    pub sim_s: f64,
    /// DES events delivered by the kernel.
    pub des_events: u64,
    /// DES events per wall-clock second (kernel meter).
    pub des_events_per_sec: f64,
    /// DES events per flow — the flatness metric.
    pub events_per_flow: f64,
    /// Application bytes delivered to the server.
    pub bytes_received: u64,
    /// Timer-tick cost: scan replica (baseline) vs timer index (current).
    pub timer: Comparison,
    /// Fleet-wide counter snapshots of the world at end of run
    /// (engine + NIC summed across all nodes, plus the fabric).
    pub counters: Vec<qpip_trace::Snapshot>,
}

/// Runs the fan-in workload at one scale: `flows` clients each stream
/// `messages_per_flow` messages of `message` bytes into a single server
/// node, all over one Myrinet switch.
pub fn run_scale(flows: usize, messages_per_flow: usize, message: usize) -> ManyflowScale {
    let wall_start = Instant::now();
    let nic = NicConfig::paper_default();
    let mut w = QpipWorld::new(FabricConfig { mtu: nic.mtu, ..FabricConfig::myrinet() });

    let server = w.add_node(nic.clone());
    let cq_s = w.create_cq(server);
    // One listening QP per expected flow, all pooled on port 5000; each
    // pre-posts enough receive buffers for the whole stream so the
    // advertised window never closes.
    for i in 0..flows {
        let qp = w.create_qp(server, ServiceType::ReliableTcp, cq_s, cq_s).unwrap();
        for j in 0..messages_per_flow {
            w.post_recv(
                server,
                qp,
                RecvWr { wr_id: (i * messages_per_flow + j) as u64, capacity: message },
            )
            .unwrap();
        }
        w.tcp_listen(server, 5000, qp).unwrap();
    }
    let remote = Endpoint::new(w.addr(server), 5000);

    // The connect storm: every client dials the server at once.
    let mut clients = Vec::with_capacity(flows);
    for _ in 0..flows {
        let node = w.add_node(nic.clone());
        let cq = w.create_cq(node);
        let qp = w.create_qp(node, ServiceType::ReliableTcp, cq, cq).unwrap();
        w.tcp_connect(node, qp, 4000, remote).unwrap();
        clients.push((node, cq, qp));
    }
    for &(node, cq, _) in &clients {
        w.wait_matching(node, cq, |c| c.kind == CompletionKind::ConnectionEstablished);
    }

    // Stream: each client posts its whole burst; the server drains.
    for &(node, _, qp) in &clients {
        for m in 0..messages_per_flow {
            w.post_send(
                node,
                qp,
                SendWr { wr_id: m as u64, payload: vec![0x5a; message], dst: None },
            )
            .unwrap();
        }
    }
    let want = (flows * messages_per_flow) as u64;
    let mut recv_done = 0u64;
    let mut bytes_received = 0u64;
    while recv_done < want {
        let c = w.wait(server, cq_s);
        if let CompletionKind::Recv { data, .. } = c.kind {
            recv_done += 1;
            bytes_received += data.len() as u64;
        }
    }

    let wall_s = wall_start.elapsed().as_secs_f64();
    let des_events = w.events_processed();
    ManyflowScale {
        flows,
        wall_s,
        sim_s: w.now().as_secs_f64(),
        des_events,
        des_events_per_sec: w.events_per_sec(),
        events_per_flow: des_events as f64 / flows as f64,
        bytes_received,
        timer: timer_tick_comparison(flows),
        counters: w.counter_snapshots(),
    }
}

/// The old engine's timer path, replicated in-bench: every deadline
/// query scans all connections for the minimum, and every tick walks the
/// whole table looking for due timers. O(n) per tick where the indexed
/// engine is O(1).
pub struct ScanReplica {
    cfg: NetConfig,
    tcbs: Vec<Tcb>,
    ops: OpCounters,
}

impl ScanReplica {
    /// Builds `flows` connections in SYN-SENT (retransmit timer armed),
    /// mirroring [`armed_engine`].
    pub fn new(flows: usize, now: SimTime) -> Self {
        let cfg = NetConfig::qpip(NicConfig::paper_default().segment_mtu());
        let local_addr = std::net::Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
        let remote = Endpoint::new(std::net::Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2), 80);
        let tcbs = (0..flows)
            .map(|i| {
                let local = Endpoint::new(local_addr, 1024 + i as u16);
                Tcb::connect(&cfg, local, remote, SeqNum(0x1000 + i as u32), now).0
            })
            .collect();
        ScanReplica { cfg, tcbs, ops: OpCounters::default() }
    }

    /// One timer tick, the way the pre-index engine did it: scan every
    /// connection for the minimum deadline, then scan again firing any
    /// that are due.
    pub fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        let next = self.tcbs.iter().filter_map(Tcb::next_deadline).min();
        if next.is_some_and(|d| d <= now) {
            for tcb in &mut self.tcbs {
                if tcb.next_deadline().is_some_and(|d| d <= now) {
                    let _ = tcb.on_timer(&self.cfg, now, &mut self.ops);
                }
            }
        }
        next
    }
}

/// Builds a real [`Engine`] with `flows` connections in SYN-SENT, each
/// with its retransmit timer armed in the timer index.
pub fn armed_engine(flows: usize, now: SimTime) -> Engine {
    let local_addr = std::net::Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
    let remote = Endpoint::new(std::net::Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2), 80);
    let mut engine =
        Engine::new(NetConfig::qpip(NicConfig::paper_default().segment_mtu()), local_addr);
    for i in 0..flows {
        let (_, _emits) = engine.tcp_connect(now, 1024 + i as u16, remote);
    }
    engine
}

/// Benchmarks one idle timer tick (`next_deadline` + `on_timer` with
/// nothing due) at `flows` armed connections: scan replica as baseline,
/// the engine's timer index as current.
pub fn timer_tick_comparison(flows: usize) -> Comparison {
    let t0 = SimTime::from_micros(1);
    // Tick just after arming: every RTO is hundreds of ms away, so the
    // tick is pure bookkeeping — exactly the per-event cost the worlds
    // pay when they refresh the timer after absorbing NIC output.
    let tick_at = SimTime::from_micros(2);
    let mut replica = ScanReplica::new(flows, t0);
    let mut engine = armed_engine(flows, t0);
    compare(
        &format!("timer_tick/{flows}"),
        move || replica.tick(tick_at),
        move || {
            let next = engine.next_deadline();
            let emits = engine.on_timer(tick_at);
            debug_assert!(emits.is_empty());
            (next, emits.len())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_delivers_every_message() {
        let r = run_scale(8, 3, 512);
        assert_eq!(r.bytes_received, 8 * 3 * 512);
        assert!(r.des_events > 0);
        assert!(r.events_per_flow > 0.0);
        let engine = r.counters.iter().find(|s| s.scope() == "engine").expect("engine counters");
        assert!(engine.get("rx_packets").expect("rx_packets counter") > 0);
    }

    #[test]
    fn scan_replica_matches_engine_deadline() {
        let t0 = SimTime::from_micros(1);
        let mut replica = ScanReplica::new(32, t0);
        let engine = armed_engine(32, t0);
        assert_eq!(replica.tick(SimTime::from_micros(2)), engine.next_deadline());
        assert_eq!(engine.timer_index_len(), 32);
    }
}
