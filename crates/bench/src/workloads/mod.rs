//! Benchmark workloads: the traffic generators behind every figure.

pub mod manyflow;
pub mod pingpong;
pub mod ttcp;
pub mod xport;
