//! Benchmark workloads: the traffic generators behind every figure.

pub mod pingpong;
pub mod ttcp;
