//! Live-socket workloads: the ttcp-style RTT and streaming benchmarks
//! of Figures 3/4, but run between two real [`XportNode`]s over
//! 127.0.0.1 instead of inside the DES.
//!
//! Numbers from these workloads are **wall-clock measurements** — they
//! vary run to run with machine load, unlike everything else in this
//! crate. Use them as a smoke-level sanity check that the engine
//! behaves on real wires, not as reproducible figures.

use std::net::Ipv6Addr;
use std::time::{Duration, Instant};

use qpip_netstack::types::Endpoint;
use qpip_nic::types::{CompletionKind, CompletionStatus, RecvWr, SendWr, ServiceType};
use qpip_xport::{ImpairConfig, ImpairProxy, XportConfig, XportNode};

const FABRIC_A: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 0xa);
const FABRIC_B: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 0xb);
const PORT: u16 = 5001;

/// Live round-trip measurement.
#[derive(Debug, Clone, Copy)]
pub struct LiveRtt {
    /// Ping-pong rounds measured.
    pub rounds: u32,
    /// Payload bytes per ping.
    pub payload: usize,
    /// Mean RTT in microseconds.
    pub mean_us: f64,
    /// Median RTT in microseconds.
    pub p50_us: f64,
    /// Fastest observed round.
    pub min_us: f64,
}

/// Live streaming measurement.
#[derive(Debug, Clone, Copy)]
pub struct LiveStream {
    /// Messages streamed.
    pub messages: u32,
    /// Bytes per message.
    pub message_len: usize,
    /// Total payload bytes.
    pub bytes: u64,
    /// Wall seconds from first send to last acknowledgment.
    pub wall_s: f64,
    /// Goodput in MB/s (10⁶ bytes per second).
    pub mbytes_per_sec: f64,
    /// Sender-side TCP retransmissions (0 on clean loopback).
    pub retransmissions: u64,
    /// Datagrams the impairment proxy deliberately dropped (0 when
    /// running direct).
    pub proxy_dropped: u64,
}

fn pair() -> (XportNode, XportNode) {
    let a = XportNode::bind(FABRIC_A, XportConfig::default()).expect("bind a");
    let b = XportNode::bind(FABRIC_B, XportConfig::default()).expect("bind b");
    (a, b)
}

fn wire_direct(a: &mut XportNode, b: &mut XportNode) {
    let (aa, ba) = (a.local_addr().expect("addr"), b.local_addr().expect("addr"));
    a.add_peer(FABRIC_B, ba);
    b.add_peer(FABRIC_A, aa);
}

/// Measures QP-to-QP round-trip time over live loopback sockets:
/// `rounds` ping-pongs of `payload` bytes on a reliable (TCP) QP.
pub fn live_rtt(rounds: u32, payload: usize) -> LiveRtt {
    let (mut a, mut b) = pair();
    wire_direct(&mut a, &mut b);

    let echo = std::thread::spawn(move || {
        let cq = b.create_cq();
        let qp = b.create_qp(ServiceType::ReliableTcp, cq, cq).expect("qp");
        b.tcp_listen(qp, PORT).expect("listen");
        for i in 0..8 {
            b.post_recv(qp, RecvWr { wr_id: i, capacity: payload.max(64) }).expect("recv");
        }
        let mut echoed = 0;
        while echoed < rounds {
            let c = b.wait(cq).expect("echo completion");
            match c.kind {
                CompletionKind::Recv { data, .. } => {
                    b.post_recv(qp, RecvWr { wr_id: 0, capacity: payload.max(64) }).expect("recv");
                    b.post_send(qp, SendWr { wr_id: 0, payload: data, dst: None }).expect("send");
                    echoed += 1;
                }
                _ => continue,
            }
        }
        // drain until the peer closes so FINs are answered
        let until = Instant::now() + Duration::from_millis(300);
        while Instant::now() < until {
            b.pump(Duration::from_millis(10)).expect("pump");
        }
    });

    let send_cq = a.create_cq();
    let recv_cq = a.create_cq();
    let qp = a.create_qp(ServiceType::ReliableTcp, send_cq, recv_cq).expect("qp");
    for i in 0..8 {
        a.post_recv(qp, RecvWr { wr_id: i, capacity: payload.max(64) }).expect("recv");
    }
    a.tcp_connect(qp, 4000, Endpoint::new(FABRIC_B, PORT)).expect("connect");
    loop {
        if a.wait(recv_cq).expect("established").kind == CompletionKind::ConnectionEstablished {
            break;
        }
    }

    let mut samples_us = Vec::with_capacity(rounds as usize);
    let ping = vec![0x5a; payload];
    for _ in 0..rounds {
        let t0 = Instant::now();
        a.post_send(qp, SendWr { wr_id: 0, payload: ping.clone(), dst: None }).expect("send");
        loop {
            let c = a.wait(recv_cq).expect("pong");
            if let CompletionKind::Recv { .. } = c.kind {
                break;
            }
        }
        samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
        a.post_recv(qp, RecvWr { wr_id: 0, capacity: payload.max(64) }).expect("recv");
        while a.poll(send_cq).expect("drain").is_some() {}
    }
    a.tcp_close(qp).expect("close");
    let until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < until {
        a.pump(Duration::from_millis(10)).expect("pump");
    }
    echo.join().expect("echo thread");

    samples_us.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let mean = samples_us.iter().sum::<f64>() / samples_us.len() as f64;
    LiveRtt {
        rounds,
        payload,
        mean_us: mean,
        p50_us: samples_us[samples_us.len() / 2],
        min_us: samples_us[0],
    }
}

/// Streams `messages` messages of `message_len` bytes from one live
/// node to another, optionally through an impairment proxy, and
/// reports goodput. Delivery is verified exactly-once in-order on the
/// receiver; the wall clock only prices it. Also returns the sender's
/// unified counter snapshots (`engine`, `xport`, and `proxy` when
/// impaired) for the benches' `counters` JSON section.
pub fn live_stream(
    messages: u32,
    message_len: usize,
    impair: Option<ImpairConfig>,
) -> (LiveStream, Vec<qpip_trace::Snapshot>) {
    let (mut a, mut b) = pair();
    let proxy = match impair {
        Some(cfg) => {
            let p = ImpairProxy::new(cfg)
                .route(FABRIC_A, a.local_addr().expect("addr"))
                .route(FABRIC_B, b.local_addr().expect("addr"))
                .spawn()
                .expect("proxy");
            a.add_peer(FABRIC_B, p.addr());
            b.add_peer(FABRIC_A, p.addr());
            Some(p)
        }
        None => {
            wire_direct(&mut a, &mut b);
            None
        }
    };

    let sink = std::thread::spawn(move || {
        let cq = b.create_cq();
        let qp = b.create_qp(ServiceType::ReliableTcp, cq, cq).expect("qp");
        b.tcp_listen(qp, PORT).expect("listen");
        for i in 0..64 {
            b.post_recv(qp, RecvWr { wr_id: i, capacity: message_len }).expect("recv");
        }
        let mut seq = 0u32;
        while seq < messages {
            let c = b.wait(cq).expect("sink completion");
            if let CompletionKind::Recv { data, .. } = c.kind {
                // exactly-once in-order: each message opens with its
                // sequence number
                let got = u32::from_be_bytes(data[..4].try_into().expect("header"));
                assert_eq!(got, seq, "stream out of order");
                seq += 1;
                if seq < messages {
                    b.post_recv(qp, RecvWr { wr_id: 0, capacity: message_len }).expect("recv");
                }
            }
        }
        let until = Instant::now() + Duration::from_millis(300);
        while Instant::now() < until {
            b.pump(Duration::from_millis(10)).expect("pump");
        }
    });

    let send_cq = a.create_cq();
    let recv_cq = a.create_cq();
    let qp = a.create_qp(ServiceType::ReliableTcp, send_cq, recv_cq).expect("qp");
    a.tcp_connect(qp, 4000, Endpoint::new(FABRIC_B, PORT)).expect("connect");
    loop {
        if a.wait(recv_cq).expect("established").kind == CompletionKind::ConnectionEstablished {
            break;
        }
    }

    let t0 = Instant::now();
    let mut next = 0u32;
    let mut inflight = 0u32;
    let mut completed = 0u32;
    while completed < messages {
        while next < messages && inflight < 32 {
            let mut m = vec![0u8; message_len];
            m[..4].copy_from_slice(&next.to_be_bytes());
            a.post_send(qp, SendWr { wr_id: u64::from(next), payload: m, dst: None })
                .expect("send");
            next += 1;
            inflight += 1;
        }
        let done = a.wait(send_cq).expect("ack");
        assert_eq!(done.status, CompletionStatus::Success);
        inflight -= 1;
        completed += 1;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let retransmissions = a.engine().retransmissions();
    a.tcp_close(qp).expect("close");
    let until = Instant::now() + Duration::from_millis(100);
    while Instant::now() < until {
        a.pump(Duration::from_millis(10)).expect("pump");
    }
    sink.join().expect("sink thread");

    let mut counters = vec![a.engine().stats().snapshot(), a.stats().snapshot()];
    let proxy_dropped = proxy.map_or(0, |p| {
        counters.push(p.stats().snapshot());
        p.stats().dropped
    });
    let bytes = u64::from(messages) * message_len as u64;
    let stream = LiveStream {
        messages,
        message_len,
        bytes,
        wall_s,
        mbytes_per_sec: bytes as f64 / 1e6 / wall_s,
        retransmissions,
        proxy_dropped,
    };
    (stream, counters)
}
