//! Application-to-application round-trip time (Figure 3): one 1-byte
//! message from one application to another and back, over each of the
//! three implementations and both transports.

use std::sync::Arc;

use qpip::baseline::SocketWorld;
use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_host::stack::StackConfig;
use qpip_netstack::types::Endpoint;
use qpip_sim::stats::Summary;
use qpip_trace::{FlightRecorder, Snapshot};

/// RTT measurement result.
#[derive(Debug, Clone)]
pub struct RttResult {
    /// Mean round-trip time in microseconds.
    pub mean_us: f64,
    /// Sample summary.
    pub samples: Summary,
}

/// Measures QPIP QP-to-QP RTT over TCP (reliable service).
pub fn qpip_tcp_rtt(nic: NicConfig, payload: usize, rounds: usize) -> RttResult {
    qpip_tcp_rtt_observed(nic, payload, rounds, None).0
}

/// [`qpip_tcp_rtt`] with observability: optionally installs a flight
/// recorder on the world (tracing changes no simulation outcome — the
/// RTT numbers are identical either way) and also returns the world's
/// unified counter snapshots for the benches' `counters` JSON section.
pub fn qpip_tcp_rtt_observed(
    nic: NicConfig,
    payload: usize,
    rounds: usize,
    recorder: Option<Arc<FlightRecorder>>,
) -> (RttResult, Vec<Snapshot>) {
    let mut w = QpipWorld::myrinet();
    if let Some(rec) = recorder {
        w.install_recorder(rec);
    }
    let a = w.add_node(nic.clone());
    let b = w.add_node(nic);
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::ReliableTcp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::ReliableTcp, cqb, cqb).unwrap();
    // pre-post generously so reposting stays off the critical path
    for i in 0..4u64 {
        w.post_recv(a, qa, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    w.tcp_listen(b, 5000, qb).unwrap();
    let remote = Endpoint::new(w.addr(b), 5000);
    w.tcp_connect(a, qa, 4000, remote).unwrap();
    w.wait_matching(a, cqa, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(b, cqb, |c| c.kind == CompletionKind::ConnectionEstablished);

    let mut samples = Summary::new();
    let warmup = 4;
    for round in 0..rounds + warmup {
        // keep one spare receive posted on each side
        w.post_recv(a, qa, RecvWr { wr_id: 900 + round as u64, capacity: 16 * 1024 }).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: 900 + round as u64, capacity: 16 * 1024 }).unwrap();
        let t0 = w.app_time(a);
        w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![0x5a; payload], dst: None }).unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        w.post_send(b, qb, SendWr { wr_id: 2, payload: vec![0xa5; payload], dst: None }).unwrap();
        w.wait_matching(a, cqa, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        if round >= warmup {
            samples.record(w.app_time(a).duration_since(t0).as_micros_f64());
        }
    }
    (RttResult { mean_us: samples.mean(), samples }, w.counter_snapshots())
}

/// Measures QPIP QP-to-QP RTT over UDP (unreliable service).
pub fn qpip_udp_rtt(nic: NicConfig, payload: usize, rounds: usize) -> RttResult {
    let mut w = QpipWorld::myrinet();
    let a = w.add_node(nic.clone());
    let b = w.add_node(nic);
    let cqa = w.create_cq(a);
    let cqb = w.create_cq(b);
    let qa = w.create_qp(a, ServiceType::UnreliableUdp, cqa, cqa).unwrap();
    let qb = w.create_qp(b, ServiceType::UnreliableUdp, cqb, cqb).unwrap();
    w.udp_bind(a, qa, 9000).unwrap();
    w.udp_bind(b, qb, 9001).unwrap();
    let to_b = Endpoint::new(w.addr(b), 9001);
    let to_a = Endpoint::new(w.addr(a), 9000);
    for i in 0..4u64 {
        w.post_recv(a, qa, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: i, capacity: 16 * 1024 }).unwrap();
    }
    let mut samples = Summary::new();
    let warmup = 4;
    for round in 0..rounds + warmup {
        w.post_recv(a, qa, RecvWr { wr_id: 900, capacity: 16 * 1024 }).unwrap();
        w.post_recv(b, qb, RecvWr { wr_id: 900, capacity: 16 * 1024 }).unwrap();
        let t0 = w.app_time(a);
        w.post_send(a, qa, SendWr { wr_id: 1, payload: vec![1; payload], dst: Some(to_b) })
            .unwrap();
        w.wait_matching(b, cqb, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        w.post_send(b, qb, SendWr { wr_id: 2, payload: vec![2; payload], dst: Some(to_a) })
            .unwrap();
        w.wait_matching(a, cqa, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        if round >= warmup {
            samples.record(w.app_time(a).duration_since(t0).as_micros_f64());
        }
    }
    RttResult { mean_us: samples.mean(), samples }
}

/// Which host baseline fabric to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// IP over Gigabit Ethernet.
    GigE,
    /// IP over Myrinet (GM).
    GmMyrinet,
}

fn baseline_world(which: Baseline) -> (SocketWorld, StackConfig) {
    match which {
        Baseline::GigE => (SocketWorld::gige(), StackConfig::gige()),
        Baseline::GmMyrinet => (SocketWorld::gm_myrinet(), StackConfig::gm_myrinet()),
    }
}

/// Measures socket-to-socket TCP RTT on a host baseline.
pub fn socket_tcp_rtt(which: Baseline, payload: usize, rounds: usize) -> RttResult {
    let (mut w, cfg) = baseline_world(which);
    let a = w.add_node(cfg.clone());
    let b = w.add_node(cfg);
    let ls = w.tcp_socket(b);
    w.listen(b, ls, 5000).unwrap();
    let cs = w.tcp_socket(a);
    let remote = Endpoint::new(w.addr(b), 5000);
    w.connect_blocking(a, cs, 4000, remote).unwrap();
    let ss = w.accept_blocking(b, ls);
    let mut samples = Summary::new();
    let warmup = 4;
    for round in 0..rounds + warmup {
        let t0 = w.app_time(a);
        w.send_blocking(a, cs, vec![0x5a; payload]).unwrap();
        let _ = w.recv_exact(b, ss, payload);
        w.send_blocking(b, ss, vec![0xa5; payload]).unwrap();
        let _ = w.recv_exact(a, cs, payload);
        if round >= warmup {
            samples.record(w.app_time(a).duration_since(t0).as_micros_f64());
        }
    }
    RttResult { mean_us: samples.mean(), samples }
}

/// Measures socket-to-socket UDP RTT on a host baseline.
pub fn socket_udp_rtt(which: Baseline, payload: usize, rounds: usize) -> RttResult {
    let (mut w, cfg) = baseline_world(which);
    let a = w.add_node(cfg.clone());
    let b = w.add_node(cfg);
    let sa = w.udp_socket(a);
    let sb = w.udp_socket(b);
    w.udp_bind(a, sa, 9000).unwrap();
    w.udp_bind(b, sb, 9001).unwrap();
    let to_b = Endpoint::new(w.addr(b), 9001);
    let to_a = Endpoint::new(w.addr(a), 9000);
    let mut samples = Summary::new();
    let warmup = 4;
    for round in 0..rounds + warmup {
        let t0 = w.app_time(a);
        w.udp_send(a, sa, to_b, &vec![1; payload]).unwrap();
        let _ = w.udp_recv_blocking(b, sb);
        w.udp_send(b, sb, to_a, &vec![2; payload]).unwrap();
        let _ = w.udp_recv_blocking(a, sa);
        if round >= warmup {
            samples.record(w.app_time(a).duration_since(t0).as_micros_f64());
        }
    }
    RttResult { mean_us: samples.mean(), samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpip_rtt_is_stable_across_rounds() {
        let r = qpip_tcp_rtt(NicConfig::paper_default(), 1, 10);
        let spread = r.samples.max().unwrap() - r.samples.min().unwrap();
        assert!(spread < 3.0, "steady-state rtt jitter {spread} µs");
    }

    #[test]
    fn udp_rtt_is_below_tcp_rtt() {
        let udp = qpip_udp_rtt(NicConfig::paper_default(), 1, 8);
        let tcp = qpip_tcp_rtt(NicConfig::paper_default(), 1, 8);
        assert!(udp.mean_us < tcp.mean_us, "udp {} vs tcp {}", udp.mean_us, tcp.mean_us);
    }

    #[test]
    fn firmware_checksum_adds_latency() {
        let hw = qpip_udp_rtt(NicConfig::paper_default(), 1, 6);
        let fw = qpip_udp_rtt(NicConfig::firmware_checksum(), 1, 6);
        assert!(fw.mean_us > hw.mean_us);
    }

    #[test]
    fn socket_rtts_measure() {
        let t = socket_tcp_rtt(Baseline::GigE, 1, 6);
        let u = socket_udp_rtt(Baseline::GigE, 1, 6);
        assert!(t.mean_us > 0.0 && u.mean_us > 0.0);
        assert!(u.mean_us < t.mean_us);
    }
}
