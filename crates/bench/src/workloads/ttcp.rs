//! The ttcp v1.4-style throughput benchmark (Figure 4): a 10 MB
//! transfer in 16 KB application writes with TCP_NODELAY, reporting
//! goodput and host CPU utilization on each implementation (§4.2.1).

use qpip::baseline::SocketWorld;
use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_host::stack::{HostOutput, StackConfig};
use qpip_netstack::types::Endpoint;
use qpip_sim::time::SimTime;

use super::pingpong::Baseline;

/// Throughput measurement result.
#[derive(Debug, Clone, Copy)]
pub struct TtcpResult {
    /// Goodput in MB/s (10⁶ bytes per second).
    pub mbytes_per_sec: f64,
    /// Sender host CPU utilization (fraction of one 550 MHz CPU).
    pub sender_cpu: f64,
    /// Receiver host CPU utilization.
    pub receiver_cpu: f64,
    /// Elapsed simulated seconds.
    pub elapsed_s: f64,
    /// TCP retransmissions observed (0 on the lossless SAN).
    pub retransmissions: u64,
}

/// Runs ttcp over QPIP. `message` is the QP message size (one message
/// per TCP segment, §4.1); the native configuration writes 16 KB
/// messages onto the 16 KB MTU.
pub fn qpip_ttcp(nic: NicConfig, total_bytes: u64, message: usize) -> TtcpResult {
    // one message per segment: clamp the write size to what one segment
    // carries (IPv6 40 + TCP 32 with timestamps); with jumbo segments
    // the wire MTU no longer bounds the message (IPv6 fragmentation)
    let message =
        message.min(qpip_netstack::types::NetConfig::qpip(nic.segment_mtu()).max_tcp_payload());
    let mut w = QpipWorld::new(qpip_fabric::FabricConfig {
        mtu: nic.mtu,
        ..qpip_fabric::FabricConfig::myrinet()
    });
    let tx = w.add_node(nic.clone());
    let rx = w.add_node(nic);
    let cqt = w.create_cq(tx);
    let cqr = w.create_cq(rx);
    let qt = w.create_qp(tx, ServiceType::ReliableTcp, cqt, cqt).unwrap();
    let qr = w.create_qp(rx, ServiceType::ReliableTcp, cqr, cqr).unwrap();

    // receiver pre-posts a ring of message buffers; the posted space is
    // the advertised TCP window (§5.1)
    let ring = 32u64;
    for i in 0..ring {
        w.post_recv(rx, qr, RecvWr { wr_id: i, capacity: message }).unwrap();
    }
    w.tcp_listen(rx, 5000, qr).unwrap();
    let remote = Endpoint::new(w.addr(rx), 5000);
    w.tcp_connect(tx, qt, 4000, remote).unwrap();
    w.wait_matching(tx, cqt, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(rx, cqr, |c| c.kind == CompletionKind::ConnectionEstablished);

    let messages = total_bytes.div_ceil(message as u64);
    let window = 16u64; // outstanding send WRs, like ttcp's socket buffer
    let mut posted = 0u64;
    let mut send_done = 0u64;
    let mut recv_done = 0u64;
    let t_start = w.app_time(tx);
    let tx_busy0 = w.cpu(tx).busy_time();
    let rx_busy0 = w.cpu(rx).busy_time();
    let mut t_end = SimTime::ZERO;

    while recv_done < messages {
        while posted < messages && posted - send_done < window {
            w.post_send(tx, qt, SendWr { wr_id: posted, payload: vec![0x42; message], dst: None })
                .unwrap();
            posted += 1;
        }
        let c = w.wait(rx, cqr);
        if matches!(c.kind, CompletionKind::Recv { .. }) {
            recv_done += 1;
            t_end = w.app_time(rx);
            // recycle the buffer
            w.post_recv(rx, qr, RecvWr { wr_id: ring + recv_done, capacity: message }).unwrap();
        }
        // harvest sender completions without spinning
        while let Some(c) = w.try_wait(tx, cqt) {
            if c.kind == CompletionKind::Send {
                send_done += 1;
            }
        }
    }

    let elapsed = t_end.duration_since(t_start);
    let tx_busy = w.cpu(tx).busy_time() - tx_busy0;
    let rx_busy = w.cpu(rx).busy_time() - rx_busy0;
    TtcpResult {
        mbytes_per_sec: (messages * message as u64) as f64 / elapsed.as_secs_f64() / 1e6,
        sender_cpu: tx_busy.as_secs_f64() / elapsed.as_secs_f64(),
        receiver_cpu: rx_busy.as_secs_f64() / elapsed.as_secs_f64(),
        elapsed_s: elapsed.as_secs_f64(),
        retransmissions: w.nic(tx).retransmissions(),
    }
}

/// Runs ttcp over a host-based socket baseline: 16 KB blocking writes,
/// 16 KB reads, exactly like ttcp -t/-r.
pub fn socket_ttcp(which: Baseline, total_bytes: u64, chunk: usize) -> TtcpResult {
    let (mut w, cfg) = match which {
        Baseline::GigE => (SocketWorld::gige(), StackConfig::gige()),
        Baseline::GmMyrinet => (SocketWorld::gm_myrinet(), StackConfig::gm_myrinet()),
    };
    let a = w.add_node(cfg.clone());
    let b = w.add_node(cfg);
    let ls = w.tcp_socket(b);
    w.listen(b, ls, 5000).unwrap();
    let cs = w.tcp_socket(a);
    let remote = Endpoint::new(w.addr(b), 5000);
    w.connect_blocking(a, cs, 4000, remote).unwrap();
    let ss = w.accept_blocking(b, ls);

    let total = total_bytes as usize;
    let mut sent = 0usize;
    let mut received = 0usize;
    let t_start = w.app_time(a);
    let a_busy0 = w.cpu(a).busy_time();
    let b_busy0 = w.cpu(b).busy_time();
    let mut t_end = SimTime::ZERO;
    // blocked-writer state: after WouldBlock, sleep until SendSpace
    let mut awaiting_space = false;

    while received < total {
        let mut progress = false;
        if !awaiting_space {
            while sent < total {
                let n = chunk.min(total - sent);
                if w.try_send(a, cs, vec![0x42; n]).expect("send") {
                    sent += n;
                    progress = true;
                } else {
                    awaiting_space = true;
                    w.clear_events(a);
                    break;
                }
            }
        }
        // receiver drains in chunk-sized reads, like ttcp -r
        while w.readable(b, ss) > 0 && received < total {
            let data = w.recv_available(b, ss, chunk);
            received += data.len();
            progress = true;
            t_end = w.app_time(b);
        }
        if received >= total {
            break;
        }
        if !progress {
            assert!(w.step(), "ttcp deadlocked: sent {sent} received {received}");
            if awaiting_space {
                // woken by the stack?
                let has_space = {
                    let evs = w.events(a);
                    evs.iter().any(|e| matches!(e, HostOutput::SendSpace { .. }))
                };
                if has_space {
                    awaiting_space = false;
                    w.clear_events(a);
                }
            }
        }
    }

    let elapsed = t_end.duration_since(t_start);
    let a_busy = w.cpu(a).busy_time() - a_busy0;
    let b_busy = w.cpu(b).busy_time() - b_busy0;
    TtcpResult {
        mbytes_per_sec: total as f64 / elapsed.as_secs_f64() / 1e6,
        sender_cpu: a_busy.as_secs_f64() / elapsed.as_secs_f64(),
        receiver_cpu: b_busy.as_secs_f64() / elapsed.as_secs_f64(),
        elapsed_s: elapsed.as_secs_f64(),
        retransmissions: w.stack(a).retransmissions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpip_sim::params;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn qpip_native_mtu_outperforms_with_negligible_cpu() {
        let r = qpip_ttcp(NicConfig::paper_default(), 2 * MB, params::TTCP_CHUNK_BYTES);
        assert!(r.mbytes_per_sec > 40.0, "{:?}", r);
        assert!(r.sender_cpu < 0.05, "{:?}", r);
        assert!(r.receiver_cpu < 0.05, "{:?}", r);
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn qpip_small_mtu_is_nic_processor_limited() {
        let big = qpip_ttcp(NicConfig::paper_default(), MB, params::TTCP_CHUNK_BYTES);
        let small = qpip_ttcp(NicConfig { mtu: 1500, ..NicConfig::paper_default() }, MB, 1408);
        assert!(small.mbytes_per_sec < big.mbytes_per_sec, "{small:?} vs {big:?}");
    }

    #[test]
    fn socket_gige_saturates_host_cpu_fractionally() {
        let r = socket_ttcp(Baseline::GigE, 2 * MB, 16 * 1024);
        assert!(r.mbytes_per_sec > 10.0, "{r:?}");
        let peak = r.sender_cpu.max(r.receiver_cpu);
        assert!(peak > 0.2, "host stack should burn real CPU: {r:?}");
        assert_eq!(r.retransmissions, 0);
    }
}
