//! Criterion benchmarks of the simulation infrastructure: event-queue
//! throughput and the wall-clock cost of simulating full QPIP and
//! socket-baseline transfers (how fast the reproduction itself runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpip::NicConfig;
use qpip_bench::workloads::pingpong::{qpip_tcp_rtt, socket_tcp_rtt, Baseline};
use qpip_bench::workloads::ttcp::qpip_ttcp;
use qpip_sim::kernel::Simulator;
use qpip_sim::time::SimDuration;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_kernel");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("schedule_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim: Simulator<u64> = Simulator::new();
                for i in 0..n {
                    // pseudo-random but deterministic interleaving
                    let t = (i * 2_654_435_761) % 1_000_000;
                    sim.schedule_after(SimDuration::from_nanos(t), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = sim.next() {
                    acc = acc.wrapping_add(e);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system_sim");
    g.sample_size(10);
    g.bench_function("qpip_tcp_pingpong_20rounds", |b| {
        b.iter(|| qpip_tcp_rtt(NicConfig::paper_default(), 1, 20))
    });
    g.bench_function("gige_tcp_pingpong_20rounds", |b| {
        b.iter(|| socket_tcp_rtt(Baseline::GigE, 1, 20))
    });
    g.bench_function("qpip_ttcp_1mb", |b| {
        b.iter(|| qpip_ttcp(NicConfig::paper_default(), 1024 * 1024, 16 * 1024))
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_full_system);
criterion_main!(benches);
