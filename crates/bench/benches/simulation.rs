//! Benchmarks of the simulation infrastructure: event-queue throughput
//! and the wall-clock cost of simulating full QPIP and socket-baseline
//! transfers (how fast the reproduction itself runs). Uses the in-tree
//! [`qpip_bench::microbench`] harness.

use qpip::NicConfig;
use qpip_bench::microbench::bench;
use qpip_bench::workloads::pingpong::{qpip_tcp_rtt, socket_tcp_rtt, Baseline};
use qpip_bench::workloads::ttcp::qpip_ttcp;
use qpip_sim::kernel::Simulator;
use qpip_sim::time::SimDuration;

fn print(m: qpip_bench::microbench::Measurement) {
    println!("{:<40} {:>12.1} ns/op", m.name, m.ns_per_op);
}

fn bench_event_queue() {
    for n in [1_000u64, 100_000] {
        print(bench(&format!("des_kernel/schedule_drain/{n}"), || {
            let mut sim: Simulator<u64> = Simulator::new();
            for i in 0..n {
                // pseudo-random but deterministic interleaving
                let t = (i * 2_654_435_761) % 1_000_000;
                sim.schedule_after(SimDuration::from_nanos(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = sim.next() {
                acc = acc.wrapping_add(e);
            }
            acc
        }));
    }
}

fn bench_full_system() {
    print(bench("full_system_sim/qpip_tcp_pingpong_20rounds", || {
        qpip_tcp_rtt(NicConfig::paper_default(), 1, 20)
    }));
    print(bench("full_system_sim/gige_tcp_pingpong_20rounds", || {
        socket_tcp_rtt(Baseline::GigE, 1, 20)
    }));
    print(bench("full_system_sim/qpip_ttcp_1mb", || {
        qpip_ttcp(NicConfig::paper_default(), 1024 * 1024, 16 * 1024)
    }));
}

fn main() {
    bench_event_queue();
    bench_full_system();
}
