//! Datapath hot-path benchmarks with in-file baselines.
//!
//! Measures the three optimizations of the zero-copy datapath PR against
//! faithful reimplementations of the code they replaced:
//!
//! 1. wide-word internet checksum vs the 2-byte scalar walk,
//! 2. headroom-prepend packet encode + borrowed decode vs the
//!    concat-of-Vecs encode + copying decode,
//! 3. generation-checked timer cancellation vs HashSet lazy deletion,
//!    under per-ACK rescheduling churn.
//!
//! Run with `--json` to also write `BENCH_datapath.json` (machine
//! readable before/after ns/op plus scalar metrics).

use std::collections::{BinaryHeap, HashSet};
use std::net::Ipv6Addr;

use qpip_bench::microbench::{compare, Comparison};
use qpip_bench::report::datapath_json;
use qpip_bench::workloads::pingpong::qpip_tcp_rtt_observed;
use qpip_netstack::codec::{build_tcp_packet, build_udp_packet, decode_packet, Decoded};
use qpip_netstack::tcp::SegmentOut;
use qpip_netstack::types::{Endpoint, PacketKind};
use qpip_sim::kernel::Simulator;
use qpip_sim::time::{SimDuration, SimTime};
use qpip_wire::checksum::checksum;
use qpip_wire::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};
use qpip_wire::udp::UdpHeader;

// ---------------------------------------------------------------------
// Baseline 1: the 2-byte scalar checksum this PR replaced.
// ---------------------------------------------------------------------

fn scalar_checksum_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut words = data.chunks_exact(2);
    for w in &mut words {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [b] = words.remainder() {
        sum += u32::from(u16::from_be_bytes([*b, 0]));
    }
    sum
}

fn scalar_checksum(data: &[u8]) -> u16 {
    let mut s = scalar_checksum_sum(data);
    while s >> 16 != 0 {
        s = (s & 0xffff) + (s >> 16);
    }
    !(s as u16)
}

fn scalar_transport_checksum(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, segment: &[u8]) -> u16 {
    let mut s = scalar_checksum_sum(&src.octets());
    s += scalar_checksum_sum(&dst.octets());
    let len = segment.len() as u32;
    s += (len >> 16) + (len & 0xffff);
    s += u32::from(next_header);
    s += scalar_checksum_sum(segment);
    while s >> 16 != 0 {
        s = (s & 0xffff) + (s >> 16);
    }
    !(s as u16)
}

// ---------------------------------------------------------------------
// Baseline 2: the concat-of-Vecs codec this PR replaced — every layer
// allocates its own vector and copies everything below it, and decode
// copies the payload out.
// ---------------------------------------------------------------------

fn baseline_wrap_ipv6(src: Ipv6Addr, dst: Ipv6Addr, nh: NextHeader, transport: Vec<u8>) -> Vec<u8> {
    let ip = Ipv6Header::new(src, dst, nh, transport.len() as u16);
    let mut pkt = Vec::with_capacity(IPV6_HEADER_LEN + transport.len());
    ip.encode(&mut pkt);
    pkt.extend_from_slice(&transport);
    pkt
}

fn baseline_build_udp_packet(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Vec<u8> {
    let udp = UdpHeader::for_payload(src.port, dst.port, payload.len());
    let mut seg = Vec::with_capacity(8 + payload.len());
    udp.encode(&mut seg);
    seg.extend_from_slice(payload);
    let ck = scalar_transport_checksum(src.addr, dst.addr, NextHeader::Udp.code(), &seg);
    let ck = if ck == 0 { 0xffff } else { ck };
    seg[6..8].copy_from_slice(&ck.to_be_bytes());
    baseline_wrap_ipv6(src.addr, dst.addr, NextHeader::Udp, seg)
}

fn baseline_build_tcp_packet(src: Endpoint, dst: Endpoint, seg: &SegmentOut) -> Vec<u8> {
    let hdr = TcpHeader {
        src_port: src.port,
        dst_port: dst.port,
        seq: seg.seq,
        ack: seg.ack,
        flags: seg.flags,
        window: seg.window,
        checksum: 0,
        urgent: 0,
        options: seg.options,
    };
    let mut bytes = Vec::with_capacity(hdr.encoded_len() + seg.payload.len());
    hdr.encode(&mut bytes);
    bytes.extend_from_slice(&seg.payload);
    let ck = scalar_transport_checksum(src.addr, dst.addr, NextHeader::Tcp.code(), &bytes);
    bytes[16..18].copy_from_slice(&ck.to_be_bytes());
    baseline_wrap_ipv6(src.addr, dst.addr, NextHeader::Tcp, bytes)
}

/// Baseline decode: verify with the scalar checksum, then copy the
/// payload into an owned vector (the old `seg[hl..].to_vec()`).
fn baseline_decode_payload(bytes: &[u8]) -> Vec<u8> {
    let (ip, n) = Ipv6Header::parse(bytes).unwrap();
    let seg = &bytes[n..n + usize::from(ip.payload_len)];
    let ok = scalar_transport_checksum(ip.src, ip.dst, ip.next_header.code(), seg) == 0;
    assert!(ok, "baseline checksum verify failed");
    match ip.next_header {
        NextHeader::Tcp => {
            let (_, hl) = TcpHeader::parse(seg).unwrap();
            seg[hl..].to_vec()
        }
        NextHeader::Udp => {
            let (udp, hl) = UdpHeader::parse(seg).unwrap();
            seg[hl..usize::from(udp.length)].to_vec()
        }
        NextHeader::Other(_) => Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Baseline 3: the lazy-deletion DES kernel this PR replaced — cancelled
// ids collect in a HashSet and dead entries ride the heap until popped,
// so per-ACK rescheduling grows the queue without bound.
// ---------------------------------------------------------------------

struct LazyEntry {
    at: SimTime,
    seq: u64,
    event: u32,
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for LazyEntry {}
impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // inverted: BinaryHeap is a max-heap, we want the earliest event
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct LazyKernel {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<LazyEntry>,
    cancelled: HashSet<u64>,
}

impl LazyKernel {
    fn schedule_after(&mut self, after: SimDuration, event: u32) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(LazyEntry { at: self.now + after, seq, event });
        seq
    }

    fn cancel(&mut self, id: u64) {
        self.cancelled.insert(id);
    }

    fn next(&mut self) -> Option<(SimTime, u32)> {
        while let Some(e) = self.queue.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            self.now = e.at;
            return Some((e.at, e.event));
        }
        None
    }
}

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

fn tcp_segment(payload_len: usize) -> SegmentOut {
    SegmentOut {
        seq: SeqNum(0x1000),
        ack: SeqNum(0x2000),
        flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
        window: 32_000,
        options: TcpOptions { timestamps: Some((7, 9)), ..TcpOptions::default() },
        payload: vec![0x42; payload_len],
        kind: PacketKind::TcpData,
        is_retransmit: false,
        ect: false,
    }
}

/// Per-ACK rescheduling churn, as a TCP sender does with its RTO timer:
/// every ACK cancels the pending retransmit timer and schedules a new
/// one. Interleaves a few deliveries so both kernels also pop.
const CHURN_CONNS: usize = 32;

fn churn_current(acks: usize) -> (u64, usize) {
    let mut sim: Simulator<u32> = Simulator::new();
    let mut ids: Vec<_> = (0..CHURN_CONNS)
        .map(|i| sim.schedule_after(SimDuration::from_millis(200 + i as u64), i as u32))
        .collect();
    let mut max_depth = 0;
    let mut acc = 0u64;
    for a in 0..acks {
        let c = a % CHURN_CONNS;
        sim.cancel(ids[c]);
        ids[c] = sim.schedule_after(SimDuration::from_millis(200), c as u32);
        if a % 64 == 63 {
            // a tick fires: deliver whatever is due
            if let Some((_, e)) = sim.next() {
                acc = acc.wrapping_add(u64::from(e));
            }
        }
        max_depth = max_depth.max(sim.queue_depth());
    }
    while let Some((_, e)) = sim.next() {
        acc = acc.wrapping_add(u64::from(e));
    }
    (acc, max_depth)
}

fn churn_baseline(acks: usize) -> (u64, usize) {
    let mut sim = LazyKernel::default();
    let mut ids: Vec<_> = (0..CHURN_CONNS)
        .map(|i| sim.schedule_after(SimDuration::from_millis(200 + i as u64), i as u32))
        .collect();
    let mut max_depth = 0;
    let mut acc = 0u64;
    for a in 0..acks {
        let c = a % CHURN_CONNS;
        sim.cancel(ids[c]);
        ids[c] = sim.schedule_after(SimDuration::from_millis(200), c as u32);
        if a % 64 == 63 {
            if let Some((_, e)) = sim.next() {
                acc = acc.wrapping_add(u64::from(e));
            }
        }
        max_depth = max_depth.max(sim.queue.len());
    }
    while let Some((_, e)) = sim.next() {
        acc = acc.wrapping_add(u64::from(e));
    }
    (acc, max_depth)
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn print_cmp(c: &Comparison) {
    println!(
        "{:<44} {:>10.1} -> {:>10.1} ns/op   {:>5.2}x",
        c.name,
        c.baseline_ns,
        c.current_ns,
        c.speedup()
    );
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut cmps: Vec<Comparison> = Vec::new();
    let mut metrics: Vec<(&str, f64)> = Vec::new();

    // -- checksum ------------------------------------------------------
    for size in [64usize, 1500, 9000, 16 * 1024] {
        let data = vec![0xa5u8; size];
        assert_eq!(checksum(&data), scalar_checksum(&data));
        cmps.push(compare(
            &format!("checksum/{size}"),
            || scalar_checksum(std::hint::black_box(&data)),
            || checksum(std::hint::black_box(&data)),
        ));
        print_cmp(cmps.last().unwrap());
    }

    // -- encode + decode roundtrip ------------------------------------
    let src = Endpoint::new(addr(1), 9);
    let dst = Endpoint::new(addr(2), 10);
    for size in [64usize, 1460, 8928] {
        let payload = vec![7u8; size];
        // the two paths must produce identical wire bytes
        assert_eq!(
            &build_udp_packet(src, dst, &payload)[..],
            &baseline_build_udp_packet(src, dst, &payload)[..]
        );
        cmps.push(compare(
            &format!("udp_encode_decode/{size}"),
            || {
                let pkt = baseline_build_udp_packet(src, dst, std::hint::black_box(&payload));
                baseline_decode_payload(&pkt).len()
            },
            || {
                let pkt = build_udp_packet(src, dst, std::hint::black_box(&payload));
                match decode_packet(&pkt).unwrap() {
                    Decoded::Udp { payload, .. } => payload.len(),
                    _ => unreachable!(),
                }
            },
        ));
        print_cmp(cmps.last().unwrap());
    }
    for size in [64usize, 1460, 8928] {
        let seg = tcp_segment(size);
        assert_eq!(
            &build_tcp_packet(src, dst, &seg)[..],
            &baseline_build_tcp_packet(src, dst, &seg)[..]
        );
        cmps.push(compare(
            &format!("tcp_encode_decode/{size}"),
            || {
                let pkt = baseline_build_tcp_packet(src, dst, std::hint::black_box(&seg));
                baseline_decode_payload(&pkt).len()
            },
            || {
                let pkt = build_tcp_packet(src, dst, std::hint::black_box(&seg));
                match decode_packet(&pkt).unwrap() {
                    Decoded::Tcp { payload, .. } => payload.len(),
                    _ => unreachable!(),
                }
            },
        ));
        print_cmp(cmps.last().unwrap());
    }

    // -- DES timer churn ----------------------------------------------
    // 10 MB / 1448-byte segments ≈ 7 242 ACKs, one timer reschedule each
    let acks = 10 * 1024 * 1024 / 1448;
    assert_eq!(churn_current(acks).0, churn_baseline(acks).0);
    cmps.push(compare(
        "des_timer_churn_10mb_ttcp",
        || churn_baseline(acks).0,
        || churn_current(acks).0,
    ));
    print_cmp(cmps.last().unwrap());

    let (_, cur_depth) = churn_current(acks);
    let (_, base_depth) = churn_baseline(acks);
    println!(
        "max queue depth over {acks} per-ACK reschedules: lazy {base_depth}, generation-checked {cur_depth}"
    );
    metrics.push(("ttcp_10mb_churn_max_queue_depth", cur_depth as f64));
    metrics.push(("ttcp_10mb_churn_max_queue_depth_lazy_baseline", base_depth as f64));

    // raw event throughput of the kernel (schedule + drain, no churn)
    let mut sim: Simulator<u64> = Simulator::new();
    for i in 0..1_000_000u64 {
        let t = (i * 2_654_435_761) % 1_000_000;
        sim.schedule_after(SimDuration::from_nanos(t), i);
    }
    let mut acc = 0u64;
    while let Some((_, e)) = sim.next() {
        acc = acc.wrapping_add(e);
    }
    std::hint::black_box(acc);
    let eps = sim.events_per_sec();
    println!("des kernel drain throughput: {eps:.0} events/sec");
    metrics.push(("des_events_per_sec", eps));

    if json {
        // Unified counter snapshots from a reference DES pingpong run
        // (deterministic: same workload, same counters every time).
        let (_, counters) = qpip_tcp_rtt_observed(qpip::NicConfig::paper_default(), 64, 40, None);
        // cargo runs benches with CWD = the package dir; anchor the
        // artifact at the workspace root so its path is stable
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_datapath.json");
        std::fs::write(path, datapath_json(&cmps, &metrics, &counters)).expect("write json");
        println!("wrote {path}");
    }
}
