//! Micro-benchmarks of the protocol engines themselves — real
//! (wall-clock) performance of this implementation's hot paths: header
//! codecs, checksums, and full TCP segment processing. Uses the
//! in-tree [`qpip_bench::microbench`] harness.

use std::net::Ipv6Addr;

use qpip_bench::microbench::bench;
use qpip_netstack::codec::{build_udp_packet, decode_packet};
use qpip_netstack::engine::Engine;
use qpip_netstack::types::{Emit, Endpoint, NetConfig, SendToken};
use qpip_sim::time::SimTime;
use qpip_wire::checksum::checksum;
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

fn print(m: qpip_bench::microbench::Measurement) {
    println!("{:<40} {:>12.1} ns/op", m.name, m.ns_per_op);
}

fn bench_checksum() {
    for size in [64usize, 1460, 8928, 16 * 1024] {
        let data = vec![0xa5u8; size];
        print(bench(&format!("internet_checksum/{size}"), || {
            checksum(std::hint::black_box(&data))
        }));
    }
}

fn bench_header_codec() {
    let hdr = TcpHeader {
        src_port: 4000,
        dst_port: 5000,
        seq: SeqNum(0x1234_5678),
        ack: SeqNum(0x8765_4321),
        flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
        window: 32_000,
        checksum: 0,
        urgent: 0,
        options: TcpOptions { timestamps: Some((1, 2)), ..TcpOptions::default() },
    };
    print(bench("tcp_header_encode", || {
        let mut buf = Vec::with_capacity(32);
        std::hint::black_box(&hdr).encode(&mut buf);
        buf
    }));
    let mut buf = Vec::new();
    hdr.encode(&mut buf);
    print(bench("tcp_header_parse", || TcpHeader::parse(std::hint::black_box(&buf)).unwrap()));
}

fn bench_packet_build() {
    let src = Endpoint::new(addr(1), 9);
    let dst = Endpoint::new(addr(2), 10);
    for size in [64usize, 8928] {
        let payload = vec![7u8; size];
        print(bench(&format!("full_packet/udp_build/{size}"), || {
            build_udp_packet(src, dst, std::hint::black_box(&payload))
        }));
        let pkt = build_udp_packet(src, dst, &payload);
        print(bench(&format!("full_packet/decode_verify/{size}"), || {
            decode_packet(std::hint::black_box(&pkt)).unwrap()
        }));
    }
}

/// Full engine-to-engine segment exchange: the cost of one message
/// through two complete stacks (build, checksum, parse, TCB updates).
fn bench_engine_roundtrip() {
    for size in [1usize, 1408, 8928] {
        let make_pair = || {
            let mut a = Engine::new(NetConfig::qpip(16 * 1024), addr(1));
            let mut z = Engine::new(NetConfig::qpip(16 * 1024), addr(2));
            z.tcp_listen(80).unwrap();
            let now = SimTime::ZERO;
            let (conn, emits) = a.tcp_connect(now, 2000, Endpoint::new(addr(2), 80));
            let mut pkts: Vec<qpip_wire::Packet> = emits
                .into_iter()
                .filter_map(|e| match e {
                    Emit::Packet(p) => Some(p.bytes),
                    _ => None,
                })
                .collect();
            // drive handshake
            for _ in 0..4 {
                let mut to_a = Vec::new();
                for p in pkts.drain(..) {
                    for e in z.on_packet(now, &p) {
                        if let Emit::Packet(p) = e {
                            to_a.push(p.bytes);
                        }
                    }
                }
                for p in to_a {
                    for e in a.on_packet(now, &p) {
                        if let Emit::Packet(p) = e {
                            pkts.push(p.bytes);
                        }
                    }
                }
            }
            (a, z, conn)
        };
        let mut token = 0u64;
        // one long-lived pair: per-iteration state stays bounded because
        // every message is fully delivered and acknowledged in-loop
        let (mut a, mut z, conn) = make_pair();
        print(bench(&format!("engine_message/{size}"), || {
            let now = SimTime::from_micros(100);
            token += 1;
            let emits = a.tcp_send(now, conn, vec![0x42; size], SendToken(token)).unwrap();
            for e in emits {
                if let Emit::Packet(p) = e {
                    let replies = z.on_packet(now, &p.bytes);
                    for r in replies {
                        if let Emit::Packet(p) = r {
                            let _ = a.on_packet(now, &p.bytes);
                        }
                    }
                }
            }
        }));
    }
}

fn main() {
    bench_checksum();
    bench_header_codec();
    bench_packet_build();
    bench_engine_roundtrip();
}
