//! Criterion micro-benchmarks of the protocol engines themselves —
//! real (wall-clock) performance of this implementation's hot paths:
//! header codecs, checksums, and full TCP segment processing.

use std::net::Ipv6Addr;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpip_netstack::codec::{build_udp_packet, decode_packet};
use qpip_netstack::engine::Engine;
use qpip_netstack::types::{Emit, Endpoint, NetConfig, SendToken};
use qpip_sim::time::SimTime;
use qpip_wire::checksum::checksum;
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("internet_checksum");
    for size in [64usize, 1460, 8928, 16 * 1024] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| checksum(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_header_codec(c: &mut Criterion) {
    let hdr = TcpHeader {
        src_port: 4000,
        dst_port: 5000,
        seq: SeqNum(0x1234_5678),
        ack: SeqNum(0x8765_4321),
        flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
        window: 32_000,
        checksum: 0,
        urgent: 0,
        options: TcpOptions { timestamps: Some((1, 2)), ..TcpOptions::default() },
    };
    c.bench_function("tcp_header_encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(32);
            std::hint::black_box(&hdr).encode(&mut buf);
            buf
        })
    });
    let mut buf = Vec::new();
    hdr.encode(&mut buf);
    c.bench_function("tcp_header_parse", |b| {
        b.iter(|| TcpHeader::parse(std::hint::black_box(&buf)).unwrap())
    });
}

fn bench_packet_build(c: &mut Criterion) {
    let src = Endpoint::new(addr(1), 9);
    let dst = Endpoint::new(addr(2), 10);
    let mut g = c.benchmark_group("full_packet");
    for size in [64usize, 8928] {
        let payload = vec![7u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("udp_build", size), &payload, |b, p| {
            b.iter(|| build_udp_packet(src, dst, std::hint::black_box(p)))
        });
        let pkt = build_udp_packet(src, dst, &payload);
        g.bench_with_input(BenchmarkId::new("decode_verify", size), &pkt, |b, p| {
            b.iter(|| decode_packet(std::hint::black_box(p)).unwrap())
        });
    }
    g.finish();
}

/// Full engine-to-engine segment exchange: the cost of one message
/// through two complete stacks (build, checksum, parse, TCB updates).
fn bench_engine_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_message");
    for size in [1usize, 1408, 8928] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            // fresh pair per batch to keep state bounded
            b.iter_batched(
                || {
                    let mut a = Engine::new(NetConfig::qpip(16 * 1024), addr(1));
                    let mut z = Engine::new(NetConfig::qpip(16 * 1024), addr(2));
                    z.tcp_listen(80).unwrap();
                    let now = SimTime::ZERO;
                    let (conn, emits) = a.tcp_connect(now, 2000, Endpoint::new(addr(2), 80));
                    let mut pkts: Vec<Vec<u8>> = emits
                        .into_iter()
                        .filter_map(|e| match e {
                            Emit::Packet(p) => Some(p.bytes),
                            _ => None,
                        })
                        .collect();
                    // drive handshake
                    for _ in 0..4 {
                        let mut to_a = Vec::new();
                        for p in pkts.drain(..) {
                            for e in z.on_packet(now, &p) {
                                if let Emit::Packet(p) = e {
                                    to_a.push(p.bytes);
                                }
                            }
                        }
                        for p in to_a {
                            for e in a.on_packet(now, &p) {
                                if let Emit::Packet(p) = e {
                                    pkts.push(p.bytes);
                                }
                            }
                        }
                    }
                    (a, z, conn)
                },
                |(mut a, mut z, conn)| {
                    let now = SimTime::from_micros(100);
                    let emits = a
                        .tcp_send(now, conn, vec![0x42; size], SendToken(1))
                        .unwrap();
                    for e in emits {
                        if let Emit::Packet(p) = e {
                            let replies = z.on_packet(now, &p.bytes);
                            for r in replies {
                                if let Emit::Packet(p) = r {
                                    let _ = a.on_packet(now, &p.bytes);
                                }
                            }
                        }
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_checksum,
    bench_header_codec,
    bench_packet_build,
    bench_engine_roundtrip
);
criterion_main!(benches);
