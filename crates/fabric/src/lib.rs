//! # qpip-fabric — system-area-network fabric models
//!
//! The two switched networks of the paper's testbed (§4.1–4.2):
//! source-routed cut-through **Myrinet** at 2 Gb/s with arbitrary MTUs,
//! and store-and-forward **Gigabit Ethernet** at 1 Gb/s with a 1500-byte
//! MTU. Timing is analytic — link pipes track occupancy, so contention
//! and pipelining emerge without per-byte events — and deterministic
//! fault injection exercises TCP's recovery machinery in tests.
//!
//! ## Example
//!
//! ```
//! use std::net::Ipv6Addr;
//! use qpip_fabric::{Fabric, FabricConfig, TransmitOutcome};
//! use qpip_sim::time::SimTime;
//!
//! let mut san = Fabric::new(FabricConfig::myrinet());
//! let a = san.attach(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1));
//! let _b = san.attach(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2));
//! let out = san.transmit(
//!     SimTime::ZERO,
//!     a,
//!     Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2),
//!     1024,
//! );
//! assert!(matches!(out, TransmitOutcome::Delivered { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod fault;

pub use fabric::{
    DropReason, Fabric, FabricConfig, FabricStats, NodeId, Switching, TransmitOutcome,
};
pub use fault::{FaultInjector, FaultPlan};
