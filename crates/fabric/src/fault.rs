//! Deterministic fault injection for the fabric: packet drops and
//! corruption used by the failure-injection test suites.
//!
//! The paper's environment assumes "the network to be robust and packet
//! loss or reordering seldom occurs" (§4.1); the benchmarks therefore run
//! with [`FaultPlan::None`]. The TCP recovery paths still need exercise,
//! which is what the other plans are for.

use qpip_sim::rng::SplitMix64;

/// What happens to each packet crossing the fabric.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Lossless (the SAN common case, §4.1).
    None,
    /// Drop the packets whose global indices appear in the list.
    DropIndices(Vec<u64>),
    /// Drop every `n`-th packet (1-based: `n = 4` drops #3, #7, …).
    DropEveryNth(u64),
    /// Drop each packet independently with probability `permille`/1000,
    /// from a seeded deterministic stream.
    DropRandom {
        /// Loss probability in thousandths.
        permille: u32,
        /// RNG seed.
        seed: u64,
    },
}

/// Per-packet fault decisions with counters.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    index: u64,
    dropped: u64,
}

impl FaultInjector {
    /// Creates an injector following `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let seed = match &plan {
            FaultPlan::DropRandom { seed, .. } => *seed,
            _ => 0,
        };
        FaultInjector { plan, rng: SplitMix64::new(seed), index: 0, dropped: 0 }
    }

    /// Decides the fate of the next packet: `true` means drop.
    pub fn should_drop(&mut self) -> bool {
        let idx = self.index;
        self.index += 1;
        let drop = match &self.plan {
            FaultPlan::None => false,
            FaultPlan::DropIndices(list) => list.contains(&idx),
            FaultPlan::DropEveryNth(n) => *n > 0 && (idx + 1).is_multiple_of(*n),
            FaultPlan::DropRandom { permille, .. } => self.rng.chance(u64::from(*permille), 1000),
        };
        if drop {
            self.dropped += 1;
        }
        drop
    }

    /// Packets inspected so far.
    pub fn packets_seen(&self) -> u64 {
        self.index
    }

    /// Packets dropped so far.
    pub fn packets_dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new(FaultPlan::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut f = FaultInjector::new(FaultPlan::None);
        assert!((0..1000).all(|_| !f.should_drop()));
        assert_eq!(f.packets_dropped(), 0);
        assert_eq!(f.packets_seen(), 1000);
    }

    #[test]
    fn drop_indices_hits_exactly_those() {
        let mut f = FaultInjector::new(FaultPlan::DropIndices(vec![0, 3]));
        let fates: Vec<bool> = (0..5).map(|_| f.should_drop()).collect();
        assert_eq!(fates, vec![true, false, false, true, false]);
        assert_eq!(f.packets_dropped(), 2);
    }

    #[test]
    fn every_nth_is_periodic() {
        let mut f = FaultInjector::new(FaultPlan::DropEveryNth(3));
        let fates: Vec<bool> = (0..9).map(|_| f.should_drop()).collect();
        assert_eq!(fates, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_roughly_calibrated() {
        let run = |seed| {
            let mut f = FaultInjector::new(FaultPlan::DropRandom { permille: 100, seed });
            (0..10_000).filter(|_| f.should_drop()).count()
        };
        assert_eq!(run(42), run(42), "same seed, same fate sequence");
        let drops = run(42);
        assert!((800..1200).contains(&drops), "≈10% loss, got {drops}");
        assert_ne!(run(42), run(43), "different seeds differ (overwhelmingly)");
    }
}
