//! The switched system-area-network model.
//!
//! Two fabrics are provided, matching the paper's testbed (§4.1–§4.2):
//!
//! * **Myrinet**: 2.0 Gb/s full-duplex links into a crossbar using
//!   source-based, oblivious *cut-through* routing — the head of a
//!   packet leaves the switch after only the route byte is consumed, so
//!   serialization is paid once end-to-end.
//! * **Gigabit Ethernet**: 1 Gb/s links into a *store-and-forward*
//!   switch — the frame is fully received before it is forwarded, so
//!   serialization is paid per hop, plus per-frame preamble/IFG overhead.
//!
//! The fabric is analytic: given a send instant it computes the arrival
//! instant from link occupancy ([`BandwidthPipe`]) and latencies, so the
//! caller schedules exactly one delivery event per packet. Contention,
//! pipelining and head-of-line blocking all emerge from the pipes.

use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

use qpip_sim::params;
use qpip_sim::resource::BandwidthPipe;
use qpip_sim::time::{SimDuration, SimTime};
use qpip_trace::{FlightRecorder, Snapshot, TraceEvent, TraceSink, NODE_SCOPE};

use crate::fault::{FaultInjector, FaultPlan};

/// Identifies one attached node (one NIC port on the fabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// How the switch forwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Switching {
    /// Myrinet-style cut-through: forwarding begins as soon as the route
    /// byte arrives.
    CutThrough,
    /// Ethernet-style store-and-forward: the whole frame is buffered.
    StoreAndForward,
}

/// Fixed characteristics of a fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricConfig {
    /// Link rate in bytes per second (each direction of each link).
    pub bytes_per_sec: u64,
    /// Switch forwarding behaviour.
    pub switching: Switching,
    /// Switch forwarding latency per hop.
    pub switch_latency: SimDuration,
    /// Cable propagation per link traversal.
    pub cable_latency: SimDuration,
    /// Largest IP packet the fabric accepts (link overhead excluded).
    pub mtu: usize,
    /// Link-layer overhead bytes serialized per packet (framing,
    /// preamble, route bytes, CRC, inter-frame gap equivalent).
    pub frame_overhead: usize,
    /// RED/ECN in the switch (§5.2: inter-network protocols admit
    /// "network-based mechanisms such as RED or ECN" in the SAN fabric):
    /// when a packet's queueing delay at the output port exceeds this
    /// threshold, the switch marks it Congestion-Experienced instead of
    /// dropping. `None` disables marking.
    pub ecn_mark_threshold: Option<SimDuration>,
}

impl FabricConfig {
    /// The paper's Myrinet SAN (§4.1): 2 Gb/s, cut-through, arbitrary
    /// MTU — we default to the QPIP native 16 KB (§4.2.1) but any value
    /// can be set afterwards.
    pub fn myrinet() -> Self {
        FabricConfig {
            bytes_per_sec: params::MYRINET_BYTES_PER_SEC,
            switching: Switching::CutThrough,
            switch_latency: SimDuration::from_nanos(params::MYRINET_SWITCH_LATENCY_NS),
            cable_latency: SimDuration::from_nanos(params::MYRINET_CABLE_LATENCY_NS),
            mtu: params::QPIP_NATIVE_MTU,
            frame_overhead: params::MYRINET_LINK_OVERHEAD_BYTES,
            ecn_mark_threshold: None,
        }
    }

    /// The paper's Gigabit Ethernet baseline (§4.2.1): 1 Gb/s,
    /// store-and-forward, 1500-byte MTU.
    pub fn gigabit_ethernet() -> Self {
        FabricConfig {
            bytes_per_sec: params::GIGE_BYTES_PER_SEC,
            switching: Switching::StoreAndForward,
            switch_latency: SimDuration::from_nanos(params::GIGE_SWITCH_LATENCY_NS),
            cable_latency: SimDuration::from_nanos(params::GIGE_CABLE_LATENCY_NS),
            mtu: params::GIGE_MTU,
            frame_overhead: params::GIGE_FRAME_OVERHEAD_BYTES,
            ecn_mark_threshold: None,
        }
    }

    /// Myrinet carrying IP at the GM jumbo MTU (the IP-over-Myrinet
    /// baseline, §4.2.1).
    pub fn myrinet_gm() -> Self {
        FabricConfig { mtu: params::GM_MTU, ..FabricConfig::myrinet() }
    }
}

/// Why a packet did not arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Larger than the fabric MTU.
    TooLarge {
        /// Packet length offered.
        len: usize,
        /// Fabric MTU.
        mtu: usize,
    },
    /// No node with that address is attached.
    NoRoute,
    /// Removed by the fault injector.
    Injected,
}

/// The outcome of a transmit call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The last byte arrives at `to` at instant `at`.
    Delivered {
        /// Destination node.
        to: NodeId,
        /// Arrival instant of the packet's last byte.
        at: SimTime,
        /// The switch's RED/ECN queue marked this packet
        /// Congestion-Experienced (the caller rewrites the ECN bits).
        marked: bool,
    },
    /// The packet is gone; the caller schedules nothing.
    Dropped(DropReason),
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (any reason).
    pub dropped: u64,
    /// Payload bytes delivered (excluding frame overhead).
    pub bytes: u64,
}

impl FabricStats {
    /// Renders the counters as a named snapshot (scope `"fabric"`).
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("fabric");
        s.push("delivered", self.delivered).push("dropped", self.dropped).push("bytes", self.bytes);
        s
    }
}

/// A switched system area network: one or more switches in a linear
/// chain, each with directly attached nodes.
///
/// The paper's two-server testbed is the single-switch (star) case —
/// [`Fabric::new`]. [`Fabric::with_switches`] builds a chain of
/// switches joined by full-duplex trunk links (Myrinet's source routes
/// name one output port per hop), so multi-hop latency and trunk
/// contention can be studied.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    /// Per node: uplink (node→switch) and downlink (switch→node).
    uplinks: Vec<BandwidthPipe>,
    downlinks: Vec<BandwidthPipe>,
    /// Which switch each node hangs off (always 0 in the star case).
    node_switch: Vec<usize>,
    /// Inter-switch trunks: `trunks[d][i]` carries traffic from switch
    /// `i` to switch `i+1` (`d = 0`) or from `i+1` to `i` (`d = 1`).
    trunks: [Vec<BandwidthPipe>; 2],
    addrs: Vec<Ipv6Addr>,
    addr_map: HashMap<Ipv6Addr, NodeId>,
    faults: FaultInjector,
    stats: FabricStats,
    ecn_marks: u64,
    /// Flight recorder; drops are recorded against the transmitting
    /// node's scope.
    recorder: Option<Arc<FlightRecorder>>,
}

impl Fabric {
    /// Creates an empty single-switch fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        Fabric::with_switches(cfg, 1)
    }

    /// Creates a fabric of `switches` switches in a chain, joined by
    /// full-duplex trunk links at the same rate as edge links.
    ///
    /// # Panics
    ///
    /// Panics if `switches` is zero.
    pub fn with_switches(cfg: FabricConfig, switches: usize) -> Self {
        assert!(switches > 0, "a fabric needs at least one switch");
        let trunk = |_: usize| BandwidthPipe::new("trunk", cfg.bytes_per_sec);
        Fabric {
            trunks: [(1..switches).map(trunk).collect(), (1..switches).map(trunk).collect()],
            cfg,
            uplinks: Vec::new(),
            downlinks: Vec::new(),
            node_switch: Vec::new(),
            addrs: Vec::new(),
            addr_map: HashMap::new(),
            faults: FaultInjector::default(),
            stats: FabricStats::default(),
            ecn_marks: 0,
            recorder: None,
        }
    }

    /// Installs a flight recorder. Every drop (oversize, unroutable,
    /// fault-injected) is recorded node-scoped against the transmitter.
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Full counter snapshot (scope `"fabric"`), including the ECN-mark
    /// and fault-injection counters kept outside [`FabricStats`].
    pub fn snapshot(&self) -> Snapshot {
        let mut s = self.stats.snapshot();
        s.push("ecn_marks", self.ecn_marks).push("injected_drops", self.faults.packets_dropped());
        s
    }

    /// Installs a fault-injection plan (tests only; benchmarks run
    /// lossless per §4.1).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultInjector::new(plan);
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Fault-injector drop count.
    pub fn injected_drops(&self) -> u64 {
        self.faults.packets_dropped()
    }

    /// Packets marked Congestion-Experienced by the RED/ECN queue.
    pub fn ecn_marks(&self) -> u64 {
        self.ecn_marks
    }

    /// Attaches a node with the given IPv6 address, returning its port.
    ///
    /// # Panics
    ///
    /// Panics if the address is already attached.
    pub fn attach(&mut self, addr: Ipv6Addr) -> NodeId {
        self.attach_at(addr, 0)
    }

    /// Attaches a node to a specific switch of a multi-switch fabric.
    ///
    /// # Panics
    ///
    /// Panics if the address is already attached or the switch index is
    /// out of range.
    pub fn attach_at(&mut self, addr: Ipv6Addr, switch: usize) -> NodeId {
        assert!(!self.addr_map.contains_key(&addr), "address {addr} already attached");
        assert!(switch <= self.trunks[0].len(), "switch {switch} out of range");
        let id = NodeId(self.uplinks.len() as u32);
        self.uplinks.push(BandwidthPipe::new("uplink", self.cfg.bytes_per_sec));
        self.downlinks.push(BandwidthPipe::new("downlink", self.cfg.bytes_per_sec));
        self.node_switch.push(switch);
        self.addrs.push(addr);
        self.addr_map.insert(addr, id);
        id
    }

    /// Number of switches in the chain.
    pub fn switch_count(&self) -> usize {
        self.trunks[0].len() + 1
    }

    /// Switch hops between two attached nodes.
    pub fn hops_between(&self, a: NodeId, b: NodeId) -> usize {
        let (sa, sb) = (self.node_switch[a.0 as usize], self.node_switch[b.0 as usize]);
        sa.abs_diff(sb) + 1
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.uplinks.len()
    }

    /// Resolves an address to its attached node.
    pub fn resolve(&self, addr: Ipv6Addr) -> Option<NodeId> {
        self.addr_map.get(&addr).copied()
    }

    /// Address of an attached node.
    pub fn addr_of(&self, node: NodeId) -> Ipv6Addr {
        self.addrs[node.0 as usize]
    }

    /// Serialization time of a packet of `len` IP bytes on one link.
    pub fn serialization(&self, len: usize) -> SimDuration {
        SimDuration::for_bytes((len + self.cfg.frame_overhead) as u64, self.cfg.bytes_per_sec)
    }

    /// One-way latency of a `len`-byte packet across an idle fabric,
    /// for two nodes on the *same* switch (multi-switch paths add one
    /// trunk hop of latency — and a second serialization per hop in
    /// store-and-forward mode — per switch crossed).
    pub fn idle_latency(&self, len: usize) -> SimDuration {
        let ser = self.serialization(len);
        match self.cfg.switching {
            Switching::CutThrough => ser + self.cfg.cable_latency * 2 + self.cfg.switch_latency,
            Switching::StoreAndForward => {
                ser * 2 + self.cfg.cable_latency * 2 + self.cfg.switch_latency
            }
        }
    }

    fn trace_drop(&self, now: SimTime, from: NodeId, reason: &'static str, len: usize) {
        if let Some(rec) = &self.recorder {
            rec.record(now, from.0, NODE_SCOPE, TraceEvent::FabricDrop { reason, len: len as u32 });
        }
    }

    /// Transmits a `len`-byte IP packet from `from` to the node owning
    /// `dst`, starting no earlier than `now`. The returned instant is
    /// when the *last byte* is available at the destination NIC.
    pub fn transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        dst: Ipv6Addr,
        len: usize,
    ) -> TransmitOutcome {
        if len > self.cfg.mtu {
            self.stats.dropped += 1;
            self.trace_drop(now, from, "too_large", len);
            return TransmitOutcome::Dropped(DropReason::TooLarge { len, mtu: self.cfg.mtu });
        }
        let Some(to) = self.resolve(dst) else {
            self.stats.dropped += 1;
            self.trace_drop(now, from, "no_route", len);
            return TransmitOutcome::Dropped(DropReason::NoRoute);
        };
        if self.faults.should_drop() {
            self.stats.dropped += 1;
            self.trace_drop(now, from, "injected", len);
            return TransmitOutcome::Dropped(DropReason::Injected);
        }
        let wire = (len + self.cfg.frame_overhead) as u64;
        let up = &mut self.uplinks[from.0 as usize];
        let up_start = now.max(up.next_free());
        let up_done = up.transfer(up_start, wire);
        // walk the switch chain from the source's switch to the
        // destination's, crossing one trunk per hop
        let s_from = self.node_switch[from.0 as usize];
        let s_to = self.node_switch[to.0 as usize];
        let (at, queue_delay) = match self.cfg.switching {
            Switching::CutThrough => {
                // the head flows through each hop; serialization is paid
                // once, and each busy pipe along the way can stall it
                let mut head = up_start + self.cfg.cable_latency + self.cfg.switch_latency;
                let mut sw = s_from;
                while sw != s_to {
                    // rightward hop sw→sw+1 uses trunks[0][sw];
                    // leftward hop sw→sw-1 uses trunks[1][sw-1]
                    let (dir, idx, next) =
                        if s_to > sw { (0, sw, sw + 1) } else { (1, sw - 1, sw - 1) };
                    let trunk = &mut self.trunks[dir][idx];
                    let start = head.max(trunk.next_free());
                    // cut-through: the trunk is occupied for the frame
                    // but the head moves on after the hop latencies
                    trunk.transfer(start, wire);
                    head = start + self.cfg.cable_latency + self.cfg.switch_latency;
                    sw = next;
                }
                let down = &mut self.downlinks[to.0 as usize];
                let down_start = head.max(down.next_free());
                let down_done = down.transfer(down_start, wire);
                (down_done + self.cfg.cable_latency, down_start.duration_since(head))
            }
            Switching::StoreAndForward => {
                let mut ready = up_done + self.cfg.cable_latency + self.cfg.switch_latency;
                let mut sw = s_from;
                while sw != s_to {
                    let (dir, idx, next) =
                        if s_to > sw { (0, sw, sw + 1) } else { (1, sw - 1, sw - 1) };
                    let trunk = &mut self.trunks[dir][idx];
                    let start = ready.max(trunk.next_free());
                    // the whole frame re-serializes on each trunk
                    ready = trunk.transfer(start, wire)
                        + self.cfg.cable_latency
                        + self.cfg.switch_latency;
                    sw = next;
                }
                let down = &mut self.downlinks[to.0 as usize];
                let down_start = ready.max(down.next_free());
                let down_done = down.transfer(down_start, wire);
                (down_done + self.cfg.cable_latency, down_start.duration_since(ready))
            }
        };
        let marked = self.cfg.ecn_mark_threshold.is_some_and(|thresh| queue_delay > thresh);
        if marked {
            self.ecn_marks += 1;
        }
        self.stats.delivered += 1;
        self.stats.bytes += len as u64;
        TransmitOutcome::Delivered { to, at, marked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
    }

    fn myrinet_pair() -> (Fabric, NodeId, NodeId) {
        let mut f = Fabric::new(FabricConfig::myrinet());
        let a = f.attach(addr(1));
        let b = f.attach(addr(2));
        (f, a, b)
    }

    #[test]
    fn myrinet_small_packet_latency_is_sub_microsecond_plus_wire() {
        let (mut f, a, _) = myrinet_pair();
        // 100-byte packet: ser = 116B / 250MB/s = 0.464us, + 0.2us cable
        // + 0.3us switch ≈ 0.96us
        let out = f.transmit(SimTime::ZERO, a, addr(2), 100);
        let TransmitOutcome::Delivered { at, .. } = out else { panic!("dropped: {out:?}") };
        let us = at.as_micros_f64();
        assert!((0.9..1.1).contains(&us), "{us}");
        assert_eq!(at - SimTime::ZERO, f.idle_latency(100));
    }

    #[test]
    fn cut_through_beats_store_and_forward_for_large_packets() {
        let mut ct = Fabric::new(FabricConfig::myrinet());
        let mut sf = Fabric::new(FabricConfig {
            switching: Switching::StoreAndForward,
            ..FabricConfig::myrinet()
        });
        for f in [&mut ct, &mut sf] {
            f.attach(addr(1));
            f.attach(addr(2));
        }
        let big = 9000;
        let t_ct = ct.idle_latency(big);
        let t_sf = sf.idle_latency(big);
        // store-and-forward pays serialization twice
        assert!(t_sf > t_ct);
        let delta = (t_sf - t_ct).as_micros_f64();
        let ser = ct.serialization(big).as_micros_f64();
        assert!((delta - ser).abs() < 0.01, "delta {delta} vs ser {ser}");
    }

    #[test]
    fn gige_16kb_would_exceed_mtu() {
        let mut f = Fabric::new(FabricConfig::gigabit_ethernet());
        let a = f.attach(addr(1));
        f.attach(addr(2));
        let out = f.transmit(SimTime::ZERO, a, addr(2), 16 * 1024);
        assert_eq!(
            out,
            TransmitOutcome::Dropped(DropReason::TooLarge { len: 16 * 1024, mtu: 1500 })
        );
    }

    #[test]
    fn back_to_back_packets_queue_on_the_uplink() {
        let (mut f, a, _) = myrinet_pair();
        let o1 = f.transmit(SimTime::ZERO, a, addr(2), 16_000);
        let o2 = f.transmit(SimTime::ZERO, a, addr(2), 16_000);
        let (TransmitOutcome::Delivered { at: t1, .. }, TransmitOutcome::Delivered { at: t2, .. }) =
            (o1, o2)
        else {
            panic!()
        };
        let gap = (t2 - t1).as_micros_f64();
        let ser = f.serialization(16_000).as_micros_f64();
        assert!((gap - ser).abs() < 0.05, "gap {gap} ser {ser}");
    }

    #[test]
    fn two_senders_contend_on_receiver_downlink() {
        let mut f = Fabric::new(FabricConfig::myrinet());
        let a = f.attach(addr(1));
        let b = f.attach(addr(2));
        f.attach(addr(3));
        let o1 = f.transmit(SimTime::ZERO, a, addr(3), 16_000);
        let o2 = f.transmit(SimTime::ZERO, b, addr(3), 16_000);
        let (TransmitOutcome::Delivered { at: t1, .. }, TransmitOutcome::Delivered { at: t2, .. }) =
            (o1, o2)
        else {
            panic!()
        };
        assert!(t2 > t1, "second arrival blocked behind the first");
        let gap = (t2 - t1).as_micros_f64();
        let ser = f.serialization(16_000).as_micros_f64();
        assert!(gap >= ser * 0.95, "gap {gap} < ser {ser}");
    }

    #[test]
    fn full_duplex_directions_do_not_interfere() {
        let (mut f, a, b) = myrinet_pair();
        let o1 = f.transmit(SimTime::ZERO, a, addr(2), 16_000);
        let o2 = f.transmit(SimTime::ZERO, b, addr(1), 16_000);
        let (TransmitOutcome::Delivered { at: t1, .. }, TransmitOutcome::Delivered { at: t2, .. }) =
            (o1, o2)
        else {
            panic!()
        };
        assert_eq!(t1, t2, "opposite directions are independent");
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let (mut f, a, _) = myrinet_pair();
        assert_eq!(
            f.transmit(SimTime::ZERO, a, addr(99), 100),
            TransmitOutcome::Dropped(DropReason::NoRoute)
        );
    }

    #[test]
    fn fault_plan_drops_selected_packets() {
        let (mut f, a, _) = myrinet_pair();
        f.set_fault_plan(FaultPlan::DropIndices(vec![1]));
        assert!(matches!(
            f.transmit(SimTime::ZERO, a, addr(2), 100),
            TransmitOutcome::Delivered { .. }
        ));
        assert_eq!(
            f.transmit(SimTime::ZERO, a, addr(2), 100),
            TransmitOutcome::Dropped(DropReason::Injected)
        );
        assert_eq!(f.injected_drops(), 1);
        assert_eq!(f.stats().delivered, 1);
        assert_eq!(f.stats().dropped, 1);
    }

    #[test]
    fn throughput_approaches_line_rate_under_saturation() {
        let (mut f, a, _) = myrinet_pair();
        let n = 1000u64;
        let len = 16_000usize;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            if let TransmitOutcome::Delivered { at, .. } =
                f.transmit(SimTime::ZERO, a, addr(2), len)
            {
                last = at;
            }
        }
        let mbps = (n * len as u64) as f64 / last.as_secs_f64() / 1e6;
        // 2 Gb/s = 250 MB/s line rate, minus framing overhead ≈ 249.75
        assert!((245.0..251.0).contains(&mbps), "{mbps}");
    }

    #[test]
    fn gige_throughput_respects_frame_overhead() {
        let mut f = Fabric::new(FabricConfig::gigabit_ethernet());
        let a = f.attach(addr(1));
        f.attach(addr(2));
        let n = 1000u64;
        let len = 1500usize;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            if let TransmitOutcome::Delivered { at, .. } =
                f.transmit(SimTime::ZERO, a, addr(2), len)
            {
                last = at;
            }
        }
        let mbps = (n * len as u64) as f64 / last.as_secs_f64() / 1e6;
        // 125 MB/s × 1500/1538 ≈ 121.9 MB/s goodput ceiling
        assert!((118.0..123.0).contains(&mbps), "{mbps}");
    }

    #[test]
    fn attach_rejects_duplicate_addresses() {
        let mut f = Fabric::new(FabricConfig::myrinet());
        f.attach(addr(1));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.attach(addr(1))));
        assert!(r.is_err());
    }

    #[test]
    fn resolve_and_addr_of_are_inverses() {
        let (f, a, b) = myrinet_pair();
        assert_eq!(f.resolve(addr(1)), Some(a));
        assert_eq!(f.resolve(addr(2)), Some(b));
        assert_eq!(f.addr_of(a), addr(1));
        assert_eq!(f.node_count(), 2);
    }
}

#[cfg(test)]
mod multiswitch_tests {
    use super::*;
    use std::net::Ipv6Addr;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 1, n)
    }

    fn arrival(out: TransmitOutcome) -> SimTime {
        match out {
            TransmitOutcome::Delivered { at, .. } => at,
            other => panic!("dropped: {other:?}"),
        }
    }

    #[test]
    fn chain_attachment_and_hop_counts() {
        let mut f = Fabric::with_switches(FabricConfig::myrinet(), 3);
        assert_eq!(f.switch_count(), 3);
        let a = f.attach_at(addr(1), 0);
        let b = f.attach_at(addr(2), 2);
        let c = f.attach_at(addr(3), 0);
        assert_eq!(f.hops_between(a, b), 3);
        assert_eq!(f.hops_between(a, c), 1);
    }

    #[test]
    fn cut_through_multihop_adds_per_hop_latency_only() {
        let mut near = Fabric::with_switches(FabricConfig::myrinet(), 3);
        let n1 = near.attach_at(addr(1), 0);
        near.attach_at(addr(2), 0);
        let mut far = Fabric::with_switches(FabricConfig::myrinet(), 3);
        let f1 = far.attach_at(addr(1), 0);
        far.attach_at(addr(2), 2);
        let t_near = arrival(near.transmit(SimTime::ZERO, n1, addr(2), 4096));
        let t_far = arrival(far.transmit(SimTime::ZERO, f1, addr(2), 4096));
        // two extra hops: 2 × (cable + switch) = 2 × 0.4 µs, NOT two
        // extra serializations (cut-through)
        let delta = (t_far - t_near).as_micros_f64();
        assert!((0.7..1.0).contains(&delta), "{delta}");
    }

    #[test]
    fn store_and_forward_multihop_reserializes_per_trunk() {
        let cfg = FabricConfig { switching: Switching::StoreAndForward, ..FabricConfig::myrinet() };
        let mut near = Fabric::with_switches(cfg.clone(), 2);
        let n1 = near.attach_at(addr(1), 0);
        near.attach_at(addr(2), 0);
        let mut far = Fabric::with_switches(cfg, 2);
        let f1 = far.attach_at(addr(1), 0);
        far.attach_at(addr(2), 1);
        let len = 8192;
        let t_near = arrival(near.transmit(SimTime::ZERO, n1, addr(2), len));
        let t_far = arrival(far.transmit(SimTime::ZERO, f1, addr(2), len));
        let ser = near.serialization(len).as_micros_f64();
        let delta = (t_far - t_near).as_micros_f64();
        assert!(delta > ser * 0.95, "one extra serialization: {delta} vs {ser}");
    }

    #[test]
    fn trunk_contention_serializes_cross_switch_flows() {
        let mut f = Fabric::with_switches(FabricConfig::myrinet(), 2);
        let a = f.attach_at(addr(1), 0);
        let b = f.attach_at(addr(2), 0);
        f.attach_at(addr(3), 1);
        f.attach_at(addr(4), 1);
        // both flows cross the single trunk simultaneously
        let t1 = arrival(f.transmit(SimTime::ZERO, a, addr(3), 16_000));
        let t2 = arrival(f.transmit(SimTime::ZERO, b, addr(4), 16_000));
        let gap = (t2 - t1).as_micros_f64();
        let ser = f.serialization(16_000).as_micros_f64();
        assert!(gap >= ser * 0.9, "trunk shared: gap {gap} vs ser {ser}");
    }

    #[test]
    fn trunk_directions_are_independent() {
        let mut f = Fabric::with_switches(FabricConfig::myrinet(), 2);
        let a = f.attach_at(addr(1), 0);
        let b = f.attach_at(addr(2), 1);
        let t1 = arrival(f.transmit(SimTime::ZERO, a, addr(2), 16_000));
        let t2 = arrival(f.transmit(SimTime::ZERO, b, addr(1), 16_000));
        assert_eq!(t1, t2, "full-duplex trunk");
    }

    #[test]
    fn same_switch_traffic_ignores_trunks() {
        let mut f = Fabric::with_switches(FabricConfig::myrinet(), 4);
        let a = f.attach_at(addr(1), 2);
        f.attach_at(addr(2), 2);
        let single = Fabric::new(FabricConfig::myrinet());
        let t = arrival(f.transmit(SimTime::ZERO, a, addr(2), 2048));
        assert_eq!(t - SimTime::ZERO, single.idle_latency(2048));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn attach_beyond_chain_panics() {
        let mut f = Fabric::with_switches(FabricConfig::myrinet(), 2);
        f.attach_at(addr(1), 2);
    }
}
