//! # qpip-netstack — the inter-network protocol engines
//!
//! A from-scratch implementation of the TCP/UDP/IPv6 subset the QPIP
//! prototype offloads into its network interface (§4.1 of the paper):
//!
//! * **TCP** — RFC 793 connection management via the sockets rendezvous
//!   model, Jacobson/Karels RTT estimation with Karn's rule, window
//!   management, Reno congestion control with fast retransmit, RFC 1323
//!   timestamps + window scaling, header-prediction accounting, and the
//!   paper's *message-per-segment* mapping for QP messages. No
//!   out-of-order reassembly and no urgent data, exactly like the
//!   prototype.
//! * **UDP** — one QP message per datagram.
//! * **IPv6** — fixed headers, checksummed transports, static routing
//!   (resolution happens in the fabric layer).
//!
//! The engines are *pure state machines*: they consume segments and
//! deadlines and produce packets and events, never blocking and never
//! consulting a real clock. The same [`engine::Engine`] therefore runs
//! unchanged inside the simulated NIC firmware (`qpip-nic`) and behind
//! the host socket layer (`qpip-host`) — only the surrounding cost model
//! differs, which is precisely the comparison the paper makes.
//!
//! Every operation additionally reports the arithmetic it performed
//! ([`types::OpCounters`]) so the LANai cost model can charge software
//! multiplies and firmware checksums (§4.2.2).
//!
//! ## Example: two engines wired back to back
//!
//! ```
//! use std::net::Ipv6Addr;
//! use qpip_netstack::engine::Engine;
//! use qpip_netstack::types::{Emit, Endpoint, NetConfig, SendToken};
//! use qpip_sim::time::SimTime;
//!
//! let a_addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
//! let b_addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2);
//! let mut a = Engine::new(NetConfig::qpip(16 * 1024), a_addr);
//! let mut b = Engine::new(NetConfig::qpip(16 * 1024), b_addr);
//! let now = SimTime::ZERO;
//!
//! b.udp_bind(9000)?;
//! a.udp_bind(9001)?;
//! let emit = a.udp_send(9001, Endpoint::new(b_addr, 9000), b"hello")?;
//! let Emit::Packet(pkt) = emit else { unreachable!() };
//! let delivered = b.on_packet(now, &pkt.bytes);
//! assert!(matches!(
//!     &delivered[..],
//!     [Emit::UdpDelivered { payload, .. }] if payload == b"hello"
//! ));
//! # Ok::<(), qpip_netstack::engine::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod engine;
pub mod frag;
pub mod hash;
pub mod invariant;
mod slab;
pub mod tcp;
mod timer_index;
pub mod types;

pub use engine::{Engine, EngineError, EngineStats};
pub use types::{
    AckPolicy, ConnId, Emit, Endpoint, NetConfig, OpCounters, PacketKind, PacketOut,
    SegmentationPolicy, SendToken,
};
