//! The per-node protocol engine: demultiplexing, connection management
//! and packet encode/decode over the TCP/UDP/IPv6 machinery.
//!
//! One [`Engine`] instance is the complete inter-network stack of one
//! node. The QPIP NIC firmware embeds an engine (offloaded stack,
//! Figure 1); the host baseline embeds an identical engine behind the
//! socket layer. Both therefore speak exactly the same wire protocol —
//! which is the paper's interoperability argument (§3): QP nodes and
//! socket nodes differ only in *where* the stack runs and what interface
//! sits on top.

use std::net::Ipv6Addr;

use qpip_sim::time::SimTime;
use qpip_trace::{flags as tflags, Snapshot, TraceEvent, Tracer};

use crate::codec::{build_tcp_packet, build_udp_packet, decode_packet, Decoded};
use crate::hash::FxHashMap;
use crate::invariant::{self, InvariantViolation, TcbSnapshot};
use crate::slab::ConnSlab;
use crate::tcp::tcb::{SegmentOut, Tcb, TcbEvent, TcpState};
use crate::timer_index::TimerIndex;
use crate::types::{
    ConnId, Emit, Endpoint, NetConfig, OpCounters, PacketKind, PacketOut, SendToken,
};

/// Errors surfaced by engine calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The port is already bound/listening.
    PortInUse(u16),
    /// No such connection (closed or never existed).
    UnknownConn(ConnId),
    /// The UDP port is not bound.
    PortNotBound(u16),
    /// Payload exceeds what one datagram/segment can carry at this MTU.
    MessageTooLarge {
        /// Bytes requested.
        len: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// The connection is closing or closed for sending (FIN already
    /// queued, or past ESTABLISHED/CLOSE-WAIT).
    ConnectionClosing(ConnId),
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::PortInUse(p) => write!(f, "port {p} already in use"),
            EngineError::UnknownConn(c) => write!(f, "unknown connection {c}"),
            EngineError::PortNotBound(p) => write!(f, "port {p} not bound"),
            EngineError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds maximum {max}")
            }
            EngineError::ConnectionClosing(c) => {
                write!(f, "{c} is closing; no further sends")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Traffic and error counters for one engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Packets handed to `on_packet`.
    pub rx_packets: u64,
    /// Packets produced.
    pub tx_packets: u64,
    /// Packets dropped for checksum failure.
    pub checksum_drops: u64,
    /// Packets dropped because no port/connection matched.
    pub demux_drops: u64,
    /// Packets dropped because the IPv6 destination was not ours.
    pub addr_drops: u64,
    /// Packets dropped because they did not parse (truncated or
    /// malformed headers — distinct from a checksum failure and from a
    /// well-formed packet that matched no port).
    pub parse_drops: u64,
    /// Retransmissions triggered by RTO expiry (including SYN/FIN
    /// retries), summed over live and reaped connections.
    pub rto_retransmits: u64,
    /// Fast retransmissions (third duplicate ACK), summed over live and
    /// reaped connections.
    pub fast_retransmits: u64,
    /// Duplicate ACKs received, summed over live and reaped connections.
    pub dupacks_rx: u64,
    /// Peer-window transitions to zero, summed over live and reaped
    /// connections.
    pub zero_window_events: u64,
}

impl EngineStats {
    /// Renders the counters as a named snapshot (scope `"engine"`).
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new("engine");
        s.push("rx_packets", self.rx_packets)
            .push("tx_packets", self.tx_packets)
            .push("checksum_drops", self.checksum_drops)
            .push("demux_drops", self.demux_drops)
            .push("addr_drops", self.addr_drops)
            .push("parse_drops", self.parse_drops)
            .push("rto_retransmits", self.rto_retransmits)
            .push("fast_retransmits", self.fast_retransmits)
            .push("dupacks_rx", self.dupacks_rx)
            .push("zero_window_events", self.zero_window_events);
        s
    }
}

/// Stable lowercase name of a TCP state, for traces and reports.
pub fn state_name(s: TcpState) -> &'static str {
    match s {
        TcpState::SynSent => "syn_sent",
        TcpState::SynRcvd => "syn_rcvd",
        TcpState::Established => "established",
        TcpState::FinWait1 => "fin_wait1",
        TcpState::FinWait2 => "fin_wait2",
        TcpState::Closing => "closing",
        TcpState::TimeWait => "time_wait",
        TcpState::CloseWait => "close_wait",
        TcpState::LastAck => "last_ack",
        TcpState::Closed => "closed",
    }
}

fn flag_bits(f: &qpip_wire::tcp::TcpFlags) -> u8 {
    (u8::from(f.fin) * tflags::FIN)
        | (u8::from(f.syn) * tflags::SYN)
        | (u8::from(f.rst) * tflags::RST)
        | (u8::from(f.psh) * tflags::PSH)
        | (u8::from(f.ack) * tflags::ACK)
}

/// Counter sample taken around a mutating TCB call; the engine diffs
/// two of these to synthesize trace events without the TCB knowing the
/// tracer exists.
#[derive(Debug, Clone, Copy)]
struct Probe {
    state: TcpState,
    cwnd: u64,
    ssthresh: u64,
    rto_retransmits: u64,
    fast_retransmits: u64,
    dupacks_rx: u64,
    zero_window_events: u64,
    rtt_samples: u64,
}

impl Probe {
    fn capture(tcb: &Tcb) -> Probe {
        Probe {
            state: tcb.state(),
            cwnd: tcb.cwnd(),
            ssthresh: tcb.ssthresh(),
            rto_retransmits: tcb.rto_retransmits(),
            fast_retransmits: tcb.fast_retransmits(),
            dupacks_rx: tcb.dupacks_rx(),
            zero_window_events: tcb.zero_window_events(),
            rtt_samples: tcb.rtt_samples(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnOrigin {
    Active,
    Passive { listener_port: u16 },
}

struct ConnEntry {
    tcb: Tcb,
    origin: ConnOrigin,
    established_reported: bool,
    /// State at the previous invariant check, for the oracle's
    /// cross-event (monotonicity) invariants.
    snapshot: Option<TcbSnapshot>,
}

/// The complete inter-network stack of one simulated node.
pub struct Engine {
    cfg: NetConfig,
    local_addr: Ipv6Addr,
    /// Connection state, resolved by slot index (no hashing).
    conns: ConnSlab<ConnEntry>,
    /// (local, remote) endpoint pair → connection, for segment demux.
    demux: FxHashMap<(Endpoint, Endpoint), ConnId>,
    /// Armed timer deadlines; kept in sync with the TCBs after every
    /// mutating call so `next_deadline` is a pure peek.
    timers: TimerIndex,
    listeners: FxHashMap<u16, ()>,
    udp_ports: FxHashMap<u16, ()>,
    iss_counter: u32,
    ops: OpCounters,
    stats: EngineStats,
    /// Flight-recorder handle; `None` (the default) costs one branch
    /// per hook site on the datapath.
    tracer: Option<Tracer>,
    /// First invariant violation seen by the per-event debug hook;
    /// latched until [`Engine::check_invariants`] surfaces it.
    poisoned: Option<InvariantViolation>,
}

impl core::fmt::Debug for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("local_addr", &self.local_addr)
            .field("conns", &self.conns.len())
            .field("listeners", &self.listeners.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Engine {
    /// Creates a stack for the node at `local_addr`.
    pub fn new(cfg: NetConfig, local_addr: Ipv6Addr) -> Self {
        Engine {
            cfg,
            local_addr,
            conns: ConnSlab::new(),
            demux: FxHashMap::default(),
            timers: TimerIndex::new(),
            listeners: FxHashMap::default(),
            udp_ports: FxHashMap::default(),
            iss_counter: 0x1000,
            ops: OpCounters::new(),
            stats: EngineStats::default(),
            tracer: None,
            poisoned: None,
        }
    }

    /// Installs a flight-recorder handle; every subsequent protocol
    /// action emits trace events through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// This node's IPv6 address.
    pub fn local_addr(&self) -> Ipv6Addr {
        self.local_addr
    }

    /// The engine configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Traffic counters. Retransmit/dup-ACK/zero-window counters folded
    /// into the base stats at reap time are completed with the live
    /// connections' TCB counters, so the totals never regress when a
    /// connection closes.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        for e in self.conns.values() {
            s.rto_retransmits += e.tcb.rto_retransmits();
            s.fast_retransmits += e.tcb.fast_retransmits();
            s.dupacks_rx += e.tcb.dupacks_rx();
            s.zero_window_events += e.tcb.zero_window_events();
        }
        s
    }

    /// Returns and resets the accumulated operation counters (the cost
    /// model drains these after every call).
    pub fn take_ops(&mut self) -> OpCounters {
        self.ops.take()
    }

    /// Number of live connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// State of a connection, if it still exists.
    pub fn conn_state(&self, conn: ConnId) -> Option<TcpState> {
        self.conns.get(conn).map(|e| e.tcb.state())
    }

    /// Smoothed RTT of a connection.
    pub fn conn_srtt(&self, conn: ConnId) -> Option<qpip_sim::time::SimDuration> {
        self.conns.get(conn).and_then(|e| e.tcb.srtt())
    }

    /// Bytes in flight on a connection.
    pub fn conn_bytes_in_flight(&self, conn: ConnId) -> Option<u64> {
        self.conns.get(conn).map(|e| e.tcb.bytes_in_flight())
    }

    /// Bytes buffered (unacknowledged + unsent) on a connection — the
    /// socket layer's send-buffer occupancy.
    pub fn conn_bytes_buffered(&self, conn: ConnId) -> Option<u64> {
        self.conns.get(conn).map(|e| e.tcb.bytes_buffered())
    }

    /// Number of armed connection timers (diagnostic: must reach 0 once
    /// every connection is closed and reaped).
    pub fn timer_index_len(&self) -> usize {
        self.timers.len()
    }

    /// Size of the endpoint-pair demux table (diagnostic: always equals
    /// [`Engine::conn_count`] — every live connection is demuxable).
    pub fn demux_len(&self) -> usize {
        self.demux.len()
    }

    /// Total retransmissions across live connections.
    pub fn retransmissions(&self) -> u64 {
        self.conns.values().map(|e| e.tcb.retransmit_count()).sum()
    }

    /// Total ECN-triggered window reductions across live connections.
    pub fn ecn_reductions(&self) -> u64 {
        self.conns.values().map(|e| e.tcb.ecn_reductions()).sum()
    }

    /// Peer's advertised send window on a connection, in bytes.
    pub fn conn_snd_wnd(&self, conn: ConnId) -> Option<u64> {
        self.conns.get(conn).map(|e| e.tcb.snd_wnd())
    }

    /// Out-of-order segments dropped on a connection (the subset has no
    /// reassembly; each drop produced a duplicate ACK).
    pub fn conn_ooo_drops(&self, conn: ConnId) -> Option<u64> {
        self.conns.get(conn).map(|e| e.tcb.ooo_drops())
    }

    // ----- invariant oracle ---------------------------------------------

    /// Runs the TCB invariant oracle over every live connection plus the
    /// engine's cross-table invariants (demux and timer-index
    /// consistency).
    ///
    /// Debug builds additionally run the per-connection oracle inline
    /// after every mutating engine call; the first violation found there
    /// is latched and returned by the next call here, so a caller that
    /// checks once per world step still learns exactly which event broke
    /// which invariant.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found, with the connection set.
    pub fn check_invariants(&mut self) -> Result<(), InvariantViolation> {
        if let Some(v) = self.poisoned.take() {
            return Err(v);
        }
        if self.demux.len() != self.conns.len() {
            return Err(InvariantViolation {
                invariant: "demux_covers_conns",
                conn: None,
                detail: format!(
                    "demux has {} entries but {} connections are live",
                    self.demux.len(),
                    self.conns.len()
                ),
            });
        }
        let ids: Vec<ConnId> = self.conns.iter().map(|(id, _)| id).collect();
        for id in ids {
            let entry = self.conns.get(id).expect("iterated id is live");
            let key = (entry.tcb.local(), entry.tcb.remote());
            if self.demux.get(&key) != Some(&id) {
                return Err(InvariantViolation {
                    invariant: "demux_maps_back",
                    conn: Some(id),
                    detail: format!("({} -> {}) does not resolve to this connection", key.0, key.1),
                });
            }
            if self.timers.get(id) != entry.tcb.next_deadline() {
                return Err(InvariantViolation {
                    invariant: "timer_index_sync",
                    conn: Some(id),
                    detail: format!(
                        "timer index holds {:?} but the TCB deadline is {:?}",
                        self.timers.get(id),
                        entry.tcb.next_deadline()
                    ),
                });
            }
            self.check_conn(id)?;
        }
        Ok(())
    }

    /// Takes the violation latched by the per-event debug hook, if any —
    /// the O(1) probe the DES worlds poll after every event.
    pub fn take_invariant_violation(&mut self) -> Option<InvariantViolation> {
        self.poisoned.take()
    }

    /// Audits one connection and refreshes its monotonicity snapshot.
    fn check_conn(&mut self, conn: ConnId) -> Result<(), InvariantViolation> {
        let Some(entry) = self.conns.get_mut(conn) else {
            return Ok(());
        };
        let res = invariant::check_tcb(&entry.tcb, entry.snapshot.as_ref());
        entry.snapshot = Some(TcbSnapshot::of(&entry.tcb));
        res.map_err(|v| v.for_conn(conn))
    }

    /// Per-event oracle hook: latch the first violation instead of
    /// panicking so the surrounding world can report it with flight-
    /// recorder context. Debug/test builds only — release datapaths pay
    /// nothing.
    #[cfg(debug_assertions)]
    fn debug_check_conn(&mut self, conn: ConnId) {
        if self.poisoned.is_none() {
            if let Err(v) = self.check_conn(conn) {
                self.poisoned = Some(v);
            }
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_conn(&mut self, _conn: ConnId) {}

    // ----- UDP ---------------------------------------------------------

    /// Binds a UDP port.
    ///
    /// # Errors
    ///
    /// [`EngineError::PortInUse`] if already bound.
    pub fn udp_bind(&mut self, port: u16) -> Result<(), EngineError> {
        if self.udp_ports.insert(port, ()).is_some() {
            return Err(EngineError::PortInUse(port));
        }
        Ok(())
    }

    /// Sends one UDP datagram (one QP message, §4.1). Returns the packet
    /// to transmit.
    ///
    /// # Errors
    ///
    /// [`EngineError::PortNotBound`] if `local_port` is not bound;
    /// [`EngineError::MessageTooLarge`] if the payload exceeds the MTU
    /// budget.
    pub fn udp_send(
        &mut self,
        local_port: u16,
        dst: Endpoint,
        payload: &[u8],
    ) -> Result<Emit, EngineError> {
        if !self.udp_ports.contains_key(&local_port) {
            return Err(EngineError::PortNotBound(local_port));
        }
        let max = self.cfg.max_udp_payload();
        if payload.len() > max {
            return Err(EngineError::MessageTooLarge { len: payload.len(), max });
        }
        let src = Endpoint::new(self.local_addr, local_port);
        let bytes = build_udp_packet(src, dst, payload);
        self.ops.headers_built += 2; // UDP + IPv6
        self.ops.csum_bytes += (bytes.len() - 40) as u64;
        self.stats.tx_packets += 1;
        Ok(Emit::Packet(PacketOut { dst: dst.addr, bytes, kind: PacketKind::Udp, conn: None }))
    }

    // ----- TCP ---------------------------------------------------------

    /// Starts listening on a TCP port (§3: "The server application
    /// instructs the interface to monitor a TCP port for incoming
    /// connections").
    ///
    /// # Errors
    ///
    /// [`EngineError::PortInUse`] if already listening.
    pub fn tcp_listen(&mut self, port: u16) -> Result<(), EngineError> {
        if self.listeners.insert(port, ()).is_some() {
            return Err(EngineError::PortInUse(port));
        }
        Ok(())
    }

    /// Opens a connection using the sockets rendezvous model (§3),
    /// returning the new connection id and the SYN to transmit.
    pub fn tcp_connect(
        &mut self,
        now: SimTime,
        local_port: u16,
        remote: Endpoint,
    ) -> (ConnId, Vec<Emit>) {
        let local = Endpoint::new(self.local_addr, local_port);
        let iss = self.next_iss();
        let (tcb, segs) = Tcb::connect(&self.cfg, local, remote, iss, now);
        let id = self.insert_conn(now, tcb, ConnOrigin::Active);
        let mut emits = Vec::with_capacity(segs.len());
        self.encode_segments_into(now, id, &segs, &mut emits);
        self.debug_check_conn(id);
        (id, emits)
    }

    /// Sends one unit of data on a connection. Completion is reported
    /// later via [`Emit::TcpSendComplete`] carrying `token`.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownConn`] for dead connections and
    /// [`EngineError::MessageTooLarge`] in message mode when the payload
    /// cannot fit one segment.
    pub fn tcp_send(
        &mut self,
        now: SimTime,
        conn: ConnId,
        data: Vec<u8>,
        token: SendToken,
    ) -> Result<Vec<Emit>, EngineError> {
        if self.cfg.segmentation == crate::types::SegmentationPolicy::MessagePerSegment {
            let max = self.cfg.max_tcp_payload();
            if data.len() > max {
                return Err(EngineError::MessageTooLarge { len: data.len(), max });
            }
        }
        let entry = self.conns.get_mut(conn).ok_or(EngineError::UnknownConn(conn))?;
        if !entry.tcb.can_send() {
            return Err(EngineError::ConnectionClosing(conn));
        }
        let segs = entry.tcb.send(&self.cfg, data, token, now, &mut self.ops);
        self.sync_timer(now, conn);
        let mut emits = Vec::with_capacity(segs.len());
        self.encode_segments_into(now, conn, &segs, &mut emits);
        self.debug_check_conn(conn);
        Ok(emits)
    }

    /// Begins a graceful close.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownConn`] if the connection is gone.
    pub fn tcp_close(&mut self, now: SimTime, conn: ConnId) -> Result<Vec<Emit>, EngineError> {
        let entry = self.conns.get_mut(conn).ok_or(EngineError::UnknownConn(conn))?;
        let before = self.tracer.is_some().then(|| Probe::capture(&entry.tcb));
        let segs = entry.tcb.close(&self.cfg, now, &mut self.ops);
        self.sync_timer(now, conn);
        if let Some(b) = before {
            self.trace_probe_diff(now, conn, &b, &segs, None, "ack");
        }
        let mut emits = Vec::with_capacity(segs.len());
        self.encode_segments_into(now, conn, &segs, &mut emits);
        self.debug_check_conn(conn);
        Ok(emits)
    }

    /// Aborts with RST and removes the connection.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownConn`] if the connection is gone.
    pub fn tcp_abort(&mut self, now: SimTime, conn: ConnId) -> Result<Vec<Emit>, EngineError> {
        let mut entry = self.conns.remove(conn).ok_or(EngineError::UnknownConn(conn))?;
        let prev = entry.tcb.state();
        let rst = entry.tcb.abort();
        self.demux.remove(&(entry.tcb.local(), entry.tcb.remote()));
        if let Some(tr) = &self.tracer {
            if self.timers.get(conn).is_some() {
                tr.emit(now, conn.0, TraceEvent::TimerCancel);
            }
            tr.emit(
                now,
                conn.0,
                TraceEvent::TcpState { from: state_name(prev), to: state_name(TcpState::Closed) },
            );
        }
        self.timers.update(conn, None);
        self.fold_reaped_counters(&entry.tcb);
        let remote = entry.tcb.remote();
        let local = entry.tcb.local();
        Ok(vec![self.encode_one(now, conn, local, remote, &rst)])
    }

    /// Updates the receive-window backing space of a connection (QPIP:
    /// total posted receive-WR bytes) and emits a window-update ACK.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownConn`] if the connection is gone.
    pub fn set_recv_space(
        &mut self,
        now: SimTime,
        conn: ConnId,
        bytes: u64,
    ) -> Result<Vec<Emit>, EngineError> {
        let entry = self.conns.get_mut(conn).ok_or(EngineError::UnknownConn(conn))?;
        entry.tcb.set_recv_space(bytes);
        let upd = entry.tcb.window_update(now);
        self.sync_timer(now, conn);
        if let (Some(tr), Some(u)) = (&self.tracer, upd.as_ref()) {
            tr.emit(now, conn.0, TraceEvent::WindowRefresh { wnd: u32::from(u.window) });
        }
        let mut emits = Vec::with_capacity(upd.is_some() as usize);
        self.encode_segments_into(now, conn, upd.as_slice(), &mut emits);
        self.debug_check_conn(conn);
        Ok(emits)
    }

    // ----- packet input --------------------------------------------------

    /// Processes one received packet, producing replies and events.
    pub fn on_packet(&mut self, now: SimTime, bytes: &[u8]) -> Vec<Emit> {
        self.stats.rx_packets += 1;
        let decoded = match decode_packet(bytes) {
            Ok(d) => d,
            Err(qpip_wire::error::ParseWireError::BadChecksum) => {
                self.stats.checksum_drops += 1;
                return Vec::new();
            }
            Err(_) => {
                self.stats.parse_drops += 1;
                return Vec::new();
            }
        };
        self.ops.headers_parsed += 1; // IP parse
        match decoded {
            Decoded::Udp { ip, udp, payload } => {
                self.ops.csum_bytes += (usize::from(udp.length)) as u64;
                if ip.dst != self.local_addr {
                    self.stats.addr_drops += 1;
                    return Vec::new();
                }
                if !self.udp_ports.contains_key(&udp.dst_port) {
                    self.stats.demux_drops += 1;
                    return Vec::new();
                }
                vec![Emit::UdpDelivered {
                    port: udp.dst_port,
                    src: Endpoint::new(ip.src, udp.src_port),
                    // the one copy on the UDP receive path: borrowed view
                    // into the wire buffer becomes the delivered datagram
                    payload: payload.to_vec(),
                }]
            }
            Decoded::Tcp { ip, tcp, payload } => {
                self.ops.csum_bytes += (usize::from(ip.payload_len)) as u64;
                if ip.dst != self.local_addr {
                    self.stats.addr_drops += 1;
                    return Vec::new();
                }
                self.on_tcp_segment(now, &ip, &tcp, payload)
            }
            Decoded::Other { .. } => {
                self.stats.demux_drops += 1;
                Vec::new()
            }
        }
    }

    fn on_tcp_segment(
        &mut self,
        now: SimTime,
        ip: &qpip_wire::ipv6::Ipv6Header,
        tcp: &qpip_wire::tcp::TcpHeader,
        payload: &[u8],
    ) -> Vec<Emit> {
        let ce = ip.ecn() == qpip_wire::ipv6::Ecn::CongestionExperienced;
        let local = Endpoint::new(ip.dst, tcp.dst_port);
        let remote = Endpoint::new(ip.src, tcp.src_port);
        let conn = match self.demux.get(&(local, remote)) {
            Some(&c) => c,
            None => {
                // no connection: a SYN to a listening port spawns one
                if tcp.flags.syn
                    && !tcp.flags.ack
                    && !tcp.flags.rst
                    && self.listeners.contains_key(&tcp.dst_port)
                {
                    let iss = self.next_iss();
                    let (tcb, segs) = Tcb::accept(&self.cfg, local, remote, tcp, iss, now);
                    let id = self.insert_conn(
                        now,
                        tcb,
                        ConnOrigin::Passive { listener_port: tcp.dst_port },
                    );
                    self.trace_seg_rx(now, id, tcp, payload.len());
                    let mut emits = Vec::with_capacity(segs.len());
                    self.encode_segments_into(now, id, &segs, &mut emits);
                    self.debug_check_conn(id);
                    return emits;
                }
                self.stats.demux_drops += 1;
                return Vec::new();
            }
        };

        self.trace_seg_rx(now, conn, tcp, payload.len());
        let entry = self.conns.get_mut(conn).expect("demux points at live conn");
        let before = self.tracer.is_some().then(|| Probe::capture(&entry.tcb));
        let (segs, events) =
            entry.tcb.on_segment_marked(&self.cfg, tcp, payload, ce, now, &mut self.ops);
        self.sync_timer(now, conn);
        if let Some(b) = before {
            self.trace_probe_diff(now, conn, &b, &segs, Some(tcp.ack.0), "ack");
        }
        let mut emits = Vec::with_capacity(events.len() + segs.len());
        self.translate_events_into(conn, events, &mut emits);
        self.encode_segments_into(now, conn, &segs, &mut emits);
        self.debug_check_conn(conn);
        self.reap_if_closed(conn);
        emits
    }

    // ----- timers --------------------------------------------------------

    /// The earliest timer deadline across all connections: an O(1) peek
    /// of the timer index (every mutating call re-syncs the index, so
    /// it is always settled here).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.peek().map(|(d, _)| d)
    }

    /// Fires all due timers, popping only due connections from the
    /// timer index — connections whose deadlines lie ahead are never
    /// visited.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<Emit> {
        let mut emits = Vec::new();
        while let Some((deadline, conn)) = self.timers.peek() {
            if deadline > now {
                break;
            }
            if let Some(tr) = &self.tracer {
                tr.emit(now, conn.0, TraceEvent::TimerFire);
            }
            let entry = self.conns.get_mut(conn).expect("timer index points at live conn");
            let before = self.tracer.is_some().then(|| Probe::capture(&entry.tcb));
            let (segs, events) = entry.tcb.on_timer(&self.cfg, now, &mut self.ops);
            // a fired TCB either disarms or re-arms strictly past `now`
            // (min_rto > 0), so this loop pops each due entry once
            debug_assert!(entry.tcb.next_deadline().is_none_or(|d| d > now));
            self.sync_timer(now, conn);
            if let Some(b) = before {
                self.trace_probe_diff(now, conn, &b, &segs, None, "rto");
            }
            self.translate_events_into(conn, events, &mut emits);
            self.encode_segments_into(now, conn, &segs, &mut emits);
            self.debug_check_conn(conn);
            self.reap_if_closed(conn);
        }
        emits
    }

    // ----- internals -------------------------------------------------------

    fn next_iss(&mut self) -> qpip_wire::tcp::SeqNum {
        // deterministic ISS spacing (RFC 793's clock-driven ISS is
        // irrelevant in simulation; distinct values exercise wraparound)
        self.iss_counter = self.iss_counter.wrapping_add(0x3d09_0000);
        qpip_wire::tcp::SeqNum(self.iss_counter)
    }

    fn insert_conn(&mut self, now: SimTime, tcb: Tcb, origin: ConnOrigin) -> ConnId {
        let key = (tcb.local(), tcb.remote());
        let state = tcb.state();
        let id = self.conns.insert(ConnEntry {
            tcb,
            origin,
            established_reported: false,
            snapshot: None,
        });
        self.demux.insert(key, id);
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                id.0,
                TraceEvent::TcpState { from: state_name(TcpState::Closed), to: state_name(state) },
            );
        }
        self.sync_timer(now, id);
        debug_assert_eq!(self.demux.len(), self.conns.len());
        id
    }

    /// Mirrors `conn`'s current TCB deadline into the timer index.
    /// Called after every TCB-mutating operation so the index is always
    /// settled when `next_deadline` peeks it; on a removed connection
    /// this disarms the slot.
    fn sync_timer(&mut self, now: SimTime, conn: ConnId) {
        let deadline = self.conns.get(conn).and_then(|e| e.tcb.next_deadline());
        if let Some(tr) = &self.tracer {
            let old = self.timers.get(conn);
            if old != deadline {
                match deadline {
                    Some(d) => tr.emit(now, conn.0, TraceEvent::TimerArm { deadline: d }),
                    None => tr.emit(now, conn.0, TraceEvent::TimerCancel),
                }
            }
        }
        self.timers.update(conn, deadline);
    }

    fn reap_if_closed(&mut self, conn: ConnId) {
        if self.conns.get(conn).is_some_and(|e| e.tcb.state() == TcpState::Closed) {
            let entry = self.conns.remove(conn).expect("just resolved");
            self.demux.remove(&(entry.tcb.local(), entry.tcb.remote()));
            self.timers.update(conn, None);
            self.fold_reaped_counters(&entry.tcb);
            debug_assert_eq!(self.demux.len(), self.conns.len());
        }
    }

    /// Folds a departing connection's TCB counters into the engine base
    /// stats so [`Engine::stats`] totals survive the reap.
    fn fold_reaped_counters(&mut self, tcb: &Tcb) {
        self.stats.rto_retransmits += tcb.rto_retransmits();
        self.stats.fast_retransmits += tcb.fast_retransmits();
        self.stats.dupacks_rx += tcb.dupacks_rx();
        self.stats.zero_window_events += tcb.zero_window_events();
    }

    /// Emits a [`TraceEvent::SegRx`] for a parsed inbound segment.
    fn trace_seg_rx(
        &self,
        now: SimTime,
        conn: ConnId,
        tcp: &qpip_wire::tcp::TcpHeader,
        len: usize,
    ) {
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                conn.0,
                TraceEvent::SegRx {
                    seq: tcp.seq.0,
                    ack: tcp.ack.0,
                    len: len as u32,
                    wnd: u32::from(tcp.window),
                    flags: flag_bits(&tcp.flags),
                },
            );
        }
    }

    /// Diffs a [`Probe`] against the connection's current TCB and emits
    /// one event per observed change. The TCB itself stays tracer-free:
    /// at most one retransmission can leave a single mutating call, so
    /// its sequence number is recovered from the `is_retransmit` segment
    /// in that call's output.
    fn trace_probe_diff(
        &self,
        now: SimTime,
        conn: ConnId,
        before: &Probe,
        segs: &[SegmentOut],
        ack: Option<u32>,
        cwnd_reason: &'static str,
    ) {
        let Some(tr) = &self.tracer else { return };
        let Some(entry) = self.conns.get(conn) else { return };
        let tcb = &entry.tcb;
        let c = conn.0;
        if tcb.state() != before.state {
            tr.emit(
                now,
                c,
                TraceEvent::TcpState {
                    from: state_name(before.state),
                    to: state_name(tcb.state()),
                },
            );
        }
        if tcb.dupacks_rx() > before.dupacks_rx {
            tr.emit(now, c, TraceEvent::DupAck { ack: ack.unwrap_or(0), count: tcb.dup_acks() });
        }
        let retx_seq = segs.iter().find(|s| s.is_retransmit).map_or(0, |s| s.seq.0);
        if tcb.fast_retransmits() > before.fast_retransmits {
            tr.emit(now, c, TraceEvent::Retransmit { seq: retx_seq, fast: true });
        }
        if tcb.rto_retransmits() > before.rto_retransmits {
            tr.emit(now, c, TraceEvent::Retransmit { seq: retx_seq, fast: false });
        }
        if tcb.rtt_samples() > before.rtt_samples {
            let us = |d: qpip_sim::time::SimDuration| d.as_picos() / 1_000_000;
            tr.emit(
                now,
                c,
                TraceEvent::RttSample {
                    rtt_us: tcb.last_rtt_sample().map_or(0, us),
                    srtt_us: tcb.srtt().map_or(0, us),
                    rto_us: us(tcb.rto()),
                },
            );
        }
        if tcb.cwnd() != before.cwnd || tcb.ssthresh() != before.ssthresh {
            let clamp = |v: u64| u32::try_from(v).unwrap_or(u32::MAX);
            tr.emit(
                now,
                c,
                TraceEvent::CwndChange {
                    cwnd: clamp(tcb.cwnd()),
                    ssthresh: clamp(tcb.ssthresh()),
                    reason: cwnd_reason,
                },
            );
        }
        if tcb.zero_window_events() > before.zero_window_events {
            tr.emit(now, c, TraceEvent::ZeroWindow);
        }
    }

    fn translate_events_into(
        &mut self,
        conn: ConnId,
        events: Vec<TcbEvent>,
        emits: &mut Vec<Emit>,
    ) {
        for ev in events {
            match ev {
                TcbEvent::Established => {
                    let entry = self.conns.get_mut(conn).expect("live conn");
                    if entry.established_reported {
                        continue;
                    }
                    entry.established_reported = true;
                    match entry.origin {
                        ConnOrigin::Active => emits.push(Emit::TcpConnected { conn }),
                        ConnOrigin::Passive { listener_port } => emits.push(Emit::TcpAccepted {
                            listener_port,
                            conn,
                            peer: entry.tcb.remote(),
                        }),
                    }
                }
                TcbEvent::Delivered(data) => emits.push(Emit::TcpDelivered { conn, data }),
                TcbEvent::SendComplete(token) => emits.push(Emit::TcpSendComplete { conn, token }),
                TcbEvent::PeerClosed => emits.push(Emit::TcpPeerClosed { conn }),
                TcbEvent::Closed => emits.push(Emit::TcpClosed { conn }),
                TcbEvent::Reset => emits.push(Emit::TcpReset { conn }),
            }
        }
    }

    fn encode_segments_into(
        &mut self,
        now: SimTime,
        conn: ConnId,
        segs: &[SegmentOut],
        emits: &mut Vec<Emit>,
    ) {
        let Some(entry) = self.conns.get(conn) else {
            return;
        };
        let local = entry.tcb.local();
        let remote = entry.tcb.remote();
        emits.extend(segs.iter().map(|s| self.encode_one(now, conn, local, remote, s)));
    }

    fn encode_one(
        &mut self,
        now: SimTime,
        conn: ConnId,
        local: Endpoint,
        remote: Endpoint,
        seg: &SegmentOut,
    ) -> Emit {
        if let Some(tr) = &self.tracer {
            tr.emit(
                now,
                conn.0,
                TraceEvent::SegTx {
                    seq: seg.seq.0,
                    ack: seg.ack.0,
                    len: seg.payload.len() as u32,
                    wnd: u32::from(seg.window),
                    flags: flag_bits(&seg.flags),
                    retransmit: seg.is_retransmit,
                },
            );
        }
        let bytes = build_tcp_packet(local, remote, seg);
        self.ops.headers_built += 2; // TCP + IPv6
        self.ops.csum_bytes += (bytes.len() - 40) as u64;
        self.stats.tx_packets += 1;
        Emit::Packet(PacketOut { dst: remote.addr, bytes, kind: seg.kind, conn: Some(conn) })
    }
}
