//! Indexed min-heap over per-connection timer deadlines.
//!
//! Before this index existed, `Engine::next_deadline()` scanned every
//! connection for the minimum TCB deadline and `on_timer()` re-scanned
//! for due ones. The worlds call `next_deadline()` after *every*
//! absorbed NIC/stack output to reschedule the node's timer event, so
//! per-event cost grew linearly with flow count and whole-run cost
//! quadratically — fatal for the fan-in regime the paper targets.
//!
//! The index keeps one entry per connection with an armed timer, keyed
//! by the connection's slab slot:
//!
//! * `peek()` — the earliest deadline, O(1);
//! * `update(conn, deadline)` — insert / reschedule / disarm, O(log n)
//!   via a position map (`pos[slot]` → heap index), the classic
//!   decrease-key trick;
//! * `on_timer` pops only entries with `deadline <= now`.
//!
//! Ties break on the connection id, so firing order is deterministic —
//! unlike the hash-map scan it replaces, whose order varied per
//! process. (Engine behaviour does not depend on same-instant firing
//! order — each TCB's timer touches only its own connection — but
//! determinism here keeps whole-run traces reproducible by
//! construction rather than by accident.)

use qpip_sim::time::SimTime;

use crate::types::ConnId;

/// `pos` sentinel: this slot has no armed timer.
const ABSENT: u32 = u32::MAX;

/// Min-heap of `(deadline, conn)` with per-slot positions.
#[derive(Debug, Default)]
pub(crate) struct TimerIndex {
    heap: Vec<(SimTime, ConnId)>,
    /// Slab slot → index into `heap`, or [`ABSENT`].
    pos: Vec<u32>,
}

impl TimerIndex {
    pub fn new() -> Self {
        TimerIndex::default()
    }

    /// Number of armed timers (tests assert this reaches 0 at teardown).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// The earliest (deadline, connection), without popping.
    pub fn peek(&self) -> Option<(SimTime, ConnId)> {
        self.heap.first().copied()
    }

    /// The armed deadline of one connection, if any.
    pub fn get(&self, conn: ConnId) -> Option<SimTime> {
        let i = *self.pos.get(conn.slot() as usize)?;
        if i == ABSENT {
            return None;
        }
        let (d, c) = self.heap[i as usize];
        (c == conn).then_some(d)
    }

    /// Sets or clears the deadline for `conn`. `None` disarms.
    pub fn update(&mut self, conn: ConnId, deadline: Option<SimTime>) {
        let slot = conn.slot() as usize;
        if slot >= self.pos.len() {
            self.pos.resize(slot + 1, ABSENT);
        }
        let cur = self.pos[slot];
        match (cur, deadline) {
            (ABSENT, None) => {}
            (ABSENT, Some(d)) => {
                self.heap.push((d, conn));
                let i = self.heap.len() - 1;
                self.pos[slot] = i as u32;
                self.sift_up(i);
            }
            (i, None) => self.remove_at(i as usize),
            (i, Some(d)) => {
                let i = i as usize;
                debug_assert_eq!(
                    self.heap[i].1, conn,
                    "slot owned by a different generation — missing disarm on reap"
                );
                if self.heap[i].0 == d {
                    return;
                }
                self.heap[i].0 = d;
                let i = self.sift_up(i);
                self.sift_down(i);
            }
        }
    }

    fn remove_at(&mut self, i: usize) {
        let last = self.heap.len() - 1;
        self.pos[self.heap[i].1.slot() as usize] = ABSENT;
        self.heap.swap(i, last);
        self.heap.pop();
        if i < last {
            self.pos[self.heap[i].1.slot() as usize] = i as u32;
            let i = self.sift_up(i);
            self.sift_down(i);
        }
    }

    /// Heap order: deadline, then connection id (deterministic ties).
    fn key(&self, i: usize) -> (SimTime, u32) {
        let (d, c) = self.heap[i];
        (d, c.0)
    }

    fn place(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].1.slot() as usize] = a as u32;
        self.pos[self.heap[b].1.slot() as usize] = b as u32;
    }

    fn sift_up(&mut self, mut i: usize) -> usize {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(i) >= self.key(parent) {
                break;
            }
            self.place(i, parent);
            i = parent;
        }
        i
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut min = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len() && self.key(child) < self.key(min) {
                    min = child;
                }
            }
            if min == i {
                return;
            }
            self.place(i, min);
            i = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + qpip_sim::time::SimDuration::from_micros(us)
    }

    fn drain(idx: &mut TimerIndex) -> Vec<(SimTime, ConnId)> {
        let mut out = Vec::new();
        while let Some(e) = idx.peek() {
            out.push(e);
            idx.update(e.1, None);
        }
        out
    }

    #[test]
    fn pops_in_deadline_then_id_order() {
        let mut idx = TimerIndex::new();
        let ids: Vec<ConnId> = (0..6).map(|s| ConnId::from_parts(s, 1)).collect();
        idx.update(ids[3], Some(t(50)));
        idx.update(ids[0], Some(t(10)));
        idx.update(ids[5], Some(t(10)));
        idx.update(ids[1], Some(t(30)));
        idx.update(ids[4], Some(t(20)));
        let order: Vec<ConnId> = drain(&mut idx).into_iter().map(|(_, c)| c).collect();
        assert_eq!(order, vec![ids[0], ids[5], ids[4], ids[1], ids[3]]);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn reschedule_moves_both_directions() {
        let mut idx = TimerIndex::new();
        let a = ConnId::from_parts(0, 1);
        let b = ConnId::from_parts(1, 1);
        idx.update(a, Some(t(10)));
        idx.update(b, Some(t(20)));
        idx.update(a, Some(t(30))); // increase-key: b surfaces
        assert_eq!(idx.peek(), Some((t(20), b)));
        idx.update(a, Some(t(5))); // decrease-key: a surfaces
        assert_eq!(idx.peek(), Some((t(5), a)));
        idx.update(a, Some(t(5))); // no-op reschedule
        assert_eq!(idx.peek(), Some((t(5), a)));
    }

    #[test]
    fn disarm_is_idempotent_and_removes_mid_heap() {
        let mut idx = TimerIndex::new();
        let ids: Vec<ConnId> = (0..5).map(|s| ConnId::from_parts(s, 1)).collect();
        for (i, &id) in ids.iter().enumerate() {
            idx.update(id, Some(t(10 * (i as u64 + 1))));
        }
        idx.update(ids[2], None);
        idx.update(ids[2], None); // already absent
        assert_eq!(idx.len(), 4);
        let order: Vec<ConnId> = drain(&mut idx).into_iter().map(|(_, c)| c).collect();
        assert_eq!(order, vec![ids[0], ids[1], ids[3], ids[4]]);
    }

    #[test]
    fn randomized_against_scan_reference() {
        // SplitMix64-driven ops; the index must always agree with a
        // brute-force min-scan over a reference map.
        let mut rng = qpip_sim::rng::SplitMix64::new(0xbeef);
        let mut idx = TimerIndex::new();
        let mut reference: Vec<Option<SimTime>> = vec![None; 64];
        for _ in 0..4000 {
            let slot = rng.range_usize(0, 63) as u32;
            let id = ConnId::from_parts(slot, 1);
            if rng.flip() {
                let d = t(rng.range_usize(0, 1000) as u64);
                idx.update(id, Some(d));
                reference[slot as usize] = Some(d);
            } else {
                idx.update(id, None);
                reference[slot as usize] = None;
            }
            let want =
                reference.iter().enumerate().filter_map(|(s, d)| d.map(|d| (d, s as u32))).min();
            assert_eq!(idx.peek().map(|(d, c)| (d, c.slot())), want);
            assert_eq!(idx.len(), reference.iter().flatten().count());
        }
    }
}
