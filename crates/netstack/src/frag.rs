//! IPv6 end-to-end fragmentation and reassembly.
//!
//! §4.1: the message-per-segment mapping produces "arbitrarily sized"
//! TCP segments; on fabrics with small MTUs the source NIC fragments
//! them into IPv6 fragments and only the destination NIC reassembles —
//! "end-to-end fragmentation which is better suited to hardware based
//! protocol implementations". Loss of one fragment kills the whole
//! segment ("performance could suffer if subsequent IP fragments are
//! lost"), which TCP then retransmits with a fresh fragment id.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use qpip_wire::frag::{FragmentHeader, FRAGMENT_HEADER_LEN, FRAGMENT_NEXT_HEADER};
use qpip_wire::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};

/// Splits a complete IPv6 packet into fragments that fit `wire_mtu`.
/// Returns the packet unchanged (as a single element) when it already
/// fits.
///
/// # Panics
///
/// Panics if `wire_mtu` cannot carry at least 8 payload bytes per
/// fragment, or if `packet` is not a well-formed IPv6 packet.
pub fn fragment_packet(packet: &[u8], wire_mtu: usize, id: u32) -> Vec<Vec<u8>> {
    if packet.len() <= wire_mtu {
        return vec![packet.to_vec()];
    }
    let (ip, hl) = Ipv6Header::parse(packet).expect("fragmenting a well-formed packet");
    debug_assert_eq!(hl, IPV6_HEADER_LEN);
    let payload = &packet[hl..];
    // per-fragment capacity, in 8-byte units for all but the last
    let raw = wire_mtu
        .checked_sub(IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN)
        .expect("mtu too small for fragment headers");
    let unit = raw & !7;
    assert!(unit >= 8, "mtu {wire_mtu} leaves no room for fragment payload");
    let mut out = Vec::with_capacity(payload.len().div_ceil(unit));
    let mut offset = 0usize;
    while offset < payload.len() {
        let take = unit.min(payload.len() - offset);
        let more = offset + take < payload.len();
        let frag =
            FragmentHeader { next_header: ip.next_header.code(), offset: offset as u32, more, id };
        let mut pkt = Vec::with_capacity(IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN + take);
        let hdr = Ipv6Header {
            next_header: NextHeader::Other(FRAGMENT_NEXT_HEADER),
            payload_len: (FRAGMENT_HEADER_LEN + take) as u16,
            ..ip
        };
        hdr.encode(&mut pkt);
        frag.encode(&mut pkt);
        pkt.extend_from_slice(&payload[offset..offset + take]);
        out.push(pkt);
        offset += take;
    }
    out
}

/// Returns `true` when the packet carries a fragment header.
pub fn is_fragment(packet: &[u8]) -> bool {
    packet.len() > 6 && packet[6] == FRAGMENT_NEXT_HEADER
}

#[derive(Debug)]
struct Partial {
    chunks: Vec<(u32, Vec<u8>)>,
    total: Option<u32>,
    next_header: u8,
    bytes: usize,
    arrival_order: u64,
}

/// Destination-side reassembly state.
///
/// Bounded: at most [`Reassembler::MAX_PENDING`] packets under
/// reassembly per peer set; when full, the oldest partial is discarded
/// (TCP retransmission recovers the segment with a fresh id).
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: HashMap<(Ipv6Addr, u32), Partial>,
    arrivals: u64,
    completed: u64,
    evicted: u64,
}

impl Reassembler {
    /// Maximum packets concurrently under reassembly.
    pub const MAX_PENDING: usize = 16;
    /// Maximum buffered bytes per packet under reassembly.
    pub const MAX_BYTES: usize = 256 * 1024;

    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Packets fully reassembled so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Partial packets evicted (capacity pressure or oversize).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Packets currently under reassembly.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one fragment; returns the reassembled original packet when
    /// this fragment completes it.
    ///
    /// Malformed fragments are dropped silently (they would fail the
    /// transport checksum anyway once reassembled).
    pub fn push(&mut self, packet: &[u8]) -> Option<Vec<u8>> {
        let (ip, hl) = Ipv6Header::parse(packet).ok()?;
        let seg = &packet[hl..hl + usize::from(ip.payload_len)];
        let (frag, fhl) = FragmentHeader::parse(seg).ok()?;
        let data = &seg[fhl..];
        self.arrivals += 1;

        let key = (ip.src, frag.id);
        let order = self.arrivals;
        let entry = self.pending.entry(key).or_insert_with(|| Partial {
            chunks: Vec::new(),
            total: None,
            next_header: frag.next_header,
            bytes: 0,
            arrival_order: order,
        });
        // duplicate fragments (retransmitted paths) are idempotent
        if entry.chunks.iter().any(|(off, _)| *off == frag.offset) {
            return None;
        }
        entry.bytes += data.len();
        entry.chunks.push((frag.offset, data.to_vec()));
        if !frag.more {
            entry.total = Some(frag.offset + data.len() as u32);
        }
        if entry.bytes > Self::MAX_BYTES {
            self.pending.remove(&key);
            self.evicted += 1;
            return None;
        }

        // complete?
        let done = entry.total.is_some_and(|total| {
            let mut covered = 0u32;
            let mut chunks: Vec<&(u32, Vec<u8>)> = entry.chunks.iter().collect();
            chunks.sort_by_key(|(off, _)| *off);
            for (off, d) in chunks {
                if *off != covered {
                    return false;
                }
                covered += d.len() as u32;
            }
            covered == total
        });
        if done {
            let mut entry = self.pending.remove(&key).expect("present");
            entry.chunks.sort_by_key(|(off, _)| *off);
            let total: usize = entry.chunks.iter().map(|(_, d)| d.len()).sum();
            let mut pkt = Vec::with_capacity(IPV6_HEADER_LEN + total);
            let hdr = Ipv6Header {
                next_header: NextHeader::from(entry.next_header),
                payload_len: total as u16,
                ..ip
            };
            hdr.encode(&mut pkt);
            for (_, d) in entry.chunks {
                pkt.extend_from_slice(&d);
            }
            self.completed += 1;
            return Some(pkt);
        }

        // capacity pressure: evict the oldest partial
        if self.pending.len() > Self::MAX_PENDING {
            if let Some((&victim, _)) = self.pending.iter().min_by_key(|(_, p)| p.arrival_order) {
                self.pending.remove(&victim);
                self.evicted += 1;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{build_udp_packet, decode_packet, Decoded};
    use crate::types::Endpoint;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
    }

    fn big_packet(len: usize) -> Vec<u8> {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        build_udp_packet(Endpoint::new(addr(1), 7), Endpoint::new(addr(2), 8), &payload).into_vec()
    }

    #[test]
    fn small_packets_pass_through_unfragmented() {
        let pkt = big_packet(100);
        let frags = fragment_packet(&pkt, 1500, 1);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], pkt);
        assert!(!is_fragment(&frags[0]));
    }

    #[test]
    fn fragment_reassemble_roundtrip() {
        let pkt = big_packet(10_000);
        let frags = fragment_packet(&pkt, 1500, 42);
        assert!(frags.len() >= 7, "{}", frags.len());
        assert!(frags.iter().all(|f| f.len() <= 1500));
        assert!(frags.iter().all(|f| is_fragment(f)));
        let mut r = Reassembler::new();
        let mut done = None;
        for f in &frags {
            assert!(done.is_none());
            done = r.push(f);
        }
        let restored = done.expect("complete after last fragment");
        assert_eq!(restored, pkt);
        // the reassembled packet still checksums correctly
        assert!(matches!(decode_packet(&restored).unwrap(), Decoded::Udp { .. }));
        assert_eq!(r.completed(), 1);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_fragments_still_reassemble() {
        let pkt = big_packet(6000);
        let mut frags = fragment_packet(&pkt, 1500, 7);
        frags.reverse();
        let mut r = Reassembler::new();
        let mut done = None;
        for f in &frags {
            done = done.or(r.push(f));
        }
        assert_eq!(done.expect("complete"), pkt);
    }

    #[test]
    fn duplicate_fragments_are_idempotent() {
        let pkt = big_packet(4000);
        let frags = fragment_packet(&pkt, 1500, 9);
        let mut r = Reassembler::new();
        assert!(r.push(&frags[0]).is_none());
        assert!(r.push(&frags[0]).is_none(), "duplicate ignored");
        let mut done = None;
        for f in &frags[1..] {
            done = done.or(r.push(f));
        }
        assert_eq!(done.expect("complete"), pkt);
    }

    #[test]
    fn missing_fragment_never_completes() {
        let pkt = big_packet(6000);
        let frags = fragment_packet(&pkt, 1500, 5);
        let mut r = Reassembler::new();
        for f in frags.iter().skip(1) {
            assert!(r.push(f).is_none(), "incomplete without fragment 0");
        }
        assert_eq!(r.pending(), 1);
    }

    #[test]
    fn distinct_ids_do_not_mix() {
        let a = big_packet(2000); // two fragments each at 1500 MTU
        let b = big_packet(2000);
        let fa = fragment_packet(&a, 1500, 1);
        let fb = fragment_packet(&b, 1500, 2);
        let mut r = Reassembler::new();
        r.push(&fa[0]);
        r.push(&fb[0]);
        assert_eq!(r.pending(), 2);
        assert_eq!(r.push(&fa[1]).expect("a complete"), a);
        assert_eq!(r.push(&fb[1]).expect("b complete"), b);
    }

    #[test]
    fn capacity_pressure_evicts_oldest() {
        let mut r = Reassembler::new();
        for id in 0..((Reassembler::MAX_PENDING + 3) as u32) {
            let pkt = big_packet(3000);
            let frags = fragment_packet(&pkt, 1500, id);
            r.push(&frags[0]); // first fragment only: stays pending
        }
        assert!(r.pending() <= Reassembler::MAX_PENDING + 1);
        assert!(r.evicted() >= 2);
    }

    #[test]
    fn fragments_align_to_eight_bytes_except_last() {
        let pkt = big_packet(10_000);
        for f in fragment_packet(&pkt, 1500, 3) {
            let (ip, hl) = Ipv6Header::parse(&f).unwrap();
            let (frag, _) = FragmentHeader::parse(&f[hl..]).unwrap();
            if frag.more {
                let data_len = usize::from(ip.payload_len) - FRAGMENT_HEADER_LEN;
                assert_eq!(data_len % 8, 0);
            }
        }
    }

    /// Hand-builds a fragment packet with arbitrary offset/length — the
    /// raw material for overlap and resource-exhaustion attacks that
    /// `fragment_packet` itself can never produce.
    fn raw_fragment(id: u32, offset: u32, data_len: usize, more: bool) -> Vec<u8> {
        let frag = FragmentHeader { next_header: 17, offset, more, id };
        let hdr = Ipv6Header {
            next_header: NextHeader::Other(FRAGMENT_NEXT_HEADER),
            payload_len: (FRAGMENT_HEADER_LEN + data_len) as u16,
            ..Ipv6Header::parse(&big_packet(16)).unwrap().0
        };
        let mut pkt = Vec::with_capacity(IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN + data_len);
        hdr.encode(&mut pkt);
        frag.encode(&mut pkt);
        pkt.extend(std::iter::repeat_n(0xcc, data_len));
        pkt
    }

    #[test]
    fn overlapping_fragment_blocks_completion_without_corruption() {
        let pkt = big_packet(4000);
        let frags = fragment_packet(&pkt, 1500, 11);
        let mut r = Reassembler::new();
        assert!(r.push(&frags[0]).is_none());
        // attacker injects a fragment overlapping the first chunk's range
        assert!(r.push(&raw_fragment(11, 8, 64, true)).is_none());
        // the genuine remainder can no longer contiguously cover the
        // payload: the packet must never complete (and never emerge
        // with the overlap spliced in)
        for f in &frags[1..] {
            assert!(r.push(f).is_none(), "overlapped packet must not complete");
        }
        assert_eq!(r.completed(), 0);
        assert_eq!(r.pending(), 1, "held until eviction, not delivered");
    }

    #[test]
    fn oversize_reassembly_is_evicted_at_byte_limit() {
        let mut r = Reassembler::new();
        let per = 60_000usize;
        let needed = Reassembler::MAX_BYTES / per + 1;
        for i in 0..=needed {
            let evicted_before = r.evicted();
            assert!(r.push(&raw_fragment(99, (i as u32) * 8, per, true)).is_none());
            if r.evicted() > evicted_before {
                assert_eq!(r.pending(), 0, "oversize partial dropped outright");
                return;
            }
        }
        panic!("byte limit never triggered after {} fragments of {per} bytes", needed + 1);
    }

    #[test]
    fn exact_mtu_passes_one_over_fragments() {
        let mtu = 1500;
        // build_udp_packet: 40-byte IPv6 + 8-byte UDP around the payload
        let at = big_packet(mtu - IPV6_HEADER_LEN - 8);
        assert_eq!(at.len(), mtu);
        assert_eq!(fragment_packet(&at, mtu, 1).len(), 1, "exactly MTU rides whole");
        let over = big_packet(mtu - IPV6_HEADER_LEN - 8 + 1);
        let frags = fragment_packet(&over, mtu, 2);
        assert_eq!(frags.len(), 2, "one byte over splits");
        let mut r = Reassembler::new();
        assert!(r.push(&frags[0]).is_none());
        assert_eq!(r.push(&frags[1]).expect("complete"), over);
    }

    #[test]
    fn smallest_legal_mtu_still_fragments() {
        // 40 + 8 + 8 = just room for one 8-byte unit per fragment
        let pkt = big_packet(64);
        let mtu = IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN + 8;
        let frags = fragment_packet(&pkt, mtu, 4);
        assert!(frags.iter().all(|f| f.len() <= mtu));
        let mut r = Reassembler::new();
        let mut done = None;
        for f in &frags {
            done = done.or(r.push(f));
        }
        assert_eq!(done.expect("complete"), pkt);
    }

    #[test]
    #[should_panic(expected = "no room")]
    fn mtu_below_fragment_floor_panics() {
        let pkt = big_packet(200);
        fragment_packet(&pkt, IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN + 7, 1);
    }
}
