//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! `std`'s default `SipHash` is DoS-resistant but costs ~1–2 ns per
//! word and seeds itself randomly per process, which (a) is wasted
//! strength inside a closed simulation that hashes nothing
//! attacker-controlled, and (b) makes `HashMap` iteration order vary
//! run to run. This is the classic FxHash mix (rotate, xor, multiply
//! by a golden-ratio-derived odd constant) as used by rustc: one
//! multiply per word, zero seeding, identical layout every run — so
//! demux tables and QP maps hash in a handful of cycles and iterate
//! deterministically.
//!
//! Not for untrusted keys; every key in this workspace is
//! simulator-generated (ports, connection ids, QP numbers, endpoint
//! pairs).

use std::hash::{BuildHasher, Hasher};

/// The FxHash multiplier: an odd constant derived from the golden
/// ratio (same value rustc uses for 64-bit hashes).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash streaming state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while let Some((chunk, tail)) = rest.split_first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            rest = tail;
        }
        if let Some((chunk, tail)) = rest.split_first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            rest = tail;
        }
        if let Some((chunk, tail)) = rest.split_first_chunk::<2>() {
            self.add(u64::from(u16::from_le_bytes(*chunk)));
            rest = tail;
        }
        if let [b] = rest {
            self.add(u64::from(*b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Zero-state `BuildHasher` for [`FxHasher`] (no per-map seed, so maps
/// are identical across runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed through [`FxHasher`]. Construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u16, 2u16)), hash_of(&(2u16, 1u16)));
    }

    #[test]
    fn byte_stream_matches_itself_across_split_sizes() {
        // write() must consume 8/4/2/1-byte tails consistently
        for len in 0..=17 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut a = FxHasher::default();
            a.write(&bytes);
            let mut b = FxHasher::default();
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish());
        }
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[3, 2, 1]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_iteration_order_is_stable() {
        let build = || {
            let mut m = FxHashMap::default();
            for i in 0..1000u32 {
                m.insert(i, i * 2);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
