//! Whole-packet encoding and decoding: transport segment + IPv6 header,
//! checksums computed and verified exactly as the wire would carry them.
//!
//! The encode path is zero-copy: the payload is written once into a
//! [`Packet`] with headroom and each header is prepended in place
//! ([`Packet::prepend_space`] + the `encode_into` slice encoders), so a
//! full IPv6+TCP/UDP packet costs one allocation and no payload moves.
//! The decode path borrows: [`Decoded`] carries `&[u8]` views into the
//! received buffer instead of copied vectors.

use std::net::Ipv6Addr;

use qpip_wire::checksum::{transport_checksum, verify_transport_checksum};
use qpip_wire::error::ParseWireError;
use qpip_wire::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use qpip_wire::packet::{Packet, HEADROOM};
use qpip_wire::tcp::TcpHeader;
use qpip_wire::udp::{UdpHeader, UDP_HEADER_LEN};

use crate::tcp::SegmentOut;
use crate::types::Endpoint;

/// A fully decoded incoming packet. Payloads are borrowed views into
/// the receive buffer — copying (if any) happens at delivery, not here.
#[derive(Debug)]
pub enum Decoded<'a> {
    /// A TCP segment.
    Tcp {
        /// The IPv6 header.
        ip: Ipv6Header,
        /// The TCP header.
        tcp: TcpHeader,
        /// Segment payload.
        payload: &'a [u8],
    },
    /// A UDP datagram.
    Udp {
        /// The IPv6 header.
        ip: Ipv6Header,
        /// The UDP header.
        udp: UdpHeader,
        /// Datagram payload.
        payload: &'a [u8],
    },
    /// An upper-layer protocol we do not implement.
    Other {
        /// The IPv6 header.
        ip: Ipv6Header,
    },
}

/// Builds a complete IPv6+UDP packet with a valid checksum.
///
/// # Panics
///
/// Panics if the datagram exceeds 65 535 bytes (callers segment to the
/// fabric MTU well below that).
pub fn build_udp_packet(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Packet {
    let udp = UdpHeader::for_payload(src.port, dst.port, payload.len());
    let mut pkt = Packet::with_headroom(payload, HEADROOM);
    udp.encode_into(pkt.prepend_space(UDP_HEADER_LEN));
    let ck = transport_checksum(src.addr, dst.addr, NextHeader::Udp.code(), &pkt);
    // UDP over IPv6: a computed 0 is transmitted as 0xffff (RFC 2460 §8.1)
    let ck = if ck == 0 { 0xffff } else { ck };
    pkt[6..8].copy_from_slice(&ck.to_be_bytes());
    prepend_ipv6(&mut pkt, src.addr, dst.addr, NextHeader::Udp);
    pkt
}

/// Builds a complete IPv6+TCP packet from an abstract [`SegmentOut`].
pub fn build_tcp_packet(src: Endpoint, dst: Endpoint, seg: &SegmentOut) -> Packet {
    let hdr = TcpHeader {
        src_port: src.port,
        dst_port: dst.port,
        seq: seg.seq,
        ack: seg.ack,
        flags: seg.flags,
        window: seg.window,
        checksum: 0,
        urgent: 0,
        options: seg.options,
    };
    let mut pkt = Packet::with_headroom(&seg.payload, HEADROOM);
    hdr.encode_into(pkt.prepend_space(hdr.encoded_len()));
    let ck = transport_checksum(src.addr, dst.addr, NextHeader::Tcp.code(), &pkt);
    pkt[16..18].copy_from_slice(&ck.to_be_bytes());
    prepend_ipv6(&mut pkt, src.addr, dst.addr, NextHeader::Tcp);
    if seg.ect {
        Ipv6Header::set_ecn_in_packet(&mut pkt, qpip_wire::ipv6::Ecn::Capable);
    }
    pkt
}

/// Prepends an IPv6 header in front of the transport segment currently
/// occupying `pkt`.
fn prepend_ipv6(pkt: &mut Packet, src: Ipv6Addr, dst: Ipv6Addr, nh: NextHeader) {
    let ip = Ipv6Header::new(src, dst, nh, pkt.len() as u16);
    ip.encode_into(pkt.prepend_space(IPV6_HEADER_LEN));
}

/// Decodes and checksum-verifies a packet.
///
/// # Errors
///
/// Propagates header parse errors; returns
/// [`ParseWireError::BadChecksum`] when the transport checksum fails.
pub fn decode_packet(bytes: &[u8]) -> Result<Decoded<'_>, ParseWireError> {
    let (ip, n) = Ipv6Header::parse(bytes)?;
    let seg = &bytes[n..n + usize::from(ip.payload_len)];
    match ip.next_header {
        NextHeader::Tcp => {
            if !verify_transport_checksum(ip.src, ip.dst, NextHeader::Tcp.code(), seg) {
                return Err(ParseWireError::BadChecksum);
            }
            let (tcp, hl) = TcpHeader::parse(seg)?;
            Ok(Decoded::Tcp { ip, tcp, payload: &seg[hl..] })
        }
        NextHeader::Udp => {
            if !verify_transport_checksum(ip.src, ip.dst, NextHeader::Udp.code(), seg) {
                return Err(ParseWireError::BadChecksum);
            }
            let (udp, hl) = UdpHeader::parse(seg)?;
            Ok(Decoded::Udp { ip, udp, payload: &seg[hl..usize::from(udp.length)] })
        }
        NextHeader::Other(_) => Ok(Decoded::Other { ip }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpip_wire::tcp::{SeqNum, TcpFlags, TcpOptions};

    fn ep(last: u16, port: u16) -> Endpoint {
        Endpoint::new(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, last), port)
    }

    #[test]
    fn udp_packet_roundtrip_and_checksum() {
        let pkt = build_udp_packet(ep(1, 7000), ep(2, 8000), b"hello qp");
        match decode_packet(&pkt).unwrap() {
            Decoded::Udp { ip, udp, payload } => {
                assert_eq!(ip.src, ep(1, 0).addr);
                assert_eq!(udp.src_port, 7000);
                assert_eq!(udp.dst_port, 8000);
                assert_eq!(payload, b"hello qp");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn tcp_packet_roundtrip_and_checksum() {
        let seg = SegmentOut {
            seq: SeqNum(100),
            ack: SeqNum(200),
            flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
            window: 4096,
            options: TcpOptions { timestamps: Some((1, 2)), ..TcpOptions::default() },
            payload: b"payload bytes".to_vec(),
            kind: crate::types::PacketKind::TcpData,
            is_retransmit: false,
            ect: false,
        };
        let pkt = build_tcp_packet(ep(1, 4000), ep(2, 5000), &seg);
        match decode_packet(&pkt).unwrap() {
            Decoded::Tcp { tcp, payload, .. } => {
                assert_eq!(tcp.seq, SeqNum(100));
                assert_eq!(tcp.options.timestamps, Some((1, 2)));
                assert_eq!(payload, b"payload bytes");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn udp_zero_checksum_transmitted_as_all_ones() {
        // RFC 2460 §8.1: a computed UDP checksum of 0x0000 goes on the
        // wire as 0xffff. Brute-force a payload whose sum is zero.
        let src = ep(1, 0x0000);
        let dst = ep(2, 0x0000);
        let mut found = None;
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let payload = [a, b];
                let pkt = build_udp_packet(src, dst, &payload);
                let stored = u16::from_be_bytes([pkt[40 + 6], pkt[40 + 7]]);
                if stored == 0xffff {
                    found = Some(pkt);
                    break;
                }
            }
        }
        let pkt = found.expect("some 2-byte payload sums to zero");
        // and it still decodes + verifies
        assert!(matches!(decode_packet(&pkt).unwrap(), Decoded::Udp { .. }));
    }

    #[test]
    fn corruption_is_detected() {
        let mut pkt = build_udp_packet(ep(1, 1), ep(2, 2), b"data!");
        let last = pkt.len() - 1;
        pkt[last] ^= 0x40;
        assert!(matches!(decode_packet(&pkt), Err(ParseWireError::BadChecksum)));
    }

    #[test]
    fn unknown_next_header_is_surfaced_not_dropped() {
        let mut pkt = Packet::with_headroom(&[0u8; 4], HEADROOM);
        prepend_ipv6(&mut pkt, ep(1, 0).addr, ep(2, 0).addr, NextHeader::Other(41));
        assert!(matches!(decode_packet(&pkt).unwrap(), Decoded::Other { .. }));
    }

    #[test]
    fn headers_land_in_headroom_without_reallocation() {
        let payload = vec![0x5au8; 256];
        let pkt = build_udp_packet(ep(1, 1), ep(2, 2), &payload);
        // link framing still fits in front without a copy
        assert!(pkt.headroom() >= 8);
        assert_eq!(pkt.len(), IPV6_HEADER_LEN + UDP_HEADER_LEN + payload.len());
    }

    // ----- error paths: every malformed input is an Err, never a panic

    /// Recomputes the transport checksum after a test mutates header
    /// bytes, so the mutation reaches the parser instead of tripping
    /// the checksum verification first.
    fn reseal_checksum(pkt: &mut [u8], nh: NextHeader, at: usize) {
        let mut a = [0u8; 16];
        a.copy_from_slice(&pkt[8..24]);
        let src = Ipv6Addr::from(a);
        a.copy_from_slice(&pkt[24..40]);
        let dst = Ipv6Addr::from(a);
        pkt[IPV6_HEADER_LEN + at..IPV6_HEADER_LEN + at + 2].copy_from_slice(&[0, 0]);
        let ck = transport_checksum(src, dst, nh.code(), &pkt[IPV6_HEADER_LEN..]);
        pkt[IPV6_HEADER_LEN + at..IPV6_HEADER_LEN + at + 2].copy_from_slice(&ck.to_be_bytes());
    }

    fn tcp_packet(payload: &[u8]) -> Packet {
        let seg = SegmentOut {
            seq: SeqNum(1),
            ack: SeqNum(2),
            flags: TcpFlags { ack: true, ..TcpFlags::NONE },
            window: 1024,
            options: TcpOptions { timestamps: Some((9, 9)), ..TcpOptions::default() },
            payload: payload.to_vec(),
            kind: crate::types::PacketKind::TcpData,
            is_retransmit: false,
            ect: false,
        };
        build_tcp_packet(ep(1, 4000), ep(2, 5000), &seg)
    }

    #[test]
    fn truncated_ipv6_header_is_rejected() {
        let pkt = tcp_packet(b"data");
        for cut in [0usize, 1, 8, 39] {
            assert!(
                matches!(
                    decode_packet(&pkt[..cut]),
                    Err(ParseWireError::Truncated { needed: 40, have }) if have == cut
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn non_v6_version_is_rejected() {
        let mut bytes = tcp_packet(b"data").to_vec();
        bytes[0] = (bytes[0] & 0x0f) | 0x40;
        assert!(matches!(decode_packet(&bytes), Err(ParseWireError::BadVersion { found: 4 })));
    }

    #[test]
    fn payload_length_overrunning_buffer_is_rejected() {
        // any tail truncation leaves payload_len pointing past the end
        let pkt = tcp_packet(b"data");
        for cut in 40..pkt.len() {
            assert!(
                matches!(decode_packet(&pkt[..cut]), Err(ParseWireError::BadLength)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_tcp_header_is_rejected() {
        // a 12-byte "TCP header" with a valid checksum (the complement
        // stored in an aligned zero slot keeps the sum verifiable) so
        // the failure is the parser's, not the checksum check's
        let mut pkt = Packet::with_headroom(&[0u8; 12], HEADROOM);
        prepend_ipv6(&mut pkt, ep(1, 0).addr, ep(2, 0).addr, NextHeader::Tcp);
        reseal_checksum(&mut pkt, NextHeader::Tcp, 8);
        assert!(matches!(
            decode_packet(&pkt),
            Err(ParseWireError::Truncated { needed: 20, have: 12 })
        ));
    }

    #[test]
    fn illegal_tcp_data_offset_is_rejected() {
        // below the 20-byte floor and beyond the segment both fail
        for nibble in [3u8, 0xf] {
            let mut bytes = tcp_packet(b"x").to_vec();
            bytes[IPV6_HEADER_LEN + 12] = nibble << 4;
            reseal_checksum(&mut bytes, NextHeader::Tcp, 16);
            assert!(
                matches!(decode_packet(&bytes), Err(ParseWireError::BadLength)),
                "data offset nibble {nibble}"
            );
        }
    }

    #[test]
    fn malformed_tcp_option_is_rejected() {
        // first option byte: kind 8 (timestamps) with impossible len 1
        let mut bytes = tcp_packet(b"x").to_vec();
        bytes[IPV6_HEADER_LEN + 20] = 8;
        bytes[IPV6_HEADER_LEN + 21] = 1;
        reseal_checksum(&mut bytes, NextHeader::Tcp, 16);
        assert!(matches!(decode_packet(&bytes), Err(ParseWireError::BadOption)));
    }

    #[test]
    fn corrupted_tcp_payload_fails_checksum() {
        let mut bytes = tcp_packet(b"payload").to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(decode_packet(&bytes), Err(ParseWireError::BadChecksum)));
    }

    #[test]
    fn truncated_udp_header_is_rejected() {
        let mut pkt = Packet::with_headroom(&[0u8; 6], HEADROOM);
        prepend_ipv6(&mut pkt, ep(1, 0).addr, ep(2, 0).addr, NextHeader::Udp);
        reseal_checksum(&mut pkt, NextHeader::Udp, 0);
        assert!(matches!(
            decode_packet(&pkt),
            Err(ParseWireError::Truncated { needed: 8, have: 6 })
        ));
    }

    #[test]
    fn udp_length_field_beyond_datagram_is_rejected() {
        let mut bytes = build_udp_packet(ep(1, 1), ep(2, 2), b"four").to_vec();
        // claim 100 bytes in a 12-byte datagram
        bytes[IPV6_HEADER_LEN + 4..IPV6_HEADER_LEN + 6].copy_from_slice(&100u16.to_be_bytes());
        reseal_checksum(&mut bytes, NextHeader::Udp, 6);
        assert!(matches!(decode_packet(&bytes), Err(ParseWireError::BadLength)));
    }

    #[test]
    fn udp_length_field_below_header_floor_is_rejected() {
        let mut bytes = build_udp_packet(ep(1, 1), ep(2, 2), b"four").to_vec();
        bytes[IPV6_HEADER_LEN + 4..IPV6_HEADER_LEN + 6].copy_from_slice(&7u16.to_be_bytes());
        reseal_checksum(&mut bytes, NextHeader::Udp, 6);
        assert!(matches!(decode_packet(&bytes), Err(ParseWireError::BadLength)));
    }
}
