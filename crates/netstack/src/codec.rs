//! Whole-packet encoding and decoding: transport segment + IPv6 header,
//! checksums computed and verified exactly as the wire would carry them.
//!
//! The encode path is zero-copy: the payload is written once into a
//! [`Packet`] with headroom and each header is prepended in place
//! ([`Packet::prepend_space`] + the `encode_into` slice encoders), so a
//! full IPv6+TCP/UDP packet costs one allocation and no payload moves.
//! The decode path borrows: [`Decoded`] carries `&[u8]` views into the
//! received buffer instead of copied vectors.

use std::net::Ipv6Addr;

use qpip_wire::checksum::{transport_checksum, verify_transport_checksum};
use qpip_wire::error::ParseWireError;
use qpip_wire::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use qpip_wire::packet::{Packet, HEADROOM};
use qpip_wire::tcp::TcpHeader;
use qpip_wire::udp::{UdpHeader, UDP_HEADER_LEN};

use crate::tcp::SegmentOut;
use crate::types::Endpoint;

/// A fully decoded incoming packet. Payloads are borrowed views into
/// the receive buffer — copying (if any) happens at delivery, not here.
#[derive(Debug)]
pub enum Decoded<'a> {
    /// A TCP segment.
    Tcp {
        /// The IPv6 header.
        ip: Ipv6Header,
        /// The TCP header.
        tcp: TcpHeader,
        /// Segment payload.
        payload: &'a [u8],
    },
    /// A UDP datagram.
    Udp {
        /// The IPv6 header.
        ip: Ipv6Header,
        /// The UDP header.
        udp: UdpHeader,
        /// Datagram payload.
        payload: &'a [u8],
    },
    /// An upper-layer protocol we do not implement.
    Other {
        /// The IPv6 header.
        ip: Ipv6Header,
    },
}

/// Builds a complete IPv6+UDP packet with a valid checksum.
///
/// # Panics
///
/// Panics if the datagram exceeds 65 535 bytes (callers segment to the
/// fabric MTU well below that).
pub fn build_udp_packet(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Packet {
    let udp = UdpHeader::for_payload(src.port, dst.port, payload.len());
    let mut pkt = Packet::with_headroom(payload, HEADROOM);
    udp.encode_into(pkt.prepend_space(UDP_HEADER_LEN));
    let ck = transport_checksum(src.addr, dst.addr, NextHeader::Udp.code(), &pkt);
    // UDP over IPv6: a computed 0 is transmitted as 0xffff (RFC 2460 §8.1)
    let ck = if ck == 0 { 0xffff } else { ck };
    pkt[6..8].copy_from_slice(&ck.to_be_bytes());
    prepend_ipv6(&mut pkt, src.addr, dst.addr, NextHeader::Udp);
    pkt
}

/// Builds a complete IPv6+TCP packet from an abstract [`SegmentOut`].
pub fn build_tcp_packet(src: Endpoint, dst: Endpoint, seg: &SegmentOut) -> Packet {
    let hdr = TcpHeader {
        src_port: src.port,
        dst_port: dst.port,
        seq: seg.seq,
        ack: seg.ack,
        flags: seg.flags,
        window: seg.window,
        checksum: 0,
        urgent: 0,
        options: seg.options,
    };
    let mut pkt = Packet::with_headroom(&seg.payload, HEADROOM);
    hdr.encode_into(pkt.prepend_space(hdr.encoded_len()));
    let ck = transport_checksum(src.addr, dst.addr, NextHeader::Tcp.code(), &pkt);
    pkt[16..18].copy_from_slice(&ck.to_be_bytes());
    prepend_ipv6(&mut pkt, src.addr, dst.addr, NextHeader::Tcp);
    if seg.ect {
        Ipv6Header::set_ecn_in_packet(&mut pkt, qpip_wire::ipv6::Ecn::Capable);
    }
    pkt
}

/// Prepends an IPv6 header in front of the transport segment currently
/// occupying `pkt`.
fn prepend_ipv6(pkt: &mut Packet, src: Ipv6Addr, dst: Ipv6Addr, nh: NextHeader) {
    let ip = Ipv6Header::new(src, dst, nh, pkt.len() as u16);
    ip.encode_into(pkt.prepend_space(IPV6_HEADER_LEN));
}

/// Decodes and checksum-verifies a packet.
///
/// # Errors
///
/// Propagates header parse errors; returns
/// [`ParseWireError::BadChecksum`] when the transport checksum fails.
pub fn decode_packet(bytes: &[u8]) -> Result<Decoded<'_>, ParseWireError> {
    let (ip, n) = Ipv6Header::parse(bytes)?;
    let seg = &bytes[n..n + usize::from(ip.payload_len)];
    match ip.next_header {
        NextHeader::Tcp => {
            if !verify_transport_checksum(ip.src, ip.dst, NextHeader::Tcp.code(), seg) {
                return Err(ParseWireError::BadChecksum);
            }
            let (tcp, hl) = TcpHeader::parse(seg)?;
            Ok(Decoded::Tcp { ip, tcp, payload: &seg[hl..] })
        }
        NextHeader::Udp => {
            if !verify_transport_checksum(ip.src, ip.dst, NextHeader::Udp.code(), seg) {
                return Err(ParseWireError::BadChecksum);
            }
            let (udp, hl) = UdpHeader::parse(seg)?;
            Ok(Decoded::Udp { ip, udp, payload: &seg[hl..usize::from(udp.length)] })
        }
        NextHeader::Other(_) => Ok(Decoded::Other { ip }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpip_wire::tcp::{SeqNum, TcpFlags, TcpOptions};

    fn ep(last: u16, port: u16) -> Endpoint {
        Endpoint::new(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, last), port)
    }

    #[test]
    fn udp_packet_roundtrip_and_checksum() {
        let pkt = build_udp_packet(ep(1, 7000), ep(2, 8000), b"hello qp");
        match decode_packet(&pkt).unwrap() {
            Decoded::Udp { ip, udp, payload } => {
                assert_eq!(ip.src, ep(1, 0).addr);
                assert_eq!(udp.src_port, 7000);
                assert_eq!(udp.dst_port, 8000);
                assert_eq!(payload, b"hello qp");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn tcp_packet_roundtrip_and_checksum() {
        let seg = SegmentOut {
            seq: SeqNum(100),
            ack: SeqNum(200),
            flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
            window: 4096,
            options: TcpOptions { timestamps: Some((1, 2)), ..TcpOptions::default() },
            payload: b"payload bytes".to_vec(),
            kind: crate::types::PacketKind::TcpData,
            is_retransmit: false,
            ect: false,
        };
        let pkt = build_tcp_packet(ep(1, 4000), ep(2, 5000), &seg);
        match decode_packet(&pkt).unwrap() {
            Decoded::Tcp { tcp, payload, .. } => {
                assert_eq!(tcp.seq, SeqNum(100));
                assert_eq!(tcp.options.timestamps, Some((1, 2)));
                assert_eq!(payload, b"payload bytes");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn udp_zero_checksum_transmitted_as_all_ones() {
        // RFC 2460 §8.1: a computed UDP checksum of 0x0000 goes on the
        // wire as 0xffff. Brute-force a payload whose sum is zero.
        let src = ep(1, 0x0000);
        let dst = ep(2, 0x0000);
        let mut found = None;
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let payload = [a, b];
                let pkt = build_udp_packet(src, dst, &payload);
                let stored = u16::from_be_bytes([pkt[40 + 6], pkt[40 + 7]]);
                if stored == 0xffff {
                    found = Some(pkt);
                    break;
                }
            }
        }
        let pkt = found.expect("some 2-byte payload sums to zero");
        // and it still decodes + verifies
        assert!(matches!(decode_packet(&pkt).unwrap(), Decoded::Udp { .. }));
    }

    #[test]
    fn corruption_is_detected() {
        let mut pkt = build_udp_packet(ep(1, 1), ep(2, 2), b"data!");
        let last = pkt.len() - 1;
        pkt[last] ^= 0x40;
        assert!(matches!(decode_packet(&pkt), Err(ParseWireError::BadChecksum)));
    }

    #[test]
    fn unknown_next_header_is_surfaced_not_dropped() {
        let mut pkt = Packet::with_headroom(&[0u8; 4], HEADROOM);
        prepend_ipv6(&mut pkt, ep(1, 0).addr, ep(2, 0).addr, NextHeader::Other(41));
        assert!(matches!(decode_packet(&pkt).unwrap(), Decoded::Other { .. }));
    }

    #[test]
    fn headers_land_in_headroom_without_reallocation() {
        let payload = vec![0x5au8; 256];
        let pkt = build_udp_packet(ep(1, 1), ep(2, 2), &payload);
        // link framing still fits in front without a copy
        assert!(pkt.headroom() >= 8);
        assert_eq!(pkt.len(), IPV6_HEADER_LEN + UDP_HEADER_LEN + payload.len());
    }
}
