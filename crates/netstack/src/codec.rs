//! Whole-packet encoding and decoding: transport segment + IPv6 header,
//! checksums computed and verified exactly as the wire would carry them.

use std::net::Ipv6Addr;

use qpip_wire::checksum::{transport_checksum, verify_transport_checksum};
use qpip_wire::error::ParseWireError;
use qpip_wire::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use qpip_wire::tcp::TcpHeader;
use qpip_wire::udp::{UdpHeader, UDP_HEADER_LEN};

use crate::tcp::SegmentOut;
use crate::types::Endpoint;

/// A fully decoded incoming packet.
#[derive(Debug)]
pub enum Decoded {
    /// A TCP segment.
    Tcp {
        /// The IPv6 header.
        ip: Ipv6Header,
        /// The TCP header.
        tcp: TcpHeader,
        /// Segment payload.
        payload: Vec<u8>,
    },
    /// A UDP datagram.
    Udp {
        /// The IPv6 header.
        ip: Ipv6Header,
        /// The UDP header.
        udp: UdpHeader,
        /// Datagram payload.
        payload: Vec<u8>,
    },
    /// An upper-layer protocol we do not implement.
    Other {
        /// The IPv6 header.
        ip: Ipv6Header,
    },
}

/// Builds a complete IPv6+UDP packet with a valid checksum.
///
/// # Panics
///
/// Panics if the datagram exceeds 65 535 bytes (callers segment to the
/// fabric MTU well below that).
pub fn build_udp_packet(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Vec<u8> {
    let udp = UdpHeader::for_payload(src.port, dst.port, payload.len());
    let mut seg = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
    udp.encode(&mut seg);
    seg.extend_from_slice(payload);
    let ck = transport_checksum(src.addr, dst.addr, NextHeader::Udp.code(), &seg);
    // UDP over IPv6: a computed 0 is transmitted as 0xffff (RFC 2460 §8.1)
    let ck = if ck == 0 { 0xffff } else { ck };
    seg[6..8].copy_from_slice(&ck.to_be_bytes());
    wrap_ipv6(src.addr, dst.addr, NextHeader::Udp, seg)
}

/// Builds a complete IPv6+TCP packet from an abstract [`SegmentOut`].
pub fn build_tcp_packet(src: Endpoint, dst: Endpoint, seg: &SegmentOut) -> Vec<u8> {
    let hdr = TcpHeader {
        src_port: src.port,
        dst_port: dst.port,
        seq: seg.seq,
        ack: seg.ack,
        flags: seg.flags,
        window: seg.window,
        checksum: 0,
        urgent: 0,
        options: seg.options,
    };
    let mut bytes = Vec::with_capacity(hdr.encoded_len() + seg.payload.len());
    hdr.encode(&mut bytes);
    bytes.extend_from_slice(&seg.payload);
    let ck = transport_checksum(src.addr, dst.addr, NextHeader::Tcp.code(), &bytes);
    bytes[16..18].copy_from_slice(&ck.to_be_bytes());
    let mut pkt = wrap_ipv6(src.addr, dst.addr, NextHeader::Tcp, bytes);
    if seg.ect {
        qpip_wire::ipv6::Ipv6Header::set_ecn_in_packet(&mut pkt, qpip_wire::ipv6::Ecn::Capable);
    }
    pkt
}

fn wrap_ipv6(src: Ipv6Addr, dst: Ipv6Addr, nh: NextHeader, transport: Vec<u8>) -> Vec<u8> {
    let ip = Ipv6Header::new(src, dst, nh, transport.len() as u16);
    let mut pkt = Vec::with_capacity(IPV6_HEADER_LEN + transport.len());
    ip.encode(&mut pkt);
    pkt.extend_from_slice(&transport);
    pkt
}

/// Decodes and checksum-verifies a packet.
///
/// # Errors
///
/// Propagates header parse errors; returns
/// [`ParseWireError::BadChecksum`] when the transport checksum fails.
pub fn decode_packet(bytes: &[u8]) -> Result<Decoded, ParseWireError> {
    let (ip, n) = Ipv6Header::parse(bytes)?;
    let seg = &bytes[n..n + usize::from(ip.payload_len)];
    match ip.next_header {
        NextHeader::Tcp => {
            if !verify_transport_checksum(ip.src, ip.dst, NextHeader::Tcp.code(), seg) {
                return Err(ParseWireError::BadChecksum);
            }
            let (tcp, hl) = TcpHeader::parse(seg)?;
            Ok(Decoded::Tcp { ip, tcp, payload: seg[hl..].to_vec() })
        }
        NextHeader::Udp => {
            if !verify_transport_checksum(ip.src, ip.dst, NextHeader::Udp.code(), seg) {
                return Err(ParseWireError::BadChecksum);
            }
            let (udp, hl) = UdpHeader::parse(seg)?;
            Ok(Decoded::Udp {
                ip,
                udp,
                payload: seg[hl..usize::from(udp.length)].to_vec(),
            })
        }
        NextHeader::Other(_) => Ok(Decoded::Other { ip }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpip_wire::tcp::{SeqNum, TcpFlags, TcpOptions};

    fn ep(last: u16, port: u16) -> Endpoint {
        Endpoint::new(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, last), port)
    }

    #[test]
    fn udp_packet_roundtrip_and_checksum() {
        let pkt = build_udp_packet(ep(1, 7000), ep(2, 8000), b"hello qp");
        match decode_packet(&pkt).unwrap() {
            Decoded::Udp { ip, udp, payload } => {
                assert_eq!(ip.src, ep(1, 0).addr);
                assert_eq!(udp.src_port, 7000);
                assert_eq!(udp.dst_port, 8000);
                assert_eq!(payload, b"hello qp");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn tcp_packet_roundtrip_and_checksum() {
        let seg = SegmentOut {
            seq: SeqNum(100),
            ack: SeqNum(200),
            flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
            window: 4096,
            options: TcpOptions { timestamps: Some((1, 2)), ..TcpOptions::default() },
            payload: b"payload bytes".to_vec(),
            kind: crate::types::PacketKind::TcpData,
            is_retransmit: false,
            ect: false,
        };
        let pkt = build_tcp_packet(ep(1, 4000), ep(2, 5000), &seg);
        match decode_packet(&pkt).unwrap() {
            Decoded::Tcp { tcp, payload, .. } => {
                assert_eq!(tcp.seq, SeqNum(100));
                assert_eq!(tcp.options.timestamps, Some((1, 2)));
                assert_eq!(payload, b"payload bytes");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn udp_zero_checksum_transmitted_as_all_ones() {
        // RFC 2460 §8.1: a computed UDP checksum of 0x0000 goes on the
        // wire as 0xffff. Brute-force a payload whose sum is zero.
        let src = ep(1, 0x0000);
        let dst = ep(2, 0x0000);
        let mut found = None;
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let payload = [a, b];
                let pkt = build_udp_packet(src, dst, &payload);
                let stored = u16::from_be_bytes([pkt[40 + 6], pkt[40 + 7]]);
                if stored == 0xffff {
                    found = Some(pkt);
                    break;
                }
            }
        }
        let pkt = found.expect("some 2-byte payload sums to zero");
        // and it still decodes + verifies
        assert!(matches!(decode_packet(&pkt).unwrap(), Decoded::Udp { .. }));
    }

    #[test]
    fn corruption_is_detected() {
        let mut pkt = build_udp_packet(ep(1, 1), ep(2, 2), b"data!");
        let last = pkt.len() - 1;
        pkt[last] ^= 0x40;
        assert!(matches!(
            decode_packet(&pkt),
            Err(ParseWireError::BadChecksum)
        ));
    }

    #[test]
    fn unknown_next_header_is_surfaced_not_dropped() {
        let pkt = wrap_ipv6(
            ep(1, 0).addr,
            ep(2, 0).addr,
            NextHeader::Other(41),
            vec![0u8; 4],
        );
        assert!(matches!(decode_packet(&pkt).unwrap(), Decoded::Other { .. }));
    }
}
