//! Congestion control: Reno slow start, congestion avoidance, fast
//! retransmit and fast recovery (§4.1: "The TCP stack implements …
//! congestion and flow control mechanisms").

use crate::types::OpCounters;

/// Number of duplicate ACKs that trigger fast retransmit.
pub const DUP_ACK_THRESHOLD: u32 = 3;

/// Reno congestion-control state for one connection.
#[derive(Debug, Clone)]
pub struct Congestion {
    /// Congestion window in bytes.
    cwnd: u64,
    /// Slow-start threshold in bytes.
    ssthresh: u64,
    /// Sender maximum segment size in bytes.
    mss: u64,
    /// Consecutive duplicate ACKs observed.
    dup_acks: u32,
    /// In fast recovery until an ACK advances past `recover`.
    in_recovery: bool,
    /// Bytes-acked accumulator for congestion avoidance.
    avoid_acc: u64,
}

impl Congestion {
    /// Creates state for a connection with the given MSS and initial
    /// window (in segments).
    pub fn new(mss: usize, initial_cwnd_segments: u32) -> Self {
        let mss = mss.max(1) as u64;
        Congestion {
            cwnd: mss * u64::from(initial_cwnd_segments.max(1)),
            ssthresh: u64::MAX / 2,
            mss,
            dup_acks: 0,
            in_recovery: false,
            avoid_acc: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Duplicate-ACK count.
    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// Whether fast recovery is in progress.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Called when an ACK advances `snd_una` by `acked` bytes.
    pub fn on_ack(&mut self, acked: u64, ops: &mut OpCounters) {
        self.dup_acks = 0;
        if self.in_recovery {
            // leaving recovery: deflate to ssthresh
            self.in_recovery = false;
            self.cwnd = self.ssthresh.max(self.mss);
        }
        if self.in_slow_start() {
            self.cwnd += acked.min(self.mss);
        } else {
            // cwnd += mss*mss/cwnd per ACK: one multiply + one divide —
            // charged to the multiply budget on the LANai.
            ops.muls += 2;
            self.avoid_acc += self.mss * self.mss / self.cwnd.max(1);
            if self.avoid_acc >= self.mss {
                self.avoid_acc -= self.mss;
                self.cwnd += self.mss;
            }
        }
    }

    /// Called for each duplicate ACK; returns `true` exactly when the
    /// duplicate threshold is crossed and the caller must fast-retransmit.
    pub fn on_dup_ack(&mut self) -> bool {
        self.dup_acks += 1;
        if self.dup_acks == DUP_ACK_THRESHOLD && !self.in_recovery {
            // halve and inflate (Reno)
            self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
            self.cwnd = self.ssthresh + u64::from(DUP_ACK_THRESHOLD) * self.mss;
            self.in_recovery = true;
            true
        } else if self.in_recovery {
            // window inflation during recovery
            self.cwnd += self.mss;
            false
        } else {
            false
        }
    }

    /// Called when an ECN-Echo arrives (RFC 3168): halve the window as
    /// for a loss, but with nothing to retransmit.
    pub fn on_ecn(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.avoid_acc = 0;
    }

    /// Called when the retransmission timer fires: collapse to one
    /// segment and restart slow start.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.avoid_acc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1460;

    fn ops() -> OpCounters {
        OpCounters::new()
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Congestion::new(MSS, 2);
        assert!(c.in_slow_start());
        let start = c.cwnd();
        // a full window of ACKs in slow start roughly doubles cwnd
        let acks = start / MSS as u64;
        let mut o = ops();
        for _ in 0..acks {
            c.on_ack(MSS as u64, &mut o);
        }
        assert_eq!(c.cwnd(), start + acks * MSS as u64);
        assert_eq!(o.muls, 0, "no multiplies in slow start");
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut c = Congestion::new(MSS, 2);
        let mut o = ops();
        // force out of slow start
        c.on_dup_ack();
        c.on_dup_ack();
        assert!(c.on_dup_ack()); // fast retransmit at 3 dups
        c.on_ack(MSS as u64, &mut o); // exit recovery
        assert!(!c.in_slow_start());
        let w = c.cwnd();
        let acks_per_rtt = w / MSS as u64;
        for _ in 0..acks_per_rtt {
            c.on_ack(MSS as u64, &mut o);
        }
        // one RTT of ACKs in avoidance grows cwnd by about one MSS
        let grown = c.cwnd() - w;
        assert!(grown <= 2 * MSS as u64 && grown >= MSS as u64 / 2, "{grown}");
        assert!(o.muls > 0, "avoidance charges multiplies");
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit_once() {
        let mut c = Congestion::new(MSS, 10);
        let before = c.cwnd();
        assert!(!c.on_dup_ack());
        assert!(!c.on_dup_ack());
        assert!(c.on_dup_ack());
        assert!(c.in_recovery());
        assert_eq!(c.ssthresh(), before / 2);
        // further dups only inflate
        assert!(!c.on_dup_ack());
        assert_eq!(c.cwnd(), before / 2 + 4 * MSS as u64);
    }

    #[test]
    fn ack_after_recovery_deflates_to_ssthresh() {
        let mut c = Congestion::new(MSS, 10);
        for _ in 0..3 {
            c.on_dup_ack();
        }
        let ss = c.ssthresh();
        let mut o = ops();
        c.on_ack(MSS as u64, &mut o);
        assert!(!c.in_recovery());
        assert!(c.cwnd() <= ss + MSS as u64);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut c = Congestion::new(MSS, 10);
        let before = c.cwnd();
        c.on_timeout();
        assert_eq!(c.cwnd(), MSS as u64);
        assert_eq!(c.ssthresh(), before / 2);
        assert!(c.in_slow_start());
    }

    #[test]
    fn ecn_halves_without_recovery_state() {
        let mut c = Congestion::new(MSS, 10);
        let before = c.cwnd();
        c.on_ecn();
        assert_eq!(c.cwnd(), before / 2);
        assert_eq!(c.ssthresh(), before / 2);
        assert!(!c.in_recovery());
        assert!(!c.in_slow_start());
    }

    #[test]
    fn ssthresh_never_below_two_mss() {
        let mut c = Congestion::new(MSS, 1);
        c.on_timeout();
        c.on_timeout();
        assert_eq!(c.ssthresh(), 2 * MSS as u64);
    }

    #[test]
    fn ack_resets_dup_counter() {
        let mut c = Congestion::new(MSS, 4);
        c.on_dup_ack();
        c.on_dup_ack();
        c.on_ack(MSS as u64, &mut ops());
        assert_eq!(c.dup_acks(), 0);
        // threshold must be reached afresh
        assert!(!c.on_dup_ack());
        assert!(!c.on_dup_ack());
        assert!(c.on_dup_ack());
    }
}
