//! The TCP transmission control block and its state machine.
//!
//! This is the protocol engine that the QPIP firmware embeds in its QP
//! state table (Figure 1: "A common data structure … includes the
//! inter-network protocol specific information, namely the TCP
//! transmission control block"). It implements the prototype's subset
//! (§4.1): RFC 793 connection management, RTT estimation, window
//! management, congestion and flow control, RFC 1323 timestamps and
//! window scaling, and header prediction. Out-of-order reassembly and
//! urgent data are intentionally absent, as in the paper: out-of-order
//! segments are dropped and re-acknowledged.

use qpip_sim::time::{SimDuration, SimTime};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};

use super::congestion::Congestion;
use super::rtt::RttEstimator;
use super::sendbuf::SendBuffer;
use crate::types::{Endpoint, NetConfig, OpCounters, PacketKind, SegmentationPolicy, SendToken};

/// Connection states (RFC 793; LISTEN lives in the engine's listener
/// table, not in a TCB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Active open sent a SYN.
    SynSent,
    /// Passive open sent a SYN-ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, awaiting its ACK.
    FinWait1,
    /// Our FIN is acknowledged; awaiting the peer's FIN.
    FinWait2,
    /// Both sides closed simultaneously.
    Closing,
    /// Final 2×MSL quarantine.
    TimeWait,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Peer closed, then we closed; awaiting ACK of our FIN.
    LastAck,
    /// Fully closed; the TCB can be reaped.
    Closed,
}

/// Time spent in TIME-WAIT (2 × MSL; scaled for the SAN environment).
const TIME_WAIT_DURATION: SimDuration = SimDuration::from_millis(50);

/// Give up after this many consecutive retransmissions of one segment.
const MAX_RETRIES: u32 = 15;

/// A protocol event surfaced to the engine.
#[derive(Debug, PartialEq, Eq)]
pub enum TcbEvent {
    /// Handshake completed; the connection is usable.
    Established,
    /// In-order payload (one event per segment in message mode).
    Delivered(Vec<u8>),
    /// A send unit is fully acknowledged.
    SendComplete(SendToken),
    /// The peer's FIN arrived in order.
    PeerClosed,
    /// The connection reached CLOSED gracefully.
    Closed,
    /// The connection was reset (by the peer or by retry exhaustion).
    Reset,
}

/// An outgoing segment described abstractly; the engine encodes it into
/// wire bytes (it knows the IP addresses and computes checksums).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentOut {
    /// Sequence number.
    pub seq: SeqNum,
    /// Acknowledgment number.
    pub ack: SeqNum,
    /// Flags.
    pub flags: TcpFlags,
    /// Window field (already scaled down for the wire).
    pub window: u16,
    /// Options to carry.
    pub options: TcpOptions,
    /// Payload.
    pub payload: Vec<u8>,
    /// Cost-model classification.
    pub kind: PacketKind,
    /// True when this transmission is a retransmission.
    pub is_retransmit: bool,
    /// Mark the IP packet ECN-capable (data segments on negotiated-ECN
    /// connections, RFC 3168).
    pub ect: bool,
}

/// The transmission control block for one connection.
#[derive(Debug)]
pub struct Tcb {
    state: TcpState,
    local: Endpoint,
    remote: Endpoint,

    // --- send side ---
    iss: SeqNum,
    sendbuf: SendBuffer,
    /// Peer receive window in bytes (already scaled).
    snd_wnd: u64,
    /// Segment/ack that last updated `snd_wnd` (RFC 793 WL1/WL2).
    snd_wl1: SeqNum,
    snd_wl2: SeqNum,
    /// Shift the peer asked us to apply to its window field.
    snd_wscale: u8,
    /// Peer's MSS from its SYN.
    peer_mss: usize,
    congestion: Congestion,
    rtt: RttEstimator,
    /// FIN requested by the application.
    fin_queued: bool,
    /// FIN transmitted (consumes sequence number `sendbuf.end()`).
    fin_sent: bool,
    /// Our FIN's sequence number, once sent.
    fin_seq: SeqNum,
    /// The peer acknowledged our FIN. Latched here because `sendbuf`'s
    /// `una` only covers buffered data and can never advance over the
    /// FIN's sequence slot.
    fin_is_acked: bool,
    retries: u32,
    /// Untimed-segment RTT sampling (when timestamps are off).
    timed_seq: Option<(SeqNum, SimTime)>,

    // --- receive side ---
    irs: SeqNum,
    rcv_nxt: SeqNum,
    /// Receive buffer space backing the advertised window. For QPIP this
    /// is the total posted receive-WR space (§5.1: "the more receive
    /// buffer space posted, the larger the TCP receive window").
    rcv_space: u64,
    /// Shift we apply to the window field we advertise.
    rcv_wscale: u8,
    /// Window scaling negotiated on the SYN exchange (both sides
    /// offered it); gates the option on our SYN-ACK.
    ws_negotiated: bool,
    /// Peer FIN consumed (sequence-wise).
    peer_fin_rcvd: bool,

    // --- ECN (RFC 3168, §5.2's "network-based mechanisms") ---
    /// Negotiated on the SYN exchange.
    ecn_on: bool,
    /// CE was seen; echo ECE on outgoing ACKs until the peer sets CWR.
    ece_pending: bool,
    /// Announce CWR on the next data segment.
    cwr_due: bool,
    /// React to ECE at most once per window: ACKs at or below this
    /// marker belong to the already-reduced window.
    ecn_reduced_at: SeqNum,
    /// Window reductions performed in response to ECN-Echo.
    ecn_reductions: u64,

    // --- RFC 1323 ---
    ts_on: bool,
    ts_recent: u32,
    /// Segments received since the last ACK we sent (delayed ACK).
    segs_unacked: u32,

    // --- timers ---
    rto_deadline: Option<SimTime>,
    delack_deadline: Option<SimTime>,
    timewait_deadline: Option<SimTime>,

    // --- counters ---
    retransmit_count: u64,
    ooo_drops: u64,
    rto_retransmits: u64,
    fast_retransmits: u64,
    dupacks_rx: u64,
    zero_window_events: u64,
}

impl Tcb {
    /// Starts an active open: returns the TCB in SYN-SENT plus the SYN.
    pub fn connect(
        cfg: &NetConfig,
        local: Endpoint,
        remote: Endpoint,
        iss: SeqNum,
        now: SimTime,
    ) -> (Tcb, Vec<SegmentOut>) {
        let mut tcb = Tcb::new_common(cfg, local, remote, iss);
        tcb.state = TcpState::SynSent;
        let syn = tcb.make_syn(cfg, now, false);
        tcb.arm_rto(now);
        (tcb, vec![syn])
    }

    /// Starts a passive open from a received SYN: returns the TCB in
    /// SYN-RCVD plus the SYN-ACK.
    pub fn accept(
        cfg: &NetConfig,
        local: Endpoint,
        remote: Endpoint,
        syn: &TcpHeader,
        iss: SeqNum,
        now: SimTime,
    ) -> (Tcb, Vec<SegmentOut>) {
        let mut tcb = Tcb::new_common(cfg, local, remote, iss);
        tcb.state = TcpState::SynRcvd;
        tcb.irs = syn.seq;
        tcb.rcv_nxt = syn.seq + 1;
        tcb.absorb_syn_options(cfg, syn);
        // ECN negotiation (RFC 3168): the SYN offers with ECE+CWR
        tcb.ecn_on = cfg.ecn && syn.flags.ece && syn.flags.cwr;
        let syn_ack = tcb.make_syn(cfg, now, true);
        tcb.arm_rto(now);
        (tcb, vec![syn_ack])
    }

    fn new_common(cfg: &NetConfig, local: Endpoint, remote: Endpoint, iss: SeqNum) -> Tcb {
        let rcv_space = cfg.recv_buffer as u64;
        let rcv_wscale = if cfg.window_scale { wscale_for(rcv_space) } else { 0 };
        Tcb {
            state: TcpState::Closed,
            local,
            remote,
            iss,
            sendbuf: SendBuffer::new(cfg.segmentation, iss + 1),
            snd_wnd: 0,
            snd_wl1: SeqNum(0),
            snd_wl2: SeqNum(0),
            snd_wscale: 0,
            peer_mss: 536,
            congestion: Congestion::new(cfg.max_tcp_payload(), cfg.initial_cwnd_segments),
            rtt: RttEstimator::new(cfg.min_rto),
            fin_queued: false,
            fin_sent: false,
            fin_seq: SeqNum(0),
            fin_is_acked: false,
            retries: 0,
            timed_seq: None,
            irs: SeqNum(0),
            rcv_nxt: SeqNum(0),
            rcv_space,
            rcv_wscale,
            ws_negotiated: false,
            peer_fin_rcvd: false,
            ecn_on: false,
            ece_pending: false,
            cwr_due: false,
            ecn_reduced_at: iss,
            ecn_reductions: 0,
            ts_on: false,
            ts_recent: 0,
            segs_unacked: 0,
            rto_deadline: None,
            delack_deadline: None,
            timewait_deadline: None,
            retransmit_count: 0,
            ooo_drops: 0,
            rto_retransmits: 0,
            fast_retransmits: 0,
            dupacks_rx: 0,
            zero_window_events: 0,
        }
    }

    // ----- accessors -------------------------------------------------

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local endpoint.
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Remote endpoint.
    pub fn remote(&self) -> Endpoint {
        self.remote
    }

    /// Bytes in flight (sent, unacknowledged).
    pub fn bytes_in_flight(&self) -> u64 {
        self.sendbuf.bytes_in_flight()
    }

    /// Bytes buffered for sending (in flight + unsent).
    pub fn bytes_buffered(&self) -> u64 {
        self.sendbuf.bytes_buffered()
    }

    /// Total retransmissions performed.
    pub fn retransmit_count(&self) -> u64 {
        self.retransmit_count
    }

    /// Out-of-order segments dropped (no reassembly in the subset).
    pub fn ooo_drops(&self) -> u64 {
        self.ooo_drops
    }

    /// Retransmissions triggered by RTO expiry (including SYN/SYN-ACK
    /// and FIN retransmissions). `rto_retransmits + fast_retransmits ==
    /// retransmit_count` by construction.
    pub fn rto_retransmits(&self) -> u64 {
        self.rto_retransmits
    }

    /// Retransmissions triggered by the third duplicate ACK.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// Duplicate ACKs received (same ack, data in flight, no payload).
    pub fn dupacks_rx(&self) -> u64 {
        self.dupacks_rx
    }

    /// Transitions of the peer's advertised window into zero.
    pub fn zero_window_events(&self) -> u64 {
        self.zero_window_events
    }

    /// Consecutive duplicate ACKs currently counted by the congestion
    /// controller.
    pub fn dup_acks(&self) -> u32 {
        self.congestion.dup_acks()
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.congestion.ssthresh()
    }

    /// RTT samples folded into the estimator.
    pub fn rtt_samples(&self) -> u64 {
        self.rtt.samples()
    }

    /// The most recent raw RTT sample, if any.
    pub fn last_rtt_sample(&self) -> Option<SimDuration> {
        self.rtt.last_sample()
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rtt.rto()
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> SeqNum {
        self.sendbuf.una()
    }

    /// Whether ECN was negotiated on the handshake.
    pub fn ecn_negotiated(&self) -> bool {
        self.ecn_on
    }

    /// Window reductions performed in response to ECN-Echo.
    pub fn ecn_reductions(&self) -> u64 {
        self.ecn_reductions
    }

    /// Smoothed RTT estimate, if any sample was taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.congestion.cwnd()
    }

    /// Peer's usable send window in bytes.
    pub fn snd_wnd(&self) -> u64 {
        self.snd_wnd
    }

    /// Sets the receive buffer space that backs the advertised window
    /// (QPIP: total bytes of posted receive WRs).
    pub fn set_recv_space(&mut self, bytes: u64) {
        self.rcv_space = bytes;
    }

    /// Announces the current receive window with a pure ACK — sent when
    /// posted receive space grows (§5.1: posting buffers transparently
    /// tunes the receiver window) so a window-blocked sender resumes.
    pub fn window_update(&mut self, now: SimTime) -> Option<SegmentOut> {
        matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::FinWait2
        )
        .then(|| self.make_ack(now, PacketKind::TcpAck))
    }

    // ----- oracle accessors (crate::invariant / qpip-conform) --------

    /// Next sequence number to send (SND.NXT).
    pub fn snd_nxt(&self) -> SeqNum {
        self.sendbuf.nxt()
    }

    /// One past the last byte buffered for sending.
    pub fn snd_buffered_end(&self) -> SeqNum {
        self.sendbuf.end()
    }

    /// Next expected receive sequence number (RCV.NXT).
    pub fn rcv_nxt(&self) -> SeqNum {
        self.rcv_nxt
    }

    /// Initial send sequence number.
    pub fn iss(&self) -> SeqNum {
        self.iss
    }

    /// Whether our FIN has been handed to the wire.
    pub fn fin_sent(&self) -> bool {
        self.fin_sent
    }

    /// Our FIN's sequence number, once sent.
    pub fn fin_seq(&self) -> Option<SeqNum> {
        self.fin_sent.then_some(self.fin_seq)
    }

    /// Whether the peer's FIN has been consumed in order.
    pub fn peer_fin_rcvd(&self) -> bool {
        self.peer_fin_rcvd
    }

    /// Whether the retransmission timer is armed.
    pub fn rto_armed(&self) -> bool {
        self.rto_deadline.is_some()
    }

    /// Whether the TIME-WAIT reaping timer is armed.
    pub fn timewait_armed(&self) -> bool {
        self.timewait_deadline.is_some()
    }

    /// Whether anything needs the retransmission timer: unacked data,
    /// an unacked FIN, or an unanswered SYN/SYN-ACK.
    pub fn has_outstanding(&self) -> bool {
        self.outstanding(SimTime::ZERO)
    }

    /// Window-scale shift applied to windows we advertise.
    pub fn rcv_wscale(&self) -> u8 {
        self.rcv_wscale
    }

    /// Window-scale shift the peer asked us to apply to its windows.
    pub fn snd_wscale(&self) -> u8 {
        self.snd_wscale
    }

    /// Whether RFC 1323 timestamps were negotiated.
    pub fn ts_negotiated(&self) -> bool {
        self.ts_on
    }

    /// Whether fast recovery is in progress.
    pub fn in_recovery(&self) -> bool {
        self.congestion.in_recovery()
    }

    /// Receive-buffer space backing the advertised window.
    pub fn rcv_space(&self) -> u64 {
        self.rcv_space
    }

    /// Whether the application may still queue data (not closed and no
    /// FIN queued).
    pub fn can_send(&self) -> bool {
        !self.fin_queued
            && matches!(
                self.state,
                TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
            )
    }

    /// Earliest pending timer deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [self.rto_deadline, self.delack_deadline, self.timewait_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    // ----- application calls ------------------------------------------

    /// Queues one send unit and transmits whatever the windows allow.
    ///
    /// # Panics
    ///
    /// Panics if called on a closed/closing connection or with empty
    /// data (callers gate both).
    pub fn send(
        &mut self,
        cfg: &NetConfig,
        data: Vec<u8>,
        token: SendToken,
        now: SimTime,
        ops: &mut OpCounters,
    ) -> Vec<SegmentOut> {
        assert!(
            matches!(
                self.state,
                TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
            ),
            "send on connection in {:?}",
            self.state
        );
        assert!(!self.fin_queued, "send after close");
        self.sendbuf.push(data, token);
        self.try_output(cfg, now, ops)
    }

    /// Initiates a graceful close; any queued data is sent first, then a
    /// FIN.
    pub fn close(
        &mut self,
        cfg: &NetConfig,
        now: SimTime,
        ops: &mut OpCounters,
    ) -> Vec<SegmentOut> {
        if self.fin_queued || matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            return Vec::new();
        }
        self.fin_queued = true;
        self.try_output(cfg, now, ops)
    }

    /// Aborts the connection, producing an RST.
    pub fn abort(&mut self) -> SegmentOut {
        let seq = self.sendbuf.nxt();
        self.state = TcpState::Closed;
        self.clear_timers();
        SegmentOut {
            seq,
            ack: self.rcv_nxt,
            flags: TcpFlags { rst: true, ack: true, ..TcpFlags::NONE },
            window: 0,
            options: TcpOptions::default(),
            payload: Vec::new(),
            kind: PacketKind::TcpControl,
            is_retransmit: false,
            ect: false,
        }
    }

    // ----- segment arrival -------------------------------------------

    /// Processes one incoming segment (no congestion mark). Returns
    /// segments to transmit and protocol events, in order.
    pub fn on_segment(
        &mut self,
        cfg: &NetConfig,
        hdr: &TcpHeader,
        payload: &[u8],
        now: SimTime,
        ops: &mut OpCounters,
    ) -> (Vec<SegmentOut>, Vec<TcbEvent>) {
        self.on_segment_marked(cfg, hdr, payload, false, now, ops)
    }

    /// Processes one incoming segment whose IP header may carry the
    /// Congestion-Experienced codepoint (set by a RED/ECN queue in the
    /// fabric, §5.2).
    pub fn on_segment_marked(
        &mut self,
        cfg: &NetConfig,
        hdr: &TcpHeader,
        payload: &[u8],
        congestion_experienced: bool,
        now: SimTime,
        ops: &mut OpCounters,
    ) -> (Vec<SegmentOut>, Vec<TcbEvent>) {
        if congestion_experienced && self.ecn_on {
            // echo ECE until the sender announces CWR (RFC 3168 §6.1.3)
            self.ece_pending = true;
        }
        if hdr.flags.cwr && self.ecn_on {
            self.ece_pending = false;
        }
        let mut out = Vec::new();
        let mut events = Vec::new();
        ops.headers_parsed += 1;

        if hdr.flags.rst {
            self.on_rst(hdr, now, &mut out, &mut events);
            return (out, events);
        }

        match self.state {
            TcpState::SynSent => {
                self.on_segment_syn_sent(cfg, hdr, now, &mut out, &mut events, ops);
            }
            TcpState::Closed => { /* stray segment; a real stack would RST */ }
            _ => {
                self.on_segment_synchronized(cfg, hdr, payload, now, &mut out, &mut events, ops);
            }
        }
        (out, events)
    }

    /// RST acceptance (RFC 793 §3.4 tightened per RFC 5961 §3.2): a
    /// reset only kills the connection when its sequence number is
    /// exactly `RCV.NXT` (in SYN-SENT: when it acks our SYN). An
    /// in-window but inexact RST draws a challenge ACK so a legitimate
    /// peer can resend with the right number, while a blind attacker's
    /// guess does nothing. Everything else is dropped silently.
    fn on_rst(
        &mut self,
        hdr: &TcpHeader,
        now: SimTime,
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<TcbEvent>,
    ) {
        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => {
                if hdr.flags.ack && hdr.ack == self.iss + 1 {
                    self.state = TcpState::Closed;
                    self.clear_timers();
                    events.push(TcbEvent::Reset);
                }
            }
            _ => {
                if hdr.seq == self.rcv_nxt {
                    self.state = TcpState::Closed;
                    self.clear_timers();
                    events.push(TcbEvent::Reset);
                } else if u64::from(hdr.seq - self.rcv_nxt) < self.rcv_space.max(1) {
                    out.push(self.make_ack(now, PacketKind::TcpAck));
                }
            }
        }
    }

    fn on_segment_syn_sent(
        &mut self,
        cfg: &NetConfig,
        hdr: &TcpHeader,
        now: SimTime,
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<TcbEvent>,
        ops: &mut OpCounters,
    ) {
        if !(hdr.flags.syn && hdr.flags.ack) || hdr.ack != self.iss + 1 {
            return; // not our SYN-ACK; ignore (subset: no simultaneous open)
        }
        self.irs = hdr.seq;
        self.rcv_nxt = hdr.seq + 1;
        self.absorb_syn_options(cfg, hdr);
        // the SYN-ACK confirms ECN with ECE alone (RFC 3168)
        self.ecn_on = cfg.ecn && hdr.flags.ece && !hdr.flags.cwr;
        self.sendbuf.on_ack(hdr.ack); // no data, but aligns una bookkeeping
        self.update_snd_wnd(hdr);
        self.state = TcpState::Established;
        self.retries = 0;
        self.rto_deadline = None;
        events.push(TcbEvent::Established);
        // ACK the SYN-ACK (third step of the rendezvous, §3)
        out.push(self.make_ack(now, PacketKind::TcpAck));
        // flush anything queued while connecting
        out.extend(self.try_output(cfg, now, ops));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_segment_synchronized(
        &mut self,
        cfg: &NetConfig,
        hdr: &TcpHeader,
        payload: &[u8],
        now: SimTime,
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<TcbEvent>,
        ops: &mut OpCounters,
    ) {
        // -- header prediction (Stevens V2 §28.4): in ESTABLISHED, with
        // plain ACK/PSH flags, the next expected sequence number and an
        // unchanged send window, take the fast path. Everything else
        // falls to the slow path. The NIC cost model charges the same
        // parse cost either way (Table 3 folds it into "TCP Parse"); the
        // counters feed the ablation bench.
        let plain_flags = {
            let f = hdr.flags;
            f.ack && !f.syn && !f.fin && !f.rst && !f.urg
        };
        let window_unchanged = (u64::from(hdr.window) << self.snd_wscale) == self.snd_wnd;
        if self.state == TcpState::Established
            && plain_flags
            && hdr.seq == self.rcv_nxt
            && window_unchanged
        {
            ops.fast_path_hits += 1;
        } else {
            ops.slow_path_hits += 1;
        }

        // -- RFC 1323 ts_recent maintenance
        if self.ts_on {
            if let Some((tsval, _)) = hdr.options.timestamps {
                if hdr.seq.le(self.rcv_nxt) {
                    self.ts_recent = tsval;
                }
            }
        }

        // -- SYN-ACK retransmission while in SynRcvd: re-ack
        if hdr.flags.syn {
            out.push(self.make_ack(now, PacketKind::TcpAck));
            return;
        }

        // -- ACK processing
        if hdr.flags.ack {
            if !self.process_ack(cfg, hdr, payload.is_empty(), now, out, events, ops) {
                return; // unacceptable ACK: segment dropped wholesale
            }
            if self.state == TcpState::Closed {
                return;
            }
        }

        // -- payload processing
        if !payload.is_empty() {
            self.process_payload(cfg, hdr, payload, now, out, events, ops);
        }

        // -- FIN processing (only when it arrives in order, and only in
        // a state that accepts data: a FIN riding an unacceptable ACK in
        // SYN-RCVD must not advance `rcv_nxt` while the handshake is
        // still incomplete — RFC 793 would have reset such a segment
        // before FIN processing; the subset drops it instead)
        if hdr.flags.fin
            && matches!(self.state, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2)
            && hdr.seq + payload.len() as u32 == self.rcv_nxt
            && !self.peer_fin_rcvd
        {
            self.rcv_nxt += 1;
            self.peer_fin_rcvd = true;
            events.push(TcbEvent::PeerClosed);
            self.transition_on_peer_fin(now, events);
            out.push(self.make_ack(now, PacketKind::TcpAck));
            self.segs_unacked = 0;
            self.delack_deadline = None;
        }

        // -- send whatever the ACK/window opened up
        out.extend(self.try_output(cfg, now, ops));
    }

    /// Returns `false` when the ACK acknowledges data we never sent
    /// (RFC 793: "send an ACK, drop the segment, and return") — the
    /// caller must discard the rest of the segment too.
    #[allow(clippy::too_many_arguments)]
    fn process_ack(
        &mut self,
        cfg: &NetConfig,
        hdr: &TcpHeader,
        payload_empty: bool,
        now: SimTime,
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<TcbEvent>,
        ops: &mut OpCounters,
    ) -> bool {
        let snd_max = if self.fin_sent { self.fin_seq + 1 } else { self.sendbuf.max_sent() };
        if snd_max.lt(hdr.ack) {
            out.push(self.make_ack(now, PacketKind::TcpAck));
            return false;
        }

        let una_before = self.sendbuf.una();
        let fin_outstanding = self.fin_sent && !self.fin_acked(una_before);
        let advances = una_before.lt(hdr.ack)
            && (hdr.ack.le(self.sendbuf.end()) || (fin_outstanding && hdr.ack == self.fin_seq + 1));

        // ECN-Echo: reduce once per window (RFC 3168 §6.1.2)
        if self.ecn_on && hdr.flags.ece && !hdr.flags.syn && self.ecn_reduced_at.lt(hdr.ack) {
            self.congestion.on_ecn();
            self.cwr_due = true;
            self.ecn_reductions += 1;
            self.ecn_reduced_at = self.sendbuf.nxt();
        }

        if self.state == TcpState::SynRcvd && hdr.ack == self.iss + 1 {
            self.state = TcpState::Established;
            self.retries = 0;
            self.rto_deadline = None;
            events.push(TcbEvent::Established);
            self.update_snd_wnd(hdr);
            return true;
        }

        if advances {
            // RTT sampling: timestamps give an unambiguous echo (Karn's
            // rule satisfied by construction); otherwise use the timed
            // segment if it was not retransmitted.
            if self.ts_on {
                if let Some((_, tsecr)) = hdr.options.timestamps {
                    if tsecr != 0 {
                        let now_us = ts_now(now);
                        let sample_us = now_us.wrapping_sub(tsecr);
                        if sample_us < 60_000_000 {
                            let sent = SimTime::from_picos(
                                now.as_picos().saturating_sub(u64::from(sample_us) * 1_000_000),
                            );
                            self.rtt.sample(sent, now, ops);
                        }
                    }
                }
            } else if let Some((seq, sent)) = self.timed_seq {
                if seq.lt(hdr.ack) {
                    self.rtt.sample(sent, now, ops);
                    self.timed_seq = None;
                }
            }

            let acked_bytes = u64::from(hdr.ack - una_before);
            // An ACK covering our FIN points one past the last data byte;
            // clamp it so the send buffer still marks all data acked.
            let data_ack =
                if self.fin_sent && hdr.ack == self.fin_seq + 1 { self.fin_seq } else { hdr.ack };
            for token in self.sendbuf.on_ack(data_ack) {
                events.push(TcbEvent::SendComplete(token));
            }
            self.congestion.on_ack(acked_bytes, ops);
            self.retries = 0;

            // FIN acknowledged?
            if self.fin_sent && hdr.ack == self.fin_seq + 1 {
                self.fin_is_acked = true;
                match self.state {
                    TcpState::FinWait1 => {
                        self.state = if self.peer_fin_rcvd {
                            self.enter_time_wait(now);
                            TcpState::TimeWait
                        } else {
                            TcpState::FinWait2
                        };
                    }
                    TcpState::Closing => {
                        self.enter_time_wait(now);
                        self.state = TcpState::TimeWait;
                    }
                    TcpState::LastAck => {
                        self.state = TcpState::Closed;
                        self.clear_timers();
                        events.push(TcbEvent::Closed);
                        return true;
                    }
                    _ => {}
                }
            }

            // restart or clear the retransmission timer
            if self.outstanding(now) {
                self.arm_rto(now);
            } else {
                self.rto_deadline = None;
            }
        } else if hdr.ack == una_before && self.sendbuf.bytes_in_flight() > 0 && payload_empty {
            // duplicate ACK
            self.dupacks_rx += 1;
            if self.congestion.on_dup_ack() {
                // fast retransmit
                if let Some(seg) = self.sendbuf.retransmit_front(self.max_payload(cfg)) {
                    self.retransmit_count += 1;
                    self.fast_retransmits += 1;
                    let s = self.make_data_segment(seg.seq, seg.bytes, seg.psh, now, true);
                    out.push(s);
                    self.arm_rto(now);
                }
            }
        }

        self.update_snd_wnd(hdr);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn process_payload(
        &mut self,
        cfg: &NetConfig,
        hdr: &TcpHeader,
        payload: &[u8],
        now: SimTime,
        out: &mut Vec<SegmentOut>,
        events: &mut Vec<TcbEvent>,
        _ops: &mut OpCounters,
    ) {
        if !matches!(self.state, TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2) {
            return;
        }
        let seg_end = hdr.seq + payload.len() as u32;
        if seg_end.le(self.rcv_nxt) {
            // pure duplicate: re-ACK so the peer's retransmission stops
            out.push(self.make_ack(now, PacketKind::TcpAck));
            return;
        }
        if self.rcv_nxt.lt(hdr.seq) {
            // out of order: the subset has no reassembly (§4.1); drop and
            // send a duplicate ACK to trigger the peer's fast retransmit.
            self.ooo_drops += 1;
            out.push(self.make_ack(now, PacketKind::TcpAck));
            return;
        }
        // trim any already-received prefix
        let offset = (self.rcv_nxt - hdr.seq) as usize;
        let fresh = &payload[offset..];
        self.rcv_nxt += fresh.len() as u32;
        events.push(TcbEvent::Delivered(fresh.to_vec()));

        // ACK generation policy
        match cfg.ack_policy {
            crate::types::AckPolicy::Immediate => {
                out.push(self.make_ack(now, PacketKind::TcpAck));
                self.segs_unacked = 0;
                self.delack_deadline = None;
            }
            crate::types::AckPolicy::Delayed(timeout) => {
                self.segs_unacked += 1;
                if self.segs_unacked >= 2 {
                    out.push(self.make_ack(now, PacketKind::TcpAck));
                    self.segs_unacked = 0;
                    self.delack_deadline = None;
                } else {
                    self.delack_deadline = Some(now + timeout);
                }
            }
        }
    }

    fn transition_on_peer_fin(&mut self, now: SimTime, _events: &mut [TcbEvent]) {
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                // our FIN not yet acked: simultaneous close
                self.state = TcpState::Closing;
            }
            TcpState::FinWait2 => {
                self.enter_time_wait(now);
                self.state = TcpState::TimeWait;
            }
            _ => {}
        }
    }

    // ----- timers ------------------------------------------------------

    /// Advances timer state to `now`, producing retransmissions, delayed
    /// ACKs, TIME-WAIT reaping and abort events.
    pub fn on_timer(
        &mut self,
        cfg: &NetConfig,
        now: SimTime,
        ops: &mut OpCounters,
    ) -> (Vec<SegmentOut>, Vec<TcbEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        if let Some(dl) = self.timewait_deadline {
            if dl <= now {
                self.timewait_deadline = None;
                self.state = TcpState::Closed;
                self.clear_timers();
                events.push(TcbEvent::Closed);
                return (out, events);
            }
        }

        if let Some(dl) = self.delack_deadline {
            if dl <= now {
                self.delack_deadline = None;
                self.segs_unacked = 0;
                out.push(self.make_ack(now, PacketKind::TcpAck));
            }
        }

        if let Some(dl) = self.rto_deadline {
            if dl <= now {
                self.rto_deadline = None;
                self.retries += 1;
                if self.retries > MAX_RETRIES {
                    self.state = TcpState::Closed;
                    self.clear_timers();
                    events.push(TcbEvent::Reset);
                    return (out, events);
                }
                self.congestion.on_timeout();
                self.rtt.backoff();
                ops.muls += 1; // backoff shift/clamp arithmetic
                match self.state {
                    TcpState::SynSent => {
                        self.retransmit_count += 1;
                        self.rto_retransmits += 1;
                        out.push(self.make_syn_raw(cfg, now, false, true));
                    }
                    TcpState::SynRcvd => {
                        self.retransmit_count += 1;
                        self.rto_retransmits += 1;
                        out.push(self.make_syn_raw(cfg, now, true, true));
                    }
                    _ => {
                        if self.sendbuf.bytes_in_flight() > 0 {
                            self.sendbuf.rewind_to_una();
                            // Karn: do not time retransmitted data
                            self.timed_seq = None;
                            if let Some(seg) =
                                self.sendbuf.next_segment(self.max_payload(cfg), u64::MAX)
                            {
                                self.retransmit_count += 1;
                                self.rto_retransmits += 1;
                                let s =
                                    self.make_data_segment(seg.seq, seg.bytes, seg.psh, now, true);
                                out.push(s);
                            }
                        } else if self.fin_sent && !self.fin_acked(self.sendbuf.una()) {
                            self.retransmit_count += 1;
                            self.rto_retransmits += 1;
                            out.push(self.make_fin(now, true));
                        }
                    }
                }
                if self.outstanding(now) {
                    self.arm_rto(now);
                }
            }
        }

        (out, events)
    }

    // ----- output ------------------------------------------------------

    /// Transmits as much buffered data as the congestion and peer
    /// windows allow, then a FIN if one is queued and the buffer drained.
    pub fn try_output(
        &mut self,
        cfg: &NetConfig,
        now: SimTime,
        ops: &mut OpCounters,
    ) -> Vec<SegmentOut> {
        let mut out = Vec::new();
        // new data (and a first FIN) flow only in these states; FIN
        // retransmission is handled by the timer path.
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            return out;
        }
        loop {
            let in_flight = self.sendbuf.bytes_in_flight();
            let wnd = self.usable_window(in_flight);
            // Nagle: with data in flight and less than a full segment
            // unsent, hold back (disabled when nodelay, the common case
            // here — ttcp sets TCP_NODELAY and QPIP always pushes).
            if !cfg.nodelay
                && in_flight > 0
                && self.sendbuf.bytes_unsent() < self.max_payload(cfg) as u64
            {
                break;
            }
            let Some(seg) = self.sendbuf.next_segment(self.max_payload(cfg), wnd) else {
                break;
            };
            ops.headers_built += 1;
            if !self.ts_on && self.timed_seq.is_none() {
                self.timed_seq = Some((seg.seq, now));
            }
            let s = self.make_data_segment(seg.seq, seg.bytes, seg.psh, now, false);
            out.push(s);
            // every outgoing segment acknowledges rcv_nxt, satisfying any
            // pending delayed ACK (the piggyback rule)
            self.segs_unacked = 0;
            self.delack_deadline = None;
        }
        // FIN once everything queued has been handed to the wire
        if self.fin_queued && !self.fin_sent && self.sendbuf.bytes_unsent() == 0 {
            self.fin_seq = self.sendbuf.end();
            self.fin_sent = true;
            out.push(self.make_fin(now, false));
            self.state = match self.state {
                TcpState::CloseWait => TcpState::LastAck,
                _ => TcpState::FinWait1,
            };
        }
        if self.outstanding(now) && self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        out
    }

    // ----- segment builders -------------------------------------------

    fn make_syn(&mut self, cfg: &NetConfig, now: SimTime, is_syn_ack: bool) -> SegmentOut {
        self.make_syn_raw(cfg, now, is_syn_ack, false)
    }

    fn make_syn_raw(
        &mut self,
        cfg: &NetConfig,
        now: SimTime,
        is_syn_ack: bool,
        is_retransmit: bool,
    ) -> SegmentOut {
        // A SYN offers what the config allows; a SYN-ACK may only echo
        // what the peer's SYN actually negotiated (RFC 1323/7323 — the
        // responder must not send window-scale or timestamps unless the
        // initiator did).
        let options = TcpOptions {
            mss: Some(cfg.max_tcp_payload().min(usize::from(u16::MAX)) as u16),
            window_scale: (cfg.window_scale && (!is_syn_ack || self.ws_negotiated))
                .then_some(self.rcv_wscale),
            timestamps: (cfg.timestamps && (!is_syn_ack || self.ts_on))
                .then(|| (ts_now(now), self.ts_recent)),
        };
        let mut flags = if is_syn_ack { TcpFlags::SYN_ACK } else { TcpFlags::SYN };
        if is_syn_ack {
            flags.ece = self.ecn_on; // confirm (RFC 3168)
        } else if cfg.ecn {
            flags.ece = true; // offer
            flags.cwr = true;
        }
        SegmentOut {
            seq: self.iss,
            ack: if is_syn_ack { self.rcv_nxt } else { SeqNum(0) },
            flags,
            window: self.advertised_window(),
            options,
            payload: Vec::new(),
            kind: PacketKind::TcpControl,
            is_retransmit,
            ect: false,
        }
    }

    fn make_ack(&mut self, now: SimTime, kind: PacketKind) -> SegmentOut {
        let flags = TcpFlags { ece: self.ecn_on && self.ece_pending, ..TcpFlags::ACK };
        SegmentOut {
            seq: self.sendbuf.nxt() + u32::from(self.fin_sent_and_counted()),
            ack: self.rcv_nxt,
            flags,
            window: self.advertised_window(),
            options: self.data_options(now),
            payload: Vec::new(),
            kind,
            is_retransmit: false,
            ect: false,
        }
    }

    fn make_data_segment(
        &mut self,
        seq: SeqNum,
        payload: Vec<u8>,
        psh: bool,
        now: SimTime,
        is_retransmit: bool,
    ) -> SegmentOut {
        let cwr = self.ecn_on && self.cwr_due;
        if cwr {
            self.cwr_due = false;
        }
        SegmentOut {
            seq,
            ack: self.rcv_nxt,
            flags: TcpFlags {
                ack: true,
                psh,
                ece: self.ecn_on && self.ece_pending,
                cwr,
                ..TcpFlags::NONE
            },
            window: self.advertised_window(),
            options: self.data_options(now),
            payload,
            kind: PacketKind::TcpData,
            is_retransmit,
            // retransmissions are not ECT (RFC 3168 §6.1.5)
            ect: self.ecn_on && !is_retransmit,
        }
    }

    fn make_fin(&mut self, now: SimTime, is_retransmit: bool) -> SegmentOut {
        SegmentOut {
            seq: self.fin_seq,
            ack: self.rcv_nxt,
            flags: TcpFlags { fin: true, ack: true, ..TcpFlags::NONE },
            window: self.advertised_window(),
            options: self.data_options(now),
            payload: Vec::new(),
            kind: PacketKind::TcpControl,
            is_retransmit,
            ect: false,
        }
    }

    fn data_options(&self, now: SimTime) -> TcpOptions {
        TcpOptions {
            mss: None,
            window_scale: None,
            timestamps: self.ts_on.then(|| (ts_now(now), self.ts_recent)),
        }
    }

    // ----- helpers -----------------------------------------------------

    fn absorb_syn_options(&mut self, cfg: &NetConfig, syn: &TcpHeader) {
        if let Some(mss) = syn.options.mss {
            self.peer_mss = usize::from(mss);
        }
        self.ws_negotiated = cfg.window_scale && syn.options.window_scale.is_some();
        self.snd_wscale = match (cfg.window_scale, syn.options.window_scale) {
            (true, Some(ws)) => ws.min(14),
            _ => {
                self.rcv_wscale = 0;
                0
            }
        };
        self.ts_on = cfg.timestamps && syn.options.timestamps.is_some();
        if let Some((tsval, _)) = syn.options.timestamps {
            if self.ts_on {
                self.ts_recent = tsval;
            }
        }
        // SYN windows are never scaled
        self.snd_wnd = u64::from(syn.window);
        self.snd_wl1 = syn.seq;
        self.snd_wl2 = SeqNum(0);
    }

    fn update_snd_wnd(&mut self, hdr: &TcpHeader) {
        if self.snd_wl1.lt(hdr.seq) || (self.snd_wl1 == hdr.seq && self.snd_wl2.le(hdr.ack)) {
            let before = self.snd_wnd;
            self.snd_wnd = u64::from(hdr.window) << self.snd_wscale;
            self.snd_wl1 = hdr.seq;
            self.snd_wl2 = hdr.ack;
            if self.snd_wnd == 0 && before != 0 {
                self.zero_window_events += 1;
            }
        }
    }

    fn usable_window(&self, in_flight: u64) -> u64 {
        self.snd_wnd.min(self.congestion.cwnd()).saturating_sub(in_flight)
    }

    fn advertised_window(&self) -> u16 {
        let w = self.rcv_space >> self.rcv_wscale;
        w.min(u64::from(u16::MAX)) as u16
    }

    fn max_payload(&self, cfg: &NetConfig) -> usize {
        match cfg.segmentation {
            SegmentationPolicy::MessagePerSegment => cfg.max_tcp_payload(),
            SegmentationPolicy::Stream => cfg.max_tcp_payload().min(self.peer_mss),
        }
    }

    fn outstanding(&self, _now: SimTime) -> bool {
        self.sendbuf.bytes_in_flight() > 0
            || (self.fin_sent && !self.fin_acked(self.sendbuf.una()))
            || matches!(self.state, TcpState::SynSent | TcpState::SynRcvd)
    }

    fn fin_acked(&self, una: SeqNum) -> bool {
        // The latch is authoritative; the una comparison can never fire
        // (una stops at the last data byte) but keeps the definition
        // aligned with RFC 793's SND.UNA reading.
        self.fin_is_acked || (self.fin_sent && self.fin_seq.lt(una))
    }

    fn fin_sent_and_counted(&self) -> bool {
        self.fin_sent
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rtt.rto());
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.rto_deadline = None;
        self.delack_deadline = None;
        self.timewait_deadline = Some(now + TIME_WAIT_DURATION);
    }

    fn clear_timers(&mut self) {
        self.rto_deadline = None;
        self.delack_deadline = None;
        self.timewait_deadline = None;
    }
}

/// RFC 1323 timestamp clock: microseconds of simulated time, truncated
/// to 32 bits (identical on both ends of the simulation, which is fine —
/// TSval is opaque to the peer).
fn ts_now(now: SimTime) -> u32 {
    ((now.as_picos() / 1_000_000) & 0xffff_ffff) as u32
}

/// Chooses a window-scale shift so `space` fits the 16-bit window field.
fn wscale_for(space: u64) -> u8 {
    let mut shift = 0u8;
    while shift < 14 && (space >> shift) > u64::from(u16::MAX) {
        shift += 1;
    }
    shift
}
