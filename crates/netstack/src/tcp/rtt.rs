//! Round-trip-time estimation and retransmission timeout (Jacobson /
//! Karels, with Karn's rule and RFC 1323 timestamp-based samples).
//!
//! §4.2.2 of the paper: "parsing the TCP header induces a high
//! processing cost because of a series of multiply operations for the
//! RTT estimators" on the multiply-less LANai. The estimator therefore
//! reports every multiply/divide it performs through [`OpCounters`] so
//! the NIC model can charge the software-multiply penalty.

use qpip_sim::time::{SimDuration, SimTime};

use crate::types::OpCounters;

/// Scaled-fixed-point RTT estimator state.
///
/// `srtt` is kept scaled by 8 and `rttvar` by 4, exactly as in the BSD
/// implementation the paper's firmware was derived from ([6, 32]).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT × 8, in microseconds.
    srtt_x8: u64,
    /// RTT variance × 4, in microseconds.
    rttvar_x4: u64,
    /// Current retransmission timeout.
    rto: SimDuration,
    /// Lower bound on RTO.
    min_rto: SimDuration,
    /// Whether any sample has been taken yet.
    seeded: bool,
    /// Consecutive backoffs applied since the last valid sample.
    backoff_shift: u32,
    samples: u64,
    /// Most recent raw (unsmoothed) sample, for tracing.
    last_sample: Option<SimDuration>,
}

/// Initial RTO before any sample (RFC 6298 suggests 1 s; the firmware
/// uses a tighter default appropriate to a SAN).
const INITIAL_RTO: SimDuration = SimDuration::from_millis(100);
/// Cap on RTO growth.
const MAX_RTO: SimDuration = SimDuration::from_secs(4);

impl RttEstimator {
    /// Creates an estimator with the given RTO floor.
    pub fn new(min_rto: SimDuration) -> Self {
        RttEstimator {
            srtt_x8: 0,
            rttvar_x4: 0,
            rto: INITIAL_RTO.max(min_rto),
            min_rto,
            seeded: false,
            backoff_shift: 0,
            samples: 0,
            last_sample: None,
        }
    }

    /// Feeds one RTT sample (`sent` → `now`), updating SRTT, RTTVAR and
    /// RTO. Per Karn's rule the caller must not feed samples taken from
    /// retransmitted segments — timestamp-based sampling (RFC 1323)
    /// makes that unambiguous and is what the engine uses.
    pub fn sample(&mut self, sent: SimTime, now: SimTime, ops: &mut OpCounters) {
        let m_us = now.duration_since(sent).as_picos() / 1_000_000; // µs
        ops.rtt_updates += 1;
        if !self.seeded {
            self.seeded = true;
            self.srtt_x8 = m_us * 8;
            self.rttvar_x4 = m_us * 2; // rttvar = m/2
        } else {
            // delta = m - srtt  (signed)
            let srtt = self.srtt_x8 / 8;
            let delta = m_us as i64 - srtt as i64;
            // srtt += delta/8  -> srtt_x8 += delta
            self.srtt_x8 = (self.srtt_x8 as i64 + delta).max(1) as u64;
            // rttvar += (|delta| - rttvar)/4 -> rttvar_x4 += |delta| - rttvar
            let rttvar = self.rttvar_x4 / 4;
            self.rttvar_x4 = (self.rttvar_x4 as i64 + (delta.abs() - rttvar as i64)).max(1) as u64;
        }
        // The BSD-derived firmware performs this block with genuine
        // multiply/divide instructions (scale/unscale, RTO clamp and the
        // timestamp math around it): six 32-bit multiplies per ACK, which
        // is what lifts ACK parsing from 7 µs to 14 µs in Table 3.
        ops.muls += 6;
        self.backoff_shift = 0;
        self.samples += 1;
        self.last_sample = Some(SimDuration::from_micros(m_us));
        let rto_us = self.srtt_x8 / 8 + self.rttvar_x4; // srtt + 4*rttvar
        self.rto = SimDuration::from_micros_f64(rto_us as f64).max(self.min_rto).min(MAX_RTO);
    }

    /// Current retransmission timeout (with any exponential backoff).
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Exponential backoff after a retransmission timeout fires.
    pub fn backoff(&mut self) {
        self.backoff_shift = (self.backoff_shift + 1).min(12);
        self.rto = self.rto.saturating_mul(2).min(MAX_RTO);
    }

    /// Smoothed RTT, if seeded.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.seeded.then(|| SimDuration::from_micros_f64((self.srtt_x8 / 8) as f64))
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The most recent raw sample, if any.
    pub fn last_sample(&self) -> Option<SimDuration> {
        self.last_sample
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(SimDuration::from_millis(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn first_sample_seeds_srtt_and_var() {
        let mut e = RttEstimator::new(us(0).max(SimDuration::from_picos(1)));
        let mut ops = OpCounters::new();
        e.sample(SimTime::ZERO, SimTime::from_micros(100), &mut ops);
        assert_eq!(e.srtt().unwrap(), us(100));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300us
        assert_eq!(e.rto(), us(300));
        assert_eq!(ops.rtt_updates, 1);
        assert_eq!(ops.muls, 6);
    }

    #[test]
    fn steady_samples_converge_and_tighten_variance() {
        let mut e = RttEstimator::new(SimDuration::from_picos(1));
        let mut ops = OpCounters::new();
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            let sent = t;
            t += us(100);
            e.sample(sent, t, &mut ops);
        }
        let srtt = e.srtt().unwrap().as_micros_f64();
        assert!((srtt - 100.0).abs() < 2.0, "{srtt}");
        // variance decays towards zero, so rto approaches srtt + floor
        assert!(e.rto() < us(140), "{}", e.rto());
        assert_eq!(e.samples(), 50);
    }

    #[test]
    fn rto_respects_min_floor() {
        let mut e = RttEstimator::new(SimDuration::from_millis(10));
        let mut ops = OpCounters::new();
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            let sent = t;
            t += us(50);
            e.sample(sent, t, &mut ops);
        }
        assert_eq!(e.rto(), SimDuration::from_millis(10));
    }

    #[test]
    fn rto_grows_with_variance() {
        let mut e = RttEstimator::new(SimDuration::from_picos(1));
        let mut ops = OpCounters::new();
        let mut t = SimTime::ZERO;
        for (i, rtt) in [100u64, 500, 100, 500, 100, 500].iter().enumerate() {
            let sent = t;
            t = t + us(*rtt) + us(i as u64);
            e.sample(sent, t, &mut ops);
        }
        // oscillating RTTs keep rttvar high: RTO well above mean RTT
        assert!(e.rto() > us(500), "{}", e.rto());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(SimDuration::from_millis(10));
        let before = e.rto();
        e.backoff();
        assert_eq!(e.rto(), before.saturating_mul(2));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(4));
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = RttEstimator::new(SimDuration::from_millis(1));
        let mut ops = OpCounters::new();
        e.backoff();
        e.backoff();
        e.sample(SimTime::ZERO, SimTime::from_micros(100), &mut ops);
        assert!(e.rto() <= SimDuration::from_millis(1));
    }

    #[test]
    fn muls_accumulate_six_per_ack_sample() {
        // Table 3 calibration: each ACK's RTT update performs 6 multiplies.
        let mut e = RttEstimator::default();
        let mut ops = OpCounters::new();
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let sent = t;
            t += us(100);
            e.sample(sent, t, &mut ops);
        }
        assert_eq!(ops.muls, 60);
    }
}
