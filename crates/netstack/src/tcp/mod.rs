//! TCP: transmission control block, RTT estimation, congestion control
//! and the send buffer.

pub mod congestion;
pub mod rtt;
pub mod sendbuf;
pub mod tcb;

pub use congestion::Congestion;
pub use rtt::RttEstimator;
pub use sendbuf::{SegmentData, SendBuffer};
pub use tcb::{SegmentOut, Tcb, TcbEvent, TcpState};

#[cfg(test)]
mod tests {
    //! Two TCBs wired back-to-back: full-lifecycle protocol tests
    //! without the engine or any packet encoding.

    use qpip_sim::time::{SimDuration, SimTime};
    use qpip_wire::tcp::{SeqNum, TcpHeader, TcpOptions};

    use super::tcb::{SegmentOut, Tcb, TcbEvent, TcpState};
    use crate::types::{Endpoint, NetConfig, OpCounters, PacketKind, SendToken};
    use std::net::Ipv6Addr;

    fn ep(port: u16) -> Endpoint {
        Endpoint::new(Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, u16::from(port != 1)), port)
    }

    /// Converts a SegmentOut into the TcpHeader the peer would parse.
    fn to_header(s: &SegmentOut, src: u16, dst: u16) -> TcpHeader {
        TcpHeader {
            src_port: src,
            dst_port: dst,
            seq: s.seq,
            ack: s.ack,
            flags: s.flags,
            window: s.window,
            checksum: 0,
            urgent: 0,
            options: s.options,
        }
    }

    struct Pair {
        cfg: NetConfig,
        client: Tcb,
        server: Tcb,
        now: SimTime,
        ops: OpCounters,
    }

    impl Pair {
        /// Creates a connected pair (handshake already driven).
        fn established(cfg: NetConfig) -> Pair {
            let now = SimTime::ZERO;
            let mut ops = OpCounters::new();
            let (mut client, syns) = Tcb::connect(&cfg, ep(1), ep(2), SeqNum(1000), now);
            assert_eq!(syns.len(), 1);
            let syn_hdr = to_header(&syns[0], 1, 2);
            let (mut server, synacks) =
                Tcb::accept(&cfg, ep(2), ep(1), &syn_hdr, SeqNum(5000), now);
            let (acks, ev) =
                client.on_segment(&cfg, &to_header(&synacks[0], 2, 1), &[], now, &mut ops);
            assert!(ev.contains(&TcbEvent::Established));
            let (_, ev) = server.on_segment(&cfg, &to_header(&acks[0], 1, 2), &[], now, &mut ops);
            assert!(ev.contains(&TcbEvent::Established));
            assert_eq!(client.state(), TcpState::Established);
            assert_eq!(server.state(), TcpState::Established);
            Pair { cfg, client, server, now, ops }
        }

        fn tick(&mut self, d: SimDuration) {
            self.now += d;
        }

        /// Delivers segments from `a` to `b`, returning (replies, events).
        fn deliver(
            cfg: &NetConfig,
            from_port: u16,
            to_port: u16,
            to: &mut Tcb,
            segs: &[SegmentOut],
            now: SimTime,
            ops: &mut OpCounters,
        ) -> (Vec<SegmentOut>, Vec<TcbEvent>) {
            let mut out = Vec::new();
            let mut evs = Vec::new();
            for s in segs {
                let hdr = to_header(s, from_port, to_port);
                let (o, e) = to.on_segment(cfg, &hdr, &s.payload, now, ops);
                out.extend(o);
                evs.extend(e);
            }
            (out, evs)
        }
    }

    fn qpip_cfg() -> NetConfig {
        NetConfig::qpip(16 * 1024)
    }

    #[test]
    fn three_way_handshake_establishes_both_ends() {
        let p = Pair::established(qpip_cfg());
        assert_eq!(p.client.state(), TcpState::Established);
        assert_eq!(p.server.state(), TcpState::Established);
    }

    #[test]
    fn syn_carries_mss_wscale_and_timestamps() {
        let cfg = qpip_cfg();
        let (_, syns) = Tcb::connect(&cfg, ep(1), ep(2), SeqNum(0), SimTime::ZERO);
        let o: TcpOptions = syns[0].options;
        assert_eq!(o.mss, Some(cfg.max_tcp_payload() as u16));
        assert!(o.window_scale.is_some());
        assert!(o.timestamps.is_some());
        assert_eq!(syns[0].kind, PacketKind::TcpControl);
    }

    #[test]
    fn message_send_delivers_one_event_per_message_and_completes() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let segs = p.client.send(&cfg, vec![7u8; 4096], SendToken(42), p.now, &mut p.ops);
        assert_eq!(segs.len(), 1, "one message, one segment");
        assert_eq!(segs[0].payload.len(), 4096);
        let (acks, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
        assert!(matches!(&evs[..], [TcbEvent::Delivered(d)] if d.len() == 4096));
        assert_eq!(acks.len(), 1, "immediate ack policy");
        assert_eq!(acks[0].kind, PacketKind::TcpAck);
        let (_, evs) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        assert_eq!(evs, vec![TcbEvent::SendComplete(SendToken(42))]);
        assert_eq!(p.client.bytes_in_flight(), 0);
    }

    #[test]
    fn multiple_messages_preserve_boundaries() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let mut segs = p.client.send(&cfg, vec![1u8; 100], SendToken(1), p.now, &mut p.ops);
        segs.extend(p.client.send(&cfg, vec![2u8; 200], SendToken(2), p.now, &mut p.ops));
        let (_, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
        let sizes: Vec<usize> = evs
            .iter()
            .filter_map(|e| match e {
                TcbEvent::Delivered(d) => Some(d.len()),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![100, 200]);
    }

    #[test]
    fn stream_mode_segments_large_writes_at_mss() {
        let mut cfg = NetConfig::host(1500);
        cfg.recv_buffer = 1 << 20;
        let mut p = Pair::established(cfg.clone());
        let mss = cfg.max_tcp_payload();
        let segs = p.client.send(&cfg, vec![0u8; 4 * mss], SendToken(1), p.now, &mut p.ops);
        assert!(segs.len() >= 2, "initial cwnd limits the burst");
        assert!(segs.iter().all(|s| s.payload.len() <= mss));
    }

    #[test]
    fn slow_start_opens_window_as_acks_arrive() {
        let mut cfg = NetConfig::host(1500);
        cfg.recv_buffer = 1 << 20;
        let mut p = Pair::established(cfg.clone());
        let mss = cfg.max_tcp_payload();
        let total = 64 * mss;
        let mut segs = p.client.send(&cfg, vec![0u8; total], SendToken(1), p.now, &mut p.ops);
        let mut delivered = 0usize;
        let mut rounds = 0;
        while delivered < total && rounds < 100 {
            rounds += 1;
            p.tick(SimDuration::from_micros(100));
            let (acks, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
            delivered += evs
                .iter()
                .map(|e| match e {
                    TcbEvent::Delivered(d) => d.len(),
                    _ => 0,
                })
                .sum::<usize>();
            p.tick(SimDuration::from_micros(100));
            let (next, _) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
            segs = next;
        }
        assert_eq!(delivered, total, "after {rounds} rounds");
        assert!(rounds < 30, "slow start should open quickly, took {rounds}");
    }

    #[test]
    fn out_of_order_segment_is_dropped_and_reacked() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let mut segs = p.client.send(&cfg, vec![1u8; 100], SendToken(1), p.now, &mut p.ops);
        segs.extend(p.client.send(&cfg, vec![2u8; 100], SendToken(2), p.now, &mut p.ops));
        // deliver only the second segment: out of order
        let (acks, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs[1..], p.now, &mut p.ops);
        assert!(evs.is_empty(), "no delivery without reassembly (§4.1)");
        assert_eq!(p.server.ooo_drops(), 1);
        assert_eq!(acks.len(), 1, "duplicate ack");
        // now the first arrives; only its bytes are delivered
        let (_, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs[..1], p.now, &mut p.ops);
        assert!(matches!(&evs[..], [TcbEvent::Delivered(d)] if d.len() == 100));
    }

    #[test]
    fn rto_retransmits_lost_segment_and_recovers() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let segs = p.client.send(&cfg, vec![9u8; 256], SendToken(5), p.now, &mut p.ops);
        assert_eq!(segs.len(), 1);
        // segment lost: fire the retransmission timer
        let deadline = p.client.next_deadline().expect("rto armed");
        p.now = deadline;
        let (rexmit, evs) = p.client.on_timer(&cfg, p.now, &mut p.ops);
        assert!(evs.is_empty());
        assert_eq!(rexmit.len(), 1);
        assert!(rexmit[0].is_retransmit);
        assert_eq!(rexmit[0].payload, segs[0].payload);
        assert_eq!(p.client.retransmit_count(), 1);
        // retransmission arrives and completes the exchange
        let (acks, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &rexmit, p.now, &mut p.ops);
        assert!(matches!(&evs[..], [TcbEvent::Delivered(_)]));
        let (_, evs) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        assert_eq!(evs, vec![TcbEvent::SendComplete(SendToken(5))]);
    }

    #[test]
    fn triple_dup_acks_trigger_fast_retransmit() {
        let mut cfg = NetConfig::host(1500);
        cfg.recv_buffer = 1 << 20;
        cfg.initial_cwnd_segments = 16;
        let mut p = Pair::established(cfg.clone());
        let mss = cfg.max_tcp_payload();
        let segs = p.client.send(&cfg, vec![0u8; 8 * mss], SendToken(1), p.now, &mut p.ops);
        assert!(segs.len() >= 5, "{}", segs.len());
        // first segment lost; deliver the rest -> server emits dup ACKs
        let (dup_acks, evs) =
            Pair::deliver(&cfg, 1, 2, &mut p.server, &segs[1..], p.now, &mut p.ops);
        assert!(evs.is_empty());
        assert!(dup_acks.len() >= 3);
        // feed dup ACKs back: the third triggers fast retransmit
        let (out, _) = Pair::deliver(&cfg, 2, 1, &mut p.client, &dup_acks, p.now, &mut p.ops);
        let rexmit: Vec<_> = out.iter().filter(|s| s.is_retransmit).collect();
        assert_eq!(rexmit.len(), 1);
        assert_eq!(rexmit[0].seq, segs[0].seq);
    }

    #[test]
    fn graceful_close_walks_fin_states_both_ways() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let fins = p.client.close(&cfg, p.now, &mut p.ops);
        assert_eq!(fins.len(), 1);
        assert_eq!(p.client.state(), TcpState::FinWait1);
        let (acks, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &fins, p.now, &mut p.ops);
        assert!(evs.contains(&TcbEvent::PeerClosed));
        assert_eq!(p.server.state(), TcpState::CloseWait);
        let (_, _) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        assert_eq!(p.client.state(), TcpState::FinWait2);
        // server closes its half
        let fins2 = p.server.close(&cfg, p.now, &mut p.ops);
        assert_eq!(p.server.state(), TcpState::LastAck);
        let (acks2, evs) = Pair::deliver(&cfg, 2, 1, &mut p.client, &fins2, p.now, &mut p.ops);
        assert!(evs.contains(&TcbEvent::PeerClosed));
        assert_eq!(p.client.state(), TcpState::TimeWait);
        let (_, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &acks2, p.now, &mut p.ops);
        assert!(evs.contains(&TcbEvent::Closed));
        assert_eq!(p.server.state(), TcpState::Closed);
        // client reaps after TIME-WAIT
        let dl = p.client.next_deadline().unwrap();
        p.now = dl;
        let (_, evs) = p.client.on_timer(&cfg, p.now, &mut p.ops);
        assert!(evs.contains(&TcbEvent::Closed));
        assert_eq!(p.client.state(), TcpState::Closed);
    }

    #[test]
    fn close_flushes_pending_data_before_fin() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let mut segs = p.client.send(&cfg, vec![3u8; 64], SendToken(1), p.now, &mut p.ops);
        segs.extend(p.client.close(&cfg, p.now, &mut p.ops));
        // data segment then FIN
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].kind, PacketKind::TcpData);
        assert!(segs[1].flags.fin);
        assert_eq!(segs[1].seq, segs[0].seq + 64);
    }

    #[test]
    fn reset_tears_down_immediately() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let rst = p.client.abort();
        assert!(rst.flags.rst);
        assert_eq!(p.client.state(), TcpState::Closed);
        let (out, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &[rst], p.now, &mut p.ops);
        assert!(out.is_empty());
        assert_eq!(evs, vec![TcbEvent::Reset]);
        assert_eq!(p.server.state(), TcpState::Closed);
    }

    #[test]
    fn receiver_window_blocks_whole_messages_until_space_posted() {
        let mut cfg = qpip_cfg();
        cfg.recv_buffer = 512; // tiny posted space
        let mut p = Pair::established(cfg.clone());
        // 1 KB message cannot be sent into a 512-byte window in message mode
        let segs = p.client.send(&cfg, vec![0u8; 1024], SendToken(1), p.now, &mut p.ops);
        assert!(segs.is_empty(), "blocked by peer window");
        // peer posts more receive space and window-updates via an ACK
        p.server.set_recv_space(4096);
        let upd = {
            // server sends a window-update ack by timer path: emulate by
            // having the server deliver a pure ack through make-shift: a
            // zero-data ACK from its current state.
            let (acks, _) = p.server.on_timer(&cfg, p.now, &mut p.ops);
            if acks.is_empty() {
                // no delack pending: craft the update by sending data
                // ack from server side instead
                p.server.send(&cfg, vec![1u8; 1], SendToken(99), p.now, &mut p.ops)
            } else {
                acks
            }
        };
        let (out, _) = Pair::deliver(&cfg, 2, 1, &mut p.client, &upd, p.now, &mut p.ops);
        let data: Vec<_> = out.iter().filter(|s| !s.payload.is_empty()).collect();
        assert_eq!(data.len(), 1, "window update unblocked the message");
        assert_eq!(data[0].payload.len(), 1024);
    }

    #[test]
    fn rtt_estimator_converges_via_timestamps() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        for i in 0..20u64 {
            let segs = p.client.send(&cfg, vec![0u8; 64], SendToken(i), p.now, &mut p.ops);
            p.tick(SimDuration::from_micros(50));
            let (acks, _) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
            p.tick(SimDuration::from_micros(50));
            let (_, evs) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
            assert!(evs.iter().any(|e| matches!(e, TcbEvent::SendComplete(_))));
        }
        let srtt = p.client.srtt().expect("sampled").as_micros_f64();
        assert!((50.0..200.0).contains(&srtt), "srtt {srtt}");
    }

    #[test]
    fn retry_exhaustion_resets_connection() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        p.client.send(&cfg, vec![0u8; 10], SendToken(1), p.now, &mut p.ops);
        let mut evs_all = Vec::new();
        for _ in 0..40 {
            let Some(dl) = p.client.next_deadline() else { break };
            p.now = dl;
            let (_, evs) = p.client.on_timer(&cfg, p.now, &mut p.ops);
            evs_all.extend(evs);
        }
        assert!(evs_all.contains(&TcbEvent::Reset), "gives up eventually");
        assert_eq!(p.client.state(), TcpState::Closed);
    }

    #[test]
    fn delayed_ack_policy_acks_every_other_segment() {
        let mut cfg = NetConfig::host(9000);
        cfg.initial_cwnd_segments = 8;
        let mut p = Pair::established(cfg.clone());
        let mss = cfg.max_tcp_payload();
        let segs = p.client.send(&cfg, vec![0u8; 4 * mss], SendToken(1), p.now, &mut p.ops);
        assert_eq!(segs.len(), 4);
        let (acks, _) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
        assert_eq!(acks.len(), 2, "one ack per two segments");
        // an odd tail is acked by the delayed-ack timer
        let segs = p.client.send(&cfg, vec![0u8; mss], SendToken(2), p.now, &mut p.ops);
        let (acks, _) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
        assert!(acks.is_empty());
        let dl = p.server.next_deadline().expect("delack timer");
        p.now = dl;
        let (acks, _) = p.server.on_timer(&cfg, p.now, &mut p.ops);
        assert_eq!(acks.len(), 1);
    }

    /// A transfer whose sequence numbers cross the 32-bit wrap: every
    /// comparison in the TCB must be modular.
    #[test]
    fn sequence_space_wraparound_mid_transfer() {
        let cfg = qpip_cfg();
        let now = SimTime::ZERO;
        let mut ops = OpCounters::new();
        // ISS close to the top of the sequence space
        let (mut client, syns) = Tcb::connect(&cfg, ep(1), ep(2), SeqNum(u32::MAX - 2000), now);
        let syn_hdr = to_header(&syns[0], 1, 2);
        let (mut server, synacks) =
            Tcb::accept(&cfg, ep(2), ep(1), &syn_hdr, SeqNum(u32::MAX - 5000), now);
        let (acks, _) = client.on_segment(&cfg, &to_header(&synacks[0], 2, 1), &[], now, &mut ops);
        server.on_segment(&cfg, &to_header(&acks[0], 1, 2), &[], now, &mut ops);
        assert_eq!(client.state(), TcpState::Established);

        // ten 1 KB messages walk the window across the wrap point
        let mut delivered = 0usize;
        for i in 0..10u64 {
            let segs = client.send(&cfg, vec![i as u8; 1000], SendToken(i), now, &mut ops);
            let (acks, evs) = Pair::deliver(&cfg, 1, 2, &mut server, &segs, now, &mut ops);
            for e in &evs {
                if let TcbEvent::Delivered(d) = e {
                    assert_eq!(d.len(), 1000);
                    assert!(d.iter().all(|&b| b == i as u8));
                    delivered += d.len();
                }
            }
            Pair::deliver(&cfg, 2, 1, &mut client, &acks, now, &mut ops);
        }
        assert_eq!(delivered, 10_000);
        assert_eq!(client.bytes_in_flight(), 0, "all acked across the wrap");
    }

    /// Nagle's algorithm (cfg.nodelay = false): small writes coalesce
    /// while data is in flight.
    #[test]
    fn nagle_holds_small_writes_until_ack() {
        let mut cfg = NetConfig::host(1500);
        cfg.nodelay = false;
        let mut p = Pair::established(cfg.clone());
        let s1 = p.client.send(&cfg, vec![1; 10], SendToken(1), p.now, &mut p.ops);
        assert_eq!(s1.len(), 1, "first small write goes out immediately");
        let s2 = p.client.send(&cfg, vec![2; 10], SendToken(2), p.now, &mut p.ops);
        assert!(s2.is_empty(), "second small write held by Nagle");
        // the ACK releases the buffered bytes
        let (acks, _) = Pair::deliver(&cfg, 1, 2, &mut p.server, &s1, p.now, &mut p.ops);
        // (delayed ack may withhold: force via timer if empty)
        let acks = if acks.is_empty() {
            p.now = p.server.next_deadline().unwrap();
            let (a, _) = p.server.on_timer(&cfg, p.now, &mut p.ops);
            a
        } else {
            acks
        };
        let (out, _) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        let data: Vec<_> = out.iter().filter(|s| !s.payload.is_empty()).collect();
        assert_eq!(data.len(), 1, "held write released by the ACK");
        assert_eq!(data[0].payload, vec![2; 10]);
    }

    /// Simultaneous close: both FINs cross on the wire; both ends pass
    /// through CLOSING and reach TIME-WAIT/CLOSED.
    #[test]
    fn simultaneous_close_crosses_fins() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let fin_c = p.client.close(&cfg, p.now, &mut p.ops);
        let fin_s = p.server.close(&cfg, p.now, &mut p.ops);
        assert_eq!(p.client.state(), TcpState::FinWait1);
        assert_eq!(p.server.state(), TcpState::FinWait1);
        // FINs cross
        let (acks_c, evs) = Pair::deliver(&cfg, 2, 1, &mut p.client, &fin_s, p.now, &mut p.ops);
        assert!(evs.contains(&TcbEvent::PeerClosed));
        assert_eq!(p.client.state(), TcpState::Closing);
        let (acks_s, evs) = Pair::deliver(&cfg, 1, 2, &mut p.server, &fin_c, p.now, &mut p.ops);
        assert!(evs.contains(&TcbEvent::PeerClosed));
        assert_eq!(p.server.state(), TcpState::Closing);
        // each side's ACK of the other's FIN finishes the close
        Pair::deliver(&cfg, 2, 1, &mut p.client, &acks_s, p.now, &mut p.ops);
        Pair::deliver(&cfg, 1, 2, &mut p.server, &acks_c, p.now, &mut p.ops);
        assert_eq!(p.client.state(), TcpState::TimeWait);
        assert_eq!(p.server.state(), TcpState::TimeWait);
        // both reap after 2×MSL
        for tcb in [&mut p.client, &mut p.server] {
            let dl = tcb.next_deadline().unwrap();
            let (_, evs) = tcb.on_timer(&cfg, dl, &mut p.ops);
            assert!(evs.contains(&TcbEvent::Closed));
        }
    }

    /// Header prediction: in-order established-state traffic with an
    /// unchanged window takes the fast path; handshake and FIN traffic
    /// does not.
    #[test]
    fn header_prediction_counts_fast_path_hits() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let before = p.ops.fast_path_hits;
        for i in 0..5u64 {
            let segs = p.client.send(&cfg, vec![0; 100], SendToken(i), p.now, &mut p.ops);
            let (acks, _) = Pair::deliver(&cfg, 1, 2, &mut p.server, &segs, p.now, &mut p.ops);
            Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        }
        assert!(
            p.ops.fast_path_hits >= before + 5,
            "steady-state segments predicted: {} -> {}",
            before,
            p.ops.fast_path_hits
        );
    }

    /// ECN negotiation: offered on the SYN with ECE+CWR, confirmed on
    /// the SYN-ACK with ECE (RFC 3168), only when both ends enable it.
    #[test]
    fn ecn_negotiates_only_when_both_sides_enable() {
        let mut on = qpip_cfg();
        on.ecn = true;
        let (_, syns) = Tcb::connect(&on, ep(1), ep(2), SeqNum(0), SimTime::ZERO);
        assert!(syns[0].flags.ece && syns[0].flags.cwr, "SYN offers ECN");

        // peer without ECN: SYN-ACK must not confirm
        let off = qpip_cfg();
        let syn_hdr = to_header(&syns[0], 1, 2);
        let (srv, synacks) = Tcb::accept(&off, ep(2), ep(1), &syn_hdr, SeqNum(100), SimTime::ZERO);
        assert!(!synacks[0].flags.ece);
        assert!(!srv.ecn_negotiated());

        // peer with ECN: confirmed both ends
        let (srv, synacks) = Tcb::accept(&on, ep(2), ep(1), &syn_hdr, SeqNum(100), SimTime::ZERO);
        assert!(synacks[0].flags.ece && !synacks[0].flags.cwr);
        assert!(srv.ecn_negotiated());
        let (mut client, _) = Tcb::connect(&on, ep(1), ep(2), SeqNum(0), SimTime::ZERO);
        let mut ops = OpCounters::new();
        client.on_segment(&on, &to_header(&synacks[0], 2, 1), &[], SimTime::ZERO, &mut ops);
        assert!(client.ecn_negotiated());
    }

    /// The full CE → ECE → window-reduction → CWR cycle, with at most
    /// one reduction per window of data.
    #[test]
    fn ecn_ce_mark_halves_window_once_and_cwr_stops_echo() {
        let mut cfg = qpip_cfg();
        cfg.ecn = true;
        cfg.initial_cwnd_segments = 8;
        let mut p = Pair::established(cfg.clone());
        assert!(p.client.ecn_negotiated() && p.server.ecn_negotiated());
        let cwnd_before = p.client.cwnd();

        // client sends a marked data segment (the fabric set CE)
        let segs = p.client.send(&cfg, vec![1; 500], SendToken(1), p.now, &mut p.ops);
        assert!(segs[0].ect, "negotiated data segments are ECT");
        let hdr = to_header(&segs[0], 1, 2);
        let (acks, _) =
            p.server.on_segment_marked(&cfg, &hdr, &segs[0].payload, true, p.now, &mut p.ops);
        // delayed-ack policy may withhold: force with a second segment
        let acks = if acks.is_empty() {
            let segs2 = p.client.send(&cfg, vec![2; 500], SendToken(2), p.now, &mut p.ops);
            let hdr2 = to_header(&segs2[0], 1, 2);
            let (a, _) = p.server.on_segment_marked(
                &cfg,
                &hdr2,
                &segs2[0].payload,
                false,
                p.now,
                &mut p.ops,
            );
            a
        } else {
            acks
        };
        assert!(acks[0].flags.ece, "receiver echoes ECE");

        // sender reacts exactly once and schedules CWR
        let (out, _) = Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        assert_eq!(p.client.ecn_reductions(), 1);
        assert!(p.client.cwnd() < cwnd_before, "window reduced");
        // next data segment announces CWR
        let segs3 = p.client.send(&cfg, vec![3; 500], SendToken(3), p.now, &mut p.ops);
        let all: Vec<&SegmentOut> =
            out.iter().chain(segs3.iter()).filter(|s| !s.payload.is_empty()).collect();
        assert!(all.iter().any(|s| s.flags.cwr), "CWR announced");
        // CWR clears the receiver's echo
        let cwr_seg = all.iter().find(|s| s.flags.cwr).unwrap();
        let hdr = to_header(cwr_seg, 1, 2);
        p.server.on_segment_marked(&cfg, &hdr, &cwr_seg.payload, false, p.now, &mut p.ops);
        let segs4 = p.client.send(&cfg, vec![4; 500], SendToken(4), p.now, &mut p.ops);
        let hdr4 = to_header(&segs4[0], 1, 2);
        let (acks, _) =
            p.server.on_segment_marked(&cfg, &hdr4, &segs4[0].payload, false, p.now, &mut p.ops);
        if let Some(a) = acks.first() {
            assert!(!a.flags.ece, "echo stopped after CWR");
        }
    }

    /// Without negotiation, CE marks are ignored entirely.
    #[test]
    fn ce_marks_ignored_without_negotiation() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let segs = p.client.send(&cfg, vec![1; 100], SendToken(1), p.now, &mut p.ops);
        assert!(!segs[0].ect);
        let hdr = to_header(&segs[0], 1, 2);
        let (acks, _) =
            p.server.on_segment_marked(&cfg, &hdr, &segs[0].payload, true, p.now, &mut p.ops);
        assert!(acks.iter().all(|a| !a.flags.ece));
        Pair::deliver(&cfg, 2, 1, &mut p.client, &acks, p.now, &mut p.ops);
        assert_eq!(p.client.ecn_reductions(), 0);
    }

    /// After our FIN is sent, late-arriving data from the peer is still
    /// delivered (half-close: FIN only closes our direction).
    #[test]
    fn half_close_still_receives_peer_data() {
        let mut p = Pair::established(qpip_cfg());
        let cfg = p.cfg.clone();
        let fins = p.client.close(&cfg, p.now, &mut p.ops);
        Pair::deliver(&cfg, 1, 2, &mut p.server, &fins, p.now, &mut p.ops);
        // the server (CLOSE-WAIT) keeps sending
        let segs = p.server.send(&cfg, vec![5; 300], SendToken(9), p.now, &mut p.ops);
        let (_, evs) = Pair::deliver(&cfg, 2, 1, &mut p.client, &segs, p.now, &mut p.ops);
        assert!(
            evs.iter().any(|e| matches!(e, TcbEvent::Delivered(d) if d.len() == 300)),
            "{evs:?}"
        );
    }
}
