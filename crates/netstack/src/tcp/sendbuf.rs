//! The TCP send buffer: retains unacknowledged data for retransmission
//! and maps acknowledgments back to completed send units.
//!
//! Two segmentation policies are supported (§4.1): the QPIP firmware
//! maps one QP message onto exactly one TCP segment ("a segment is a
//! message"), while the host baseline streams bytes at the MSS.

use std::collections::VecDeque;

use qpip_wire::tcp::SeqNum;

use crate::types::{SegmentationPolicy, SendToken};

/// One send unit: a QP message or a socket write.
#[derive(Debug, Clone)]
struct Chunk {
    /// Sequence number of the first byte.
    start: SeqNum,
    /// The data (never empty).
    bytes: Vec<u8>,
    /// Completion token, reported when the last byte is acknowledged.
    token: SendToken,
}

impl Chunk {
    fn end(&self) -> SeqNum {
        self.start + self.bytes.len() as u32
    }
}

/// A segment's worth of data handed to the output path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentData {
    /// Sequence number of the first byte.
    pub seq: SeqNum,
    /// Payload bytes.
    pub bytes: Vec<u8>,
    /// Whether this reaches the current end of buffered data (sets PSH).
    pub psh: bool,
}

/// The send buffer for one connection.
#[derive(Debug, Clone)]
pub struct SendBuffer {
    chunks: VecDeque<Chunk>,
    policy: SegmentationPolicy,
    /// First unacknowledged byte.
    una: SeqNum,
    /// Next byte to transmit for the first time.
    nxt: SeqNum,
    /// Highest sequence number ever transmitted. Unlike `nxt` this never
    /// rewinds on go-back-N, so it is the SND.MAX bound for judging
    /// whether an incoming ACK covers data we actually sent.
    max_sent: SeqNum,
}

impl SendBuffer {
    /// Creates an empty buffer whose first byte will carry `initial_seq`.
    pub fn new(policy: SegmentationPolicy, initial_seq: SeqNum) -> Self {
        SendBuffer {
            chunks: VecDeque::new(),
            policy,
            una: initial_seq,
            nxt: initial_seq,
            max_sent: initial_seq,
        }
    }

    /// Highest sequence number ever handed to the output path (SND.MAX).
    pub fn max_sent(&self) -> SeqNum {
        self.max_sent
    }

    /// First unacknowledged sequence number.
    pub fn una(&self) -> SeqNum {
        self.una
    }

    /// Next never-sent sequence number.
    pub fn nxt(&self) -> SeqNum {
        self.nxt
    }

    /// Sequence number one past the last buffered byte.
    pub fn end(&self) -> SeqNum {
        self.chunks.back().map_or(self.una, Chunk::end)
    }

    /// Bytes sent but not yet acknowledged.
    pub fn bytes_in_flight(&self) -> u64 {
        u64::from(self.nxt - self.una)
    }

    /// Bytes buffered but never sent.
    pub fn bytes_unsent(&self) -> u64 {
        u64::from(self.end() - self.nxt)
    }

    /// Total buffered (unacked + unsent) bytes.
    pub fn bytes_buffered(&self) -> u64 {
        u64::from(self.end() - self.una)
    }

    /// `true` when everything pushed has been acknowledged.
    pub fn is_fully_acked(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Appends one send unit.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty — zero-length sends are handled above
    /// this layer (they complete immediately without touching TCP).
    pub fn push(&mut self, bytes: Vec<u8>, token: SendToken) {
        assert!(!bytes.is_empty(), "zero-length send unit");
        let start = self.end();
        self.chunks.push_back(Chunk { start, bytes, token });
    }

    /// Produces the next new segment to transmit, limited by the peer's
    /// usable window (`window_budget` bytes beyond `nxt`) and, in stream
    /// mode, by `max_payload`. Advances `nxt`. Returns `None` when
    /// nothing can be sent.
    pub fn next_segment(&mut self, max_payload: usize, window_budget: u64) -> Option<SegmentData> {
        let unsent = self.bytes_unsent();
        if unsent == 0 {
            return None;
        }
        let seq = self.nxt;
        let bytes = match self.policy {
            SegmentationPolicy::MessagePerSegment => {
                // the whole chunk or nothing: message boundaries survive
                let chunk = self.chunk_containing(seq)?;
                debug_assert_eq!(chunk.start, seq, "message mode sends whole chunks");
                let len = chunk.bytes.len();
                if (len as u64) > window_budget || len > max_payload {
                    return None;
                }
                chunk.bytes.clone()
            }
            SegmentationPolicy::Stream => {
                let take = unsent.min(window_budget).min(max_payload as u64) as usize;
                if take == 0 {
                    return None;
                }
                self.copy_range(seq, take)
            }
        };
        self.nxt = seq + bytes.len() as u32;
        if self.max_sent.lt(self.nxt) {
            self.max_sent = self.nxt;
        }
        let psh = self.nxt == self.end();
        Some(SegmentData { seq, bytes, psh })
    }

    /// Produces the segment at the front of the unacknowledged region
    /// (for fast retransmit / RTO) without moving `nxt`.
    pub fn retransmit_front(&mut self, max_payload: usize) -> Option<SegmentData> {
        if self.bytes_in_flight() == 0 {
            return None;
        }
        let seq = self.una;
        let bytes = match self.policy {
            SegmentationPolicy::MessagePerSegment => {
                let chunk = self.chunk_containing(seq)?;
                debug_assert_eq!(chunk.start, seq);
                chunk.bytes.clone()
            }
            SegmentationPolicy::Stream => {
                let avail = u64::from(self.nxt - seq).min(max_payload as u64) as usize;
                self.copy_range(seq, avail)
            }
        };
        let end = seq + bytes.len() as u32;
        let psh = end == self.end();
        Some(SegmentData { seq, bytes, psh })
    }

    /// Processes a cumulative acknowledgment. Returns the tokens of send
    /// units whose final byte is now acknowledged, in order.
    ///
    /// ACKs outside `(una, end]` are ignored (the caller classifies
    /// duplicates and out-of-window ACKs before getting here).
    pub fn on_ack(&mut self, ack: SeqNum) -> Vec<SendToken> {
        if !(self.una.lt(ack) && ack.le(self.end())) {
            return Vec::new();
        }
        // In message mode our segments are whole messages, so a
        // well-behaved peer only ever acks on message boundaries. A
        // forged ACK landing mid-message must not drag `una`/`nxt` off a
        // chunk boundary (retransmission resends whole messages); round
        // it down to the last boundary it covers.
        let ack = match self.policy {
            SegmentationPolicy::Stream => ack,
            SegmentationPolicy::MessagePerSegment => {
                let mut boundary = self.una;
                for c in &self.chunks {
                    if c.end().le(ack) {
                        boundary = c.end();
                    } else {
                        break;
                    }
                }
                boundary
            }
        };
        if !self.una.lt(ack) {
            return Vec::new();
        }
        self.una = ack;
        if self.nxt.lt(ack) {
            self.nxt = ack;
        }
        let mut done = Vec::new();
        while let Some(front) = self.chunks.front() {
            if front.end().le(ack) {
                done.push(front.token);
                self.chunks.pop_front();
            } else {
                break;
            }
        }
        done
    }

    /// Collapses the transmit point back to the unacknowledged front
    /// (go-back-N after a retransmission timeout).
    pub fn rewind_to_una(&mut self) {
        self.nxt = self.una;
    }

    fn chunk_containing(&self, seq: SeqNum) -> Option<&Chunk> {
        self.chunks.iter().find(|c| c.start.le(seq) && seq.lt(c.end()))
    }

    /// Copies `len` bytes starting at `seq`, crossing chunk boundaries.
    fn copy_range(&self, seq: SeqNum, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut pos = seq;
        let mut remaining = len;
        for c in &self.chunks {
            if remaining == 0 {
                break;
            }
            if c.end().le(pos) {
                continue;
            }
            let off = (pos - c.start) as usize;
            let take = (c.bytes.len() - off).min(remaining);
            out.extend_from_slice(&c.bytes[off..off + take]);
            pos += take as u32;
            remaining -= take;
        }
        debug_assert_eq!(out.len(), len, "copy_range ran past buffered data");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u32) -> SeqNum {
        SeqNum(n)
    }

    fn msg_buf() -> SendBuffer {
        SendBuffer::new(SegmentationPolicy::MessagePerSegment, seq(1000))
    }

    fn stream_buf() -> SendBuffer {
        SendBuffer::new(SegmentationPolicy::Stream, seq(1000))
    }

    #[test]
    fn message_mode_sends_whole_messages() {
        let mut b = msg_buf();
        b.push(vec![1; 100], SendToken(1));
        b.push(vec![2; 50], SendToken(2));
        let s1 = b.next_segment(16_384, u64::MAX).unwrap();
        assert_eq!((s1.seq, s1.bytes.len(), s1.psh), (seq(1000), 100, false));
        let s2 = b.next_segment(16_384, u64::MAX).unwrap();
        assert_eq!((s2.seq, s2.bytes.len(), s2.psh), (seq(1100), 50, true));
        assert!(b.next_segment(16_384, u64::MAX).is_none());
        assert_eq!(b.bytes_in_flight(), 150);
    }

    #[test]
    fn message_mode_blocks_until_window_fits_whole_message() {
        let mut b = msg_buf();
        b.push(vec![0; 100], SendToken(1));
        assert!(b.next_segment(16_384, 99).is_none(), "no partial messages");
        assert!(b.next_segment(16_384, 100).is_some());
    }

    #[test]
    fn stream_mode_segments_at_mss_and_crosses_chunks() {
        let mut b = stream_buf();
        b.push(vec![1; 100], SendToken(1));
        b.push(vec![2; 100], SendToken(2));
        let s1 = b.next_segment(150, u64::MAX).unwrap();
        assert_eq!(s1.bytes.len(), 150);
        assert_eq!(&s1.bytes[..100], &[1u8; 100][..]);
        assert_eq!(&s1.bytes[100..], &[2u8; 50][..]);
        let s2 = b.next_segment(150, u64::MAX).unwrap();
        assert_eq!(s2.bytes.len(), 50);
        assert!(s2.psh);
    }

    #[test]
    fn stream_mode_respects_window_budget() {
        let mut b = stream_buf();
        b.push(vec![0; 1000], SendToken(1));
        let s = b.next_segment(1460, 300).unwrap();
        assert_eq!(s.bytes.len(), 300);
        assert!(b.next_segment(1460, 0).is_none());
    }

    #[test]
    fn ack_completes_tokens_in_order() {
        let mut b = msg_buf();
        b.push(vec![0; 100], SendToken(7));
        b.push(vec![0; 100], SendToken(8));
        b.next_segment(16_384, u64::MAX);
        b.next_segment(16_384, u64::MAX);
        assert_eq!(b.on_ack(seq(1100)), vec![SendToken(7)]);
        assert_eq!(b.on_ack(seq(1200)), vec![SendToken(8)]);
        assert!(b.is_fully_acked());
        assert_eq!(b.bytes_in_flight(), 0);
    }

    #[test]
    fn partial_ack_completes_nothing_mid_chunk() {
        let mut b = stream_buf();
        b.push(vec![0; 100], SendToken(9));
        b.next_segment(60, u64::MAX);
        b.next_segment(60, u64::MAX);
        assert!(b.on_ack(seq(1060)).is_empty());
        assert_eq!(b.on_ack(seq(1100)), vec![SendToken(9)]);
    }

    #[test]
    fn stale_and_out_of_range_acks_ignored() {
        let mut b = msg_buf();
        b.push(vec![0; 10], SendToken(1));
        b.next_segment(100, u64::MAX);
        assert!(b.on_ack(seq(1000)).is_empty(), "duplicate of una");
        assert!(b.on_ack(seq(999)).is_empty(), "old ack");
        assert!(b.on_ack(seq(2000)).is_empty(), "beyond end");
        assert_eq!(b.una(), seq(1000));
    }

    #[test]
    fn retransmit_front_repeats_unacked_data() {
        let mut b = msg_buf();
        b.push(vec![3; 40], SendToken(1));
        let sent = b.next_segment(100, u64::MAX).unwrap();
        let rexmit = b.retransmit_front(100).unwrap();
        assert_eq!(sent, rexmit);
        assert_eq!(b.bytes_in_flight(), 40, "nxt unchanged by retransmit");
    }

    #[test]
    fn retransmit_front_when_nothing_outstanding_is_none() {
        let mut b = msg_buf();
        assert!(b.retransmit_front(100).is_none());
        b.push(vec![1; 10], SendToken(1));
        assert!(b.retransmit_front(100).is_none(), "unsent data is not in flight");
    }

    #[test]
    fn rewind_resends_from_una() {
        let mut b = stream_buf();
        b.push(vec![5; 200], SendToken(1));
        b.next_segment(100, u64::MAX);
        b.next_segment(100, u64::MAX);
        assert_eq!(b.bytes_unsent(), 0);
        b.rewind_to_una();
        assert_eq!(b.bytes_unsent(), 200);
        let s = b.next_segment(100, u64::MAX).unwrap();
        assert_eq!(s.seq, seq(1000));
    }

    #[test]
    fn ack_beyond_nxt_after_rewind_advances_nxt() {
        let mut b = stream_buf();
        b.push(vec![5; 200], SendToken(1));
        b.next_segment(200, u64::MAX);
        b.rewind_to_una();
        // the old in-flight copy gets acked even though nxt was rewound
        let done = b.on_ack(seq(1200));
        assert_eq!(done, vec![SendToken(1)]);
        assert_eq!(b.nxt(), seq(1200));
        assert_eq!(b.bytes_unsent(), 0);
    }

    #[test]
    fn sequence_numbers_wrap_transparently() {
        let start = SeqNum(u32::MAX - 50);
        let mut b = SendBuffer::new(SegmentationPolicy::Stream, start);
        b.push(vec![0; 100], SendToken(1));
        let s = b.next_segment(100, u64::MAX).unwrap();
        assert_eq!(s.seq, start);
        assert_eq!(b.nxt(), start + 100);
        let done = b.on_ack(start + 100);
        assert_eq!(done, vec![SendToken(1)]);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn empty_push_panics() {
        msg_buf().push(Vec::new(), SendToken(0));
    }

    #[test]
    fn max_sent_survives_rewind() {
        let mut b = stream_buf();
        b.push(vec![5; 200], SendToken(1));
        b.next_segment(200, u64::MAX);
        assert_eq!(b.max_sent(), seq(1200));
        b.rewind_to_una();
        assert_eq!(b.nxt(), seq(1000));
        assert_eq!(b.max_sent(), seq(1200), "SND.MAX never rewinds");
    }

    #[test]
    fn message_mode_partial_ack_rounds_down_to_message_boundary() {
        let mut b = msg_buf();
        b.push(vec![0; 100], SendToken(1));
        b.push(vec![0; 100], SendToken(2));
        b.next_segment(16_384, u64::MAX);
        b.next_segment(16_384, u64::MAX);
        // a forged ack into the middle of the second message only
        // acknowledges the first (whole) one
        assert_eq!(b.on_ack(seq(1150)), vec![SendToken(1)]);
        assert_eq!(b.una(), seq(1100));
        assert_eq!(b.nxt(), seq(1200));
        // a mid-first-message ack acknowledges nothing at all
        let mut c = msg_buf();
        c.push(vec![0; 100], SendToken(3));
        c.next_segment(16_384, u64::MAX);
        assert!(c.on_ack(seq(1050)).is_empty());
        assert_eq!(c.una(), seq(1000));
        assert_eq!(c.nxt(), seq(1100));
    }
}
