//! The TCB invariant oracle.
//!
//! [`check_tcb`] audits one [`Tcb`] against the structural invariants
//! the state machine must preserve across *every* event — segment
//! arrival, timer expiry, or application call. The conformance harness
//! (`qpip-conform`) runs it after every injected segment, the fuzz loop
//! uses it as its crash detector, and debug builds of the engine run it
//! inline after every mutating call so the DES worlds inherit the
//! checks for free.
//!
//! Monotonicity properties (snd_una/rcv_nxt never move backwards, bytes
//! in flight never exceed the window that was open when they were sent)
//! cannot be judged from one state alone; callers keep a
//! [`TcbSnapshot`] from the previous check and pass it back in.

use qpip_wire::tcp::SeqNum;

use crate::tcp::tcb::{Tcb, TcpState};
use crate::types::ConnId;

/// One violated invariant: a stable name for matching in tests, the
/// connection it occurred on (filled in by the engine), and a
/// human-readable account of the offending values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable identifier of the violated invariant.
    pub invariant: &'static str,
    /// The connection the violation occurred on, when known.
    pub conn: Option<ConnId>,
    /// The offending values, rendered.
    pub detail: String,
}

impl InvariantViolation {
    pub(crate) fn for_conn(mut self, conn: ConnId) -> Self {
        self.conn = Some(conn);
        self
    }
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.conn {
            Some(c) => {
                write!(f, "invariant `{}` violated on {}: {}", self.invariant, c, self.detail)
            }
            None => write!(f, "invariant `{}` violated: {}", self.invariant, self.detail),
        }
    }
}

/// The slice of TCB state needed to judge cross-event invariants.
#[derive(Debug, Clone, Copy)]
pub struct TcbSnapshot {
    /// SND.UNA at the previous check.
    pub snd_una: SeqNum,
    /// RCV.NXT at the previous check.
    pub rcv_nxt: SeqNum,
    /// Bytes in flight at the previous check.
    pub bytes_in_flight: u64,
    /// State at the previous check.
    pub state: TcpState,
}

impl TcbSnapshot {
    /// Captures the snapshot for the next check.
    pub fn of(tcb: &Tcb) -> TcbSnapshot {
        TcbSnapshot {
            snd_una: tcb.snd_una(),
            rcv_nxt: tcb.rcv_nxt(),
            bytes_in_flight: tcb.bytes_in_flight(),
            state: tcb.state(),
        }
    }
}

macro_rules! fail {
    ($name:expr, $($arg:tt)*) => {
        return Err(InvariantViolation {
            invariant: $name,
            conn: None,
            detail: format!($($arg)*),
        })
    };
}

/// Audits one TCB. `prev` is the snapshot taken at the previous check
/// of the same connection (`None` on the first check after creation).
///
/// # Errors
///
/// The first violated invariant, with a stable name and rendered values.
pub fn check_tcb(tcb: &Tcb, prev: Option<&TcbSnapshot>) -> Result<(), InvariantViolation> {
    let state = tcb.state();
    let una = tcb.snd_una();
    let nxt = tcb.snd_nxt();
    let end = tcb.snd_buffered_end();

    // -- send sequence space: SND.UNA ≤ SND.NXT ≤ end of buffered data
    if !una.le(nxt) || !nxt.le(end) {
        fail!("snd_seq_order", "snd_una={} snd_nxt={} buffered_end={}", una.0, nxt.0, end.0);
    }
    // -- byte accounting mirrors the sequence space exactly
    if tcb.bytes_in_flight() != u64::from(nxt - una) {
        fail!(
            "in_flight_accounting",
            "bytes_in_flight={} but snd_nxt-snd_una={}",
            tcb.bytes_in_flight(),
            nxt - una
        );
    }
    if tcb.bytes_buffered() != u64::from(end - una) {
        fail!(
            "buffered_accounting",
            "bytes_buffered={} but buffered_end-snd_una={}",
            tcb.bytes_buffered(),
            end - una
        );
    }

    // -- congestion controller sanity: both quantities are lower-bounded
    // by construction (cwnd ≥ 1 MSS, ssthresh ≥ 2 MSS after any loss)
    if tcb.cwnd() == 0 {
        fail!("cwnd_positive", "cwnd=0");
    }
    if tcb.ssthresh() == 0 {
        fail!("ssthresh_positive", "ssthresh=0");
    }

    // -- retransmission taxonomy is exhaustive
    if tcb.rto_retransmits() + tcb.fast_retransmits() != tcb.retransmit_count() {
        fail!(
            "retransmit_split",
            "rto={} + fast={} != total={}",
            tcb.rto_retransmits(),
            tcb.fast_retransmits(),
            tcb.retransmit_count()
        );
    }

    // -- FIN bookkeeping agrees with the state machine
    if tcb.fin_sent()
        && !matches!(
            state,
            TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::Closing
                | TcpState::TimeWait
                | TcpState::LastAck
                | TcpState::Closed
        )
    {
        fail!("fin_sent_state", "fin sent but state is {state:?}");
    }
    if tcb.peer_fin_rcvd()
        && !matches!(
            state,
            TcpState::CloseWait
                | TcpState::LastAck
                | TcpState::Closing
                | TcpState::TimeWait
                | TcpState::Closed
        )
    {
        fail!("peer_fin_state", "peer FIN consumed but state is {state:?}");
    }

    // -- timer ⇔ work consistency
    match state {
        TcpState::Closed => {
            if tcb.next_deadline().is_some() {
                fail!("closed_quiescent", "closed connection still has an armed timer");
            }
        }
        TcpState::TimeWait => {
            if !tcb.timewait_armed() {
                fail!("timewait_timer", "TIME-WAIT without its reaping timer armed");
            }
            if tcb.rto_armed() {
                fail!("timewait_timer", "TIME-WAIT with a retransmission timer armed");
            }
        }
        _ => {
            if tcb.timewait_armed() {
                fail!("timewait_timer", "TIME-WAIT timer armed in {state:?}");
            }
            // the RTO is armed exactly when something needs retransmitting:
            // unacked data, an unacked SYN/SYN-ACK, or an unacked FIN (the
            // subset has no persist timer, so window-blocked-but-unsent
            // data keeps the timer off — the receiver re-advertises).
            if tcb.rto_armed() != tcb.has_outstanding() {
                fail!(
                    "rto_iff_outstanding",
                    "rto_armed={} but outstanding={} in {state:?} (in_flight={} fin_sent={})",
                    tcb.rto_armed(),
                    tcb.has_outstanding(),
                    tcb.bytes_in_flight(),
                    tcb.fin_sent()
                );
            }
        }
    }

    // -- cross-event checks against the previous snapshot
    if let Some(p) = prev {
        if !p.snd_una.le(una) {
            fail!("snd_una_monotonic", "snd_una moved backwards: {} -> {}", p.snd_una.0, una.0);
        }
        // rcv_nxt is assigned (not advanced) when the SYN-ACK arrives in
        // SYN-SENT, so the monotonicity claim starts one check later
        if p.state != TcpState::SynSent && !p.rcv_nxt.le(tcb.rcv_nxt()) {
            fail!(
                "rcv_nxt_monotonic",
                "rcv_nxt moved backwards: {} -> {}",
                p.rcv_nxt.0,
                tcb.rcv_nxt().0
            );
        }
        // flight never exceeds the window that was open when it was
        // filled: new transmissions respect min(snd_wnd, cwnd) *now*,
        // while bytes already in flight are grandfathered when the peer
        // shrinks its window or a timeout collapses cwnd
        let bound = tcb.snd_wnd().max(tcb.cwnd()).max(p.bytes_in_flight);
        if tcb.bytes_in_flight() > bound {
            fail!(
                "flight_window_bound",
                "bytes_in_flight={} exceeds max(snd_wnd={}, cwnd={}, prev_flight={})",
                tcb.bytes_in_flight(),
                tcb.snd_wnd(),
                tcb.cwnd(),
                p.bytes_in_flight
            );
        }
    }

    Ok(())
}
