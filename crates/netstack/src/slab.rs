//! Generation-tagged slab for connection state.
//!
//! The engine's segment hot path resolves a [`ConnId`] on every
//! received packet and every upper-layer call. A `HashMap<ConnId, _>`
//! pays a hash + probe per resolution; at thousands of flows that is
//! the dominant demux cost after the endpoint lookup. The slab makes
//! resolution one bounds check + one generation compare: the id's low
//! bits index a `Vec` directly, and the id's generation must match the
//! slot's current generation (bumped on every removal), so an id from
//! a reaped connection can never alias the slot's next occupant.
//!
//! Same slot+generation discipline as `qpip_sim::kernel::Simulator`'s
//! event ids — stale handles are rejected, not misdelivered.

use crate::types::ConnId;

#[derive(Debug)]
struct Slot<T> {
    /// Current generation; ids minted for this slot carry it.
    generation: u32,
    val: Option<T>,
}

/// A slab of connection entries indexed by [`ConnId`].
#[derive(Debug)]
pub(crate) struct ConnSlab<T> {
    slots: Vec<Slot<T>>,
    /// LIFO free list of vacant slot indices.
    free: Vec<u32>,
    live: usize,
}

impl<T> ConnSlab<T> {
    pub fn new() -> Self {
        ConnSlab { slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Inserts an entry, returning its id (slot + current generation).
    pub fn insert(&mut self, val: T) -> ConnId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                assert!(s <= ConnId::SLOT_MASK, "connection slab full");
                self.slots.push(Slot { generation: 1, val: None });
                s
            }
        };
        let entry = &mut self.slots[slot as usize];
        debug_assert!(entry.val.is_none());
        entry.val = Some(val);
        self.live += 1;
        ConnId::from_parts(slot, entry.generation)
    }

    fn slot_of(&self, id: ConnId) -> Option<usize> {
        let s = id.slot() as usize;
        (self.slots.get(s)?.generation == id.generation()).then_some(s)
    }

    /// Resolves a live id; stale (reaped) ids return `None`.
    pub fn get(&self, id: ConnId) -> Option<&T> {
        self.slots[self.slot_of(id)?].val.as_ref()
    }

    /// Mutable resolution of a live id.
    pub fn get_mut(&mut self, id: ConnId) -> Option<&mut T> {
        let s = self.slot_of(id)?;
        self.slots[s].val.as_mut()
    }

    /// Removes an entry, bumping the slot's generation so the id (and
    /// any copy of it held elsewhere) goes stale immediately.
    pub fn remove(&mut self, id: ConnId) -> Option<T> {
        let s = self.slot_of(id)?;
        let entry = &mut self.slots[s];
        let val = entry.val.take()?;
        entry.generation =
            if entry.generation == ConnId::GEN_MAX { 1 } else { entry.generation + 1 };
        self.free.push(s as u32);
        self.live -= 1;
        Some(val)
    }

    /// Live entries in slot order (deterministic, unlike a hash map).
    pub fn iter(&self) -> impl Iterator<Item = (ConnId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| (ConnId::from_parts(i as u32, s.generation), v))
        })
    }

    /// Live values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.val.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: ConnSlab<&str> = ConnSlab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get_mut(b), Some(&mut "b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None, "removed id is dead");
        assert_eq!(s.remove(a), None, "double remove is a no-op");
    }

    #[test]
    fn reused_slot_rejects_stale_id() {
        let mut s: ConnSlab<u32> = ConnSlab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a.slot(), b.slot(), "LIFO free list reuses the slot");
        assert_ne!(a, b, "but the generation differs");
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn ids_are_never_zero() {
        let mut s: ConnSlab<u8> = ConnSlab::new();
        let a = s.insert(0);
        assert_ne!(a, ConnId(0));
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let mut s: ConnSlab<u32> = ConnSlab::new();
        let ids: Vec<ConnId> = (0..10).map(|i| s.insert(i)).collect();
        s.remove(ids[3]);
        s.remove(ids[7]);
        let vals: Vec<u32> = s.values().copied().collect();
        assert_eq!(vals, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        let keys: Vec<ConnId> = s.iter().map(|(id, _)| id).collect();
        assert!(keys.windows(2).all(|w| w[0].slot() < w[1].slot()));
    }
}
