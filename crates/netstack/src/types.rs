//! Shared types for the protocol engines: endpoints, configuration,
//! emitted events and operation counters.

use core::fmt;
use std::net::Ipv6Addr;

use qpip_sim::time::SimDuration;
use qpip_wire::packet::Packet;

/// A transport endpoint: IPv6 address + port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv6 address.
    pub addr: Ipv6Addr,
    /// Transport port.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(addr: Ipv6Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]:{}", self.addr, self.port)
    }
}

/// Identifier of a TCP connection inside one [`crate::engine::Engine`].
///
/// The value packs a slab slot (low 20 bits) and a slot generation
/// (high 12 bits, never 0) so the engine resolves an id with one
/// bounds-checked array access instead of a hash lookup, while stale
/// ids from a reaped connection are rejected by the generation check
/// rather than silently matching the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

impl ConnId {
    pub(crate) const SLOT_BITS: u32 = 20;
    pub(crate) const SLOT_MASK: u32 = (1 << Self::SLOT_BITS) - 1;
    /// Generations wrap within 12 bits, skipping 0 so no live id is 0.
    pub(crate) const GEN_MAX: u32 = (1 << (32 - Self::SLOT_BITS)) - 1;

    pub(crate) fn from_parts(slot: u32, generation: u32) -> ConnId {
        debug_assert!(slot <= Self::SLOT_MASK);
        debug_assert!((1..=Self::GEN_MAX).contains(&generation));
        ConnId((generation << Self::SLOT_BITS) | slot)
    }

    pub(crate) fn slot(self) -> u32 {
        self.0 & Self::SLOT_MASK
    }

    pub(crate) fn generation(self) -> u32 {
        self.0 >> Self::SLOT_BITS
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// Caller-chosen token identifying one send unit (a QP work request or a
/// socket write); reported back when the unit is fully acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SendToken(pub u64);

/// How user data maps onto TCP segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentationPolicy {
    /// One QP message per TCP segment, the paper's mapping (§4.1): the
    /// segment carries the whole message regardless of MSS (bounded only
    /// by the fabric MTU), and message boundaries survive in the stream.
    MessagePerSegment,
    /// Conventional byte-stream segmentation at the connection MSS
    /// (host-stack behaviour); messages may be split or coalesced.
    Stream,
}

/// When acknowledgments are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// ACK every data segment immediately (QPIP firmware behaviour —
    /// keeps the NIC pipeline busy and WR completion latency low).
    Immediate,
    /// Standard delayed ACK: ack every second segment, or after the
    /// given timeout, whichever first.
    Delayed(SimDuration),
}

/// Engine configuration (one per node/stack instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Largest IPv6 packet (header + payload) the attached link accepts.
    pub mtu: usize,
    /// Data-to-segment mapping.
    pub segmentation: SegmentationPolicy,
    /// ACK generation policy.
    pub ack_policy: AckPolicy,
    /// Offer/consume RFC 1323 timestamps.
    pub timestamps: bool,
    /// Offer/consume RFC 1323 window scaling.
    pub window_scale: bool,
    /// Disable Nagle (ttcp sets `TCP_NODELAY`, §4.2.1; the QPIP firmware
    /// always sends messages immediately).
    pub nodelay: bool,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Default receive-buffer size in bytes (the advertised window
    /// before any explicit [`crate::engine::Engine::set_recv_space`]
    /// call; QPIP overrides it with posted-WR space).
    pub recv_buffer: usize,
    /// Negotiate and react to Explicit Congestion Notification
    /// (RFC 3168) — §5.2: inter-network protocols bring "network-based
    /// mechanisms such as RED or ECN" to the SAN.
    pub ecn: bool,
}

impl NetConfig {
    /// The QPIP firmware configuration for a given fabric MTU.
    pub fn qpip(mtu: usize) -> Self {
        NetConfig {
            mtu,
            segmentation: SegmentationPolicy::MessagePerSegment,
            ack_policy: AckPolicy::Immediate,
            timestamps: true,
            window_scale: true,
            nodelay: true,
            min_rto: SimDuration::from_millis(10),
            initial_cwnd_segments: 2,
            recv_buffer: 256 * 1024,
            ecn: false,
        }
    }

    /// A Linux-2.4-like host stack configuration for a given link MTU.
    pub fn host(mtu: usize) -> Self {
        NetConfig {
            mtu,
            segmentation: SegmentationPolicy::Stream,
            ack_policy: AckPolicy::Delayed(SimDuration::from_millis(40)),
            timestamps: true,
            window_scale: true,
            nodelay: true,
            min_rto: SimDuration::from_millis(200),
            initial_cwnd_segments: 2,
            recv_buffer: 128 * 1024,
            ecn: false,
        }
    }

    /// Maximum TCP payload for this MTU given our fixed header sizes
    /// (IPv6 40 + TCP 20 + timestamps 12 when enabled).
    pub fn max_tcp_payload(&self) -> usize {
        let tcp_hdr = 20 + if self.timestamps { 12 } else { 0 };
        self.mtu.saturating_sub(40 + tcp_hdr)
    }

    /// Maximum UDP payload for this MTU (IPv6 40 + UDP 8).
    pub fn max_udp_payload(&self) -> usize {
        self.mtu.saturating_sub(48)
    }
}

/// Classification of an outgoing packet, used by the NIC cost model
/// (Tables 2 & 3 distinguish data from ACK processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// TCP segment carrying payload (may also acknowledge).
    TcpData,
    /// Pure TCP acknowledgment (no payload).
    TcpAck,
    /// TCP connection management (SYN/SYN-ACK/FIN/RST).
    TcpControl,
    /// UDP datagram.
    Udp,
}

/// A fully formed IPv6 packet ready for link framing.
#[derive(Debug, Clone)]
pub struct PacketOut {
    /// Destination IPv6 address (link resolution is the caller's job).
    pub dst: Ipv6Addr,
    /// The complete IPv6 packet bytes (with transmit headroom in front).
    pub bytes: Packet,
    /// Cost-model classification.
    pub kind: PacketKind,
    /// Connection this packet belongs to, when TCP.
    pub conn: Option<ConnId>,
}

impl PacketOut {
    /// TCP/UDP payload bytes carried (0 for pure ACKs/control).
    pub fn payload_len(&self) -> usize {
        // IPv6 payload length minus transport header; cheaper to track at
        // build time, but recomputing keeps PacketOut construction simple.
        self.payload_len_internal().unwrap_or(0)
    }

    fn payload_len_internal(&self) -> Option<usize> {
        use qpip_wire::ipv6::Ipv6Header;
        use qpip_wire::tcp::TcpHeader;
        use qpip_wire::udp::UDP_HEADER_LEN;
        let (ip, n) = Ipv6Header::parse(&self.bytes).ok()?;
        let seg = &self.bytes[n..n + usize::from(ip.payload_len)];
        match self.kind {
            PacketKind::Udp => Some(seg.len().saturating_sub(UDP_HEADER_LEN)),
            _ => {
                let (_, hl) = TcpHeader::parse(seg).ok()?;
                Some(seg.len() - hl)
            }
        }
    }
}

/// Events and packets produced by an engine call.
#[derive(Debug)]
pub enum Emit {
    /// Transmit this packet.
    Packet(PacketOut),
    /// A UDP datagram arrived for a bound port.
    UdpDelivered {
        /// The local bound port.
        port: u16,
        /// Sender endpoint.
        src: Endpoint,
        /// Datagram payload.
        payload: Vec<u8>,
    },
    /// An active open completed (client side).
    TcpConnected {
        /// The connection.
        conn: ConnId,
    },
    /// A passive open completed (server side): a new connection was
    /// spawned from a listener.
    TcpAccepted {
        /// The listening port that matched.
        listener_port: u16,
        /// The new connection.
        conn: ConnId,
        /// The peer's endpoint.
        peer: Endpoint,
    },
    /// In-order payload arrived on a connection. With
    /// [`SegmentationPolicy::MessagePerSegment`] each event is exactly
    /// one QP message (one segment).
    TcpDelivered {
        /// The connection.
        conn: ConnId,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// Every byte of the send unit identified by `token` is now
    /// acknowledged (§3: "This WR completes when all the data for that
    /// message is acknowledged by the destination").
    TcpSendComplete {
        /// The connection.
        conn: ConnId,
        /// The caller's token for the completed unit.
        token: SendToken,
    },
    /// The peer closed its half and all data was delivered.
    TcpPeerClosed {
        /// The connection.
        conn: ConnId,
    },
    /// The connection is fully closed and its state removed.
    TcpClosed {
        /// The connection.
        conn: ConnId,
    },
    /// The connection was reset.
    TcpReset {
        /// The connection.
        conn: ConnId,
    },
}

/// Counters of the arithmetic and data-touching work a protocol
/// operation performed; the NIC/host cost models convert these to cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// 32-bit multiply/divide operations (expensive on the LANai, which
    /// has no hardware multiply — §4.2.2).
    pub muls: u64,
    /// Bytes run through the internet checksum.
    pub csum_bytes: u64,
    /// Transport/IP headers built.
    pub headers_built: u64,
    /// Transport/IP headers parsed.
    pub headers_parsed: u64,
    /// RTT estimator updates performed.
    pub rtt_updates: u64,
    /// Header-prediction fast-path hits on receive.
    pub fast_path_hits: u64,
    /// Receive segments that took the slow path.
    pub slow_path_hits: u64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        OpCounters::default()
    }

    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: OpCounters) {
        self.muls += other.muls;
        self.csum_bytes += other.csum_bytes;
        self.headers_built += other.headers_built;
        self.headers_parsed += other.headers_parsed;
        self.rtt_updates += other.rtt_updates;
        self.fast_path_hits += other.fast_path_hits;
        self.slow_path_hits += other.slow_path_hits;
    }

    /// Returns the counters and resets them to zero.
    pub fn take(&mut self) -> OpCounters {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(Ipv6Addr::LOCALHOST, 80);
        assert_eq!(e.to_string(), "[::1]:80");
    }

    #[test]
    fn qpip_config_uses_message_segmentation_and_immediate_acks() {
        let c = NetConfig::qpip(16 * 1024);
        assert_eq!(c.segmentation, SegmentationPolicy::MessagePerSegment);
        assert_eq!(c.ack_policy, AckPolicy::Immediate);
        assert!(c.timestamps && c.window_scale && c.nodelay);
    }

    #[test]
    fn payload_budgets_account_for_headers() {
        let c = NetConfig::host(1500);
        assert_eq!(c.max_tcp_payload(), 1500 - 40 - 32);
        assert_eq!(c.max_udp_payload(), 1500 - 48);
        let mut no_ts = c;
        no_ts.timestamps = false;
        assert_eq!(no_ts.max_tcp_payload(), 1500 - 60);
    }

    #[test]
    fn op_counters_absorb_and_take() {
        let mut a = OpCounters { muls: 2, csum_bytes: 10, ..OpCounters::new() };
        let b = OpCounters { muls: 3, headers_built: 1, ..OpCounters::new() };
        a.absorb(b);
        assert_eq!(a.muls, 5);
        assert_eq!(a.csum_bytes, 10);
        assert_eq!(a.headers_built, 1);
        let taken = a.take();
        assert_eq!(taken.muls, 5);
        assert_eq!(a, OpCounters::new());
    }
}
