//! Randomized equivalence: the zero-copy codec (headroom [`Packet`],
//! in-place header emission, wide-word checksum) must produce wire
//! bytes identical to the concat-of-Vecs encoding it replaced, for
//! arbitrary TCP options, flags and payloads. The legacy path is
//! replicated here verbatim — every layer allocating its own vector
//! and a two-byte scalar checksum — so any divergence in the rewrite
//! shows up as a byte diff.

use std::net::Ipv6Addr;

use qpip_netstack::codec::{build_tcp_packet, build_udp_packet, decode_packet, Decoded};
use qpip_netstack::tcp::SegmentOut;
use qpip_netstack::types::{Endpoint, PacketKind};
use qpip_sim::rng::SplitMix64;
use qpip_wire::ipv6::{Ecn, Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};
use qpip_wire::udp::UdpHeader;

const CASES: usize = 256;

// ---------------------------------------------------------------------
// The legacy encode path, byte for byte.
// ---------------------------------------------------------------------

fn scalar_checksum_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut words = data.chunks_exact(2);
    for w in &mut words {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [b] = words.remainder() {
        sum += u32::from(u16::from_be_bytes([*b, 0]));
    }
    sum
}

fn scalar_transport_checksum(src: Ipv6Addr, dst: Ipv6Addr, nh: u8, segment: &[u8]) -> u16 {
    let mut s = scalar_checksum_sum(&src.octets());
    s += scalar_checksum_sum(&dst.octets());
    let len = segment.len() as u32;
    s += (len >> 16) + (len & 0xffff);
    s += u32::from(nh);
    s += scalar_checksum_sum(segment);
    while s >> 16 != 0 {
        s = (s & 0xffff) + (s >> 16);
    }
    !(s as u16)
}

fn legacy_wrap_ipv6(src: Ipv6Addr, dst: Ipv6Addr, nh: NextHeader, transport: Vec<u8>) -> Vec<u8> {
    let ip = Ipv6Header::new(src, dst, nh, transport.len() as u16);
    let mut pkt = Vec::with_capacity(IPV6_HEADER_LEN + transport.len());
    ip.encode(&mut pkt);
    pkt.extend_from_slice(&transport);
    pkt
}

fn legacy_build_udp_packet(src: Endpoint, dst: Endpoint, payload: &[u8]) -> Vec<u8> {
    let udp = UdpHeader::for_payload(src.port, dst.port, payload.len());
    let mut seg = Vec::with_capacity(8 + payload.len());
    udp.encode(&mut seg);
    seg.extend_from_slice(payload);
    let ck = scalar_transport_checksum(src.addr, dst.addr, NextHeader::Udp.code(), &seg);
    let ck = if ck == 0 { 0xffff } else { ck };
    seg[6..8].copy_from_slice(&ck.to_be_bytes());
    legacy_wrap_ipv6(src.addr, dst.addr, NextHeader::Udp, seg)
}

fn legacy_build_tcp_packet(src: Endpoint, dst: Endpoint, seg: &SegmentOut) -> Vec<u8> {
    let hdr = TcpHeader {
        src_port: src.port,
        dst_port: dst.port,
        seq: seg.seq,
        ack: seg.ack,
        flags: seg.flags,
        window: seg.window,
        checksum: 0,
        urgent: 0,
        options: seg.options,
    };
    let mut bytes = Vec::with_capacity(hdr.encoded_len() + seg.payload.len());
    hdr.encode(&mut bytes);
    bytes.extend_from_slice(&seg.payload);
    let ck = scalar_transport_checksum(src.addr, dst.addr, NextHeader::Tcp.code(), &bytes);
    bytes[16..18].copy_from_slice(&ck.to_be_bytes());
    let mut pkt = legacy_wrap_ipv6(src.addr, dst.addr, NextHeader::Tcp, bytes);
    if seg.ect {
        Ipv6Header::set_ecn_in_packet(&mut pkt, Ecn::Capable);
    }
    pkt
}

// ---------------------------------------------------------------------
// Arbitrary inputs.
// ---------------------------------------------------------------------

fn arb_endpoint(r: &mut SplitMix64) -> Endpoint {
    let mut o = [0u8; 16];
    r.fill_bytes(&mut o);
    Endpoint { addr: Ipv6Addr::from(o), port: r.next_u32() as u16 }
}

fn arb_segment(r: &mut SplitMix64) -> SegmentOut {
    SegmentOut {
        seq: SeqNum(r.next_u32()),
        ack: SeqNum(r.next_u32()),
        flags: TcpFlags::from_byte(r.below(64) as u8),
        window: r.next_u32() as u16,
        options: TcpOptions {
            mss: r.flip().then(|| r.next_u32() as u16),
            window_scale: r.flip().then(|| r.below(15) as u8),
            timestamps: r.flip().then(|| (r.next_u32(), r.next_u32())),
        },
        payload: {
            let len = r.range_usize(0, 1461);
            r.bytes(len)
        },
        kind: PacketKind::TcpData,
        is_retransmit: false,
        ect: r.flip(),
    }
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

#[test]
fn tcp_packets_match_legacy_encoding_byte_for_byte() {
    let mut r = SplitMix64::new(0xc0dec1);
    for _ in 0..CASES {
        let (src, dst) = (arb_endpoint(&mut r), arb_endpoint(&mut r));
        let seg = arb_segment(&mut r);
        let pkt = build_tcp_packet(src, dst, &seg);
        let legacy = legacy_build_tcp_packet(src, dst, &seg);
        assert_eq!(&pkt[..], &legacy[..], "seg {seg:?}");
        // and the borrowed decode sees the payload the legacy copy saw
        match decode_packet(&pkt).unwrap() {
            Decoded::Tcp { payload, .. } => assert_eq!(payload, &seg.payload[..]),
            other => panic!("decoded as {other:?}"),
        }
    }
}

#[test]
fn udp_packets_match_legacy_encoding_byte_for_byte() {
    let mut r = SplitMix64::new(0xc0dec2);
    for _ in 0..CASES {
        let (src, dst) = (arb_endpoint(&mut r), arb_endpoint(&mut r));
        let plen = r.range_usize(0, 2048);
        let payload = r.bytes(plen);
        let pkt = build_udp_packet(src, dst, &payload);
        let legacy = legacy_build_udp_packet(src, dst, &payload);
        assert_eq!(&pkt[..], &legacy[..], "payload len {}", payload.len());
        match decode_packet(&pkt).unwrap() {
            Decoded::Udp { payload: got, .. } => assert_eq!(got, &payload[..]),
            other => panic!("decoded as {other:?}"),
        }
    }
}
