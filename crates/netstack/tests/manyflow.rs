//! Many-flow correctness: 256+ concurrent connections through one
//! engine pair under seeded loss and reordering. Every flow must
//! deliver its bytes exactly once and in order, every send token must
//! complete exactly once, and after all flows close the connection
//! slab, demux table, and timer index must all drain to empty — a
//! leaked timer or slab entry here means the O(1) index and the
//! connection table have fallen out of sync.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv6Addr;
use std::sync::Arc;

use qpip_netstack::engine::Engine;
use qpip_netstack::tcp::TcpState;
use qpip_netstack::types::{ConnId, Emit, Endpoint, NetConfig, SendToken};
use qpip_sim::rng::SplitMix64;
use qpip_sim::time::{SimDuration, SimTime};
use qpip_trace::{FlightRecorder, TraceEvent, Tracer};

const FLOWS: usize = 256;
const MSGS: usize = 2;
const BASE_PORT: u16 = 1024;

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

/// A wire with seeded loss and adjacent-packet reordering between a
/// client engine (all flows originate here) and a server engine.
struct Net {
    a: Engine,
    b: Engine,
    now: SimTime,
    queue: VecDeque<(bool, qpip_wire::Packet)>,
    rng: SplitMix64,
    /// Server-side conn → flow index (from the accepted peer port).
    flow_of: HashMap<u32, usize>,
    /// Per-flow bytes delivered to the server.
    delivered: Vec<Vec<u8>>,
    /// Client-side send-completion tokens, in arrival order.
    completions: Vec<u64>,
    /// Shared flight recorder: client engine is node 0, server node 1.
    rec: Arc<FlightRecorder>,
}

impl Net {
    fn new(seed: u64) -> Self {
        let cfg = NetConfig::qpip(16 * 1024);
        let rec = Arc::new(FlightRecorder::new(4096));
        let mut a = Engine::new(cfg.clone(), addr(1));
        let mut b = Engine::new(cfg, addr(2));
        a.set_tracer(Tracer::new(Arc::clone(&rec), 0));
        b.set_tracer(Tracer::new(Arc::clone(&rec), 1));
        Net {
            a,
            b,
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            rng: SplitMix64::new(seed),
            flow_of: HashMap::new(),
            delivered: vec![Vec::new(); FLOWS],
            completions: Vec::new(),
            rec,
        }
    }

    fn absorb(&mut self, from_a: bool, emits: Vec<Emit>) {
        for e in emits {
            match e {
                Emit::Packet(p) => {
                    // 2% loss; never enough consecutive drops on one
                    // segment to exhaust TCP's retry limit
                    if self.rng.chance(1, 50) {
                        continue;
                    }
                    self.queue.push_back((from_a, p.bytes));
                    // 12.5% chance the packet overtakes its predecessor
                    let n = self.queue.len();
                    if n >= 2 && self.rng.chance(1, 8) {
                        self.queue.swap(n - 1, n - 2);
                    }
                }
                Emit::TcpAccepted { conn, peer, .. } => {
                    assert!(!from_a, "only the server accepts");
                    let flow = (peer.port - BASE_PORT) as usize;
                    assert!(self.flow_of.insert(conn.0, flow).is_none(), "duplicate accept");
                }
                Emit::TcpDelivered { conn, data } => {
                    assert!(!from_a, "only the server receives data");
                    let flow = self.flow_of[&conn.0];
                    self.delivered[flow].extend(data);
                }
                Emit::TcpSendComplete { token, .. } => {
                    assert!(from_a, "only the client sends");
                    self.completions.push(token.0);
                }
                _ => {}
            }
        }
    }

    fn drain(&mut self) {
        while let Some((to_b, bytes)) = self.queue.pop_front() {
            self.now += SimDuration::from_micros(3);
            if to_b {
                let e = self.b.on_packet(self.now, &bytes);
                self.absorb(false, e);
            } else {
                let e = self.a.on_packet(self.now, &bytes);
                self.absorb(true, e);
            }
        }
        self.assert_table_invariants();
    }

    fn fire_timers(&mut self) -> bool {
        let next = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        let Some(d) = next else { return false };
        self.now = self.now.max(d);
        let ea = self.a.on_timer(self.now);
        self.absorb(true, ea);
        let eb = self.b.on_timer(self.now);
        self.absorb(false, eb);
        self.drain();
        true
    }

    /// The slab, demux table, and timer index must agree at all times.
    fn assert_table_invariants(&self) {
        for e in [&self.a, &self.b] {
            assert_eq!(e.demux_len(), e.conn_count(), "demux and slab out of sync");
            assert!(
                e.timer_index_len() <= e.conn_count(),
                "timer index holds more entries than live connections"
            );
        }
    }
}

#[test]
fn many_flows_survive_loss_and_reorder_then_drain() {
    let mut n = Net::new(0x9af1_4e57);
    n.b.tcp_listen(80).unwrap();

    // connect storm: every flow dials at once
    let mut conns = Vec::with_capacity(FLOWS);
    for i in 0..FLOWS {
        let (c, emits) = n.a.tcp_connect(n.now, BASE_PORT + i as u16, Endpoint::new(addr(2), 80));
        conns.push(c);
        n.absorb(true, emits);
    }
    n.drain();
    for _ in 0..200 {
        let pending = conns.iter().any(|&c| n.a.conn_state(c) != Some(TcpState::Established));
        if !pending {
            break;
        }
        assert!(n.fire_timers(), "handshakes stalled with timers idle");
    }
    assert_eq!(n.a.conn_count(), FLOWS);
    assert_eq!(n.b.conn_count(), FLOWS);

    // each flow streams MSGS messages with flow-distinct contents
    let mut expected: Vec<Vec<u8>> = vec![Vec::new(); FLOWS];
    for (i, &c) in conns.iter().enumerate() {
        for m in 0..MSGS {
            let len = n.rng.range_usize(1, 3000);
            let payload = vec![(i * 31 + m * 7) as u8; len];
            expected[i].extend(&payload);
            let token = SendToken((i * MSGS + m) as u64);
            let emits = n.a.tcp_send(n.now, c, payload, token).unwrap();
            n.absorb(true, emits);
        }
        // interleave flows on the wire rather than sending sequentially
        if i % 16 == 15 {
            n.drain();
        }
    }
    n.drain();

    let want_bytes: usize = expected.iter().map(Vec::len).sum();
    let mut rounds = 0;
    while n.delivered.iter().map(Vec::len).sum::<usize>() < want_bytes && rounds < 3000 {
        rounds += 1;
        assert!(n.fire_timers(), "transfer stalled with timers idle");
    }

    // exactly-once, in-order delivery per flow
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(&n.delivered[i], want, "flow {i} bytes mangled");
    }
    // every token completed exactly once
    let mut tokens = n.completions.clone();
    tokens.sort_unstable();
    let all: Vec<u64> = (0..(FLOWS * MSGS) as u64).collect();
    assert_eq!(tokens, all, "send completions must arrive exactly once each");

    // teardown: close both halves of every flow, then let timers quiesce
    for &c in &conns {
        let emits = n.a.tcp_close(n.now, c).unwrap();
        n.absorb(true, emits);
    }
    n.drain();
    let server_conns: Vec<u32> = n.flow_of.keys().copied().collect();
    for c in server_conns {
        let emits = n.b.tcp_close(n.now, ConnId(c)).unwrap();
        n.absorb(false, emits);
    }
    n.drain();
    let mut rounds = 0;
    while n.fire_timers() {
        rounds += 1;
        assert!(rounds < 5000, "timers never quiesced after close");
    }

    // the tables must drain completely: no leaked conns, demux
    // entries, or timer-index slots
    assert_eq!(n.a.conn_count(), 0, "client connections leaked");
    assert_eq!(n.b.conn_count(), 0, "server connections leaked");
    assert_eq!(n.a.demux_len(), 0);
    assert_eq!(n.b.demux_len(), 0);
    assert_eq!(n.a.timer_index_len(), 0, "client timer index not empty");
    assert_eq!(n.b.timer_index_len(), 0, "server timer index not empty");
    assert_eq!(n.a.next_deadline(), None);
    assert_eq!(n.b.next_deadline(), None);

    // recovery-path counters must equal the traced event counts: the
    // flight recorder and EngineStats are two views of one history.
    // Exactness needs every event retained — verify no ring overwrote.
    for (node, conn) in n.rec.scopes() {
        assert_eq!(n.rec.overwritten(node, conn), 0, "ring ({node},{conn}) overwrote events");
    }
    let events = n.rec.events();
    let count = |node: u32, pred: &dyn Fn(&TraceEvent) -> bool| {
        events.iter().filter(|r| r.node == node && pred(&r.ev)).count() as u64
    };
    for (node, stats) in [(0u32, n.a.stats()), (1u32, n.b.stats())] {
        assert_eq!(
            stats.rto_retransmits,
            count(node, &|ev| matches!(ev, TraceEvent::Retransmit { fast: false, .. })),
            "node {node}: rto_retransmits vs traced RTO retransmit events"
        );
        assert_eq!(
            stats.fast_retransmits,
            count(node, &|ev| matches!(ev, TraceEvent::Retransmit { fast: true, .. })),
            "node {node}: fast_retransmits vs traced fast-retransmit events"
        );
        assert_eq!(
            stats.dupacks_rx,
            count(node, &|ev| matches!(ev, TraceEvent::DupAck { .. })),
            "node {node}: dupacks_rx vs traced dupack events"
        );
        assert_eq!(
            stats.zero_window_events,
            count(node, &|ev| matches!(ev, TraceEvent::ZeroWindow)),
            "node {node}: zero_window_events vs traced zero-window events"
        );
    }
    // under 2% loss the client must actually have retransmitted — the
    // counters are proven non-vacuous
    let a_stats = n.a.stats();
    assert!(
        a_stats.rto_retransmits + a_stats.fast_retransmits > 0,
        "2% loss over {FLOWS} flows must force at least one retransmit"
    );
}
