//! Engine-level integration tests: two full stacks exchanging real
//! encoded packets, including loss, interop across configurations, and
//! lifecycle management.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::engine::{Engine, EngineError};
use qpip_netstack::types::{ConnId, Emit, Endpoint, NetConfig, PacketKind, SendToken};
use qpip_sim::time::{SimDuration, SimTime};

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

/// A tiny lossless "wire" shuttling packets between two engines until
/// quiescent, advancing time a fixed hop latency per delivery.
struct Wire {
    a: Engine,
    b: Engine,
    now: SimTime,
    /// (to_b, bytes)
    queue: VecDeque<(bool, qpip_wire::Packet)>,
    events_a: Vec<Emit>,
    events_b: Vec<Emit>,
    /// Indices of queued packets to drop (testing loss), consumed once.
    drop_next: Vec<usize>,
    sent: usize,
}

impl Wire {
    fn new(cfg_a: NetConfig, cfg_b: NetConfig) -> Wire {
        Wire {
            a: Engine::new(cfg_a, addr(1)),
            b: Engine::new(cfg_b, addr(2)),
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            events_a: Vec::new(),
            events_b: Vec::new(),
            drop_next: Vec::new(),
            sent: 0,
        }
    }

    fn absorb(&mut self, from_a: bool, emits: Vec<Emit>) {
        for e in emits {
            match e {
                Emit::Packet(p) => {
                    let idx = self.sent;
                    self.sent += 1;
                    if self.drop_next.contains(&idx) {
                        continue; // lost on the wire
                    }
                    self.queue.push_back((from_a, p.bytes));
                }
                other => {
                    if from_a {
                        self.events_a.push(other);
                    } else {
                        self.events_b.push(other);
                    }
                }
            }
        }
    }

    /// Delivers queued packets until both sides go quiet.
    fn run(&mut self) {
        let mut spins = 0;
        while let Some((to_b, bytes)) = self.queue.pop_front() {
            spins += 1;
            assert!(spins < 10_000, "wire did not quiesce");
            self.now += SimDuration::from_micros(5);
            if to_b {
                let emits = self.b.on_packet(self.now, &bytes);
                self.absorb(false, emits);
            } else {
                let emits = self.a.on_packet(self.now, &bytes);
                self.absorb(true, emits);
            }
        }
    }

    /// Fires due timers on both sides and re-runs the wire.
    fn fire_timers(&mut self) {
        let deadline = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        if let Some(d) = deadline {
            self.now = self.now.max(d);
            let ea = self.a.on_timer(self.now);
            self.absorb(true, ea);
            let eb = self.b.on_timer(self.now);
            self.absorb(false, eb);
            self.run();
        }
    }

    fn connect(&mut self) -> (ConnId, ConnId) {
        self.b.tcp_listen(5001).unwrap();
        let (ca, emits) = self.a.tcp_connect(self.now, 4001, Endpoint::new(addr(2), 5001));
        self.absorb(true, emits);
        self.run();
        let cb = self
            .events_b
            .iter()
            .find_map(|e| match e {
                Emit::TcpAccepted { conn, .. } => Some(*conn),
                _ => None,
            })
            .expect("accepted");
        assert!(self
            .events_a
            .iter()
            .any(|e| matches!(e, Emit::TcpConnected { conn } if *conn == ca)));
        (ca, cb)
    }

    fn delivered_to_b(&self) -> Vec<u8> {
        self.events_b
            .iter()
            .filter_map(|e| match e {
                Emit::TcpDelivered { data, .. } => Some(data.clone()),
                _ => None,
            })
            .flatten()
            .collect()
    }
}

#[test]
fn tcp_connect_accept_over_encoded_packets() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, cb) = w.connect();
    assert_ne!((ca, cb), (ConnId(0), ConnId(0)));
    assert_eq!(w.a.conn_count(), 1);
    assert_eq!(w.b.conn_count(), 1);
}

#[test]
fn bulk_transfer_delivers_bytes_exactly_once_in_order() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, _cb) = w.connect();
    let mut expected = Vec::new();
    for i in 0..50u32 {
        let msg = vec![(i % 251) as u8; 1000 + (i as usize % 500)];
        expected.extend_from_slice(&msg);
        let emits = w.a.tcp_send(w.now, ca, msg, SendToken(u64::from(i))).unwrap();
        w.absorb(true, emits);
        w.run();
    }
    assert_eq!(w.delivered_to_b(), expected);
    // all sends completed
    let completions: Vec<u64> = w
        .events_a
        .iter()
        .filter_map(|e| match e {
            Emit::TcpSendComplete { token, .. } => Some(token.0),
            _ => None,
        })
        .collect();
    assert_eq!(completions, (0..50).collect::<Vec<u64>>());
}

#[test]
fn qpip_node_interoperates_with_host_stack_node() {
    // §3: "Communication can occur between QPIP applications or QPIP and
    // traditional (socket) systems." A message-mode engine talks to a
    // stream-mode engine on the wire.
    let mut w = Wire::new(NetConfig::qpip(9000), NetConfig::host(9000));
    let (ca, cb) = w.connect();
    let emits = w.a.tcp_send(w.now, ca, vec![0xab; 4000], SendToken(1)).unwrap();
    w.absorb(true, emits);
    w.run();
    w.fire_timers(); // host side may hold a delayed ACK
    assert_eq!(w.delivered_to_b(), vec![0xab; 4000]);
    // and the socket side can reply; the QP side reassembles per message
    let emits = w.b.tcp_send(w.now, cb, vec![0xcd; 2000], SendToken(2)).unwrap();
    w.absorb(false, emits);
    w.run();
    w.fire_timers();
    let back: Vec<u8> = w
        .events_a
        .iter()
        .filter_map(|e| match e {
            Emit::TcpDelivered { data, .. } => Some(data.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(back, vec![0xcd; 2000]);
}

#[test]
fn lost_data_segment_is_recovered_by_retransmission() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, _) = w.connect();
    let base = w.sent;
    w.drop_next = vec![base]; // drop the next packet (the data segment)
    let emits = w.a.tcp_send(w.now, ca, vec![7; 512], SendToken(9)).unwrap();
    w.absorb(true, emits);
    w.run();
    assert!(w.delivered_to_b().is_empty(), "segment was dropped");
    // RTO fires, retransmission delivers
    w.fire_timers();
    assert_eq!(w.delivered_to_b(), vec![7; 512]);
    assert!(w
        .events_a
        .iter()
        .any(|e| matches!(e, Emit::TcpSendComplete { token, .. } if token.0 == 9)));
}

#[test]
fn lost_ack_is_tolerated_via_duplicate_delivery_suppression() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, _) = w.connect();
    let base = w.sent;
    w.drop_next = vec![base + 1]; // drop the ACK, keep the data
    let emits = w.a.tcp_send(w.now, ca, vec![3; 256], SendToken(1)).unwrap();
    w.absorb(true, emits);
    w.run();
    assert_eq!(w.delivered_to_b(), vec![3; 256]);
    // sender times out and retransmits; receiver must not deliver twice
    w.fire_timers();
    assert_eq!(w.delivered_to_b(), vec![3; 256], "no duplicate delivery");
}

#[test]
fn graceful_close_reaps_both_connections() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, cb) = w.connect();
    let emits = w.a.tcp_close(w.now, ca).unwrap();
    w.absorb(true, emits);
    w.run();
    assert!(w.events_b.iter().any(|e| matches!(e, Emit::TcpPeerClosed { conn } if *conn == cb)));
    let emits = w.b.tcp_close(w.now, cb).unwrap();
    w.absorb(false, emits);
    w.run();
    // b reaches CLOSED via LAST-ACK; a sits in TIME-WAIT until its timer
    assert_eq!(w.b.conn_count(), 0);
    w.fire_timers();
    assert_eq!(w.a.conn_count(), 0);
}

#[test]
fn abort_sends_rst_and_peer_reports_reset() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, cb) = w.connect();
    let emits = w.a.tcp_abort(w.now, ca).unwrap();
    w.absorb(true, emits);
    w.run();
    assert!(w.events_b.iter().any(|e| matches!(e, Emit::TcpReset { conn } if *conn == cb)));
    assert_eq!(w.a.conn_count(), 0);
    assert_eq!(w.b.conn_count(), 0);
}

#[test]
fn udp_send_requires_binding_and_size_limit() {
    let mut e = Engine::new(NetConfig::qpip(9000), addr(1));
    let dst = Endpoint::new(addr(2), 700);
    assert_eq!(e.udp_send(99, dst, b"x").unwrap_err(), EngineError::PortNotBound(99));
    e.udp_bind(99).unwrap();
    assert!(e.udp_send(99, dst, b"x").is_ok());
    let too_big = vec![0u8; 9000];
    assert!(matches!(e.udp_send(99, dst, &too_big), Err(EngineError::MessageTooLarge { .. })));
}

#[test]
fn message_too_large_for_segment_is_rejected_in_message_mode() {
    let mut w = Wire::new(NetConfig::qpip(1500), NetConfig::qpip(1500));
    let (ca, _) = w.connect();
    let max = w.a.config().max_tcp_payload();
    assert!(matches!(
        w.a.tcp_send(w.now, ca, vec![0; max + 1], SendToken(1)),
        Err(EngineError::MessageTooLarge { .. })
    ));
    assert!(w.a.tcp_send(w.now, ca, vec![0; max], SendToken(2)).is_ok());
}

#[test]
fn double_bind_and_double_listen_fail() {
    let mut e = Engine::new(NetConfig::qpip(9000), addr(1));
    e.udp_bind(5).unwrap();
    assert_eq!(e.udp_bind(5).unwrap_err(), EngineError::PortInUse(5));
    e.tcp_listen(6).unwrap();
    assert_eq!(e.tcp_listen(6).unwrap_err(), EngineError::PortInUse(6));
}

#[test]
fn syn_to_unbound_port_is_dropped() {
    let mut w = Wire::new(NetConfig::qpip(9000), NetConfig::qpip(9000));
    let (_, emits) = w.a.tcp_connect(w.now, 4001, Endpoint::new(addr(2), 9999));
    w.absorb(true, emits);
    w.run();
    assert_eq!(w.b.conn_count(), 0);
    assert!(w.b.stats().demux_drops >= 1);
}

#[test]
fn packet_for_wrong_address_is_dropped() {
    let mut a = Engine::new(NetConfig::qpip(9000), addr(1));
    let mut b = Engine::new(NetConfig::qpip(9000), addr(2));
    b.udp_bind(7).unwrap();
    a.udp_bind(7).unwrap();
    // a sends to addr(3); b should not deliver it
    let Emit::Packet(p) = a.udp_send(7, Endpoint::new(addr(3), 7), b"oops").unwrap() else {
        unreachable!()
    };
    let emits = b.on_packet(SimTime::ZERO, &p.bytes);
    assert!(emits.is_empty());
    assert_eq!(b.stats().addr_drops, 1);
}

#[test]
fn corrupted_packet_increments_checksum_drops() {
    let mut a = Engine::new(NetConfig::qpip(9000), addr(1));
    let mut b = Engine::new(NetConfig::qpip(9000), addr(2));
    a.udp_bind(7).unwrap();
    b.udp_bind(7).unwrap();
    let Emit::Packet(p) = a.udp_send(7, Endpoint::new(addr(2), 7), b"data").unwrap() else {
        unreachable!()
    };
    let mut bytes = p.bytes;
    let n = bytes.len();
    bytes[n - 1] ^= 0xff;
    assert!(b.on_packet(SimTime::ZERO, &bytes).is_empty());
    assert_eq!(b.stats().checksum_drops, 1);
}

#[test]
fn truncated_packet_increments_parse_drops_not_demux() {
    let mut a = Engine::new(NetConfig::qpip(9000), addr(1));
    let mut b = Engine::new(NetConfig::qpip(9000), addr(2));
    a.udp_bind(7).unwrap();
    b.udp_bind(7).unwrap();
    let Emit::Packet(p) = a.udp_send(7, Endpoint::new(addr(2), 7), b"data").unwrap() else {
        unreachable!()
    };
    // header chopped mid-IPv6: a malformed packet, not a misrouted one
    let bytes = &p.bytes[..10];
    assert!(b.on_packet(SimTime::ZERO, bytes).is_empty());
    let stats = b.stats();
    assert_eq!(stats.parse_drops, 1);
    assert_eq!(stats.demux_drops, 0);
    assert_eq!(stats.checksum_drops, 0);
}

#[test]
fn ops_counters_accumulate_and_reset() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, _) = w.connect();
    let _ = w.a.take_ops();
    let emits = w.a.tcp_send(w.now, ca, vec![0; 100], SendToken(1)).unwrap();
    w.absorb(true, emits);
    w.run();
    let ops = w.a.take_ops();
    assert!(ops.headers_built >= 2);
    assert!(ops.csum_bytes > 100);
    assert!(ops.rtt_updates >= 1, "ack sampled rtt");
    let ops2 = w.a.take_ops();
    assert_eq!(ops2.muls, 0, "take resets");
}

#[test]
fn packet_kinds_classify_data_vs_ack() {
    let mut w = Wire::new(NetConfig::qpip(16 * 1024), NetConfig::qpip(16 * 1024));
    let (ca, _) = w.connect();
    let emits = w.a.tcp_send(w.now, ca, vec![0; 64], SendToken(1)).unwrap();
    let kinds: Vec<PacketKind> = emits
        .iter()
        .filter_map(|e| match e {
            Emit::Packet(p) => Some(p.kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![PacketKind::TcpData]);
    w.absorb(true, emits);
    // b's reply is a pure ACK
    let (to_b, bytes) = w.queue.pop_front().unwrap();
    assert!(to_b);
    let replies = w.b.on_packet(w.now, &bytes);
    let kinds: Vec<PacketKind> = replies
        .iter()
        .filter_map(|e| match e {
            Emit::Packet(p) => Some(p.kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![PacketKind::TcpAck]);
}
