//! Randomized tests: TCP's end-to-end invariants must hold under
//! arbitrary packet loss, for both segmentation policies. Loss patterns
//! and message sizes come from a seeded [`SplitMix64`] stream so every
//! failure reproduces exactly.

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::engine::Engine;
use qpip_netstack::types::{Emit, Endpoint, NetConfig, SendToken};
use qpip_sim::rng::SplitMix64;
use qpip_sim::time::{SimDuration, SimTime};

const CASES: usize = 24;

fn addr(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, n)
}

struct LossyWire {
    a: Engine,
    b: Engine,
    now: SimTime,
    queue: VecDeque<(bool, qpip_wire::Packet)>,
    /// Drop decision per transmitted packet, cycled.
    losses: Vec<bool>,
    sent: usize,
    delivered: Vec<u8>,
    completions: Vec<u64>,
}

impl LossyWire {
    fn new(cfg: NetConfig, losses: Vec<bool>) -> Self {
        LossyWire {
            a: Engine::new(cfg.clone(), addr(1)),
            b: Engine::new(cfg, addr(2)),
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            losses,
            sent: 0,
            delivered: Vec::new(),
            completions: Vec::new(),
        }
    }

    fn absorb(&mut self, from_a: bool, emits: Vec<Emit>) {
        for e in emits {
            match e {
                Emit::Packet(p) => {
                    // loss applies to an arbitrary prefix of the packet
                    // sequence; afterwards the wire is lossless, so the
                    // transfer must always converge (a cyclic pattern can
                    // livelock any ARQ protocol by construction).
                    let lost = self.losses.get(self.sent).copied().unwrap_or(false);
                    self.sent += 1;
                    if !lost {
                        self.queue.push_back((from_a, p.bytes));
                    }
                }
                Emit::TcpDelivered { data, .. } => {
                    if !from_a {
                        // ignore: only a→b data matters here
                    } else {
                        unreachable!("a never receives data in this test");
                    }
                    self.delivered.extend(data);
                }
                Emit::TcpSendComplete { token, .. } => self.completions.push(token.0),
                _ => {}
            }
        }
    }

    fn drain(&mut self) {
        while let Some((to_b, bytes)) = self.queue.pop_front() {
            self.now += SimDuration::from_micros(3);
            if to_b {
                let e = self.b.on_packet(self.now, &bytes);
                self.absorb(false, e);
            } else {
                let e = self.a.on_packet(self.now, &bytes);
                self.absorb(true, e);
            }
        }
    }

    fn fire_timers(&mut self) -> bool {
        let next = [self.a.next_deadline(), self.b.next_deadline()].into_iter().flatten().min();
        let Some(d) = next else { return false };
        self.now = self.now.max(d);
        let ea = self.a.on_timer(self.now);
        self.absorb(true, ea);
        let eb = self.b.on_timer(self.now);
        self.absorb(false, eb);
        self.drain();
        self.assert_table_invariants();
        true
    }

    /// The connection slab, demux table, and timer index must agree
    /// after every quiescent point, whatever the loss pattern did.
    fn assert_table_invariants(&self) {
        for e in [&self.a, &self.b] {
            assert_eq!(e.demux_len(), e.conn_count(), "demux and slab out of sync");
            assert!(
                e.timer_index_len() <= e.conn_count(),
                "timer index holds more entries than live connections"
            );
        }
    }
}

/// Runs a transfer of `messages` from a to b under the loss pattern and
/// asserts exactly-once in-order delivery and completion of every token.
fn run_transfer(cfg: NetConfig, messages: Vec<Vec<u8>>, losses: Vec<bool>) {
    let mut w = LossyWire::new(cfg, losses);
    w.b.tcp_listen(80).unwrap();
    let (ca, emits) = w.a.tcp_connect(w.now, 2000, Endpoint::new(addr(2), 80));
    w.absorb(true, emits);
    w.drain();
    // handshake may itself need retries under loss
    for _ in 0..50 {
        if w.a.conn_state(ca).map(|s| format!("{s:?}")) == Some("Established".into()) {
            break;
        }
        if !w.fire_timers() {
            break;
        }
    }
    let expected: Vec<u8> = messages.iter().flatten().copied().collect();
    for (i, m) in messages.into_iter().enumerate() {
        let emits = w.a.tcp_send(w.now, ca, m, SendToken(i as u64)).unwrap();
        w.absorb(true, emits);
        w.drain();
    }
    // pump timers until everything is recovered (bounded)
    let mut rounds = 0;
    while w.delivered.len() < expected.len() && rounds < 300 {
        rounds += 1;
        if !w.fire_timers() {
            break;
        }
    }
    assert_eq!(w.delivered.len(), expected.len(), "all bytes delivered despite loss");
    assert_eq!(w.delivered, expected, "in order, exactly once");
    w.assert_table_invariants();
    // completions arrive once per token, in order
    let mut want: Vec<u64> = Vec::new();
    for i in 0..w.completions.len() {
        want.push(i as u64);
    }
    assert_eq!(w.completions, want, "completions in order, no duplicates");
}

// Loss vectors stay bounded below TCP's retry-exhaustion limit: ~15
// consecutive losses legitimately reset the connection (MAX_RETRIES),
// which is correct behaviour but not the invariant under test.
fn arb_losses(r: &mut SplitMix64) -> Vec<bool> {
    (0..r.range_usize(0, 13)).map(|_| r.flip()).collect()
}

#[test]
fn qpip_message_mode_survives_arbitrary_loss() {
    let mut r = SplitMix64::new(0x0e7_0001);
    for _ in 0..CASES {
        let messages: Vec<Vec<u8>> = (0..r.range_usize(1, 12))
            .map(|i| vec![(i % 256) as u8; r.range_usize(1, 4000)])
            .collect();
        let losses = arb_losses(&mut r);
        run_transfer(NetConfig::qpip(16 * 1024), messages, losses);
    }
}

#[test]
fn host_stream_mode_survives_arbitrary_loss() {
    let mut r = SplitMix64::new(0x0e7_0002);
    for _ in 0..CASES {
        let messages: Vec<Vec<u8>> = (0..r.range_usize(1, 10))
            .map(|i| vec![(255 - i % 256) as u8; r.range_usize(1, 5000)])
            .collect();
        let losses = arb_losses(&mut r);
        run_transfer(NetConfig::host(1500), messages, losses);
    }
}

#[test]
fn lossless_transfer_never_retransmits() {
    let mut r = SplitMix64::new(0x0e7_0003);
    for _ in 0..CASES {
        let sizes: Vec<usize> = (0..r.range_usize(1, 8)).map(|_| r.range_usize(1, 2000)).collect();
        let cfg = NetConfig::qpip(16 * 1024);
        let mut w = LossyWire::new(cfg, vec![false]);
        w.b.tcp_listen(80).unwrap();
        let (ca, emits) = w.a.tcp_connect(w.now, 2000, Endpoint::new(addr(2), 80));
        w.absorb(true, emits);
        w.drain();
        for (i, &s) in sizes.iter().enumerate() {
            let emits = w.a.tcp_send(w.now, ca, vec![7; s], SendToken(i as u64)).unwrap();
            w.absorb(true, emits);
            w.drain();
        }
        assert_eq!(w.a.retransmissions(), 0);
        assert_eq!(w.completions.len(), sizes.len());
    }
}
