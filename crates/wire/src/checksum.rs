//! The internet checksum (RFC 1071) and the IPv6 pseudo-header.
//!
//! QPIP carries TCP and UDP over IPv6; both transports checksum their
//! header + payload together with the IPv6 pseudo-header. The NIC model
//! charges cycles for this computation when it runs in firmware, or
//! offloads it to the DMA engine (§4.1: "the DMA controller hardware
//! includes support for computing IP checksums").

use std::net::Ipv6Addr;

/// Incremental one's-complement sum, fold-at-the-end.
///
/// # Examples
///
/// ```
/// use qpip_wire::checksum::Checksum;
///
/// let mut c = Checksum::new();
/// c.add_bytes(&[0x00, 0x01, 0xf2, 0x03]);
/// assert_eq!(c.finish(), !0xf204);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checksum {
    sum: u32,
    /// Set when an odd byte is pending (it pairs with the next byte).
    leftover: Option<u8>,
}

impl Checksum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Checksum::default()
    }

    /// Feeds bytes into the sum (big-endian 16-bit words).
    pub fn add_bytes(&mut self, mut data: &[u8]) {
        if let Some(lo) = self.leftover.take() {
            if let Some((&b, rest)) = data.split_first() {
                self.add_word(u16::from_be_bytes([lo, b]));
                data = rest;
            } else {
                self.leftover = Some(lo);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for w in &mut chunks {
            self.add_word(u16::from_be_bytes([w[0], w[1]]));
        }
        if let [b] = chunks.remainder() {
            self.leftover = Some(*b);
        }
    }

    /// Feeds one 16-bit word.
    pub fn add_word(&mut self, w: u16) {
        debug_assert!(self.leftover.is_none(), "add_word with pending odd byte");
        self.sum += u32::from(w);
    }

    /// Feeds a 32-bit value as two words.
    pub fn add_u32(&mut self, v: u32) {
        self.add_word((v >> 16) as u16);
        self.add_word(v as u16);
    }

    /// Folds carries and returns the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(lo) = self.leftover.take() {
            // odd total length: pad with a zero byte
            self.add_word(u16::from_be_bytes([lo, 0]));
        }
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Computes the internet checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Starts a checksum primed with the IPv6 pseudo-header (RFC 2460 §8.1):
/// source, destination, upper-layer packet length and next-header code.
pub fn pseudo_header_sum(src: Ipv6Addr, dst: Ipv6Addr, len: u32, next_header: u8) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(len);
    c.add_u32(u32::from(next_header));
    c
}

/// Computes the transport checksum (TCP or UDP) of `segment` — the
/// transport header with a zeroed checksum field plus payload — under the
/// IPv6 pseudo-header.
pub fn transport_checksum(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: u8,
    segment: &[u8],
) -> u16 {
    let mut c = pseudo_header_sum(src, dst, segment.len() as u32, next_header);
    c.add_bytes(segment);
    c.finish()
}

/// Verifies a transport segment whose checksum field is already filled
/// in: the total must fold to zero.
pub fn verify_transport_checksum(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: u8,
    segment: &[u8],
) -> bool {
    let mut c = pseudo_header_sum(src, dst, segment.len() as u32, next_header);
    c.add_bytes(segment);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 §3 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold: ddf0+2 = ddf2
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0x12, 0x34, 0x56]), !(0x1234 + 0x5600));
    }

    #[test]
    fn split_feeding_matches_single_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let whole = checksum(&data);
        for split in [1, 3, 7, 128, 255] {
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn odd_then_odd_feeding() {
        let mut c = Checksum::new();
        c.add_bytes(&[0x01]);
        c.add_bytes(&[0x02]);
        assert_eq!(c.finish(), !0x0102);
    }

    #[test]
    fn empty_checksum_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_accepts_correct_and_rejects_corrupt() {
        let src = Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1);
        let dst = Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 2);
        // UDP-ish segment with zeroed checksum at offset 6..8
        let mut seg = vec![0x12, 0x34, 0x43, 0x21, 0x00, 0x09, 0x00, 0x00, 0x7f];
        let ck = transport_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport_checksum(src, dst, 17, &seg));
        seg[8] ^= 0xff;
        assert!(!verify_transport_checksum(src, dst, 17, &seg));
    }

    #[test]
    fn pseudo_header_depends_on_every_field() {
        let a = Ipv6Addr::new(1, 0, 0, 0, 0, 0, 0, 1);
        let b = Ipv6Addr::new(1, 0, 0, 0, 0, 0, 0, 2);
        let base = transport_checksum(a, b, 6, b"hello");
        // note: swapping src/dst does NOT change the sum (one's-complement
        // addition is commutative), but protocol and payload do.
        assert_ne!(base, transport_checksum(a, b, 17, b"hello"));
        assert_ne!(base, transport_checksum(a, b, 6, b"hellp"));
        assert_ne!(base, transport_checksum(a, b, 6, b"helloo"));
    }
}
