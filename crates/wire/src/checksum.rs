//! The internet checksum (RFC 1071) and the IPv6 pseudo-header.
//!
//! QPIP carries TCP and UDP over IPv6; both transports checksum their
//! header + payload together with the IPv6 pseudo-header. The NIC model
//! charges cycles for this computation when it runs in firmware, or
//! offloads it to the DMA engine (§4.1: "the DMA controller hardware
//! includes support for computing IP checksums").

use std::net::Ipv6Addr;

/// Incremental one's-complement sum, fold-at-the-end.
///
/// # Examples
///
/// ```
/// use qpip_wire::checksum::Checksum;
///
/// let mut c = Checksum::new();
/// c.add_bytes(&[0x00, 0x01, 0xf2, 0x03]);
/// assert_eq!(c.finish(), !0xf204);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checksum {
    sum: u32,
    /// Set when an odd byte is pending (it pairs with the next byte).
    leftover: Option<u8>,
}

impl Checksum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Checksum::default()
    }

    /// Feeds bytes into the sum (big-endian 16-bit words).
    ///
    /// Accumulates 32-bit words into `u64` accumulators — RFC 1071
    /// permits summing on any word size because one's-complement
    /// addition is associative and 2³² ≡ 2¹⁶ ≡ 1 (mod 2¹⁶−1). A `u64`
    /// absorbs 2³² dword additions before it could overflow, so the
    /// wide loops ([`sum_dwords`]: AVX2 when available, a four-
    /// accumulator portable loop otherwise) have no carry chain; the
    /// result is bit-identical to the two-byte scalar walk.
    pub fn add_bytes(&mut self, mut data: &[u8]) {
        if let Some(lo) = self.leftover.take() {
            if let Some((&b, rest)) = data.split_first() {
                self.sum += u32::from(u16::from_be_bytes([lo, b]));
                data = rest;
            } else {
                self.leftover = Some(lo);
                return;
            }
        }

        let wide;
        (wide, data) = sum_dwords(data);
        if wide != 0 {
            // fold 64 → 32 → ≤16 bits; each fold preserves the value
            // mod 2¹⁶−1 because 2³² ≡ 2¹⁶ ≡ 1
            let mut s = (wide >> 32) + (wide & 0xffff_ffff);
            s = (s >> 16) + (s & 0xffff);
            while s >> 16 != 0 {
                s = (s & 0xffff) + (s >> 16);
            }
            // one swap converts the native-word sum to the wire's
            // big-endian word sum (a 16-bit rotation distributes over
            // end-around-carry addition); a no-op on BE machines
            self.sum += u32::from(u16::to_be(s as u16));
        }

        let mut words = data.chunks_exact(2);
        for w in &mut words {
            self.sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
        }
        if let [b] = words.remainder() {
            self.leftover = Some(*b);
        }
    }

    /// Feeds one 16-bit word.
    pub fn add_word(&mut self, w: u16) {
        debug_assert!(self.leftover.is_none(), "add_word with pending odd byte");
        self.sum += u32::from(w);
    }

    /// Feeds a 32-bit value as two words.
    pub fn add_u32(&mut self, v: u32) {
        self.add_word((v >> 16) as u16);
        self.add_word(v as u16);
    }

    /// Folds carries and returns the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(lo) = self.leftover.take() {
            // odd total length: pad with a zero byte
            self.add_word(u16::from_be_bytes([lo, 0]));
        }
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Loads a 4-byte chunk as a native-endian 32-bit word, widened.
///
/// Native byte order is deliberate: the one's-complement sum is
/// byte-order independent (RFC 1071 §2B), so no per-word swap is
/// needed — one swap of the folded result suffices.
#[inline(always)]
fn dword(chunk: &[u8]) -> u64 {
    u64::from(u32::from_ne_bytes(chunk.try_into().expect("4-byte chunk")))
}

/// Sums the native-endian 32-bit words of `data` into a `u64` and
/// returns the unconsumed tail (fewer than four bytes).
///
/// Dispatches to an AVX2 kernel when the CPU has it; the portable
/// path uses four independent accumulators so the loop has no carry
/// chain. Both produce the same `u64`, so the fold downstream is
/// bit-identical either way.
fn sum_dwords(data: &[u8]) -> (u64, &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        if data.len() >= 64 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            #[allow(unsafe_code)]
            return unsafe { sum_dwords_avx2(data) };
        }
    }
    sum_dwords_portable(data)
}

fn sum_dwords_portable(data: &[u8]) -> (u64, &[u8]) {
    // Eight 32-bit words per iteration into four independent u64
    // accumulators: a u64 holds 2³² dword additions before it could
    // overflow, so there is no carry chain at all and the loop —
    // plain loads and widening adds — pipelines/vectorizes freely.
    let (mut w0, mut w1, mut w2, mut w3) = (0u64, 0u64, 0u64, 0u64);
    let mut blocks = data.chunks_exact(32);
    for b in &mut blocks {
        w0 += dword(&b[0..4]);
        w1 += dword(&b[4..8]);
        w2 += dword(&b[8..12]);
        w3 += dword(&b[12..16]);
        w0 += dword(&b[16..20]);
        w1 += dword(&b[20..24]);
        w2 += dword(&b[24..28]);
        w3 += dword(&b[28..32]);
    }
    let mut wide = w0 + w1 + w2 + w3;
    let mut dwords = blocks.remainder().chunks_exact(4);
    for d in &mut dwords {
        wide += dword(d);
    }
    (wide, dwords.remainder())
}

/// AVX2 kernel: 64 bytes per iteration. Each 256-bit load is unpacked
/// against zero into 64-bit lanes (`unpacklo/hi_epi32`) and added into
/// two vector accumulators — the interleave permutes which dword lands
/// in which lane, which is harmless because only the lane total
/// matters. A final horizontal add yields the same `u64` as the
/// portable loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn sum_dwords_avx2(data: &[u8]) -> (u64, &[u8]) {
    use core::arch::x86_64::*;

    let zero = _mm256_setzero_si256();
    let mut acc0 = zero;
    let mut acc1 = zero;
    let mut blocks = data.chunks_exact(64);
    for b in &mut blocks {
        let v0 = _mm256_loadu_si256(b.as_ptr() as *const __m256i);
        let v1 = _mm256_loadu_si256(b.as_ptr().add(32) as *const __m256i);
        acc0 = _mm256_add_epi64(acc0, _mm256_unpacklo_epi32(v0, zero));
        acc1 = _mm256_add_epi64(acc1, _mm256_unpackhi_epi32(v0, zero));
        acc0 = _mm256_add_epi64(acc0, _mm256_unpacklo_epi32(v1, zero));
        acc1 = _mm256_add_epi64(acc1, _mm256_unpackhi_epi32(v1, zero));
    }
    let acc = _mm256_add_epi64(acc0, acc1);
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut wide = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    let mut dwords = blocks.remainder().chunks_exact(4);
    for d in &mut dwords {
        wide += dword(d);
    }
    (wide, dwords.remainder())
}

/// Computes the internet checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Starts a checksum primed with the IPv6 pseudo-header (RFC 2460 §8.1):
/// source, destination, upper-layer packet length and next-header code.
pub fn pseudo_header_sum(src: Ipv6Addr, dst: Ipv6Addr, len: u32, next_header: u8) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(len);
    c.add_u32(u32::from(next_header));
    c
}

/// Computes the transport checksum (TCP or UDP) of `segment` — the
/// transport header with a zeroed checksum field plus payload — under the
/// IPv6 pseudo-header.
pub fn transport_checksum(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, segment: &[u8]) -> u16 {
    let mut c = pseudo_header_sum(src, dst, segment.len() as u32, next_header);
    c.add_bytes(segment);
    c.finish()
}

/// Verifies a transport segment whose checksum field is already filled
/// in: the total must fold to zero.
pub fn verify_transport_checksum(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: u8,
    segment: &[u8],
) -> bool {
    let mut c = pseudo_header_sum(src, dst, segment.len() as u32, next_header);
    c.add_bytes(segment);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1071 §3 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold: ddf0+2 = ddf2
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0x12, 0x34, 0x56]), !(0x1234 + 0x5600));
    }

    #[test]
    fn split_feeding_matches_single_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let whole = checksum(&data);
        for split in [1, 3, 7, 128, 255] {
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn odd_then_odd_feeding() {
        let mut c = Checksum::new();
        c.add_bytes(&[0x01]);
        c.add_bytes(&[0x02]);
        assert_eq!(c.finish(), !0x0102);
    }

    #[test]
    fn empty_checksum_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_accepts_correct_and_rejects_corrupt() {
        let src = Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1);
        let dst = Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 2);
        // UDP-ish segment with zeroed checksum at offset 6..8
        let mut seg = vec![0x12, 0x34, 0x43, 0x21, 0x00, 0x09, 0x00, 0x00, 0x7f];
        let ck = transport_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport_checksum(src, dst, 17, &seg));
        seg[8] ^= 0xff;
        assert!(!verify_transport_checksum(src, dst, 17, &seg));
    }

    /// The SIMD kernel and the portable loop must agree on the wide
    /// sum (and tail) for every alignment of the 64-byte blocking.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_portable() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        for len in (0..=256).chain([511, 512, 767, 1000, 1024]) {
            let portable = sum_dwords_portable(&data[..len]);
            // SAFETY: AVX2 presence checked above.
            #[allow(unsafe_code)]
            let simd = unsafe { sum_dwords_avx2(&data[..len]) };
            assert_eq!(portable, simd, "len {len}");
        }
    }

    #[test]
    fn pseudo_header_depends_on_every_field() {
        let a = Ipv6Addr::new(1, 0, 0, 0, 0, 0, 0, 1);
        let b = Ipv6Addr::new(1, 0, 0, 0, 0, 0, 0, 2);
        let base = transport_checksum(a, b, 6, b"hello");
        // note: swapping src/dst does NOT change the sum (one's-complement
        // addition is commutative), but protocol and payload do.
        assert_ne!(base, transport_checksum(a, b, 17, b"hello"));
        assert_ne!(base, transport_checksum(a, b, 6, b"hellp"));
        assert_ne!(base, transport_checksum(a, b, 6, b"helloo"));
    }
}
