//! Link-layer framing: Myrinet-style source routes and Ethernet II.
//!
//! The Myrinet SAN is "switched and uses source-based, oblivious
//! cut-through routing" (§4.1): the sender prepends one route byte per
//! switch hop; each switch consumes the leading byte to select its output
//! port. The Gigabit Ethernet baseline uses ordinary Ethernet II frames
//! forwarded by MAC learning (modeled as a static table).

use core::fmt;

use crate::error::ParseWireError;

/// Maximum number of hops in a Myrinet source route.
pub const MYRINET_MAX_HOPS: usize = 15;

/// EtherType carried in our Ethernet frames (IPv6).
pub const ETHERTYPE_IPV6: u16 = 0x86dd;

/// A Myrinet-style source route: the ordered list of switch output
/// ports a packet must take.
///
/// # Examples
///
/// ```
/// use qpip_wire::link::SourceRoute;
///
/// let r = SourceRoute::new(&[3, 1])?;
/// assert_eq!(r.hops(), &[3, 1]);
/// let (first, rest) = r.split_first().unwrap();
/// assert_eq!(first, 3);
/// assert_eq!(rest.hops(), &[1]);
/// # Ok::<(), qpip_wire::link::RouteTooLongError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SourceRoute {
    hops: Vec<u8>,
}

/// Error returned when a route exceeds [`MYRINET_MAX_HOPS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteTooLongError(pub usize);

impl fmt::Display for RouteTooLongError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source route of {} hops exceeds maximum {MYRINET_MAX_HOPS}", self.0)
    }
}

impl std::error::Error for RouteTooLongError {}

impl SourceRoute {
    /// Creates a route from output-port hops.
    ///
    /// # Errors
    ///
    /// Returns [`RouteTooLongError`] if more than [`MYRINET_MAX_HOPS`]
    /// hops are given.
    pub fn new(hops: &[u8]) -> Result<Self, RouteTooLongError> {
        if hops.len() > MYRINET_MAX_HOPS {
            return Err(RouteTooLongError(hops.len()));
        }
        Ok(SourceRoute { hops: hops.to_vec() })
    }

    /// An empty route (destination directly attached).
    pub fn direct() -> Self {
        SourceRoute::default()
    }

    /// The remaining hops.
    pub fn hops(&self) -> &[u8] {
        &self.hops
    }

    /// Number of remaining hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `true` when no switch hops remain.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Splits off the first hop, as a Myrinet switch does when it
    /// consumes the leading route byte.
    pub fn split_first(&self) -> Option<(u8, SourceRoute)> {
        self.hops.split_first().map(|(&h, rest)| (h, SourceRoute { hops: rest.to_vec() }))
    }
}

/// A Myrinet link-layer frame header: route + payload type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MyrinetHeader {
    /// Remaining source route.
    pub route: SourceRoute,
    /// Payload type (we carry [`ETHERTYPE_IPV6`]).
    pub packet_type: u16,
}

impl MyrinetHeader {
    /// Encoded length: 1 route-length byte + hops + 2 type bytes.
    pub fn encoded_len(&self) -> usize {
        1 + self.route.len() + 2
    }

    /// Appends the wire encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.route.len() as u8);
        buf.extend_from_slice(self.route.hops());
        buf.extend_from_slice(&self.packet_type.to_be_bytes());
    }

    /// Parses from the front of `data`, returning the header and bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] if the frame is shorter than its
    /// declared route; [`ParseWireError::BadLength`] if the route length
    /// byte exceeds [`MYRINET_MAX_HOPS`].
    pub fn parse(data: &[u8]) -> Result<(MyrinetHeader, usize), ParseWireError> {
        let (&n, rest) =
            data.split_first().ok_or(ParseWireError::Truncated { needed: 3, have: data.len() })?;
        let n = usize::from(n);
        if n > MYRINET_MAX_HOPS {
            return Err(ParseWireError::BadLength);
        }
        if rest.len() < n + 2 {
            return Err(ParseWireError::Truncated { needed: 1 + n + 2, have: data.len() });
        }
        let route = SourceRoute { hops: rest[..n].to_vec() };
        let packet_type = u16::from_be_bytes([rest[n], rest[n + 1]]);
        Ok((MyrinetHeader { route, packet_type }, 1 + n + 2))
    }
}

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A deterministic locally administered address for simulated node
    /// `n`.
    pub fn for_node(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

/// An Ethernet II frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: u16,
}

/// Ethernet II header length in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

impl EthernetHeader {
    /// Appends the 14-byte wire encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.dst.0);
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Parses from the front of `data`.
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] if fewer than 14 bytes are present.
    pub fn parse(data: &[u8]) -> Result<(EthernetHeader, usize), ParseWireError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(ParseWireError::Truncated {
                needed: ETHERNET_HEADER_LEN,
                have: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&data[6..12]);
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: u16::from_be_bytes([data[12], data[13]]),
            },
            ETHERNET_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_route_splits_like_a_switch() {
        let r = SourceRoute::new(&[7, 2, 9]).unwrap();
        let (h, rest) = r.split_first().unwrap();
        assert_eq!(h, 7);
        assert_eq!(rest.hops(), &[2, 9]);
        assert!(SourceRoute::direct().split_first().is_none());
    }

    #[test]
    fn source_route_rejects_long_routes() {
        assert_eq!(SourceRoute::new(&[0u8; 16]), Err(RouteTooLongError(16)));
        assert!(SourceRoute::new(&[0u8; 15]).is_ok());
    }

    #[test]
    fn myrinet_header_roundtrip() {
        let h = MyrinetHeader {
            route: SourceRoute::new(&[1, 2, 3]).unwrap(),
            packet_type: ETHERTYPE_IPV6,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.encoded_len());
        let (back, used) = MyrinetHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, 6);
    }

    #[test]
    fn myrinet_rejects_truncated_route() {
        // declares 3 hops but has only 1 byte after
        assert!(matches!(MyrinetHeader::parse(&[3, 1]), Err(ParseWireError::Truncated { .. })));
        assert!(matches!(MyrinetHeader::parse(&[]), Err(ParseWireError::Truncated { .. })));
    }

    #[test]
    fn myrinet_rejects_illegal_route_length() {
        assert_eq!(MyrinetHeader::parse(&[16, 0, 0]), Err(ParseWireError::BadLength));
    }

    #[test]
    fn ethernet_roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::for_node(2),
            src: MacAddr::for_node(1),
            ethertype: ETHERTYPE_IPV6,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), (h, 14));
    }

    #[test]
    fn mac_display_and_generation() {
        assert_eq!(MacAddr([1, 2, 3, 4, 5, 0xff]).to_string(), "01:02:03:04:05:ff");
        assert_ne!(MacAddr::for_node(1), MacAddr::for_node(2));
        assert_eq!(MacAddr::BROADCAST.0, [0xff; 6]);
    }
}
