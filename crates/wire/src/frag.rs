//! The IPv6 fragment extension header (RFC 2460 §4.5).
//!
//! §4.1 of the paper: "the IPv6 standard supports only end-to-end
//! fragmentation which is better suited to hardware based protocol
//! implementations" — only the source fragments and only the final
//! destination reassembles, so the QPIP firmware can carry TCP segments
//! larger than the path MTU (the message-per-segment mapping at small
//! MTUs) without any router involvement.

use crate::error::ParseWireError;

/// Protocol number of the fragment extension header.
pub const FRAGMENT_NEXT_HEADER: u8 = 44;
/// Encoded size of the fragment header.
pub const FRAGMENT_HEADER_LEN: usize = 8;

/// A fragment extension header.
///
/// # Examples
///
/// ```
/// use qpip_wire::frag::FragmentHeader;
///
/// let h = FragmentHeader { next_header: 6, offset: 1448, more: true, id: 7 };
/// let mut buf = Vec::new();
/// h.encode(&mut buf);
/// let (back, used) = FragmentHeader::parse(&buf)?;
/// assert_eq!(back, h);
/// assert_eq!(used, 8);
/// # Ok::<(), qpip_wire::error::ParseWireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Protocol of the fragmented payload (6 for TCP).
    pub next_header: u8,
    /// Byte offset of this fragment within the original payload; must be
    /// a multiple of 8 except implicitly via encoding (13-bit units of
    /// 8 bytes on the wire).
    pub offset: u32,
    /// More fragments follow.
    pub more: bool,
    /// Identifies fragments of one original packet.
    pub id: u32,
}

impl FragmentHeader {
    /// Appends the 8-byte wire encoding to `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not a multiple of 8 or exceeds the 13-bit
    /// field (× 8) range.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        assert_eq!(self.offset % 8, 0, "fragment offsets are in 8-byte units");
        let units = self.offset / 8;
        assert!(units < (1 << 13), "fragment offset out of range");
        buf.push(self.next_header);
        buf.push(0);
        let word = ((units as u16) << 3) | u16::from(self.more);
        buf.extend_from_slice(&word.to_be_bytes());
        buf.extend_from_slice(&self.id.to_be_bytes());
    }

    /// Parses from the front of `data`.
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] when fewer than 8 bytes remain.
    pub fn parse(data: &[u8]) -> Result<(FragmentHeader, usize), ParseWireError> {
        if data.len() < FRAGMENT_HEADER_LEN {
            return Err(ParseWireError::Truncated {
                needed: FRAGMENT_HEADER_LEN,
                have: data.len(),
            });
        }
        let word = u16::from_be_bytes([data[2], data[3]]);
        Ok((
            FragmentHeader {
                next_header: data[0],
                offset: u32::from(word >> 3) * 8,
                more: word & 1 != 0,
                id: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            },
            FRAGMENT_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_fields() {
        for (offset, more) in [(0u32, true), (1448, true), (65528, false)] {
            let h = FragmentHeader { next_header: 6, offset, more, id: 0xdead_beef };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            assert_eq!(buf.len(), FRAGMENT_HEADER_LEN);
            let (back, n) = FragmentHeader::parse(&buf).unwrap();
            assert_eq!(back, h);
            assert_eq!(n, 8);
        }
    }

    #[test]
    #[should_panic(expected = "8-byte units")]
    fn rejects_unaligned_offset() {
        let mut buf = Vec::new();
        FragmentHeader { next_header: 6, offset: 3, more: false, id: 0 }.encode(&mut buf);
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            FragmentHeader::parse(&[0; 7]),
            Err(ParseWireError::Truncated { needed: 8, have: 7 })
        ));
    }

    #[test]
    fn reserved_bits_ignored_on_parse() {
        let h = FragmentHeader { next_header: 17, offset: 8, more: true, id: 1 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[1] = 0xff; // reserved byte
        let (back, _) = FragmentHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn reserved_flag_bits_ignored_on_parse() {
        let h = FragmentHeader { next_header: 6, offset: 16, more: false, id: 2 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[3] |= 0b110; // the two reserved bits between offset and M
        let (back, _) = FragmentHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_offset_beyond_thirteen_bit_field() {
        let mut buf = Vec::new();
        FragmentHeader { next_header: 6, offset: 1 << 16, more: false, id: 0 }.encode(&mut buf);
    }

    #[test]
    fn offset_boundary_values_roundtrip() {
        // 0 and the 13-bit maximum are the exact field edges
        for offset in [0u32, 8, 8 * ((1 << 13) - 1)] {
            let h = FragmentHeader { next_header: 6, offset, more: true, id: 3 };
            let mut buf = Vec::new();
            h.encode(&mut buf);
            assert_eq!(FragmentHeader::parse(&buf).unwrap().0.offset, offset);
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            FragmentHeader::parse(&[]),
            Err(ParseWireError::Truncated { needed: 8, have: 0 })
        ));
    }
}
