//! # qpip-wire — wire formats for the QPIP reproduction
//!
//! Byte-exact encodings of everything that crosses a link in the
//! simulated system area network:
//!
//! * [`ipv6`] — the IPv6 header (the paper's network layer, §4.1)
//! * [`tcp`] — TCP header, RFC 1323 options, sequence arithmetic
//! * [`udp`] — UDP header
//! * [`link`] — Myrinet source-route framing and Ethernet II
//! * [`checksum`] — the internet checksum and IPv6 pseudo-header
//! * [`packet`] — the owned packet buffer
//!
//! The protocol *logic* (state machines, timers, congestion control)
//! lives in `qpip-netstack`; this crate is purely representation, so the
//! firmware and the host stack share one set of codecs — a QPIP node and
//! a socket node interoperate on the wire by construction (§3).

// `deny`, not `forbid`: the checksum module carries one audited
// `allow(unsafe_code)` for its AVX2 kernel (runtime-feature-gated
// SIMD intrinsics); everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod frag;
pub mod ipv6;
pub mod link;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use error::ParseWireError;
pub use packet::Packet;
