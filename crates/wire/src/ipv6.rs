//! IPv6 header encoding and parsing (RFC 2460).
//!
//! The prototype uses IPv6 because "it reflects the next generation of
//! network systems" and supports only end-to-end fragmentation, "better
//! suited to hardware based protocol implementations" (§4.1). The
//! fragment extension header itself lives in [`crate::frag`].

use std::net::Ipv6Addr;

use crate::error::ParseWireError;

/// Fixed IPv6 header length in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// Upper-layer protocol selector (the IPv6 `Next Header` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextHeader {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, carried verbatim.
    Other(u8),
}

impl NextHeader {
    /// The on-wire protocol number.
    pub fn code(self) -> u8 {
        match self {
            NextHeader::Tcp => 6,
            NextHeader::Udp => 17,
            NextHeader::Other(c) => c,
        }
    }
}

impl From<u8> for NextHeader {
    fn from(c: u8) -> Self {
        match c {
            6 => NextHeader::Tcp,
            17 => NextHeader::Udp,
            other => NextHeader::Other(other),
        }
    }
}

/// A parsed or to-be-encoded IPv6 header.
///
/// # Examples
///
/// ```
/// use std::net::Ipv6Addr;
/// use qpip_wire::ipv6::{Ipv6Header, NextHeader};
///
/// let h = Ipv6Header::new(
///     Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1),
///     Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2),
///     NextHeader::Tcp,
///     4,
/// );
/// let mut buf = Vec::new();
/// h.encode(&mut buf);
/// buf.extend_from_slice(b"data"); // the 4-byte payload
/// let (back, used) = Ipv6Header::parse(&buf)?;
/// assert_eq!(back, h);
/// assert_eq!(used, 40);
/// # Ok::<(), qpip_wire::error::ParseWireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class (DSCP + ECN).
    pub traffic_class: u8,
    /// Flow label (20 bits used).
    pub flow_label: u32,
    /// Length of everything after this header, in bytes.
    pub payload_len: u16,
    /// Upper-layer protocol.
    pub next_header: NextHeader,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

/// ECN codepoints in the low two bits of the traffic class (RFC 3168).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotCapable,
    /// ECN-capable transport, codepoint ECT(0).
    Capable,
    /// Congestion experienced — set by a RED/ECN queue in the fabric.
    CongestionExperienced,
}

impl Ipv6Header {
    /// Default hop limit used by the QPIP firmware.
    pub const DEFAULT_HOP_LIMIT: u8 = 64;

    /// The ECN codepoint carried in the traffic class.
    pub fn ecn(&self) -> Ecn {
        match self.traffic_class & 0b11 {
            0b10 | 0b01 => Ecn::Capable,
            0b11 => Ecn::CongestionExperienced,
            _ => Ecn::NotCapable,
        }
    }

    /// Sets the ECN codepoint.
    pub fn set_ecn(&mut self, ecn: Ecn) {
        let bits = match ecn {
            Ecn::NotCapable => 0b00,
            Ecn::Capable => 0b10,
            Ecn::CongestionExperienced => 0b11,
        };
        self.traffic_class = (self.traffic_class & !0b11) | bits;
    }

    /// Reads the ECN codepoint of an encoded packet.
    ///
    /// # Panics
    ///
    /// Panics if `packet` is shorter than the IPv6 header.
    pub fn ecn_of_packet(packet: &[u8]) -> Ecn {
        assert!(packet.len() >= IPV6_HEADER_LEN);
        match (packet[1] >> 4) & 0b11 {
            0b10 | 0b01 => Ecn::Capable,
            0b11 => Ecn::CongestionExperienced,
            _ => Ecn::NotCapable,
        }
    }

    /// Rewrites the ECN codepoint of an encoded packet in place
    /// (traffic class spans the version/TC/flow word; nothing else is
    /// touched and the transport checksum does not cover it).
    ///
    /// # Panics
    ///
    /// Panics if `packet` is shorter than the IPv6 header.
    pub fn set_ecn_in_packet(packet: &mut [u8], ecn: Ecn) {
        assert!(packet.len() >= IPV6_HEADER_LEN);
        let bits: u8 = match ecn {
            Ecn::NotCapable => 0b00,
            Ecn::Capable => 0b10,
            Ecn::CongestionExperienced => 0b11,
        };
        // traffic class = bits 4..12 of the first 16 bits; its low two
        // bits are bits 10..12, i.e. bits 5..7 of the second byte
        packet[1] = (packet[1] & !0b0011_0000) | (bits << 4);
    }

    /// Creates a header with default traffic class, flow label and hop
    /// limit.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: NextHeader, payload_len: u16) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len,
            next_header,
            hop_limit: Self::DEFAULT_HOP_LIMIT,
            src,
            dst,
        }
    }

    /// Appends the 40-byte wire encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.resize(start + IPV6_HEADER_LEN, 0);
        self.encode_into(&mut buf[start..]);
    }

    /// Writes the 40-byte wire encoding into the front of `buf`
    /// (pre-reserved space, e.g. packet headroom).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`IPV6_HEADER_LEN`].
    pub fn encode_into(&self, buf: &mut [u8]) {
        let vtf: u32 =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0x000f_ffff);
        buf[0..4].copy_from_slice(&vtf.to_be_bytes());
        buf[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        buf[6] = self.next_header.code();
        buf[7] = self.hop_limit;
        buf[8..24].copy_from_slice(&self.src.octets());
        buf[24..40].copy_from_slice(&self.dst.octets());
    }

    /// Parses a header from the front of `data`, returning it and the
    /// number of bytes consumed (always 40).
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] if fewer than 40 bytes are present;
    /// [`ParseWireError::BadVersion`] if the version nibble is not 6;
    /// [`ParseWireError::BadLength`] if the payload length exceeds the
    /// bytes actually present.
    pub fn parse(data: &[u8]) -> Result<(Ipv6Header, usize), ParseWireError> {
        if data.len() < IPV6_HEADER_LEN {
            return Err(ParseWireError::Truncated { needed: IPV6_HEADER_LEN, have: data.len() });
        }
        let vtf = u32::from_be_bytes([data[0], data[1], data[2], data[3]]);
        let version = (vtf >> 28) as u8;
        if version != 6 {
            return Err(ParseWireError::BadVersion { found: version });
        }
        let payload_len = u16::from_be_bytes([data[4], data[5]]);
        if IPV6_HEADER_LEN + usize::from(payload_len) > data.len() {
            return Err(ParseWireError::BadLength);
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&data[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&data[24..40]);
        Ok((
            Ipv6Header {
                traffic_class: ((vtf >> 20) & 0xff) as u8,
                flow_label: vtf & 0x000f_ffff,
                payload_len,
                next_header: NextHeader::from(data[6]),
                hop_limit: data[7],
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
            },
            IPV6_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, last)
    }

    #[test]
    fn encode_parse_roundtrip() {
        let h = Ipv6Header {
            traffic_class: 0xa5,
            flow_label: 0xbeef,
            payload_len: 0,
            next_header: NextHeader::Udp,
            hop_limit: 3,
            src: addr(1),
            dst: addr(2),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), IPV6_HEADER_LEN);
        let (back, used) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, IPV6_HEADER_LEN);
    }

    #[test]
    fn version_nibble_is_six() {
        let mut buf = Vec::new();
        Ipv6Header::new(addr(1), addr(2), NextHeader::Tcp, 0).encode(&mut buf);
        assert_eq!(buf[0] >> 4, 6);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        Ipv6Header::new(addr(1), addr(2), NextHeader::Tcp, 0).encode(&mut buf);
        buf[0] = 0x45; // IPv4-style first byte
        assert_eq!(Ipv6Header::parse(&buf), Err(ParseWireError::BadVersion { found: 4 }));
    }

    #[test]
    fn rejects_truncated() {
        let err = Ipv6Header::parse(&[0u8; 39]).unwrap_err();
        assert_eq!(err, ParseWireError::Truncated { needed: 40, have: 39 });
    }

    #[test]
    fn rejects_payload_len_beyond_buffer() {
        let mut buf = Vec::new();
        Ipv6Header::new(addr(1), addr(2), NextHeader::Tcp, 100).encode(&mut buf);
        // buffer has header only, no 100-byte payload
        assert_eq!(Ipv6Header::parse(&buf), Err(ParseWireError::BadLength));
    }

    #[test]
    fn next_header_codes() {
        assert_eq!(NextHeader::Tcp.code(), 6);
        assert_eq!(NextHeader::Udp.code(), 17);
        assert_eq!(NextHeader::from(41), NextHeader::Other(41));
        assert_eq!(NextHeader::from(6), NextHeader::Tcp);
    }

    #[test]
    fn ecn_codepoints_roundtrip() {
        let mut h = Ipv6Header::new(addr(1), addr(2), NextHeader::Tcp, 0);
        assert_eq!(h.ecn(), Ecn::NotCapable);
        for e in [Ecn::Capable, Ecn::CongestionExperienced, Ecn::NotCapable] {
            h.set_ecn(e);
            assert_eq!(h.ecn(), e);
            // survives the wire
            let mut buf = Vec::new();
            h.encode(&mut buf);
            let (back, _) = Ipv6Header::parse(&buf).unwrap();
            assert_eq!(back.ecn(), e);
        }
    }

    #[test]
    fn in_place_ecn_rewrite_matches_full_encode() {
        let mut h = Ipv6Header::new(addr(1), addr(2), NextHeader::Tcp, 0);
        h.set_ecn(Ecn::Capable);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        Ipv6Header::set_ecn_in_packet(&mut buf, Ecn::CongestionExperienced);
        let (back, _) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(back.ecn(), Ecn::CongestionExperienced);
        assert_eq!(back.traffic_class & !0b11, 0, "other TC bits untouched");
        assert_eq!(Ipv6Header::ecn_of_packet(&buf), Ecn::CongestionExperienced);
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let h = Ipv6Header {
            flow_label: 0xfff_ffff, // more than 20 bits
            ..Ipv6Header::new(addr(1), addr(2), NextHeader::Tcp, 0)
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(back.flow_label, 0x000f_ffff);
    }
}
