//! UDP header encoding and parsing (RFC 768).
//!
//! Unreliable QP messages are "encapsulated directly in UDP datagrams
//! for transmission over the network" (§4.1) — one message per datagram,
//! no extra protocol layer.

use crate::error::ParseWireError;

/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
///
/// # Examples
///
/// ```
/// use qpip_wire::udp::UdpHeader;
///
/// let h = UdpHeader { src_port: 9000, dst_port: 9001, length: 12, checksum: 0 };
/// let mut buf = Vec::new();
/// h.encode(&mut buf);
/// buf.extend_from_slice(b"ping"); // the 4-byte payload
/// let (back, used) = UdpHeader::parse(&buf)?;
/// assert_eq!(back, h);
/// assert_eq!(used, 8);
/// # Ok::<(), qpip_wire::error::ParseWireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload in bytes (≥ 8).
    pub length: u16,
    /// Internet checksum (mandatory over IPv6).
    pub checksum: u16,
}

impl UdpHeader {
    /// Builds a header for a payload of `payload_len` bytes with a zero
    /// checksum, ready for checksum patching.
    ///
    /// # Panics
    ///
    /// Panics if the datagram would exceed 65 535 bytes.
    pub fn for_payload(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        let length = UDP_HEADER_LEN + payload_len;
        assert!(length <= usize::from(u16::MAX), "UDP datagram too large");
        UdpHeader { src_port, dst_port, length: length as u16, checksum: 0 }
    }

    /// Appends the 8-byte wire encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.resize(start + UDP_HEADER_LEN, 0);
        self.encode_into(&mut buf[start..]);
    }

    /// Writes the 8-byte wire encoding into the front of `buf`
    /// (pre-reserved space, e.g. packet headroom).
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`UDP_HEADER_LEN`].
    pub fn encode_into(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].copy_from_slice(&self.checksum.to_be_bytes());
    }

    /// Parses a header from the front of `data`.
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] when fewer than 8 bytes are present;
    /// [`ParseWireError::BadLength`] when the length field is below 8 or
    /// beyond the buffer.
    pub fn parse(data: &[u8]) -> Result<(UdpHeader, usize), ParseWireError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(ParseWireError::Truncated { needed: UDP_HEADER_LEN, have: data.len() });
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if usize::from(length) < UDP_HEADER_LEN || usize::from(length) > data.len() {
            return Err(ParseWireError::BadLength);
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length,
                checksum: u16::from_be_bytes([data[6], data[7]]),
            },
            UDP_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = UdpHeader { src_port: 1, dst_port: 0xffff, length: 8, checksum: 0x1234 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(UdpHeader::parse(&buf).unwrap(), (h, 8));
    }

    #[test]
    fn for_payload_sets_length() {
        let h = UdpHeader::for_payload(5, 6, 100);
        assert_eq!(h.length, 108);
        assert_eq!(h.checksum, 0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn for_payload_rejects_oversize() {
        UdpHeader::for_payload(5, 6, 65_535);
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            UdpHeader::parse(&[0; 7]),
            Err(ParseWireError::Truncated { needed: 8, have: 7 })
        ));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = Vec::new();
        UdpHeader { src_port: 0, dst_port: 0, length: 7, checksum: 0 }.encode(&mut buf);
        assert_eq!(UdpHeader::parse(&buf), Err(ParseWireError::BadLength));
        let mut buf = Vec::new();
        UdpHeader { src_port: 0, dst_port: 0, length: 100, checksum: 0 }.encode(&mut buf);
        assert_eq!(UdpHeader::parse(&buf), Err(ParseWireError::BadLength));
    }
}
