//! TCP segment header, options and sequence-number arithmetic.
//!
//! The QPIP firmware implements the TCP subset of §4.1: RTT estimation,
//! window management, congestion and flow control, and the RFC 1323
//! timestamp and window-scale options. This module is only the wire
//! representation; the protocol engine lives in `qpip-netstack`.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use crate::error::ParseWireError;

/// Minimum TCP header length (no options).
pub const TCP_HEADER_MIN_LEN: usize = 20;
/// Maximum TCP header length (15 × 4 bytes).
pub const TCP_HEADER_MAX_LEN: usize = 60;

/// A 32-bit TCP sequence number with RFC 793 modular comparison.
///
/// # Examples
///
/// ```
/// use qpip_wire::tcp::SeqNum;
///
/// let a = SeqNum(u32::MAX - 1);
/// let b = a + 10; // wraps
/// assert!(a.lt(b));
/// assert_eq!(b - a, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Modular `self < other` (RFC 793: the difference interpreted as a
    /// signed 32-bit value is negative).
    pub fn lt(self, other: SeqNum) -> bool {
        (self.0.wrapping_sub(other.0) as i32) < 0
    }

    /// Modular `self <= other`.
    pub fn le(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// Modular `self > other`.
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// Modular `self >= other`.
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// The later of two sequence numbers under modular order.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.ge(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    /// Modular distance `self - rhs`; meaningful when `rhs <= self`.
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// TCP header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// FIN: sender is done sending.
    pub fin: bool,
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: acknowledgment field is valid.
    pub ack: bool,
    /// URG: urgent pointer is valid (unsupported by the QPIP subset but
    /// representable on the wire).
    pub urg: bool,
    /// ECE: ECN-Echo (RFC 3168) — the receiver saw congestion
    /// experienced, or (on SYN) the peer negotiates ECN.
    pub ece: bool,
    /// CWR: Congestion Window Reduced (RFC 3168) — the sender reacted
    /// to an ECN-Echo.
    pub cwr: bool,
}

impl TcpFlags {
    /// A pure SYN.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ..TcpFlags::NONE };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, ..TcpFlags::NONE };
    /// A pure ACK.
    pub const ACK: TcpFlags = TcpFlags { ack: true, ..TcpFlags::NONE };
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
        ece: false,
        cwr: false,
    };

    /// Packs the flags into the low byte of the offset/flags word.
    pub fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
            | u8::from(self.urg) << 5
            | u8::from(self.ece) << 6
            | u8::from(self.cwr) << 7
    }

    /// Unpacks flags from the wire byte.
    pub fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
            ece: b & 0x40 != 0,
            cwr: b & 0x80 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, c) in [
            (self.syn, 'S'),
            (self.ack, 'A'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
            (self.urg, 'U'),
            (self.ece, 'E'),
            (self.cwr, 'C'),
        ] {
            if set {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// TCP options carried by the QPIP subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpOptions {
    /// Maximum segment size (SYN only), kind 2.
    pub mss: Option<u16>,
    /// Window scale shift (SYN only), kind 3 — RFC 1323.
    pub window_scale: Option<u8>,
    /// Timestamps `(TSval, TSecr)`, kind 8 — RFC 1323.
    pub timestamps: Option<(u32, u32)>,
}

impl TcpOptions {
    /// Encoded length in bytes, padded to a multiple of 4.
    pub fn encoded_len(&self) -> usize {
        let mut n = 0;
        if self.mss.is_some() {
            n += 4;
        }
        if self.window_scale.is_some() {
            n += 3;
        }
        if self.timestamps.is_some() {
            n += 10;
        }
        (n + 3) & !3
    }

    /// Writes the padded option block into `buf`, which must be exactly
    /// [`Self::encoded_len`] bytes.
    fn encode_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), self.encoded_len());
        let mut at = 0;
        if let Some(mss) = self.mss {
            buf[at..at + 2].copy_from_slice(&[2, 4]);
            buf[at + 2..at + 4].copy_from_slice(&mss.to_be_bytes());
            at += 4;
        }
        if let Some(ws) = self.window_scale {
            buf[at..at + 3].copy_from_slice(&[3, 3, ws]);
            at += 3;
        }
        if let Some((tsval, tsecr)) = self.timestamps {
            buf[at..at + 2].copy_from_slice(&[8, 10]);
            buf[at + 2..at + 6].copy_from_slice(&tsval.to_be_bytes());
            buf[at + 6..at + 10].copy_from_slice(&tsecr.to_be_bytes());
            at += 10;
        }
        for pad in &mut buf[at..] {
            *pad = 1; // NOP padding
        }
    }

    fn parse(mut data: &[u8]) -> Result<TcpOptions, ParseWireError> {
        let mut opts = TcpOptions::default();
        while let Some((&kind, rest)) = data.split_first() {
            match kind {
                0 => break,       // end of options
                1 => data = rest, // NOP
                _ => {
                    let (&len, body) = rest.split_first().ok_or(ParseWireError::BadOption)?;
                    let len = usize::from(len);
                    if len < 2 || len - 2 > body.len() {
                        return Err(ParseWireError::BadOption);
                    }
                    let (val, tail) = body.split_at(len - 2);
                    match (kind, val) {
                        (2, [a, b]) => opts.mss = Some(u16::from_be_bytes([*a, *b])),
                        (3, [ws]) => opts.window_scale = Some(*ws),
                        (8, v) if v.len() == 8 => {
                            opts.timestamps = Some((
                                u32::from_be_bytes([v[0], v[1], v[2], v[3]]),
                                u32::from_be_bytes([v[4], v[5], v[6], v[7]]),
                            ));
                        }
                        // unknown or wrong-sized option: skip per RFC 1122
                        _ => {}
                    }
                    data = tail;
                }
            }
        }
        Ok(opts)
    }
}

/// A TCP header (with options), independent of payload.
///
/// # Examples
///
/// ```
/// use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};
///
/// let h = TcpHeader {
///     src_port: 4000,
///     dst_port: 5000,
///     seq: SeqNum(7),
///     ack: SeqNum(0),
///     flags: TcpFlags::SYN,
///     window: 65_535,
///     checksum: 0,
///     urgent: 0,
///     options: TcpOptions { mss: Some(16_384), ..TcpOptions::default() },
/// };
/// let mut buf = Vec::new();
/// h.encode(&mut buf);
/// let (back, used) = TcpHeader::parse(&buf)?;
/// assert_eq!(back, h);
/// assert_eq!(used, 24);
/// # Ok::<(), qpip_wire::error::ParseWireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: SeqNum,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window (unscaled, as carried on the wire).
    pub window: u16,
    /// Internet checksum over pseudo-header + header + payload.
    pub checksum: u16,
    /// Urgent pointer (always 0 in the QPIP subset).
    pub urgent: u16,
    /// Options.
    pub options: TcpOptions,
}

impl TcpHeader {
    /// Total encoded header length including options and padding.
    pub fn encoded_len(&self) -> usize {
        TCP_HEADER_MIN_LEN + self.options.encoded_len()
    }

    /// Appends the wire encoding to `buf`.
    ///
    /// The `checksum` field is written as stored; compute it with
    /// [`crate::checksum::transport_checksum`] over the encoded segment
    /// (checksum field zeroed) and patch it afterwards, as the firmware
    /// does.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.resize(start + self.encoded_len(), 0);
        self.encode_into(&mut buf[start..]);
    }

    /// Writes the wire encoding into the front of `buf` (pre-reserved
    /// space, e.g. packet headroom). Checksum semantics as in
    /// [`Self::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`Self::encoded_len`].
    pub fn encode_into(&self, buf: &mut [u8]) {
        let len = self.encoded_len();
        let data_offset_words = (len / 4) as u8;
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.0.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.0.to_be_bytes());
        buf[12] = data_offset_words << 4;
        buf[13] = self.flags.to_byte();
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        buf[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        self.options.encode_into(&mut buf[TCP_HEADER_MIN_LEN..len]);
    }

    /// Parses a header from the front of `data`, returning it and the
    /// header length consumed (payload follows).
    ///
    /// # Errors
    ///
    /// [`ParseWireError::Truncated`] if the fixed header is incomplete,
    /// [`ParseWireError::BadLength`] if the data offset is illegal, and
    /// [`ParseWireError::BadOption`] for malformed options.
    pub fn parse(data: &[u8]) -> Result<(TcpHeader, usize), ParseWireError> {
        if data.len() < TCP_HEADER_MIN_LEN {
            return Err(ParseWireError::Truncated { needed: TCP_HEADER_MIN_LEN, have: data.len() });
        }
        let header_len = usize::from(data[12] >> 4) * 4;
        if !(TCP_HEADER_MIN_LEN..=TCP_HEADER_MAX_LEN).contains(&header_len)
            || header_len > data.len()
        {
            return Err(ParseWireError::BadLength);
        }
        let options = TcpOptions::parse(&data[TCP_HEADER_MIN_LEN..header_len])?;
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: SeqNum(u32::from_be_bytes([data[4], data[5], data[6], data[7]])),
                ack: SeqNum(u32::from_be_bytes([data[8], data[9], data[10], data[11]])),
                flags: TcpFlags::from_byte(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
                checksum: u16::from_be_bytes([data[16], data[17]]),
                urgent: u16::from_be_bytes([data[18], data[19]]),
                options,
            },
            header_len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TcpHeader {
        TcpHeader {
            src_port: 1234,
            dst_port: 80,
            seq: SeqNum(0xdead_beef),
            ack: SeqNum(0x0102_0304),
            flags: TcpFlags { ack: true, psh: true, ..TcpFlags::NONE },
            window: 32_768,
            checksum: 0xabcd,
            urgent: 0,
            options: TcpOptions::default(),
        }
    }

    #[test]
    fn plain_header_roundtrip() {
        let h = header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), 20);
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, 20);
    }

    #[test]
    fn header_with_all_options_roundtrip() {
        let h = TcpHeader {
            options: TcpOptions {
                mss: Some(16_384),
                window_scale: Some(4),
                timestamps: Some((0x1111_2222, 0x3333_4444)),
            },
            flags: TcpFlags::SYN,
            ..header()
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // 20 + (4 + 3 + 10 -> 17 padded to 20)
        assert_eq!(buf.len(), 40);
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, 40);
    }

    #[test]
    fn timestamps_only_roundtrip() {
        let h = TcpHeader {
            options: TcpOptions { timestamps: Some((5, 9)), ..TcpOptions::default() },
            ..header()
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), 32); // 20 + 10 padded to 12
        let (back, _) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(back.options.timestamps, Some((5, 9)));
    }

    #[test]
    fn unknown_options_are_skipped() {
        let h = header();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[12] = 6 << 4; // extend header by 4 bytes
        buf.extend_from_slice(&[254, 4, 0xaa, 0xbb]); // experimental option
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(used, 24);
        assert_eq!(back.options, TcpOptions::default());
    }

    #[test]
    fn rejects_bad_offset() {
        let mut buf = Vec::new();
        header().encode(&mut buf);
        buf[12] = 4 << 4; // offset below minimum
        assert_eq!(TcpHeader::parse(&buf), Err(ParseWireError::BadLength));
        buf[12] = 10 << 4; // offset beyond buffer
        assert_eq!(TcpHeader::parse(&buf), Err(ParseWireError::BadLength));
    }

    #[test]
    fn rejects_malformed_option_length() {
        let mut buf = Vec::new();
        header().encode(&mut buf);
        buf[12] = 6 << 4;
        buf.extend_from_slice(&[2, 1, 0, 0]); // MSS with illegal len 1
        assert_eq!(TcpHeader::parse(&buf), Err(ParseWireError::BadOption));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(TcpHeader::parse(&[0u8; 19]), Err(ParseWireError::Truncated { .. })));
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for b in 0..=255u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn ecn_flags_roundtrip() {
        let f = TcpFlags { ece: true, cwr: true, ack: true, ..TcpFlags::NONE };
        assert_eq!(TcpFlags::from_byte(f.to_byte()), f);
        assert_eq!(f.to_string(), "AEC");
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SA");
        assert_eq!(TcpFlags::NONE.to_string(), "-");
    }

    #[test]
    fn seqnum_wrapping_comparisons() {
        let a = SeqNum(u32::MAX - 5);
        let b = SeqNum(10); // wrapped past zero
        assert!(a.lt(b));
        assert!(b.gt(a));
        assert!(a.le(a));
        assert!(a.ge(a));
        assert_eq!(b - a, 16);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn seqnum_add_assign_wraps() {
        let mut s = SeqNum(u32::MAX);
        s += 2;
        assert_eq!(s, SeqNum(1));
    }
}
