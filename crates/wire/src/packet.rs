//! The owned packet buffer passed between layers and across the fabric.
//!
//! A [`Packet`] keeps *headroom* — spare bytes in front of the live
//! region — so that each protocol layer can prepend its header in place
//! instead of allocating a fresh vector and copying everything below it.
//! This is the classic zero-copy transmit layout (mbuf leading space /
//! skb headroom): the payload is written once, and IPv6/TCP/UDP headers
//! grow leftwards into the reserved space.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Default transmit headroom: link framing (8) + IPv6 (40) + maximum
/// TCP header (60), rounded up to a power of two.
pub const HEADROOM: usize = 128;

/// An owned, contiguous packet: link header + IPv6 header + transport
/// header + payload, exactly as it would appear on the wire, with
/// optional headroom in front for in-place header prepending.
///
/// Dereferences to `[u8]`, so `&pkt[..]`, `pkt.len()` and index
/// expressions all see only the live bytes (the headroom is invisible).
///
/// # Examples
///
/// ```
/// use qpip_wire::packet::Packet;
///
/// let mut p = Packet::with_headroom(b"payload", 8);
/// p.prepend(&[0xAA, 0xBB]);
/// assert_eq!(&p[..2], &[0xAA, 0xBB]);
/// assert_eq!(p.len(), 9);
/// assert_eq!(p.headroom(), 6);
/// ```
#[derive(Clone, Default)]
pub struct Packet {
    buf: Vec<u8>,
    /// Offset of the first live byte; everything before it is headroom.
    head: usize,
}

impl Packet {
    /// Creates an empty packet buffer with no headroom.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Creates a packet holding `payload` with `headroom` spare bytes in
    /// front, allocated in one shot.
    pub fn with_headroom(payload: &[u8], headroom: usize) -> Self {
        let mut buf = Vec::with_capacity(headroom + payload.len());
        buf.resize(headroom, 0);
        buf.extend_from_slice(payload);
        Packet { buf, head: headroom }
    }

    /// Creates an empty packet with `headroom` spare bytes in front and
    /// room for `tail` bytes of payload without reallocating.
    pub fn reserve_headroom(headroom: usize, tail: usize) -> Self {
        let mut buf = Vec::with_capacity(headroom + tail);
        buf.resize(headroom, 0);
        Packet { buf, head: headroom }
    }

    /// Wraps an existing byte vector (no headroom).
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Packet { buf: bytes, head: 0 }
    }

    /// Spare bytes available in front of the live region.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Total length on the wire, in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// `true` if the packet has no live bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.len() == self.head
    }

    /// Opens `n` bytes of space at the front of the live region and
    /// returns it for the caller to fill (a header encode target).
    ///
    /// When headroom suffices this is O(1) — the live region simply
    /// grows leftwards. Otherwise the buffer is reallocated once with
    /// fresh [`HEADROOM`].
    pub fn prepend_space(&mut self, n: usize) -> &mut [u8] {
        if n <= self.head {
            self.head -= n;
        } else {
            // Slow path: rebuild with standard headroom in front.
            let mut buf = Vec::with_capacity(HEADROOM + n + self.len());
            buf.resize(HEADROOM + n, 0);
            buf.extend_from_slice(&self.buf[self.head..]);
            self.buf = buf;
            self.head = HEADROOM;
        }
        let head = self.head;
        &mut self.buf[head..head + n]
    }

    /// Prepends `bytes` in front of the live region.
    pub fn prepend(&mut self, bytes: &[u8]) {
        self.prepend_space(bytes.len()).copy_from_slice(bytes);
    }

    /// Appends bytes after the live region.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The live bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Mutable access to the live bytes (checksum patching).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf[self.head..]
    }

    /// Extracts the live bytes as a vector, discarding the headroom.
    pub fn into_vec(mut self) -> Vec<u8> {
        if self.head != 0 {
            self.buf.drain(..self.head);
        }
        self.buf
    }
}

impl From<Vec<u8>> for Packet {
    fn from(bytes: Vec<u8>) -> Self {
        Packet::from_vec(bytes)
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Deref for Packet {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for Packet {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

/// Equality is over the live bytes only; headroom is invisible.
impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Packet {}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.as_slice();
        write!(f, "Packet({} bytes", bytes.len())?;
        if !bytes.is_empty() {
            write!(f, ", {:02x?}…", &bytes[..bytes.len().min(8)])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut p = Packet::from_vec(vec![9, 8, 7]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        p.as_mut_slice()[0] = 1;
        assert_eq!(p.as_slice(), &[1, 8, 7]);
        assert_eq!(p.clone().into_vec(), vec![1, 8, 7]);
        assert_eq!(p.as_ref(), &[1, 8, 7]);
    }

    #[test]
    fn debug_is_bounded_and_nonempty() {
        let p = Packet::from_vec((0..100).collect());
        let s = format!("{p:?}");
        assert!(s.starts_with("Packet(100 bytes"));
        assert!(s.len() < 120);
        assert_eq!(format!("{:?}", Packet::new()), "Packet(0 bytes)");
    }

    #[test]
    fn prepend_within_headroom_is_in_place() {
        let mut p = Packet::with_headroom(&[4, 5, 6], 8);
        assert_eq!(p.headroom(), 8);
        assert_eq!(p.len(), 3);
        p.prepend(&[1, 2, 3]);
        assert_eq!(p.headroom(), 5);
        assert_eq!(p.as_slice(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn prepend_beyond_headroom_reallocates_with_fresh_headroom() {
        let mut p = Packet::with_headroom(&[9], 2);
        let hdr: Vec<u8> = (0..10).collect();
        p.prepend(&hdr);
        assert_eq!(p.headroom(), HEADROOM);
        assert_eq!(&p[..10], &hdr[..]);
        assert_eq!(p[10], 9);
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn into_vec_drops_headroom() {
        let mut p = Packet::reserve_headroom(16, 4);
        p.extend_from_slice(&[1, 2, 3, 4]);
        p.prepend(&[0]);
        assert_eq!(p.into_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equality_ignores_headroom() {
        let a = Packet::with_headroom(&[1, 2], 32);
        let b = Packet::from_vec(vec![1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn deref_exposes_live_bytes_only() {
        let mut p = Packet::with_headroom(&[1, 2, 3], 8);
        assert_eq!(p.len(), 3);
        assert_eq!(&p[1..], &[2, 3]);
        p[0] = 7;
        assert_eq!(p.as_slice(), &[7, 2, 3]);
    }
}
