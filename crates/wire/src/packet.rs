//! The owned packet buffer passed between layers and across the fabric.

use core::fmt;

/// An owned, contiguous packet: link header + IPv6 header + transport
/// header + payload, exactly as it would appear on the wire.
///
/// # Examples
///
/// ```
/// use qpip_wire::packet::Packet;
///
/// let p = Packet::from_vec(vec![1, 2, 3]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.as_slice(), &[1, 2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Packet {
    bytes: Vec<u8>,
}

impl Packet {
    /// Creates an empty packet buffer.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Wraps an existing byte vector.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Packet { bytes }
    }

    /// Total length on the wire, in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if the packet has no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw bytes (checksum patching).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Extracts the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }
}

impl From<Vec<u8>> for Packet {
    fn from(bytes: Vec<u8>) -> Self {
        Packet::from_vec(bytes)
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({} bytes", self.bytes.len())?;
        if !self.bytes.is_empty() {
            write!(f, ", {:02x?}…", &self.bytes[..self.bytes.len().min(8)])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut p = Packet::from_vec(vec![9, 8, 7]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        p.as_mut_slice()[0] = 1;
        assert_eq!(p.as_slice(), &[1, 8, 7]);
        assert_eq!(p.clone().into_vec(), vec![1, 8, 7]);
        assert_eq!(p.as_ref(), &[1, 8, 7]);
    }

    #[test]
    fn debug_is_bounded_and_nonempty() {
        let p = Packet::from_vec((0..100).collect());
        let s = format!("{p:?}");
        assert!(s.starts_with("Packet(100 bytes"));
        assert!(s.len() < 120);
        assert_eq!(format!("{:?}", Packet::new()), "Packet(0 bytes)");
    }
}
