//! Error type for wire-format parsing.

use core::fmt;

/// Error produced when decoding a header from raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseWireError {
    /// The buffer is shorter than the fixed header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// A version or type field did not match the expected protocol.
    BadVersion {
        /// The value found on the wire.
        found: u8,
    },
    /// A length/offset field points outside the buffer or below the
    /// minimum legal value.
    BadLength,
    /// A TCP option had an illegal kind/length combination.
    BadOption,
    /// The checksum did not verify.
    BadChecksum,
}

impl fmt::Display for ParseWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseWireError::Truncated { needed, have } => {
                write!(f, "truncated header: need {needed} bytes, have {have}")
            }
            ParseWireError::BadVersion { found } => {
                write!(f, "unexpected protocol version {found}")
            }
            ParseWireError::BadLength => write!(f, "invalid length or offset field"),
            ParseWireError::BadOption => write!(f, "malformed option"),
            ParseWireError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for ParseWireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseWireError::Truncated { needed: 40, have: 3 };
        assert_eq!(e.to_string(), "truncated header: need 40 bytes, have 3");
        assert_eq!(
            ParseWireError::BadVersion { found: 4 }.to_string(),
            "unexpected protocol version 4"
        );
        assert!(!ParseWireError::BadChecksum.to_string().is_empty());
    }
}
