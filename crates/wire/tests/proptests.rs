//! Property-based tests for wire-format invariants.

use std::net::Ipv6Addr;

use proptest::prelude::*;
use qpip_wire::checksum::{transport_checksum, verify_transport_checksum, Checksum};
use qpip_wire::ipv6::{Ipv6Header, NextHeader};
use qpip_wire::link::{MyrinetHeader, SourceRoute, ETHERTYPE_IPV6, MYRINET_MAX_HOPS};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};
use qpip_wire::udp::UdpHeader;

fn arb_ipv6() -> impl Strategy<Value = Ipv6Addr> {
    any::<[u8; 16]>().prop_map(Ipv6Addr::from)
}

fn arb_options() -> impl Strategy<Value = TcpOptions> {
    (
        proptest::option::of(any::<u16>()),
        proptest::option::of(0u8..=14),
        proptest::option::of(any::<(u32, u32)>()),
    )
        .prop_map(|(mss, window_scale, timestamps)| TcpOptions {
            mss,
            window_scale,
            timestamps,
        })
}

fn arb_tcp_header() -> impl Strategy<Value = TcpHeader> {
    (
        any::<(u16, u16, u32, u32)>(),
        0u8..64,
        any::<(u16, u16, u16)>(),
        arb_options(),
    )
        .prop_map(|((src_port, dst_port, seq, ack), flags, (window, checksum, urgent), options)| {
            TcpHeader {
                src_port,
                dst_port,
                seq: SeqNum(seq),
                ack: SeqNum(ack),
                flags: TcpFlags::from_byte(flags),
                window,
                checksum,
                urgent,
                options,
            }
        })
}

proptest! {
    #[test]
    fn tcp_header_roundtrips(h in arb_tcp_header()) {
        let mut buf = Vec::new();
        h.encode(&mut buf);
        prop_assert_eq!(buf.len(), h.encoded_len());
        prop_assert_eq!(buf.len() % 4, 0);
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        prop_assert_eq!(back, h);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn tcp_header_roundtrips_with_trailing_payload(
        h in arb_tcp_header(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let hdr_len = buf.len();
        buf.extend_from_slice(&payload);
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        prop_assert_eq!(back, h);
        prop_assert_eq!(used, hdr_len);
        prop_assert_eq!(&buf[used..], &payload[..]);
    }

    #[test]
    fn ipv6_header_roundtrips(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        tc in any::<u8>(),
        flow in 0u32..=0x000f_ffff,
        hop in any::<u8>(),
        nh in any::<u8>(),
    ) {
        let h = Ipv6Header {
            traffic_class: tc,
            flow_label: flow,
            payload_len: 0,
            next_header: NextHeader::from(nh),
            hop_limit: hop,
            src,
            dst,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = Ipv6Header::parse(&buf).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn udp_header_roundtrips(sp in any::<u16>(), dp in any::<u16>(), extra in 0u16..1000) {
        let h = UdpHeader { src_port: sp, dst_port: dp, length: 8 + extra, checksum: 77 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.resize(usize::from(h.length), 0);
        let (back, used) = UdpHeader::parse(&buf).unwrap();
        prop_assert_eq!(back, h);
        prop_assert_eq!(used, 8);
    }

    #[test]
    fn myrinet_header_roundtrips(
        hops in proptest::collection::vec(any::<u8>(), 0..=MYRINET_MAX_HOPS),
    ) {
        let h = MyrinetHeader {
            route: SourceRoute::new(&hops).unwrap(),
            packet_type: ETHERTYPE_IPV6,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, used) = MyrinetHeader::parse(&buf).unwrap();
        prop_assert_eq!(back, h);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn checksum_is_order_insensitive_across_word_swaps(
        words in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        // one's-complement addition is commutative: summing words in any
        // order yields the same checksum.
        let mut forward = Checksum::new();
        let mut backward = Checksum::new();
        for w in &words {
            forward.add_word(*w);
        }
        for w in words.iter().rev() {
            backward.add_word(*w);
        }
        prop_assert_eq!(forward.finish(), backward.finish());
    }

    #[test]
    fn patched_transport_checksum_always_verifies(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        nh in prop_oneof![Just(6u8), Just(17u8)],
        mut seg in proptest::collection::vec(any::<u8>(), 8..512),
    ) {
        // zero the checksum field location (bytes 6..8 for UDP, 16..18
        // for TCP — use 6..8 generically since the math is linear).
        seg[6] = 0;
        seg[7] = 0;
        let ck = transport_checksum(src, dst, nh, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        prop_assert!(verify_transport_checksum(src, dst, nh, &seg));
    }

    #[test]
    fn corrupting_any_byte_fails_verification(
        src in arb_ipv6(),
        dst in arb_ipv6(),
        mut seg in proptest::collection::vec(any::<u8>(), 8..128),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        seg[6] = 0;
        seg[7] = 0;
        let ck = transport_checksum(src, dst, 6, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        let i = idx.index(seg.len());
        seg[i] ^= flip;
        // One's-complement sums have the known 0x0000/0xffff aliasing for
        // 16-bit-aligned flips of all-ones vs all-zeros words; skip the
        // rare alias case rather than weaken the assertion.
        let word = i & !1;
        let w = u16::from_be_bytes([seg[word], *seg.get(word + 1).unwrap_or(&0)]);
        prop_assume!(w != 0xffff && w != 0x0000);
        prop_assert!(!verify_transport_checksum(src, dst, 6, &seg));
    }

    #[test]
    fn seqnum_ordering_is_antisymmetric(a in any::<u32>(), delta in 1u32..0x7fff_ffff) {
        let x = SeqNum(a);
        let y = x + delta;
        prop_assert!(x.lt(y));
        prop_assert!(!y.lt(x));
        prop_assert!(y.gt(x));
        prop_assert_eq!(y - x, delta);
    }
}
