//! Randomized tests for wire-format invariants.
//!
//! Deterministic replacement for the former proptest suite: each
//! property runs against a few hundred cases drawn from a seeded
//! [`SplitMix64`] stream, so failures reproduce exactly and the suite
//! needs no external crates.

use std::net::Ipv6Addr;

use qpip_sim::rng::SplitMix64;
use qpip_wire::checksum::{checksum, transport_checksum, verify_transport_checksum, Checksum};
use qpip_wire::ipv6::{Ipv6Header, NextHeader};
use qpip_wire::link::{MyrinetHeader, SourceRoute, ETHERTYPE_IPV6, MYRINET_MAX_HOPS};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};
use qpip_wire::udp::UdpHeader;

const CASES: usize = 256;

fn arb_ipv6(r: &mut SplitMix64) -> Ipv6Addr {
    let mut o = [0u8; 16];
    r.fill_bytes(&mut o);
    Ipv6Addr::from(o)
}

fn arb_options(r: &mut SplitMix64) -> TcpOptions {
    TcpOptions {
        mss: r.flip().then(|| r.next_u32() as u16),
        window_scale: r.flip().then(|| r.below(15) as u8),
        timestamps: r.flip().then(|| (r.next_u32(), r.next_u32())),
    }
}

fn arb_tcp_header(r: &mut SplitMix64) -> TcpHeader {
    TcpHeader {
        src_port: r.next_u32() as u16,
        dst_port: r.next_u32() as u16,
        seq: SeqNum(r.next_u32()),
        ack: SeqNum(r.next_u32()),
        flags: TcpFlags::from_byte(r.below(64) as u8),
        window: r.next_u32() as u16,
        checksum: r.next_u32() as u16,
        urgent: r.next_u32() as u16,
        options: arb_options(r),
    }
}

#[test]
fn tcp_header_roundtrips() {
    let mut r = SplitMix64::new(0x7c9_0001);
    for _ in 0..CASES {
        let h = arb_tcp_header(&mut r);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.encoded_len());
        assert_eq!(buf.len() % 4, 0);
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, buf.len());
    }
}

#[test]
fn tcp_header_roundtrips_with_trailing_payload() {
    let mut r = SplitMix64::new(0x7c9_0002);
    for _ in 0..CASES {
        let h = arb_tcp_header(&mut r);
        let plen = r.range_usize(0, 256);
        let payload = r.bytes(plen);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let hdr_len = buf.len();
        buf.extend_from_slice(&payload);
        let (back, used) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, hdr_len);
        assert_eq!(&buf[used..], &payload[..]);
    }
}

#[test]
fn ipv6_header_roundtrips() {
    let mut r = SplitMix64::new(0x7c9_0003);
    for _ in 0..CASES {
        let h = Ipv6Header {
            traffic_class: r.next_u32() as u8,
            flow_label: r.below(0x10_0000) as u32,
            payload_len: 0,
            next_header: NextHeader::from(r.next_u32() as u8),
            hop_limit: r.next_u32() as u8,
            src: arb_ipv6(&mut r),
            dst: arb_ipv6(&mut r),
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, _) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(back, h);
    }
}

#[test]
fn udp_header_roundtrips() {
    let mut r = SplitMix64::new(0x7c9_0004);
    for _ in 0..CASES {
        let h = UdpHeader {
            src_port: r.next_u32() as u16,
            dst_port: r.next_u32() as u16,
            length: 8 + r.below(1000) as u16,
            checksum: 77,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.resize(usize::from(h.length), 0);
        let (back, used) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, 8);
    }
}

#[test]
fn myrinet_header_roundtrips() {
    let mut r = SplitMix64::new(0x7c9_0005);
    for _ in 0..CASES {
        let nhops = r.range_usize(0, MYRINET_MAX_HOPS + 1);
        let hops = r.bytes(nhops);
        let h =
            MyrinetHeader { route: SourceRoute::new(&hops).unwrap(), packet_type: ETHERTYPE_IPV6 };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let (back, used) = MyrinetHeader::parse(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, buf.len());
    }
}

#[test]
fn checksum_is_order_insensitive_across_word_swaps() {
    let mut r = SplitMix64::new(0x7c9_0006);
    for _ in 0..CASES {
        // one's-complement addition is commutative: summing words in any
        // order yields the same checksum.
        let words: Vec<u16> = (0..r.range_usize(1, 64)).map(|_| r.next_u32() as u16).collect();
        let mut forward = Checksum::new();
        let mut backward = Checksum::new();
        for w in &words {
            forward.add_word(*w);
        }
        for w in words.iter().rev() {
            backward.add_word(*w);
        }
        assert_eq!(forward.finish(), backward.finish());
    }
}

#[test]
fn patched_transport_checksum_always_verifies() {
    let mut r = SplitMix64::new(0x7c9_0007);
    for _ in 0..CASES {
        let src = arb_ipv6(&mut r);
        let dst = arb_ipv6(&mut r);
        let nh = if r.flip() { 6u8 } else { 17u8 };
        let slen = r.range_usize(8, 512);
        let mut seg = r.bytes(slen);
        // zero the checksum field location (bytes 6..8 for UDP, 16..18
        // for TCP — use 6..8 generically since the math is linear).
        seg[6] = 0;
        seg[7] = 0;
        let ck = transport_checksum(src, dst, nh, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport_checksum(src, dst, nh, &seg));
    }
}

#[test]
fn corrupting_any_byte_fails_verification() {
    let mut r = SplitMix64::new(0x7c9_0008);
    let mut checked = 0;
    for _ in 0..CASES {
        let src = arb_ipv6(&mut r);
        let dst = arb_ipv6(&mut r);
        let slen = r.range_usize(8, 128);
        let mut seg = r.bytes(slen);
        seg[6] = 0;
        seg[7] = 0;
        let ck = transport_checksum(src, dst, 6, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        let i = r.range_usize(0, seg.len());
        let flip = r.range(1, 256) as u8;
        seg[i] ^= flip;
        // One's-complement sums have the known 0x0000/0xffff aliasing for
        // 16-bit-aligned flips of all-ones vs all-zeros words; skip the
        // rare alias case rather than weaken the assertion.
        let word = i & !1;
        let w = u16::from_be_bytes([seg[word], *seg.get(word + 1).unwrap_or(&0)]);
        if w == 0xffff || w == 0x0000 {
            continue;
        }
        checked += 1;
        assert!(!verify_transport_checksum(src, dst, 6, &seg));
    }
    assert!(checked > CASES / 2, "alias skip ate the test: {checked}");
}

/// The literal RFC 1071 reference: walk big-endian 16-bit words into a
/// `u32`, pad an odd tail with zero, fold, complement. The production
/// wide-word path (AVX2 or the portable four-accumulator loop) must be
/// bit-identical to this on every input.
fn reference_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut words = data.chunks_exact(2);
    for w in &mut words {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [b] = words.remainder() {
        sum += u32::from(u16::from_be_bytes([*b, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[test]
fn wide_word_checksum_matches_scalar_reference() {
    let mut r = SplitMix64::new(0x7c9_000a);
    // sweep every small length (block-boundary edge cases), then larger
    // random lengths crossing the 64-byte SIMD blocking several times
    let lens: Vec<usize> = (0..192).chain((0..CASES).map(|_| r.range_usize(192, 4096))).collect();
    for len in lens {
        let data = r.bytes(len);
        assert_eq!(checksum(&data), reference_checksum(&data), "len {len}");
    }
}

#[test]
fn wide_word_checksum_split_feeding_matches_reference() {
    let mut r = SplitMix64::new(0x7c9_000b);
    for _ in 0..CASES {
        let len = r.range_usize(1, 2048);
        let data = r.bytes(len);
        // feed the same bytes in arbitrary chunks (odd splits exercise
        // the leftover-byte pairing across calls)
        let mut c = Checksum::new();
        let mut off = 0;
        while off < data.len() {
            let take = r.range_usize(1, data.len() - off + 1);
            c.add_bytes(&data[off..off + take]);
            off += take;
        }
        assert_eq!(c.finish(), reference_checksum(&data));
    }
}

#[test]
fn seqnum_ordering_is_antisymmetric() {
    let mut r = SplitMix64::new(0x7c9_0009);
    for _ in 0..CASES {
        let x = SeqNum(r.next_u32());
        let delta = r.range(1, 0x7fff_ffff) as u32;
        let y = x + delta;
        assert!(x.lt(y));
        assert!(!y.lt(x));
        assert!(y.gt(x));
        assert_eq!(y - x, delta);
    }
}
