//! Unified counter snapshots: every stats struct in the workspace
//! (engine, NIC firmware, fabric, live transport, impairment proxy)
//! renders itself as named `(str, u64)` pairs so reports and dashboards
//! consume one shape instead of five.

/// A named set of monotone counters captured at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    scope: String,
    pairs: Vec<(&'static str, u64)>,
}

impl Snapshot {
    /// Creates an empty snapshot for one scope ("engine", "nic",
    /// "fabric", "xport", "proxy", …).
    pub fn new(scope: impl Into<String>) -> Self {
        Snapshot { scope: scope.into(), pairs: Vec::new() }
    }

    /// Appends a counter. Order is preserved — emitters render pairs
    /// in insertion order, so snapshots are deterministic by
    /// construction.
    pub fn push(&mut self, name: &'static str, value: u64) -> &mut Self {
        self.pairs.push((name, value));
        self
    }

    /// The scope label.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Returns the same counters under a different scope label. Lets a
    /// caller disambiguate two instances of the same stats struct
    /// ("engine" from the direct and the impaired stream, say) before
    /// handing both to [`counters_json`].
    #[must_use]
    pub fn rescoped(mut self, scope: impl Into<String>) -> Self {
        self.scope = scope.into();
        self
    }

    /// Adds another snapshot's counters into this one: values for
    /// names already present are summed, unseen names are appended.
    /// Lets a world fold per-node stats into one fleet-wide snapshot.
    pub fn absorb(&mut self, other: &Snapshot) {
        for &(name, value) in other.pairs() {
            match self.pairs.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += value,
                None => self.pairs.push((name, value)),
            }
        }
    }

    /// The counter pairs, in insertion order.
    pub fn pairs(&self) -> &[(&'static str, u64)] {
        &self.pairs
    }

    /// Looks a counter up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

/// Renders snapshots as one JSON object — `{"scope": {"name": value,
/// …}, …}` — with `indent` leading spaces on the inner lines. The one
/// generic formatter replacing per-struct field-by-field emitters.
pub fn counters_json(snapshots: &[Snapshot], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut out = String::from("{\n");
    for (i, s) in snapshots.iter().enumerate() {
        out.push_str(&format!("{pad}  \"{}\": {{", s.scope()));
        for (j, (name, value)) in s.pairs().iter().enumerate() {
            out.push_str(&format!(
                "\"{name}\": {value}{}",
                if j + 1 < s.pairs().len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!("}}{}\n", if i + 1 < snapshots.len() { "," } else { "" }));
    }
    out.push_str(&format!("{pad}}}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_preserves_order_and_lookup() {
        let mut s = Snapshot::new("engine");
        s.push("rx_packets", 3).push("tx_packets", 5);
        assert_eq!(s.pairs(), [("rx_packets", 3), ("tx_packets", 5)]);
        assert_eq!(s.get("tx_packets"), Some(5));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn counters_json_is_deterministic_and_nested() {
        let mut a = Snapshot::new("engine");
        a.push("rx_packets", 1);
        let mut b = Snapshot::new("fabric");
        b.push("delivered", 2).push("dropped", 0);
        let json = counters_json(&[a.clone(), b.clone()], 2);
        assert_eq!(
            json,
            "{\n    \"engine\": {\"rx_packets\": 1},\n    \"fabric\": {\"delivered\": 2, \"dropped\": 0}\n  }"
        );
        assert_eq!(json, counters_json(&[a, b], 2));
    }

    #[test]
    fn empty_snapshot_list_renders_empty_object() {
        assert_eq!(counters_json(&[], 0), "{\n}");
    }

    #[test]
    fn rescoped_renames_without_touching_pairs() {
        let mut s = Snapshot::new("engine");
        s.push("rx_packets", 7);
        let r = s.clone().rescoped("direct_engine");
        assert_eq!(r.scope(), "direct_engine");
        assert_eq!(r.pairs(), s.pairs());
    }

    #[test]
    fn absorb_sums_matching_names_and_appends_new_ones() {
        let mut a = Snapshot::new("engine");
        a.push("rx_packets", 3).push("tx_packets", 5);
        let mut b = Snapshot::new("engine");
        b.push("rx_packets", 4).push("checksum_drops", 1);
        a.absorb(&b);
        assert_eq!(a.pairs(), [("rx_packets", 7), ("tx_packets", 5), ("checksum_drops", 1)]);
    }
}
