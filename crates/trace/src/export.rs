//! Trace exports: JSONL (machine), one-line-per-event dump (human),
//! and a tcptrace-style per-connection summary.
//!
//! The JSONL schema is one flat object per line with a fixed key
//! order, so identical event sequences export to identical bytes —
//! the determinism the same-seed trace tests assert. The parser here
//! reads that schema back (hand-rolled; the workspace has no serde),
//! which is what the `qpip-trace` CLI runs on captured files.

use std::collections::HashMap;

use qpip_sim::time::{SimDuration, SimTime};

use crate::{flags, Rec, TraceEvent, NODE_SCOPE};

/// Renders events as JSONL, one flat object per line, in the order
/// given.
pub fn to_jsonl(events: &[Rec]) -> String {
    let mut out = String::new();
    for r in events {
        out.push_str(&format!("{{\"t_ps\": {}, \"node\": {}", r.t.as_picos(), r.node));
        if r.conn != NODE_SCOPE {
            out.push_str(&format!(", \"conn\": {}", r.conn));
        }
        match r.ev {
            TraceEvent::TcpState { from, to } => {
                out.push_str(&format!(
                    ", \"ev\": \"tcp_state\", \"from\": \"{from}\", \"to\": \"{to}\""
                ));
            }
            TraceEvent::SegTx { seq, ack, len, wnd, flags, retransmit } => {
                out.push_str(&format!(
                    ", \"ev\": \"seg_tx\", \"seq\": {seq}, \"ack\": {ack}, \"len\": {len}, \
                     \"wnd\": {wnd}, \"flags\": {flags}, \"retx\": {}",
                    u8::from(retransmit)
                ));
            }
            TraceEvent::SegRx { seq, ack, len, wnd, flags } => {
                out.push_str(&format!(
                    ", \"ev\": \"seg_rx\", \"seq\": {seq}, \"ack\": {ack}, \"len\": {len}, \
                     \"wnd\": {wnd}, \"flags\": {flags}"
                ));
            }
            TraceEvent::Retransmit { seq, fast } => {
                out.push_str(&format!(
                    ", \"ev\": \"retransmit\", \"seq\": {seq}, \"fast\": {}",
                    u8::from(fast)
                ));
            }
            TraceEvent::DupAck { ack, count } => {
                out.push_str(&format!(", \"ev\": \"dup_ack\", \"ack\": {ack}, \"count\": {count}"));
            }
            TraceEvent::TimerArm { deadline } => {
                out.push_str(&format!(
                    ", \"ev\": \"timer_arm\", \"deadline_ps\": {}",
                    deadline.as_picos()
                ));
            }
            TraceEvent::TimerCancel => out.push_str(", \"ev\": \"timer_cancel\""),
            TraceEvent::TimerFire => out.push_str(", \"ev\": \"timer_fire\""),
            TraceEvent::CwndChange { cwnd, ssthresh, reason } => {
                out.push_str(&format!(
                    ", \"ev\": \"cwnd\", \"cwnd\": {cwnd}, \"ssthresh\": {ssthresh}, \
                     \"reason\": \"{reason}\""
                ));
            }
            TraceEvent::RttSample { rtt_us, srtt_us, rto_us } => {
                out.push_str(&format!(
                    ", \"ev\": \"rtt\", \"rtt_us\": {rtt_us}, \"srtt_us\": {srtt_us}, \
                     \"rto_us\": {rto_us}"
                ));
            }
            TraceEvent::ZeroWindow => out.push_str(", \"ev\": \"zero_window\""),
            TraceEvent::WindowRefresh { wnd } => {
                out.push_str(&format!(", \"ev\": \"window_refresh\", \"wnd\": {wnd}"));
            }
            TraceEvent::FwFsm { stage, class } => {
                out.push_str(&format!(
                    ", \"ev\": \"fw_fsm\", \"stage\": \"{stage}\", \"class\": \"{class}\""
                ));
            }
            TraceEvent::FabricDrop { reason, len } => {
                out.push_str(&format!(
                    ", \"ev\": \"fabric_drop\", \"reason\": \"{reason}\", \"len\": {len}"
                ));
            }
            TraceEvent::Sock { op, bytes } => {
                out.push_str(&format!(", \"ev\": \"sock\", \"op\": \"{op}\", \"bytes\": {bytes}"));
            }
        }
        out.push_str("}\n");
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(u64),
    Str(String),
}

/// Parses one flat JSON object (`{"k": 1, "k2": "v"}`) into pairs.
/// Returns `None` on malformed input — the CLI skips such lines.
fn parse_flat_object(line: &str) -> Option<Vec<(String, Value)>> {
    let line = line.trim();
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let mut pairs = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let kend = rest.find('"')?;
        let key = rest[..kend].to_string();
        rest = rest[kend + 1..].trim_start().strip_prefix(':')?.trim_start();
        if let Some(s) = rest.strip_prefix('"') {
            let vend = s.find('"')?;
            pairs.push((key, Value::Str(s[..vend].to_string())));
            rest = s[vend + 1..].trim_start();
        } else {
            let vend = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
            if vend == 0 {
                return None;
            }
            pairs.push((key, Value::Num(rest[..vend].parse().ok()?)));
            rest = rest[vend..].trim_start();
        }
        rest = match rest.strip_prefix(',') {
            Some(r) => r.trim_start(),
            None if rest.is_empty() => rest,
            None => return None,
        };
    }
    Some(pairs)
}

/// Interns a parsed string so events can carry `&'static str` like the
/// live tracer does. The CLI is short-lived; the leak is bounded by
/// the vocabulary of the file.
fn intern(cache: &mut HashMap<String, &'static str>, s: &str) -> &'static str {
    if let Some(&v) = cache.get(s) {
        return v;
    }
    let v: &'static str = Box::leak(s.to_string().into_boxed_str());
    cache.insert(s.to_string(), v);
    v
}

/// Parses a JSONL export back into records. Lines that are blank or
/// malformed are skipped; `index` is the line's position among parsed
/// records.
pub fn parse_jsonl(text: &str) -> Vec<Rec> {
    let mut cache: HashMap<String, &'static str> = HashMap::new();
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(pairs) = parse_flat_object(line) else { continue };
        let num = |k: &str| {
            pairs.iter().find(|(n, _)| n == k).and_then(|(_, v)| match v {
                Value::Num(n) => Some(*n),
                Value::Str(_) => None,
            })
        };
        let mut text_field = |k: &str| {
            pairs.iter().find(|(n, _)| n == k).and_then(|(_, v)| match v {
                Value::Str(s) => Some(intern(&mut cache, s)),
                Value::Num(_) => None,
            })
        };
        let Some(ev_name) = pairs.iter().find(|(n, _)| n == "ev").and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.clone()),
            Value::Num(_) => None,
        }) else {
            continue;
        };
        let ev = match ev_name.as_str() {
            "tcp_state" => match (text_field("from"), text_field("to")) {
                (Some(from), Some(to)) => TraceEvent::TcpState { from, to },
                _ => continue,
            },
            "seg_tx" => TraceEvent::SegTx {
                seq: num("seq").unwrap_or(0) as u32,
                ack: num("ack").unwrap_or(0) as u32,
                len: num("len").unwrap_or(0) as u32,
                wnd: num("wnd").unwrap_or(0) as u32,
                flags: num("flags").unwrap_or(0) as u8,
                retransmit: num("retx").unwrap_or(0) != 0,
            },
            "seg_rx" => TraceEvent::SegRx {
                seq: num("seq").unwrap_or(0) as u32,
                ack: num("ack").unwrap_or(0) as u32,
                len: num("len").unwrap_or(0) as u32,
                wnd: num("wnd").unwrap_or(0) as u32,
                flags: num("flags").unwrap_or(0) as u8,
            },
            "retransmit" => TraceEvent::Retransmit {
                seq: num("seq").unwrap_or(0) as u32,
                fast: num("fast").unwrap_or(0) != 0,
            },
            "dup_ack" => TraceEvent::DupAck {
                ack: num("ack").unwrap_or(0) as u32,
                count: num("count").unwrap_or(0) as u32,
            },
            "timer_arm" => TraceEvent::TimerArm {
                deadline: SimTime::from_picos(num("deadline_ps").unwrap_or(0)),
            },
            "timer_cancel" => TraceEvent::TimerCancel,
            "timer_fire" => TraceEvent::TimerFire,
            "cwnd" => TraceEvent::CwndChange {
                cwnd: num("cwnd").unwrap_or(0) as u32,
                ssthresh: num("ssthresh").unwrap_or(0) as u32,
                reason: text_field("reason").unwrap_or("?"),
            },
            "rtt" => TraceEvent::RttSample {
                rtt_us: num("rtt_us").unwrap_or(0),
                srtt_us: num("srtt_us").unwrap_or(0),
                rto_us: num("rto_us").unwrap_or(0),
            },
            "zero_window" => TraceEvent::ZeroWindow,
            "window_refresh" => TraceEvent::WindowRefresh { wnd: num("wnd").unwrap_or(0) as u32 },
            "fw_fsm" => match (text_field("stage"), text_field("class")) {
                (Some(stage), Some(class)) => TraceEvent::FwFsm { stage, class },
                _ => continue,
            },
            "fabric_drop" => TraceEvent::FabricDrop {
                reason: text_field("reason").unwrap_or("?"),
                len: num("len").unwrap_or(0) as u32,
            },
            "sock" => TraceEvent::Sock {
                op: text_field("op").unwrap_or("?"),
                bytes: num("bytes").unwrap_or(0) as u32,
            },
            _ => continue,
        };
        out.push(Rec {
            index: out.len() as u64,
            t: SimTime::from_picos(num("t_ps").unwrap_or(0)),
            node: num("node").unwrap_or(0) as u32,
            conn: num("conn").map_or(NODE_SCOPE, |c| c as u32),
            ev,
        });
    }
    out
}

/// tcpdump-style flag rendering: "S" SYN, "F" FIN, "R" RST, "P" PSH,
/// "." ACK.
pub fn flags_str(f: u8) -> String {
    let mut s = String::new();
    if f & flags::SYN != 0 {
        s.push('S');
    }
    if f & flags::FIN != 0 {
        s.push('F');
    }
    if f & flags::RST != 0 {
        s.push('R');
    }
    if f & flags::PSH != 0 {
        s.push('P');
    }
    if f & flags::ACK != 0 {
        s.push('.');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn us(t: SimTime) -> f64 {
    t.as_picos() as f64 / 1e6
}

/// Renders events as a human-readable dump, one line per event.
pub fn dump(events: &[Rec]) -> String {
    let mut out = String::new();
    for r in events {
        let scope =
            if r.conn == NODE_SCOPE { "   -".to_string() } else { format!("c{:<3}", r.conn) };
        let detail = match r.ev {
            TraceEvent::TcpState { from, to } => format!("state {from} -> {to}"),
            TraceEvent::SegTx { seq, ack, len, wnd, flags, retransmit } => format!(
                "> seq {seq} ack {ack} len {len} wnd {wnd} flags {}{}",
                flags_str(flags),
                if retransmit { " retx" } else { "" }
            ),
            TraceEvent::SegRx { seq, ack, len, wnd, flags } => {
                format!("< seq {seq} ack {ack} len {len} wnd {wnd} flags {}", flags_str(flags))
            }
            TraceEvent::Retransmit { seq, fast } => {
                format!("retransmit seq {seq} ({})", if fast { "fast" } else { "rto" })
            }
            TraceEvent::DupAck { ack, count } => format!("dup-ack ack {ack} count {count}"),
            TraceEvent::TimerArm { deadline } => format!("timer arm @ {:.3} us", us(deadline)),
            TraceEvent::TimerCancel => "timer cancel".to_string(),
            TraceEvent::TimerFire => "timer fire".to_string(),
            TraceEvent::CwndChange { cwnd, ssthresh, reason } => {
                format!("cwnd {cwnd} ssthresh {ssthresh} ({reason})")
            }
            TraceEvent::RttSample { rtt_us, srtt_us, rto_us } => {
                format!("rtt sample {rtt_us} us srtt {srtt_us} us rto {rto_us} us")
            }
            TraceEvent::ZeroWindow => "zero-window".to_string(),
            TraceEvent::WindowRefresh { wnd } => format!("window-refresh wnd {wnd}"),
            TraceEvent::FwFsm { stage, class } => format!("fw {stage}/{class}"),
            TraceEvent::FabricDrop { reason, len } => format!("fabric drop {reason} len {len}"),
            TraceEvent::Sock { op, bytes } => format!("sock {op} {bytes} B"),
        };
        out.push_str(&format!("{:>14.3} n{} {scope} {detail}\n", us(r.t), r.node));
    }
    out
}

/// tcptrace-style per-connection rollup of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnSummary {
    /// Node scope.
    pub node: u32,
    /// Connection scope.
    pub conn: u32,
    /// Events in the trace for this connection.
    pub events: u64,
    /// Segments transmitted (including retransmissions).
    pub segs_tx: u64,
    /// Segments received.
    pub segs_rx: u64,
    /// Payload bytes transmitted (including retransmissions).
    pub bytes_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Retransmissions triggered by RTO expiry.
    pub rto_retransmits: u64,
    /// Retransmissions triggered by duplicate ACKs.
    pub fast_retransmits: u64,
    /// Duplicate ACKs received.
    pub dupacks: u64,
    /// Zero-window transitions observed.
    pub zero_windows: u64,
    /// RTT samples folded into the estimator.
    pub rtt_samples: u64,
    /// Minimum sampled RTT, microseconds (0 when no samples).
    pub rtt_min_us: u64,
    /// Mean sampled RTT, microseconds (0 when no samples).
    pub rtt_mean_us: f64,
    /// 99th-percentile sampled RTT, microseconds (0 when no samples).
    pub rtt_p99_us: u64,
    /// Time spent in each TCP state, in transition order.
    pub time_in_state: Vec<(&'static str, SimDuration)>,
}

/// Rolls a trace up into per-connection summaries, one per
/// `(node, conn)` scope in deterministic order. Node-scoped events are
/// excluded. Counts reflect the events *present* — rings that
/// overwrote their history undercount, which is why the acceptance
/// tests size the recorder to fit the run.
pub fn summarize(events: &[Rec]) -> Vec<ConnSummary> {
    use std::collections::BTreeMap;
    struct Acc {
        s: ConnSummary,
        rtts: Vec<u64>,
        cur_state: Option<&'static str>,
        state_since: SimTime,
        first_t: SimTime,
        last_t: SimTime,
    }
    let mut accs: BTreeMap<(u32, u32), Acc> = BTreeMap::new();
    for r in events {
        if r.conn == NODE_SCOPE {
            continue;
        }
        let acc = accs.entry((r.node, r.conn)).or_insert_with(|| Acc {
            s: ConnSummary { node: r.node, conn: r.conn, ..ConnSummary::default() },
            rtts: Vec::new(),
            cur_state: None,
            state_since: r.t,
            first_t: r.t,
            last_t: r.t,
        });
        acc.s.events += 1;
        acc.last_t = r.t;
        match r.ev {
            TraceEvent::SegTx { len, .. } => {
                acc.s.segs_tx += 1;
                acc.s.bytes_tx += u64::from(len);
            }
            TraceEvent::SegRx { len, .. } => {
                acc.s.segs_rx += 1;
                acc.s.bytes_rx += u64::from(len);
            }
            TraceEvent::Retransmit { fast, .. } => {
                if fast {
                    acc.s.fast_retransmits += 1;
                } else {
                    acc.s.rto_retransmits += 1;
                }
            }
            TraceEvent::DupAck { .. } => acc.s.dupacks += 1,
            TraceEvent::ZeroWindow => acc.s.zero_windows += 1,
            TraceEvent::RttSample { rtt_us, .. } => acc.rtts.push(rtt_us),
            TraceEvent::TcpState { from, to } => {
                let since = if acc.cur_state.is_some() { acc.state_since } else { acc.first_t };
                let held = acc.cur_state.unwrap_or(from);
                push_state(&mut acc.s.time_in_state, held, r.t.duration_since(since));
                acc.cur_state = Some(to);
                acc.state_since = r.t;
            }
            _ => {}
        }
    }
    accs.into_values()
        .map(|mut acc| {
            if let Some(state) = acc.cur_state {
                push_state(
                    &mut acc.s.time_in_state,
                    state,
                    acc.last_t.duration_since(acc.state_since),
                );
            }
            acc.rtts.sort_unstable();
            if !acc.rtts.is_empty() {
                let n = acc.rtts.len();
                acc.s.rtt_samples = n as u64;
                acc.s.rtt_min_us = acc.rtts[0];
                acc.s.rtt_mean_us = acc.rtts.iter().sum::<u64>() as f64 / n as f64;
                acc.s.rtt_p99_us = acc.rtts[(n * 99).div_ceil(100) - 1];
            }
            acc.s
        })
        .collect()
}

fn push_state(states: &mut Vec<(&'static str, SimDuration)>, state: &'static str, d: SimDuration) {
    match states.iter_mut().find(|(s, _)| *s == state) {
        Some((_, total)) => *total += d,
        None => states.push((state, d)),
    }
}

/// Renders per-connection summaries as human-readable text.
pub fn render_summary(summaries: &[ConnSummary]) -> String {
    if summaries.is_empty() {
        return "no connection-scoped events in trace\n".to_string();
    }
    let mut out = String::new();
    for s in summaries {
        out.push_str(&format!(
            "node {} conn {}: {} events, {} segs tx ({} B) / {} segs rx ({} B)\n",
            s.node, s.conn, s.events, s.segs_tx, s.bytes_tx, s.segs_rx, s.bytes_rx
        ));
        out.push_str(&format!(
            "  retransmits: {} ({} rto, {} fast), dupacks {}, zero-window {}\n",
            s.rto_retransmits + s.fast_retransmits,
            s.rto_retransmits,
            s.fast_retransmits,
            s.dupacks,
            s.zero_windows
        ));
        if s.rtt_samples > 0 {
            out.push_str(&format!(
                "  rtt: {} samples, min {} us, mean {:.1} us, p99 {} us\n",
                s.rtt_samples, s.rtt_min_us, s.rtt_mean_us, s.rtt_p99_us
            ));
        }
        if !s.time_in_state.is_empty() {
            let parts: Vec<String> = s
                .time_in_state
                .iter()
                .map(|(name, d)| format!("{name} {:.3} ms", d.as_secs_f64() * 1e3))
                .collect();
            out.push_str(&format!("  time-in-state: {}\n", parts.join(", ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Rec> {
        vec![
            Rec {
                index: 0,
                t: SimTime::from_micros(1),
                node: 0,
                conn: 1,
                ev: TraceEvent::TcpState { from: "closed", to: "syn_sent" },
            },
            Rec {
                index: 1,
                t: SimTime::from_micros(2),
                node: 0,
                conn: 1,
                ev: TraceEvent::SegTx {
                    seq: 100,
                    ack: 0,
                    len: 0,
                    wnd: 65535,
                    flags: flags::SYN,
                    retransmit: false,
                },
            },
            Rec {
                index: 2,
                t: SimTime::from_micros(120),
                node: 0,
                conn: 1,
                ev: TraceEvent::TcpState { from: "syn_sent", to: "established" },
            },
            Rec {
                index: 3,
                t: SimTime::from_micros(130),
                node: 0,
                conn: 1,
                ev: TraceEvent::RttSample { rtt_us: 118, srtt_us: 118, rto_us: 354 },
            },
            Rec {
                index: 4,
                t: SimTime::from_micros(500),
                node: 0,
                conn: 1,
                ev: TraceEvent::Retransmit { seq: 100, fast: false },
            },
            Rec {
                index: 5,
                t: SimTime::from_micros(600),
                node: 0,
                conn: NODE_SCOPE,
                ev: TraceEvent::FabricDrop { reason: "injected", len: 1500 },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrips() {
        let evs = sample_events();
        let text = to_jsonl(&evs);
        let back = parse_jsonl(&text);
        assert_eq!(evs.len(), back.len());
        for (a, b) in evs.iter().zip(&back) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.node, b.node);
            assert_eq!(a.conn, b.conn);
            assert_eq!(a.ev, b.ev);
        }
        // identical input, identical bytes
        assert_eq!(text, to_jsonl(&evs));
    }

    #[test]
    fn parser_skips_malformed_lines() {
        let text =
            "not json\n{\"t_ps\": 5}\n\n{\"t_ps\": 1, \"node\": 0, \"ev\": \"timer_fire\"}\n";
        let recs = parse_jsonl(text);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ev, TraceEvent::TimerFire);
        assert_eq!(recs[0].conn, NODE_SCOPE);
    }

    #[test]
    fn summary_counts_and_states() {
        let s = summarize(&sample_events());
        assert_eq!(s.len(), 1, "node-scoped drop must not create a connection");
        let c = &s[0];
        assert_eq!((c.node, c.conn), (0, 1));
        assert_eq!(c.segs_tx, 1);
        assert_eq!(c.rto_retransmits, 1);
        assert_eq!(c.fast_retransmits, 0);
        assert_eq!(c.rtt_samples, 1);
        assert_eq!(c.rtt_min_us, 118);
        assert_eq!(c.rtt_p99_us, 118);
        // closed for zero time (transition is the first event), then
        // 1 µs..120 µs in syn_sent, then established until the last
        // conn-scoped event at 500 µs
        assert_eq!(
            c.time_in_state,
            [
                ("closed", SimDuration::ZERO),
                ("syn_sent", SimDuration::from_micros(119)),
                ("established", SimDuration::from_micros(380)),
            ]
        );
    }

    #[test]
    fn dump_renders_one_line_per_event() {
        let text = dump(&sample_events());
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("state closed -> syn_sent"));
        assert!(text.contains("flags S"));
        assert!(text.contains("retransmit seq 100 (rto)"));
        assert!(text.contains("fabric drop injected len 1500"));
    }

    #[test]
    fn flags_render_tcpdump_style() {
        assert_eq!(flags_str(flags::SYN), "S");
        assert_eq!(flags_str(flags::SYN | flags::ACK), "S.");
        assert_eq!(flags_str(flags::PSH | flags::ACK), "P.");
        assert_eq!(flags_str(0), "-");
    }

    #[test]
    fn render_summary_is_nonempty_and_mentions_retransmits() {
        let text = render_summary(&summarize(&sample_events()));
        assert!(text.contains("retransmits: 1 (1 rto, 0 fast)"));
        assert!(render_summary(&[]).contains("no connection-scoped events"));
    }
}
