//! Flight recorder: structured, allocation-light event tracing plus a
//! unified counter-snapshot API for every QPIP layer.
//!
//! The paper's whole evaluation is an instrumentation exercise (Tables
//! 1–3, Figures 3–7); this crate gives the reproduction the same
//! introspection at event granularity. Three pieces:
//!
//! 1. **[`TraceSink`] / [`Tracer`]** — layers hold an `Option<Tracer>`
//!    and emit typed [`TraceEvent`]s through it. `None` (the default
//!    everywhere) costs one branch on the datapath; [`NoopSink`] exists
//!    for generic call sites. Timestamps are [`SimTime`]: picosecond
//!    simulated time in the DES worlds (same seed ⇒ byte-identical
//!    trace) and `WallClock`-mapped time in `qpip-xport`.
//! 2. **[`FlightRecorder`]** — a per-connection ring buffer (fixed
//!    capacity, overwrite-oldest) keyed by `(node, conn)`, with
//!    [`NODE_SCOPE`] for events that belong to a node rather than a
//!    connection (firmware FSM charges, fabric drops, socket I/O).
//! 3. **[`Snapshot`]** — named `(str, u64)` counter pairs; every stats
//!    struct in the workspace renders itself through one of these so
//!    `bench/report.rs` can emit a `counters` section generically.
//!
//! Exports live in [`export`]: JSONL (one flat object per event),
//! a tcpdump-style one-line dump, and a tcptrace-style per-connection
//! summary — all also reachable through the `qpip-trace` CLI.

pub mod export;
pub mod snapshot;

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use qpip_sim::time::SimTime;

pub use snapshot::Snapshot;

/// `conn` value for events scoped to a node rather than a connection
/// (firmware FSM transitions, fabric drops, raw socket I/O).
pub const NODE_SCOPE: u32 = u32::MAX;

/// One typed trace event. String fields are `&'static str` so that
/// recording never allocates; numeric fields are the wire-visible
/// values (sequence numbers as raw `u32`, windows in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// TCP state machine transition.
    TcpState {
        /// State left.
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// Segment handed to the wire.
    SegTx {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Payload bytes.
        len: u32,
        /// Advertised window.
        wnd: u32,
        /// Flag bits ([`flags`]).
        flags: u8,
        /// Whether this segment is a retransmission.
        retransmit: bool,
    },
    /// Segment accepted from the wire.
    SegRx {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Payload bytes.
        len: u32,
        /// Advertised window.
        wnd: u32,
        /// Flag bits ([`flags`]).
        flags: u8,
    },
    /// A retransmission was triggered (`fast` distinguishes the
    /// third-dup-ACK path from RTO expiry).
    Retransmit {
        /// First sequence number retransmitted.
        seq: u32,
        /// Fast retransmit (vs RTO).
        fast: bool,
    },
    /// A duplicate ACK was received.
    DupAck {
        /// The duplicated acknowledgment number.
        ack: u32,
        /// Consecutive duplicates seen so far.
        count: u32,
    },
    /// Connection timer armed (or re-armed to a new deadline).
    TimerArm {
        /// Absolute deadline.
        deadline: SimTime,
    },
    /// Connection timer cancelled.
    TimerCancel,
    /// Connection timer fired.
    TimerFire,
    /// Congestion window or slow-start threshold changed.
    CwndChange {
        /// New congestion window (bytes).
        cwnd: u32,
        /// New slow-start threshold (bytes).
        ssthresh: u32,
        /// What moved it: "ack", "dup_ack", "rto", "ecn".
        reason: &'static str,
    },
    /// An RTT measurement was folded into the estimator.
    RttSample {
        /// The raw sample, microseconds.
        rtt_us: u64,
        /// Smoothed RTT after the sample, microseconds.
        srtt_us: u64,
        /// Retransmission timeout after the sample, microseconds.
        rto_us: u64,
    },
    /// Peer advertised a zero window (transition into zero).
    ZeroWindow,
    /// Window re-advertisement (xport's persist-timer substitute, or
    /// any pure window update).
    WindowRefresh {
        /// Window advertised, bytes.
        wnd: u32,
    },
    /// Firmware FSM stage executed a charge.
    FwFsm {
        /// FSM stage: "doorbell", "management", "transmit", "receive".
        stage: &'static str,
        /// Work class within the stage.
        class: &'static str,
    },
    /// The fabric dropped a packet.
    FabricDrop {
        /// Drop reason: "too_large", "no_route", "injected".
        reason: &'static str,
        /// Packet length, bytes.
        len: u32,
    },
    /// Live-socket operation (qpip-xport).
    Sock {
        /// "tx" or "rx".
        op: &'static str,
        /// Datagram length, bytes.
        bytes: u32,
    },
}

/// TCP flag bits used in [`TraceEvent::SegTx`]/[`TraceEvent::SegRx`],
/// matching the wire header order.
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// A recorded event: global arrival index, timestamp, scope, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rec {
    /// Global monotone arrival index (stable export order).
    pub index: u64,
    /// Timestamp.
    pub t: SimTime,
    /// Node scope.
    pub node: u32,
    /// Connection scope ([`NODE_SCOPE`] for node-level events).
    pub conn: u32,
    /// The event.
    pub ev: TraceEvent,
}

/// Destination for trace events. Implementations take `&self` so one
/// sink can be shared by every layer of a node (and across nodes).
pub trait TraceSink {
    /// Whether events should be generated at all. Callers are expected
    /// to skip event construction when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, t: SimTime, node: u32, conn: u32, ev: TraceEvent);
}

/// A sink that drops everything; `enabled()` is `false` and both
/// methods compile to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _t: SimTime, _node: u32, _conn: u32, _ev: TraceEvent) {}
}

struct Ring {
    events: VecDeque<Rec>,
    /// Events evicted by the overwrite-oldest policy.
    overwritten: u64,
}

struct Inner {
    capacity: usize,
    next_index: u64,
    /// `(node, conn)` → ring. BTreeMap so iteration (and therefore
    /// every export) is deterministically ordered.
    rings: BTreeMap<(u32, u32), Ring>,
}

/// Per-connection ring-buffer flight recorder.
///
/// Fixed capacity per `(node, conn)` ring; when a ring fills, the
/// oldest event is overwritten (and counted), so after an incident the
/// *last* `capacity` events per connection are always available — the
/// property the `wait()` deadlock dump relies on. Interior mutability
/// via a `Mutex` lets one `Arc<FlightRecorder>` serve every layer of a
/// single-threaded DES world and both threads of a live-socket pair.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("recorder lock");
        f.debug_struct("FlightRecorder")
            .field("capacity", &inner.capacity)
            .field("rings", &inner.rings.len())
            .field("events", &inner.next_index)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(1024)
    }
}

impl FlightRecorder {
    /// Creates a recorder holding up to `capacity` events per
    /// connection (and per node for [`NODE_SCOPE`] events).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        FlightRecorder {
            inner: Mutex::new(Inner { capacity, next_index: 0, rings: BTreeMap::new() }),
        }
    }

    /// All recorded events in arrival order.
    pub fn events(&self) -> Vec<Rec> {
        let inner = self.inner.lock().expect("recorder lock");
        let mut out: Vec<Rec> =
            inner.rings.values().flat_map(|r| r.events.iter().copied()).collect();
        out.sort_unstable_by_key(|r| r.index);
        out
    }

    /// The last `n` events of one `(node, conn)` ring, oldest first.
    pub fn last_events(&self, node: u32, conn: u32, n: usize) -> Vec<Rec> {
        let inner = self.inner.lock().expect("recorder lock");
        match inner.rings.get(&(node, conn)) {
            Some(r) => {
                let skip = r.events.len().saturating_sub(n);
                r.events.iter().skip(skip).copied().collect()
            }
            None => Vec::new(),
        }
    }

    /// Every `(node, conn)` scope with at least one recorded event,
    /// in deterministic order.
    pub fn scopes(&self) -> Vec<(u32, u32)> {
        self.inner.lock().expect("recorder lock").rings.keys().copied().collect()
    }

    /// Events evicted from one ring by the overwrite-oldest policy.
    pub fn overwritten(&self, node: u32, conn: u32) -> u64 {
        let inner = self.inner.lock().expect("recorder lock");
        inner.rings.get(&(node, conn)).map_or(0, |r| r.overwritten)
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("recorder lock").next_index
    }

    /// Exports every surviving event as JSONL, one flat object per
    /// line, in arrival order. Deterministic: identical event
    /// sequences produce identical bytes.
    pub fn export_jsonl(&self) -> String {
        export::to_jsonl(&self.events())
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, t: SimTime, node: u32, conn: u32, ev: TraceEvent) {
        let mut inner = self.inner.lock().expect("recorder lock");
        let index = inner.next_index;
        inner.next_index += 1;
        let capacity = inner.capacity;
        let ring = inner
            .rings
            .entry((node, conn))
            .or_insert_with(|| Ring { events: VecDeque::with_capacity(capacity), overwritten: 0 });
        if ring.events.len() == capacity {
            ring.events.pop_front();
            ring.overwritten += 1;
        }
        ring.events.push_back(Rec { index, t, node, conn, ev });
    }
}

/// A node-scoped handle on a shared [`FlightRecorder`]: layers store
/// `Option<Tracer>` and call [`Tracer::emit`]; the `None` check is the
/// entire disabled-path cost.
#[derive(Debug, Clone)]
pub struct Tracer {
    recorder: Arc<FlightRecorder>,
    node: u32,
}

impl Tracer {
    /// Scopes `recorder` to `node`.
    pub fn new(recorder: Arc<FlightRecorder>, node: u32) -> Self {
        Tracer { recorder, node }
    }

    /// The node this handle stamps on every event.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The shared recorder.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Records a connection-scoped event.
    #[inline]
    pub fn emit(&self, t: SimTime, conn: u32, ev: TraceEvent) {
        self.recorder.record(t, self.node, conn, ev);
    }

    /// Records a node-scoped event.
    #[inline]
    pub fn emit_node(&self, t: SimTime, ev: TraceEvent) {
        self.recorder.record(t, self.node, NODE_SCOPE, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u32) -> TraceEvent {
        TraceEvent::SegTx { seq, ack: 0, len: 1, wnd: 100, flags: flags::ACK, retransmit: false }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let rec = FlightRecorder::new(3);
        for i in 0..5u32 {
            rec.record(SimTime::from_micros(u64::from(i)), 0, 7, ev(i));
        }
        let evs = rec.last_events(0, 7, 10);
        assert_eq!(evs.len(), 3);
        let seqs: Vec<u32> = evs
            .iter()
            .map(|r| match r.ev {
                TraceEvent::SegTx { seq, .. } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, [2, 3, 4], "oldest two must be evicted");
        assert_eq!(rec.overwritten(0, 7), 2);
        assert_eq!(rec.total_recorded(), 5);
    }

    #[test]
    fn scopes_are_deterministically_ordered() {
        let rec = FlightRecorder::new(4);
        rec.record(SimTime::ZERO, 1, 5, ev(0));
        rec.record(SimTime::ZERO, 0, 9, ev(1));
        rec.record(SimTime::ZERO, 0, 2, ev(2));
        assert_eq!(rec.scopes(), [(0, 2), (0, 9), (1, 5)]);
    }

    #[test]
    fn events_interleave_rings_in_arrival_order() {
        let rec = FlightRecorder::new(4);
        rec.record(SimTime::from_micros(1), 0, 1, ev(10));
        rec.record(SimTime::from_micros(2), 0, 2, ev(20));
        rec.record(SimTime::from_micros(3), 0, 1, ev(30));
        let idx: Vec<u64> = rec.events().iter().map(|r| r.index).collect();
        assert_eq!(idx, [0, 1, 2]);
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.record(SimTime::ZERO, 0, 0, ev(0));
    }

    #[test]
    fn tracer_stamps_node_and_scope() {
        let rec = Arc::new(FlightRecorder::new(8));
        let tr = Tracer::new(Arc::clone(&rec), 3);
        tr.emit(SimTime::ZERO, 1, ev(0));
        tr.emit_node(SimTime::ZERO, TraceEvent::Sock { op: "tx", bytes: 64 });
        assert_eq!(rec.scopes(), [(3, 1), (3, NODE_SCOPE)]);
    }
}
