//! `qpip-trace`: inspect a captured flight-recorder JSONL file.
//!
//! ```text
//! qpip-trace <trace.jsonl>            # per-connection summary
//! qpip-trace <trace.jsonl> --dump     # tcpdump-style event dump
//! qpip-trace <trace.jsonl> --summary  # summary (explicit)
//! ```
//!
//! Capture a file with `fig3_rtt --trace <path>` (DES, deterministic)
//! or any harness that installs a [`qpip_trace::FlightRecorder`] and
//! writes [`qpip_trace::FlightRecorder::export_jsonl`].

use std::io::Write;
use std::process::ExitCode;

use qpip_trace::export::{dump, parse_jsonl, render_summary, summarize};

/// Writes to stdout; a closed pipe (`qpip-trace … | head`) exits
/// quietly instead of panicking.
fn emit(text: &str) {
    if let Err(e) = std::io::stdout().write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("write to stdout: {e}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let file = match args.iter().find(|a| !a.starts_with("--")) {
        Some(f) => f.clone(),
        None => {
            eprintln!("usage: qpip-trace <trace.jsonl> [--dump] [--summary]");
            return ExitCode::FAILURE;
        }
    };
    let want_dump = args.iter().any(|a| a == "--dump");
    let want_summary = args.iter().any(|a| a == "--summary") || !want_dump;

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("qpip-trace: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = parse_jsonl(&text);
    if events.is_empty() {
        eprintln!("qpip-trace: no parseable events in {file}");
        return ExitCode::FAILURE;
    }

    if want_dump {
        emit(&dump(&events));
    }
    if want_summary {
        emit(&format!("{} events across {} line(s)\n", events.len(), text.lines().count()));
        emit(&render_summary(&summarize(&events)));
    }
    ExitCode::SUCCESS
}
