//! Conformance harness for the QPIP protocol engine.
//!
//! Three layers, all driving the *unmodified* [`qpip_netstack::Engine`]:
//!
//! - [`harness`] — a packetdrill-style scripted segment harness. A test
//!   plays the remote peer: it injects hand-built wire segments into the
//!   engine and asserts exactly what comes back
//!   (`inject(seg().syn().seq(100))` / `expect(synack().ack(101))`).
//! - [`fuzz`] — a deterministic, seed-replayable fuzz loop that throws
//!   mutated/truncated/reordered segments at the engine and checks the
//!   TCB invariant oracle after every event, with drop-one-step
//!   minimization of failing cases.
//! - [`differential`] — runs the same application workload through the
//!   DES world and the live-socket transport and diffs the normalized
//!   per-connection flight-recorder event streams.
//!
//! The TCB invariant oracle itself lives in
//! [`qpip_netstack::invariant`] so the engine can self-check in every
//! debug build; this crate is the harness that drives it hard.

pub mod differential;
pub mod fuzz;
pub mod harness;

pub use harness::{seg, Expect, Harness, SegBuilder, WireSeg};
