//! Packetdrill-style scripted segment harness.
//!
//! A test acts as the remote peer of one [`Engine`]: it builds raw wire
//! segments with [`seg`], injects them with [`Harness::inject`], and
//! asserts the engine's replies with [`Harness::expect`]. Every engine
//! call is followed by a full [`Engine::check_invariants`] sweep, so a
//! script that drives the state machine into an inconsistent TCB fails
//! immediately with the violated invariant's name.
//!
//! ```
//! use qpip_conform::{seg, Expect, Harness};
//! use qpip_netstack::types::NetConfig;
//!
//! let mut h = Harness::server(NetConfig::qpip(9000), 5000);
//! h.inject(seg().syn().seq(100).win(65535).mss(1460));
//! let synack = h.expect(Expect::synack().ack_no(101));
//! h.inject(seg().ack(synack.hdr.seq.0 + 1).seq(101));
//! ```

use std::collections::VecDeque;
use std::net::Ipv6Addr;

use qpip_netstack::codec::{self, Decoded};
use qpip_netstack::engine::{Engine, EngineStats};
use qpip_netstack::tcp::{SegmentOut, TcpState};
use qpip_netstack::types::{Emit, Endpoint, NetConfig, PacketKind, SendToken};
use qpip_netstack::ConnId;
use qpip_sim::time::{SimDuration, SimTime};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpHeader, TcpOptions};

/// The engine-side address the harness gives the engine.
pub const LOCAL_ADDR: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
/// The scripted peer's address.
pub const PEER_ADDR: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 0xaa);
/// The scripted peer's default source port (server-mode scripts).
pub const PEER_PORT: u16 = 33000;
/// The engine's local port in client-mode scripts.
pub const CLIENT_PORT: u16 = 44000;

/// One TCP segment captured off the engine's transmit path, decoded
/// back into header + payload for assertions.
#[derive(Debug, Clone)]
pub struct WireSeg {
    /// The decoded TCP header.
    pub hdr: TcpHeader,
    /// The segment payload.
    pub payload: Vec<u8>,
}

impl WireSeg {
    /// Sequence space consumed by this segment (payload + SYN + FIN).
    pub fn seg_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.hdr.flags.syn) + u32::from(self.hdr.flags.fin)
    }
}

impl std::fmt::Display for WireSeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fl = &self.hdr.flags;
        let mut s = String::new();
        for (bit, ch) in [(fl.syn, 'S'), (fl.fin, 'F'), (fl.rst, 'R'), (fl.psh, 'P'), (fl.ack, '.')]
        {
            if bit {
                s.push(ch);
            }
        }
        write!(
            f,
            "flags {s} seq {} ack {} len {} win {}",
            self.hdr.seq,
            self.hdr.ack,
            self.payload.len(),
            self.hdr.window
        )?;
        if self.hdr.options != TcpOptions::default() {
            write!(f, " opts {:?}", self.hdr.options)?;
        }
        Ok(())
    }
}

/// Starts a segment builder with no flags, window 65535.
pub fn seg() -> SegBuilder {
    SegBuilder::default()
}

/// Builder for one injected wire segment. Starts with no flags and a
/// 65535 window; every method overrides one field.
#[derive(Debug, Clone)]
pub struct SegBuilder {
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    win: u16,
    options: TcpOptions,
    payload: Vec<u8>,
    src_port: Option<u16>,
    dst_port: Option<u16>,
    bad_checksum: bool,
    truncate_to: Option<usize>,
}

impl Default for SegBuilder {
    fn default() -> Self {
        SegBuilder {
            seq: 0,
            ack: 0,
            flags: TcpFlags::NONE,
            win: 65535,
            options: TcpOptions::default(),
            payload: Vec::new(),
            src_port: None,
            dst_port: None,
            bad_checksum: false,
            truncate_to: None,
        }
    }
}

impl SegBuilder {
    /// Sets SYN.
    pub fn syn(mut self) -> Self {
        self.flags.syn = true;
        self
    }

    /// Sets ACK and the acknowledgment number.
    pub fn ack(mut self, n: u32) -> Self {
        self.flags.ack = true;
        self.ack = n;
        self
    }

    /// Sets the ACK flag without touching the ack number.
    pub fn ack_flag(mut self) -> Self {
        self.flags.ack = true;
        self
    }

    /// Sets FIN.
    pub fn fin(mut self) -> Self {
        self.flags.fin = true;
        self
    }

    /// Sets RST.
    pub fn rst(mut self) -> Self {
        self.flags.rst = true;
        self
    }

    /// Sets PSH.
    pub fn psh(mut self) -> Self {
        self.flags.psh = true;
        self
    }

    /// Sets the sequence number.
    pub fn seq(mut self, n: u32) -> Self {
        self.seq = n;
        self
    }

    /// Sets the window field.
    pub fn win(mut self, w: u16) -> Self {
        self.win = w;
        self
    }

    /// Carries an MSS option.
    pub fn mss(mut self, mss: u16) -> Self {
        self.options.mss = Some(mss);
        self
    }

    /// Carries a window-scale option.
    pub fn wscale(mut self, shift: u8) -> Self {
        self.options.window_scale = Some(shift);
        self
    }

    /// Carries a timestamps option `(TSval, TSecr)`.
    pub fn ts(mut self, val: u32, ecr: u32) -> Self {
        self.options.timestamps = Some((val, ecr));
        self
    }

    /// Carries this payload.
    pub fn payload(mut self, data: &[u8]) -> Self {
        self.payload = data.to_vec();
        self
    }

    /// Corrupts the TCP checksum after encoding.
    pub fn bad_checksum(mut self) -> Self {
        self.bad_checksum = true;
        self
    }

    /// Truncates the encoded packet to `n` bytes.
    pub fn truncated(mut self, n: usize) -> Self {
        self.truncate_to = Some(n);
        self
    }

    /// Overrides the peer-side source port.
    pub fn from_port(mut self, p: u16) -> Self {
        self.src_port = Some(p);
        self
    }

    /// Overrides the engine-side destination port.
    pub fn to_port(mut self, p: u16) -> Self {
        self.dst_port = Some(p);
        self
    }

    /// Encodes the segment as a full IPv6+TCP packet from `src` to
    /// `dst`, applying corruption/truncation last.
    pub fn build(&self, src: Endpoint, dst: Endpoint) -> Vec<u8> {
        let src = Endpoint::new(src.addr, self.src_port.unwrap_or(src.port));
        let dst = Endpoint::new(dst.addr, self.dst_port.unwrap_or(dst.port));
        let seg = SegmentOut {
            seq: SeqNum(self.seq),
            ack: SeqNum(self.ack),
            flags: self.flags,
            window: self.win,
            options: self.options,
            payload: self.payload.clone(),
            kind: PacketKind::TcpData,
            is_retransmit: false,
            ect: false,
        };
        let pkt = codec::build_tcp_packet(src, dst, &seg);
        let mut bytes = pkt.to_vec();
        if self.bad_checksum {
            // TCP checksum lives at offset 16 of the segment, after the
            // 40-byte IPv6 header.
            bytes[40 + 16] ^= 0xff;
        }
        if let Some(n) = self.truncate_to {
            bytes.truncate(n);
        }
        bytes
    }
}

/// What a script expects the engine to transmit next. Unset fields are
/// not checked.
#[derive(Debug, Clone, Default)]
pub struct Expect {
    label: &'static str,
    syn: Option<bool>,
    ack_flag: Option<bool>,
    rst: Option<bool>,
    fin: Option<bool>,
    seq: Option<u32>,
    ack: Option<u32>,
    win: Option<u16>,
    payload_len: Option<usize>,
    payload: Option<Vec<u8>>,
    mss_present: Option<bool>,
    wscale: Option<Option<u8>>,
    ts_present: Option<bool>,
    ts_ecr: Option<u32>,
}

impl Expect {
    /// Any segment at all.
    pub fn any() -> Self {
        Expect { label: "any segment", ..Expect::default() }
    }

    /// A SYN-ACK.
    pub fn synack() -> Self {
        Expect {
            label: "SYN-ACK",
            syn: Some(true),
            ack_flag: Some(true),
            rst: Some(false),
            fin: Some(false),
            ..Expect::default()
        }
    }

    /// A pure ACK: no SYN/FIN/RST, no payload.
    pub fn pure_ack() -> Self {
        Expect {
            label: "pure ACK",
            syn: Some(false),
            ack_flag: Some(true),
            rst: Some(false),
            fin: Some(false),
            payload_len: Some(0),
            ..Expect::default()
        }
    }

    /// An RST.
    pub fn rst_seg() -> Self {
        Expect { label: "RST", rst: Some(true), ..Expect::default() }
    }

    /// A FIN (with ACK, as the engine always acks).
    pub fn fin_seg() -> Self {
        Expect {
            label: "FIN",
            fin: Some(true),
            ack_flag: Some(true),
            rst: Some(false),
            syn: Some(false),
            ..Expect::default()
        }
    }

    /// A data segment carrying exactly this payload.
    pub fn data(payload: &[u8]) -> Self {
        Expect {
            label: "data segment",
            syn: Some(false),
            rst: Some(false),
            fin: Some(false),
            payload: Some(payload.to_vec()),
            ..Expect::default()
        }
    }

    /// Requires this sequence number.
    pub fn seq(mut self, n: u32) -> Self {
        self.seq = Some(n);
        self
    }

    /// Requires this acknowledgment number.
    pub fn ack_no(mut self, n: u32) -> Self {
        self.ack = Some(n);
        self
    }

    /// Requires this window field.
    pub fn win(mut self, w: u16) -> Self {
        self.win = Some(w);
        self
    }

    /// Requires this payload length.
    pub fn payload_len(mut self, n: usize) -> Self {
        self.payload_len = Some(n);
        self
    }

    /// Requires an MSS option to be present (or absent).
    pub fn mss_present(mut self, p: bool) -> Self {
        self.mss_present = Some(p);
        self
    }

    /// Requires the window-scale option to be exactly this.
    pub fn wscale(mut self, w: Option<u8>) -> Self {
        self.wscale = Some(w);
        self
    }

    /// Requires a timestamps option to be present (or absent).
    pub fn ts_present(mut self, p: bool) -> Self {
        self.ts_present = Some(p);
        self
    }

    /// Requires the echoed TSecr to be exactly this.
    pub fn ts_ecr(mut self, e: u32) -> Self {
        self.ts_ecr = Some(e);
        self
    }

    fn mismatches(&self, w: &WireSeg) -> Vec<String> {
        let mut out = Vec::new();
        let mut flag = |name: &str, want: Option<bool>, got: bool| {
            if let Some(want) = want {
                if want != got {
                    out.push(format!("{name}: want {want}, got {got}"));
                }
            }
        };
        flag("syn", self.syn, w.hdr.flags.syn);
        flag("ack-flag", self.ack_flag, w.hdr.flags.ack);
        flag("rst", self.rst, w.hdr.flags.rst);
        flag("fin", self.fin, w.hdr.flags.fin);
        if let Some(n) = self.seq {
            if w.hdr.seq.0 != n {
                out.push(format!("seq: want {n}, got {}", w.hdr.seq));
            }
        }
        if let Some(n) = self.ack {
            if w.hdr.ack.0 != n {
                out.push(format!("ack: want {n}, got {}", w.hdr.ack));
            }
        }
        if let Some(win) = self.win {
            if w.hdr.window != win {
                out.push(format!("win: want {win}, got {}", w.hdr.window));
            }
        }
        if let Some(n) = self.payload_len {
            if w.payload.len() != n {
                out.push(format!("payload len: want {n}, got {}", w.payload.len()));
            }
        }
        if let Some(p) = &self.payload {
            if &w.payload != p {
                out.push(format!(
                    "payload: want {} bytes {:?}…, got {} bytes",
                    p.len(),
                    &p[..p.len().min(8)],
                    w.payload.len()
                ));
            }
        }
        if let Some(p) = self.mss_present {
            if w.hdr.options.mss.is_some() != p {
                out.push(format!("mss option: want present={p}, got {:?}", w.hdr.options.mss));
            }
        }
        if let Some(want) = self.wscale {
            if w.hdr.options.window_scale != want {
                out.push(format!(
                    "wscale option: want {want:?}, got {:?}",
                    w.hdr.options.window_scale
                ));
            }
        }
        if let Some(p) = self.ts_present {
            if w.hdr.options.timestamps.is_some() != p {
                out.push(format!(
                    "timestamps option: want present={p}, got {:?}",
                    w.hdr.options.timestamps
                ));
            }
        }
        if let Some(e) = self.ts_ecr {
            match w.hdr.options.timestamps {
                Some((_, ecr)) if ecr == e => {}
                other => out.push(format!("ts ecr: want {e}, got {other:?}")),
            }
        }
        out
    }
}

/// The scripted-test harness: one engine plus the peer the script plays.
pub struct Harness {
    engine: Engine,
    now: SimTime,
    local: Endpoint,
    peer: Endpoint,
    outbox: VecDeque<WireSeg>,
    events: Vec<Emit>,
    conn: Option<ConnId>,
    next_token: u64,
}

impl Harness {
    /// An engine listening on `port`; the script plays an active-opening
    /// client from [`PEER_ADDR`]:[`PEER_PORT`].
    pub fn server(cfg: NetConfig, port: u16) -> Harness {
        let mut engine = Engine::new(cfg, LOCAL_ADDR);
        engine.tcp_listen(port).expect("listen");
        Harness {
            engine,
            now: SimTime::ZERO,
            local: Endpoint::new(LOCAL_ADDR, port),
            peer: Endpoint::new(PEER_ADDR, PEER_PORT),
            outbox: VecDeque::new(),
            events: Vec::new(),
            conn: None,
            next_token: 1,
        }
    }

    /// An engine actively connecting to the scripted peer on
    /// `dst_port`; the SYN lands in the outbox.
    pub fn client(cfg: NetConfig, dst_port: u16) -> Harness {
        let mut h = Harness {
            engine: Engine::new(cfg, LOCAL_ADDR),
            now: SimTime::ZERO,
            local: Endpoint::new(LOCAL_ADDR, CLIENT_PORT),
            peer: Endpoint::new(PEER_ADDR, dst_port),
            outbox: VecDeque::new(),
            events: Vec::new(),
            conn: None,
            next_token: 1,
        };
        let (conn, emits) =
            h.engine.tcp_connect(h.now, CLIENT_PORT, Endpoint::new(PEER_ADDR, dst_port));
        h.conn = Some(conn);
        h.absorb(emits);
        h
    }

    // ----- injecting and expecting ----------------------------------

    /// Injects one scripted segment from the peer.
    pub fn inject(&mut self, b: SegBuilder) {
        let bytes = b.build(self.peer, self.local);
        self.inject_raw(&bytes);
    }

    /// Injects raw packet bytes (for corrupted/truncated cases built by
    /// hand).
    pub fn inject_raw(&mut self, bytes: &[u8]) {
        let emits = self.engine.on_packet(self.now, bytes);
        self.absorb(emits);
    }

    /// Pops the next transmitted segment and asserts it matches.
    ///
    /// # Panics
    ///
    /// Panics with the mismatch list (or "nothing sent") on failure —
    /// the script line number points at the failing expectation.
    #[track_caller]
    pub fn expect(&mut self, e: Expect) -> WireSeg {
        let Some(w) = self.outbox.pop_front() else {
            panic!("expected {}, but the engine sent nothing", e.label);
        };
        let miss = e.mismatches(&w);
        if !miss.is_empty() {
            panic!("expected {}, got [{w}]\n  {}", e.label, miss.join("\n  "));
        }
        w
    }

    /// Asserts the engine transmitted nothing (pending outbox empty).
    #[track_caller]
    pub fn expect_quiet(&mut self) {
        if let Some(w) = self.outbox.pop_front() {
            panic!("expected silence, but the engine sent [{w}]");
        }
    }

    // ----- time ------------------------------------------------------

    /// Advances the clock without firing timers.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to the next armed deadline and fires it.
    ///
    /// # Panics
    ///
    /// Panics if no timer is armed.
    #[track_caller]
    pub fn fire_timer(&mut self) {
        let dl = self.engine.next_deadline().expect("fire_timer: no timer armed");
        if dl > self.now {
            self.now = dl;
        }
        let emits = self.engine.on_timer(self.now);
        self.absorb(emits);
    }

    /// The engine's next armed deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.engine.next_deadline()
    }

    /// The current scripted clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    // ----- application verbs on the engine side ---------------------

    /// Sends one message on the tracked connection.
    #[track_caller]
    pub fn send(&mut self, data: &[u8]) -> SendToken {
        let conn = self.conn.expect("send: no connection yet");
        let token = SendToken(self.next_token);
        self.next_token += 1;
        let emits = self.engine.tcp_send(self.now, conn, data.to_vec(), token).expect("tcp_send");
        self.absorb(emits);
        token
    }

    /// Begins a graceful close on the tracked connection.
    #[track_caller]
    pub fn close(&mut self) {
        let conn = self.conn.expect("close: no connection yet");
        let emits = self.engine.tcp_close(self.now, conn).expect("tcp_close");
        self.absorb(emits);
    }

    /// Aborts the tracked connection with RST.
    #[track_caller]
    pub fn abort(&mut self) {
        let conn = self.conn.expect("abort: no connection yet");
        let emits = self.engine.tcp_abort(self.now, conn).expect("tcp_abort");
        self.absorb(emits);
    }

    /// Updates the receive-window backing space of the tracked
    /// connection.
    #[track_caller]
    pub fn set_recv_space(&mut self, bytes: u64) {
        let conn = self.conn.expect("set_recv_space: no connection yet");
        let emits = self.engine.set_recv_space(self.now, conn, bytes).expect("set_recv_space");
        self.absorb(emits);
    }

    // ----- observation ----------------------------------------------

    /// The tracked connection id (set by the first accept/connect).
    pub fn conn(&self) -> Option<ConnId> {
        self.conn
    }

    /// TCP state of the tracked connection (`None` once reaped).
    pub fn state(&self) -> Option<TcpState> {
        self.conn.and_then(|c| self.engine.conn_state(c))
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Direct engine access for assertions the helpers don't cover.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Drains the non-packet events absorbed so far.
    pub fn take_events(&mut self) -> Vec<Emit> {
        std::mem::take(&mut self.events)
    }

    // ----- canned sequences -----------------------------------------

    /// Standard server-side handshake: peer SYN (mss 1460, no window
    /// scale, no timestamps — keeps later sequence arithmetic unscaled)
    /// → SYN-ACK → peer ACK. Returns the engine's ISS.
    #[track_caller]
    pub fn handshake(&mut self, peer_iss: u32) -> u32 {
        self.inject(seg().syn().seq(peer_iss).win(65535).mss(1460));
        let sa = self.expect(Expect::synack().ack_no(peer_iss.wrapping_add(1)));
        let srv_iss = sa.hdr.seq.0;
        self.inject(seg().seq(peer_iss.wrapping_add(1)).ack(srv_iss.wrapping_add(1)));
        self.expect_quiet();
        assert_eq!(self.state(), Some(TcpState::Established));
        srv_iss
    }

    // ----- internals ------------------------------------------------

    fn absorb(&mut self, emits: Vec<Emit>) {
        for e in emits {
            match e {
                Emit::Packet(p) => {
                    // Track the embryonic connection from its first
                    // reply (TcpAccepted only fires at ESTABLISHED).
                    if self.conn.is_none() {
                        self.conn = p.conn;
                    }
                    match codec::decode_packet(&p.bytes) {
                        Ok(Decoded::Tcp { tcp, payload, .. }) => {
                            self.outbox.push_back(WireSeg { hdr: tcp, payload: payload.to_vec() });
                        }
                        other => panic!("engine transmitted a non-TCP packet: {other:?}"),
                    }
                }
                Emit::TcpAccepted { conn, .. } => {
                    self.conn = Some(conn);
                    self.events.push(e);
                }
                Emit::TcpConnected { conn } => {
                    self.conn = Some(conn);
                    self.events.push(e);
                }
                other => self.events.push(other),
            }
        }
        if let Err(v) = self.engine.check_invariants() {
            panic!("TCB invariant violated after engine call: {v}");
        }
    }
}
