//! Deterministic protocol fuzzer.
//!
//! ```text
//! conform_fuzz --seed 0xfeedbeef --iters 10000   # fixed-budget smoke
//! conform_fuzz --seed 1 --seconds 60             # wall-clock soak
//! ```
//!
//! Exit status 0 means every case passed the TCB invariant oracle;
//! status 1 prints the minimized failing script plus the seeds that
//! replay it.

use std::process::ExitCode;

use qpip_conform::fuzz;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut seed = 0xfeed_beefu64;
    let mut iters = 10_000u64;
    let mut seconds: Option<u64> = None;
    let mut case: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<u64> {
            *i += 1;
            args.get(*i).and_then(|s| parse_u64(s))
        };
        match args[i].as_str() {
            "--seed" => match take(&mut i) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--iters" => match take(&mut i) {
                Some(v) => iters = v,
                None => return usage(),
            },
            "--seconds" => match take(&mut i) {
                Some(v) => seconds = Some(v),
                None => return usage(),
            },
            "--case" => match take(&mut i) {
                Some(v) => case = Some(v),
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 1;
    }

    if let Some(case_seed) = case {
        println!("replaying case seed {case_seed:#x}...");
        return match fuzz::run_case(case_seed) {
            Ok(()) => {
                println!("ok: case passed");
                ExitCode::SUCCESS
            }
            Err((steps, _)) => {
                let (steps, message) = fuzz::minimize(steps);
                eprintln!("case {case_seed:#x} fails: {message}");
                for (i, s) in steps.iter().enumerate() {
                    eprintln!("  {i:>3}. {s}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let result = match seconds {
        Some(s) => {
            println!("soaking for {s}s from seed {seed:#x}...");
            fuzz::run_for(seed, s)
        }
        None => {
            println!("running {iters} cases from seed {seed:#x}...");
            fuzz::run(seed, iters)
        }
    };

    match result {
        Ok(n) => {
            println!("ok: {n} cases, zero invariant violations");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("{failure}");
            eprintln!("replay with: conform_fuzz --case {:#x}", failure.case_seed);
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: conform_fuzz [--seed N] [--iters N | --seconds N]");
    ExitCode::FAILURE
}
