//! Normalization for differential trace comparison.
//!
//! The DES world and the live-socket transport run the *same* protocol
//! engine; driven with the same lockstep workload they must produce the
//! same per-connection protocol history. This module reduces a
//! flight-recorder stream to that comparable core — TCP state
//! transitions and wire segments — stripped of everything that
//! legitimately differs between simulated and wall-clock execution:
//! timestamps, timer arms/fires, RTT samples, congestion-window moves
//! and socket-level events. Two window artifacts go too: the
//! advertised-window field itself, and pure ACKs that do not advance
//! the cumulative acknowledgment point. Both reflect *when* each
//! substrate pushes posted-WR byte counts into the engine and
//! re-advertises them (the DES NIC batches per event, the live
//! transport pushes at establishment and per pump) and when those
//! in-flight updates land relative to application sends — substrate
//! scheduling, not protocol behaviour. Every data segment, every
//! retransmission, every flag-bearing segment and every ack-advancing
//! ACK survives.
//!
//! The actual differential runs live in this crate's test suite
//! (`tests/differential.rs`): they drive a two-node `QpipWorld` and a
//! two-node `XportNode` loopback pair through one workload and assert
//! the normalized streams are byte-identical.

use qpip_trace::{Rec, TraceEvent, NODE_SCOPE};

/// Reduces `events` to the normalized protocol history of every
/// connection scoped to `node`, one stream per connection in order of
/// first appearance. Each line is a stable textual rendering of one
/// state transition or wire segment.
pub fn normalize(events: &[Rec], node: u32) -> Vec<Vec<String>> {
    const ACK: u8 = 0x10;
    /// Wrapping sequence-space "strictly greater" (RFC 793 arithmetic).
    fn seq_gt(a: u32, b: u32) -> bool {
        a != b && a.wrapping_sub(b) < 1 << 31
    }

    struct Stream {
        conn: u32,
        lines: Vec<String>,
        /// Highest cumulative ack transmitted / received so far.
        max_tx_ack: Option<u32>,
        max_rx_ack: Option<u32>,
    }

    let mut streams: Vec<Stream> = Vec::new();
    for r in events {
        if r.node != node || r.conn == NODE_SCOPE {
            continue;
        }
        let s = match streams.iter_mut().position(|s| s.conn == r.conn) {
            Some(i) => &mut streams[i],
            None => {
                streams.push(Stream {
                    conn: r.conn,
                    lines: Vec::new(),
                    max_tx_ack: None,
                    max_rx_ack: None,
                });
                streams.last_mut().expect("just pushed")
            }
        };
        let line = match r.ev {
            TraceEvent::TcpState { from, to } => format!("state {from}->{to}"),
            TraceEvent::SegTx { seq, ack, len, flags, retransmit, .. } => {
                if flags == ACK && len == 0 && !s.max_tx_ack.is_none_or(|m| seq_gt(ack, m)) {
                    continue; // window re-advertisement
                }
                if flags & ACK != 0 && s.max_tx_ack.is_none_or(|m| seq_gt(ack, m)) {
                    s.max_tx_ack = Some(ack);
                }
                format!("tx seq={seq} ack={ack} len={len} flags={flags:#04x} rtx={retransmit}")
            }
            TraceEvent::SegRx { seq, ack, len, flags, .. } => {
                if flags == ACK && len == 0 && !s.max_rx_ack.is_none_or(|m| seq_gt(ack, m)) {
                    continue; // peer window re-advertisement
                }
                if flags & ACK != 0 && s.max_rx_ack.is_none_or(|m| seq_gt(ack, m)) {
                    s.max_rx_ack = Some(ack);
                }
                format!("rx seq={seq} ack={ack} len={len} flags={flags:#04x}")
            }
            _ => continue,
        };
        s.lines.push(line);
    }
    streams.into_iter().map(|s| s.lines).collect()
}

/// Renders a normalized stream diff for failure messages: the first
/// divergent line with a few lines of context from each side.
pub fn first_divergence(a: &[String], b: &[String]) -> Option<String> {
    let n = a.len().max(b.len());
    for i in 0..n {
        let (la, lb) = (a.get(i), b.get(i));
        if la != lb {
            let ctx = |s: &[String]| {
                let lo = i.saturating_sub(2);
                s[lo..s.len().min(i + 3)].join("\n    ")
            };
            return Some(format!(
                "streams diverge at line {i}:\n  des:\n    {}\n  live:\n    {}",
                ctx(a),
                ctx(b)
            ));
        }
    }
    None
}
