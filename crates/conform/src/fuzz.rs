//! Deterministic fuzz loop over the protocol engine.
//!
//! A case is a seed: the seed generates a concrete script of
//! [`FuzzStep`]s (injected wire segments — mostly-sane with mutations —
//! plus application verbs and timer fires), the script replays against a
//! fresh engine, and the TCB invariant oracle runs after every step. A
//! violation (or a panic) fails the case; the failing script is then
//! minimized by repeatedly dropping single steps, and the result prints
//! as a replayable script together with its seed.
//!
//! Everything is seeded [`SplitMix64`]: the same master seed always
//! fuzzes the same cases, so CI can run a fixed-seed smoke pass and a
//! soak run can report a seed that reproduces forever.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use qpip_netstack::codec::{self, Decoded};
use qpip_netstack::engine::Engine;
use qpip_netstack::types::{Emit, Endpoint, NetConfig, PacketKind, SendToken};
use qpip_netstack::ConnId;
use qpip_sim::rng::SplitMix64;
use qpip_sim::time::{SimDuration, SimTime};
use qpip_wire::tcp::{SeqNum, TcpFlags, TcpOptions};

use crate::harness::{seg, Expect, Harness, LOCAL_ADDR, PEER_ADDR, PEER_PORT};

/// Port the fuzzed engine listens on.
pub const FUZZ_PORT: u16 = 5000;
/// Fuzz fabric MTU (large enough that no generated send fragments).
const FUZZ_MTU: usize = 9000;
/// The peer's initial sequence number in every generated script.
const PEER_ISS: u32 = 1000;

/// One step of a fuzz script.
#[derive(Debug, Clone)]
pub enum FuzzStep {
    /// Deliver these raw packet bytes to the engine.
    Inject(Vec<u8>),
    /// Application sends one message of this many bytes.
    Send(usize),
    /// Application closes the connection.
    Close,
    /// Fire the engine's next armed timer.
    FireTimer,
    /// Advance the clock by this many microseconds.
    Advance(u64),
}

impl std::fmt::Display for FuzzStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuzzStep::Inject(bytes) => match codec::decode_packet(bytes) {
                Ok(Decoded::Tcp { tcp, payload, .. }) => {
                    let fl = tcp.flags;
                    let mut s = String::new();
                    for (bit, ch) in
                        [(fl.syn, 'S'), (fl.fin, 'F'), (fl.rst, 'R'), (fl.psh, 'P'), (fl.ack, '.')]
                    {
                        if bit {
                            s.push(ch);
                        }
                    }
                    write!(
                        f,
                        "inject flags {s} seq {} ack {} len {} win {}",
                        tcp.seq,
                        tcp.ack,
                        payload.len(),
                        tcp.window
                    )
                }
                _ => write!(f, "inject {} undecodable bytes {:02x?}", bytes.len(), {
                    &bytes[..bytes.len().min(16)]
                }),
            },
            FuzzStep::Send(n) => write!(f, "app send {n} bytes"),
            FuzzStep::Close => write!(f, "app close"),
            FuzzStep::FireTimer => write!(f, "fire next timer"),
            FuzzStep::Advance(us) => write!(f, "advance {us} us"),
        }
    }
}

/// A minimized failing fuzz case.
#[derive(Debug)]
pub struct Failure {
    /// Master seed the failing case came from.
    pub master_seed: u64,
    /// The per-case seed (replays with [`run_case`]).
    pub case_seed: u64,
    /// The minimized script.
    pub steps: Vec<FuzzStep>,
    /// The oracle violation or panic message.
    pub message: String,
}

impl Failure {
    /// Renders the minimized script as numbered, replayable lines.
    pub fn script(&self) -> String {
        let mut s = String::new();
        for (i, st) in self.steps.iter().enumerate() {
            s.push_str(&format!("  {i:>3}. {st}\n"));
        }
        s
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fuzz failure (master seed {:#x}, case seed {:#x}): {}",
            self.master_seed, self.case_seed, self.message
        )?;
        writeln!(f, "minimized script ({} steps):", self.steps.len())?;
        write!(f, "{}", self.script())
    }
}

/// The engine's deterministic ISS for its first accepted connection
/// (probed once; every fresh engine produces the same value).
fn engine_iss() -> u32 {
    static ISS: OnceLock<u32> = OnceLock::new();
    *ISS.get_or_init(|| {
        let mut h = Harness::server(NetConfig::qpip(FUZZ_MTU), FUZZ_PORT);
        h.inject(seg().syn().seq(PEER_ISS).win(65535).mss(1460));
        h.expect(Expect::synack()).hdr.seq.0
    })
}

/// Generator state: the peer's predicted view of both sequence spaces.
/// Predictions go stale once a mutation derails the connection — that
/// is fine; they only bias the script toward deep states.
struct GenState {
    peer_seq: u32,
    engine_nxt: u32,
    closed: bool,
}

/// Generates the concrete script for one case seed.
pub fn generate(case_seed: u64) -> Vec<FuzzStep> {
    let mut rng = SplitMix64::new(case_seed);
    let peer = Endpoint::new(PEER_ADDR, PEER_PORT);
    let local = Endpoint::new(LOCAL_ADDR, FUZZ_PORT);
    let mut gs = GenState {
        peer_seq: PEER_ISS.wrapping_add(1),
        engine_nxt: engine_iss().wrapping_add(1),
        closed: false,
    };
    let mut steps: Vec<FuzzStep> = Vec::new();

    // Usually start with a real handshake so the script reaches
    // ESTABLISHED before the mutations begin.
    if rng.chance(4, 5) {
        steps.push(FuzzStep::Inject(
            seg().syn().seq(PEER_ISS).win(65535).mss(1460).wscale(0).ts(1, 0).build(peer, local),
        ));
        steps.push(FuzzStep::Inject(
            seg().seq(gs.peer_seq).ack(gs.engine_nxt).ts(2, 0).build(peer, local),
        ));
    }

    let n = rng.range(20, 60);
    for _ in 0..n {
        let roll = rng.below(100);
        if roll < 55 {
            steps.push(FuzzStep::Inject(random_segment(&mut rng, &mut gs, peer, local)));
        } else if roll < 70 {
            steps.push(FuzzStep::Send(rng.range_usize(1, 1000)));
            // The engine's seq advances by the payload it sends.
            if let Some(FuzzStep::Send(len)) = steps.last() {
                gs.engine_nxt = gs.engine_nxt.wrapping_add(*len as u32);
            }
        } else if roll < 78 {
            if gs.closed {
                steps.push(FuzzStep::Advance(rng.range(1, 50_000)));
            } else {
                steps.push(FuzzStep::Close);
                gs.engine_nxt = gs.engine_nxt.wrapping_add(1);
                gs.closed = true;
            }
        } else if roll < 90 {
            steps.push(FuzzStep::FireTimer);
        } else {
            steps.push(FuzzStep::Advance(rng.range(1, 50_000)));
        }
    }
    steps
}

/// Builds one injected segment: mostly-sane fields with a mutation
/// budget (flag sets, off-by-small and random seq/ack, window games,
/// truncation, checksum corruption).
fn random_segment(
    rng: &mut SplitMix64,
    gs: &mut GenState,
    peer: Endpoint,
    local: Endpoint,
) -> Vec<u8> {
    let flags = match rng.below(12) {
        0..=4 => TcpFlags::ACK,
        5..=6 => TcpFlags { psh: true, ..TcpFlags::ACK },
        7 => TcpFlags { fin: true, ..TcpFlags::ACK },
        8 => TcpFlags::SYN,
        9 => TcpFlags { rst: true, ..TcpFlags::NONE },
        10 => TcpFlags { rst: true, ..TcpFlags::ACK },
        _ => {
            // Arbitrary flag combination.
            TcpFlags {
                fin: rng.flip(),
                syn: rng.flip(),
                rst: rng.flip(),
                psh: rng.flip(),
                ack: rng.flip(),
                urg: rng.flip(),
                ece: rng.flip(),
                cwr: rng.flip(),
            }
        }
    };
    let seq = match rng.below(10) {
        0..=6 => gs.peer_seq,
        7 => gs.peer_seq.wrapping_add(rng.range(1, 2000) as u32),
        8 => gs.peer_seq.wrapping_sub(rng.range(1, 2000) as u32),
        _ => rng.next_u32(),
    };
    let ack = match rng.below(10) {
        0..=6 => gs.engine_nxt,
        7 => gs.engine_nxt.wrapping_add(rng.range(1, 1_000_000) as u32),
        8 => gs.engine_nxt.wrapping_sub(rng.range(1, 2000) as u32),
        _ => rng.next_u32(),
    };
    let win: u16 = match rng.below(10) {
        0..=6 => 65535,
        7 => 0,
        8 => rng.below(256) as u16,
        _ => rng.next_u32() as u16,
    };
    let payload_len = if flags.ack && !flags.syn && !flags.rst && rng.chance(1, 2) {
        rng.range_usize(1, 600)
    } else {
        0
    };
    let mut payload = vec![0u8; payload_len];
    rng.fill_bytes(&mut payload);

    // An in-order data segment the engine will accept advances the
    // peer's predicted seq.
    if payload_len > 0 && seq == gs.peer_seq && flags.ack && !flags.rst && !flags.syn {
        gs.peer_seq = gs.peer_seq.wrapping_add(payload_len as u32);
    }
    if flags.fin && seq == gs.peer_seq {
        gs.peer_seq = gs.peer_seq.wrapping_add(1);
    }

    let out = qpip_netstack::tcp::SegmentOut {
        seq: SeqNum(seq),
        ack: SeqNum(ack),
        flags,
        window: win,
        options: if rng.chance(1, 4) {
            TcpOptions {
                timestamps: Some((rng.next_u32(), rng.next_u32())),
                ..TcpOptions::default()
            }
        } else {
            TcpOptions::default()
        },
        payload,
        kind: PacketKind::TcpData,
        is_retransmit: false,
        ect: false,
    };
    let mut bytes = codec::build_tcp_packet(peer, local, &out).to_vec();
    if rng.chance(1, 10) {
        bytes[40 + 16] ^= 0xff; // corrupt the TCP checksum
    }
    if rng.chance(1, 10) {
        let keep = rng.range_usize(1, bytes.len());
        bytes.truncate(keep);
    }
    bytes
}

/// Replay environment: a fresh listening engine plus the peer clock.
struct FuzzEnv {
    engine: Engine,
    now: SimTime,
    conn: Option<ConnId>,
    next_token: u64,
}

impl FuzzEnv {
    fn new() -> FuzzEnv {
        let mut engine = Engine::new(NetConfig::qpip(FUZZ_MTU), LOCAL_ADDR);
        engine.tcp_listen(FUZZ_PORT).expect("listen");
        FuzzEnv { engine, now: SimTime::ZERO, conn: None, next_token: 1 }
    }

    fn apply(&mut self, step: &FuzzStep) -> Result<(), String> {
        match step {
            FuzzStep::Inject(bytes) => {
                let emits = self.engine.on_packet(self.now, bytes);
                self.track(&emits);
            }
            FuzzStep::Send(n) => {
                if let Some(conn) = self.conn {
                    let token = SendToken(self.next_token);
                    self.next_token += 1;
                    // Send errors (closing, too large, reaped conn) are
                    // legal outcomes, not failures.
                    let _ = self.engine.tcp_send(self.now, conn, vec![0xab; *n], token);
                }
            }
            FuzzStep::Close => {
                if let Some(conn) = self.conn {
                    let _ = self.engine.tcp_close(self.now, conn);
                }
            }
            FuzzStep::FireTimer => {
                if let Some(dl) = self.engine.next_deadline() {
                    if dl > self.now {
                        self.now = dl;
                    }
                    let emits = self.engine.on_timer(self.now);
                    self.track(&emits);
                }
            }
            FuzzStep::Advance(us) => {
                self.now += SimDuration::from_micros(*us);
            }
        }
        self.engine.check_invariants().map_err(|v| v.to_string())
    }

    fn track(&mut self, emits: &[Emit]) {
        for e in emits {
            match e {
                Emit::TcpAccepted { conn, .. } | Emit::TcpConnected { conn } => {
                    self.conn = Some(*conn);
                }
                _ => {}
            }
        }
    }
}

/// Replays a concrete script against a fresh engine. Returns the first
/// oracle violation or panic, with the index of the offending step.
pub fn replay(steps: &[FuzzStep]) -> Result<(), (usize, String)> {
    let mut env = FuzzEnv::new();
    for (i, step) in steps.iter().enumerate() {
        let r = catch_unwind(AssertUnwindSafe(|| env.apply(step)));
        match r {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => return Err((i, msg)),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "panic (non-string payload)".to_string());
                return Err((i, format!("panic: {msg}")));
            }
        }
    }
    Ok(())
}

/// Generates and replays one case. Returns the failing script on error.
pub fn run_case(case_seed: u64) -> Result<(), (Vec<FuzzStep>, String)> {
    let steps = generate(case_seed);
    match replay(&steps) {
        Ok(()) => Ok(()),
        Err((i, msg)) => {
            // Everything after the violating step is noise.
            let trimmed = steps[..=i].to_vec();
            Err((trimmed, msg))
        }
    }
}

/// Shrinks a failing script by repeatedly dropping single steps while
/// the failure reproduces (any violation counts, not just an identical
/// message — simpler scripts for the same underlying break are fine).
pub fn minimize(steps: Vec<FuzzStep>) -> (Vec<FuzzStep>, String) {
    let mut best = steps;
    let mut message = match replay(&best) {
        Err((_, m)) => m,
        Ok(()) => return (best, "not reproducible".to_string()),
    };
    let mut improved = true;
    while improved {
        improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if let Err((_, m)) = replay(&candidate) {
                best = candidate;
                message = m;
                improved = true;
            } else {
                i += 1;
            }
        }
    }
    (best, message)
}

/// Runs `iters` cases from `master_seed`. On the first failure, returns
/// the minimized script; otherwise the number of cases run.
pub fn run(master_seed: u64, iters: u64) -> Result<u64, Box<Failure>> {
    let mut master = SplitMix64::new(master_seed);
    for i in 0..iters {
        let case_seed = master.next_u64();
        if let Err((steps, _)) = run_case(case_seed) {
            let (steps, message) = minimize(steps);
            return Err(Box::new(Failure { master_seed, case_seed, steps, message }));
        }
        let _ = i;
    }
    Ok(iters)
}

/// Soak mode: runs cases until `seconds` of wall clock elapse.
pub fn run_for(master_seed: u64, seconds: u64) -> Result<u64, Box<Failure>> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(seconds);
    let mut master = SplitMix64::new(master_seed);
    let mut count = 0u64;
    while std::time::Instant::now() < deadline {
        let case_seed = master.next_u64();
        if let Err((steps, _)) = run_case(case_seed) {
            let (steps, message) = minimize(steps);
            return Err(Box::new(Failure { master_seed, case_seed, steps, message }));
        }
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0x1234_5678);
        let b = generate(0x1234_5678);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x}"), format!("{y}"));
        }
    }

    #[test]
    fn smoke_short_fixed_seed_run_is_clean() {
        // The full 10k-iteration smoke runs in scripts/check.sh; keep
        // the in-tree test short.
        assert!(run(0xfeed_beef, 200).is_ok());
    }

    #[test]
    fn seeded_case_replays_identically() {
        let steps = generate(42);
        assert!(replay(&steps).is_ok());
        assert!(replay(&steps).is_ok());
    }
}
