//! Scripted TCP conformance suite.
//!
//! Each test is a packetdrill-style script: the test plays the remote
//! peer byte-for-byte against one engine, asserting every reply segment
//! and the resulting state transitions. The TCB invariant oracle runs
//! after every injected event (the harness panics on the first
//! violation), so these scripts double as oracle workloads.

use qpip_conform::{seg, Expect, Harness};
use qpip_netstack::tcp::TcpState;
use qpip_netstack::types::{Emit, NetConfig};
use qpip_sim::time::SimDuration;

const PORT: u16 = 5000;

fn cfg() -> NetConfig {
    NetConfig::qpip(9000)
}

fn delivered(events: &[Emit]) -> Vec<u8> {
    events
        .iter()
        .filter_map(|e| match e {
            Emit::TcpDelivered { data, .. } => Some(data.clone()),
            _ => None,
        })
        .flatten()
        .collect()
}

fn count_send_complete(events: &[Emit]) -> usize {
    events.iter().filter(|e| matches!(e, Emit::TcpSendComplete { .. })).count()
}

// ----- opening ------------------------------------------------------

#[test]
fn passive_open_three_way_handshake() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460));
    assert_eq!(h.state(), Some(TcpState::SynRcvd));
    let sa = h.expect(Expect::synack().ack_no(101).mss_present(true));
    h.inject(seg().seq(101).ack(sa.hdr.seq.0 + 1));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::Established));
    let ev = h.take_events();
    assert!(ev.iter().any(|e| matches!(e, Emit::TcpAccepted { .. })));
}

#[test]
fn active_open_offers_options_and_completes() {
    let mut h = Harness::client(cfg(), PORT);
    let syn = h.expect(Expect::any().mss_present(true).ts_present(true));
    assert!(syn.hdr.flags.syn && !syn.hdr.flags.ack);
    assert!(syn.hdr.options.window_scale.is_some());
    assert_eq!(h.state(), Some(TcpState::SynSent));
    h.inject(seg().syn().seq(9000).ack(syn.hdr.seq.0 + 1).win(65535).mss(1460));
    h.expect(Expect::pure_ack().ack_no(9001));
    assert_eq!(h.state(), Some(TcpState::Established));
    let ev = h.take_events();
    assert!(ev.iter().any(|e| matches!(e, Emit::TcpConnected { .. })));
}

#[test]
fn syn_retransmits_on_rto_with_same_iss() {
    let mut h = Harness::client(cfg(), PORT);
    let syn = h.expect(Expect::any());
    h.fire_timer();
    let again = h.expect(Expect::any());
    assert!(again.hdr.flags.syn);
    assert_eq!(again.hdr.seq, syn.hdr.seq);
    assert_eq!(h.stats().rto_retransmits, 1);
}

#[test]
fn duplicate_syn_in_syn_rcvd_is_reacked() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460));
    h.expect(Expect::synack().ack_no(101));
    // The client's SYN-ACK got lost from its view; it retransmits the
    // SYN. The engine re-acknowledges instead of spawning a second TCB.
    h.inject(seg().syn().seq(100).win(65535).mss(1460));
    h.expect(Expect::pure_ack().ack_no(101));
    assert_eq!(h.state(), Some(TcpState::SynRcvd));
    assert_eq!(h.engine().conn_count(), 1);
}

#[test]
fn bare_syn_in_syn_sent_is_ignored_no_simultaneous_open() {
    // §4.1: the QPIP subset has no simultaneous open. A crossing SYN in
    // SYN-SENT is dropped, not answered with SYN-ACK.
    let mut h = Harness::client(cfg(), PORT);
    h.expect(Expect::any());
    h.inject(seg().syn().seq(500).win(65535));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::SynSent));
}

#[test]
fn syn_ack_with_wrong_ack_is_ignored_in_syn_sent() {
    let mut h = Harness::client(cfg(), PORT);
    let syn = h.expect(Expect::any());
    h.inject(seg().syn().seq(9000).ack(syn.hdr.seq.0 + 999).win(65535));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::SynSent));
}

#[test]
fn option_negotiation_window_scale_and_timestamps() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1400).wscale(5).ts(7777, 0));
    let sa = h.expect(Expect::synack().ack_no(101).mss_present(true).ts_present(true).ts_ecr(7777));
    assert!(sa.hdr.options.window_scale.is_some());
    h.inject(seg().seq(101).ack(sa.hdr.seq.0 + 1).ts(7780, sa.hdr.options.timestamps.unwrap().0));
    assert_eq!(h.state(), Some(TcpState::Established));
}

// ----- data transfer ------------------------------------------------

#[test]
fn in_order_data_is_delivered_and_immediately_acked() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().seq(101).ack(iss + 1).payload(b"hello"));
    // AckPolicy::Immediate: every data segment is acked at once (§4.1)
    h.expect(Expect::pure_ack().ack_no(106));
    h.expect_quiet();
    assert_eq!(delivered(&h.take_events()), b"hello");
}

#[test]
fn engine_data_carries_correct_seq_and_payload() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.send(b"hello qpip");
    let d = h.expect(Expect::data(b"hello qpip").seq(iss + 1).ack_no(101));
    assert!(d.hdr.flags.psh || !d.payload.is_empty());
    // peer acks; the send unit completes
    h.inject(seg().seq(101).ack(iss + 11));
    let ev = h.take_events();
    assert_eq!(count_send_complete(&ev), 1);
}

#[test]
fn out_of_order_segment_is_dropped_with_duplicate_ack() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    // A gap: seq 201 when 101 is expected. No reassembly in the subset
    // (§4.1) — the segment is dropped and a duplicate ACK goes out.
    h.inject(seg().seq(201).ack(iss + 1).payload(&[0xaa; 50]));
    h.expect(Expect::pure_ack().ack_no(101));
    let conn = h.conn().unwrap();
    assert_eq!(h.engine().conn_ooo_drops(conn), Some(1));
    assert!(delivered(&h.take_events()).is_empty());
}

#[test]
fn duplicate_data_is_reacked_not_redelivered() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().seq(101).ack(iss + 1).payload(b"abc"));
    h.expect(Expect::pure_ack().ack_no(104));
    assert_eq!(delivered(&h.take_events()), b"abc");
    // the ACK got lost from the peer's view; it retransmits
    h.inject(seg().seq(101).ack(iss + 1).payload(b"abc"));
    h.expect(Expect::pure_ack().ack_no(104));
    assert!(delivered(&h.take_events()).is_empty());
}

#[test]
fn retransmit_on_rto_uses_same_sequence_number() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.send(&[0x42; 200]);
    h.expect(Expect::data(&[0x42; 200]).seq(iss + 1));
    h.fire_timer();
    h.expect(Expect::data(&[0x42; 200]).seq(iss + 1));
    assert_eq!(h.stats().rto_retransmits, 1);
}

#[test]
fn third_duplicate_ack_triggers_fast_retransmit() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    for _ in 0..5 {
        h.send(&[0x55; 100]);
    }
    for i in 0..5 {
        h.expect(Expect::data(&[0x55; 100]).seq(iss + 1 + i * 100));
    }
    // first segment lost from the peer's view: three duplicate ACKs
    h.inject(seg().seq(101).ack(iss + 1));
    h.expect_quiet();
    h.inject(seg().seq(101).ack(iss + 1));
    h.expect_quiet();
    h.inject(seg().seq(101).ack(iss + 1));
    h.expect(Expect::data(&[0x55; 100]).seq(iss + 1));
    assert_eq!(h.stats().fast_retransmits, 1);
    assert_eq!(h.stats().dupacks_rx, 3);
    // full cumulative ACK completes all five units
    h.inject(seg().seq(101).ack(iss + 501));
    assert_eq!(count_send_complete(&h.take_events()), 5);
}

#[test]
fn zero_window_blocks_send_and_reopen_releases_no_persist_timer() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().seq(101).ack(iss + 1).win(0));
    let conn = h.conn().unwrap();
    assert_eq!(h.engine().conn_snd_wnd(conn), Some(0));
    h.send(&[0x77; 100]);
    h.expect_quiet();
    // Documented subset behaviour: no persist timer. Nothing is armed;
    // the receiver re-advertises its window instead (QPIP posts WRs).
    assert!(h.next_deadline().is_none());
    h.inject(seg().seq(101).ack(iss + 1).win(65535));
    h.expect(Expect::data(&[0x77; 100]).seq(iss + 1));
}

#[test]
fn peer_window_scale_is_applied_to_advertised_window() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460).wscale(2));
    let sa = h.expect(Expect::synack().ack_no(101));
    let iss = sa.hdr.seq.0;
    h.inject(seg().seq(101).ack(iss + 1).win(100));
    let conn = h.conn().unwrap();
    // 100 << 2 = 400 usable bytes
    assert_eq!(h.engine().conn_snd_wnd(conn), Some(400));
    h.send(&[0x11; 500]);
    h.expect_quiet(); // 500 > 400: blocked
    h.inject(seg().seq(101).ack(iss + 1).win(200)); // 800 bytes now
    h.expect(Expect::data(&[0x11; 500]).seq(iss + 1));
}

#[test]
fn timestamp_echo_reflects_latest_in_order_tsval() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460).ts(500, 0));
    let sa = h.expect(Expect::synack().ts_present(true).ts_ecr(500));
    let iss = sa.hdr.seq.0;
    h.inject(seg().seq(101).ack(iss + 1).ts(510, sa.hdr.options.timestamps.unwrap().0));
    h.inject(seg().seq(101).ack(iss + 1).payload(b"x").ts(777, 0));
    h.expect(Expect::pure_ack().ack_no(102).ts_present(true).ts_ecr(777));
}

// ----- teardown -----------------------------------------------------

#[test]
fn passive_close_full_lifecycle() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    // peer closes first
    h.inject(seg().fin().seq(101).ack(iss + 1));
    h.expect(Expect::pure_ack().ack_no(102));
    assert_eq!(h.state(), Some(TcpState::CloseWait));
    assert!(h.take_events().iter().any(|e| matches!(e, Emit::TcpPeerClosed { .. })));
    // application closes; FIN goes out, LAST-ACK
    h.close();
    h.expect(Expect::fin_seg().seq(iss + 1).ack_no(102));
    assert_eq!(h.state(), Some(TcpState::LastAck));
    // final ACK: connection fully closed and reaped
    h.inject(seg().seq(102).ack(iss + 2));
    assert!(h.take_events().iter().any(|e| matches!(e, Emit::TcpClosed { .. })));
    assert_eq!(h.state(), None);
    assert_eq!(h.engine().conn_count(), 0);
}

#[test]
fn active_close_fin_wait_sequence_to_time_wait() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.close();
    h.expect(Expect::fin_seg().seq(iss + 1).ack_no(101));
    assert_eq!(h.state(), Some(TcpState::FinWait1));
    h.inject(seg().seq(101).ack(iss + 2));
    assert_eq!(h.state(), Some(TcpState::FinWait2));
    h.inject(seg().fin().seq(101).ack(iss + 2));
    h.expect(Expect::pure_ack().ack_no(102));
    assert_eq!(h.state(), Some(TcpState::TimeWait));
    // 2×MSL expiry reaps the connection
    h.fire_timer();
    assert!(h.take_events().iter().any(|e| matches!(e, Emit::TcpClosed { .. })));
    assert_eq!(h.state(), None);
}

#[test]
fn simultaneous_close_goes_through_closing() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.close();
    h.expect(Expect::fin_seg().seq(iss + 1));
    // peer's FIN crosses ours: it does not ack our FIN
    h.inject(seg().fin().seq(101).ack(iss + 1));
    h.expect(Expect::pure_ack().ack_no(102));
    assert_eq!(h.state(), Some(TcpState::Closing));
    h.inject(seg().seq(102).ack(iss + 2));
    assert_eq!(h.state(), Some(TcpState::TimeWait));
    h.fire_timer();
    assert_eq!(h.state(), None);
}

#[test]
fn fin_plus_ack_combined_goes_straight_to_time_wait() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.close();
    h.expect(Expect::fin_seg().seq(iss + 1));
    // one segment acks our FIN and carries the peer's FIN
    h.inject(seg().fin().seq(101).ack(iss + 2));
    h.expect(Expect::pure_ack().ack_no(102));
    assert_eq!(h.state(), Some(TcpState::TimeWait));
    h.fire_timer();
    assert_eq!(h.state(), None);
}

#[test]
fn unacked_fin_retransmits_on_rto() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.close();
    h.expect(Expect::fin_seg().seq(iss + 1));
    h.fire_timer();
    h.expect(Expect::fin_seg().seq(iss + 1));
    assert_eq!(h.stats().rto_retransmits, 1);
    assert_eq!(h.state(), Some(TcpState::FinWait1));
}

#[test]
fn exact_sequence_rst_tears_the_connection_down() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().rst().seq(101).ack(iss + 1));
    h.expect_quiet();
    assert!(h.take_events().iter().any(|e| matches!(e, Emit::TcpReset { .. })));
    assert_eq!(h.state(), None);
    assert_eq!(h.engine().conn_count(), 0);
}

#[test]
fn data_after_reset_is_dropped_at_demux() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().rst().seq(101).ack(iss + 1));
    let before = h.stats().demux_drops;
    h.inject(seg().seq(101).ack(iss + 1).payload(b"late"));
    h.expect_quiet();
    assert_eq!(h.stats().demux_drops, before + 1);
}

// ----- demux and stray segments -------------------------------------

#[test]
fn segment_to_unbound_port_is_counted_and_unanswered() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().seq(1).ack(1).to_port(9999).payload(b"who"));
    h.expect_quiet();
    assert_eq!(h.stats().demux_drops, 1);
    assert_eq!(h.engine().conn_count(), 0);
}

#[test]
fn data_piggybacked_on_handshake_ack_is_delivered() {
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460));
    let sa = h.expect(Expect::synack());
    // third ACK carries the first request bytes immediately
    h.inject(seg().seq(101).ack(sa.hdr.seq.0 + 1).payload(b"req1"));
    h.expect(Expect::pure_ack().ack_no(105));
    assert_eq!(h.state(), Some(TcpState::Established));
    assert_eq!(delivered(&h.take_events()), b"req1");
}

// ----- malformed input ----------------------------------------------

#[test]
fn corrupted_checksum_is_dropped_without_state_change() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().seq(101).ack(iss + 1).payload(b"evil").bad_checksum());
    h.expect_quiet();
    assert_eq!(h.stats().checksum_drops, 1);
    assert_eq!(h.state(), Some(TcpState::Established));
    assert!(delivered(&h.take_events()).is_empty());
}

#[test]
fn truncated_packet_is_dropped_as_parse_error() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().seq(101).ack(iss + 1).payload(b"short").truncated(44));
    h.expect_quiet();
    assert_eq!(h.stats().parse_drops, 1);
    assert_eq!(h.state(), Some(TcpState::Established));
}

#[test]
fn advance_between_steps_keeps_connection_stable() {
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.advance(SimDuration::from_millis(50));
    h.inject(seg().seq(101).ack(iss + 1).payload(b"later"));
    h.expect(Expect::pure_ack().ack_no(106));
    assert_eq!(delivered(&h.take_events()), b"later");
}

// ----- regressions for bugs the suite and fuzzer exposed ------------
//
// Each test below reproduces a state-machine bug that this harness (or
// the seeded fuzz loop driving the TCB invariant oracle) found in the
// engine, and pins the fixed behaviour.

#[test]
fn blind_rst_in_window_gets_challenge_ack() {
    // RFC 5961 §3.2: an in-window RST whose sequence number is not
    // exactly RCV.NXT draws a challenge ACK instead of killing the
    // connection (the engine used to accept any RST blindly).
    let mut h = Harness::server(cfg(), PORT);
    h.handshake(100);
    h.inject(seg().rst().seq(150));
    h.expect(Expect::pure_ack().ack_no(101));
    assert_eq!(h.state(), Some(TcpState::Established));
}

#[test]
fn out_of_window_rst_is_dropped_silently() {
    let mut h = Harness::server(cfg(), PORT);
    h.handshake(100);
    h.inject(seg().rst().seq(101u32.wrapping_add(0x4000_0000)));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::Established));
}

#[test]
fn rst_in_syn_sent_requires_ack_of_our_syn() {
    let mut h = Harness::client(cfg(), PORT);
    let syn = h.expect(Expect::any());
    let iss = syn.hdr.seq.0;
    // a bare RST (no ACK) cannot abort a half-open connection
    h.inject(seg().rst().seq(0));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::SynSent));
    // a RST acknowledging our SYN is a legitimate connection refusal
    h.inject(seg().rst().seq(0).ack(iss.wrapping_add(1)));
    h.expect_quiet();
    assert!(h.take_events().iter().any(|e| matches!(e, Emit::TcpReset { .. })));
    assert_eq!(h.engine().conn_count(), 0);
}

#[test]
fn ack_beyond_snd_max_is_acked_and_dropped() {
    // RFC 793: an ACK for data never sent draws an ACK and the segment
    // is discarded wholesale — its payload must not be delivered.
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.inject(seg().seq(101).ack(iss.wrapping_add(50_000)).payload(b"evil"));
    h.expect(Expect::pure_ack().ack_no(101));
    assert!(delivered(&h.take_events()).is_empty());
    assert_eq!(h.state(), Some(TcpState::Established));
}

#[test]
fn syn_ack_options_mirror_the_syn() {
    // A SYN without window scale / timestamps must not be answered with
    // them (the engine used to advertise its own config unconditionally,
    // leaving the two sides disagreeing about header layout).
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460));
    let sa = h.expect(Expect::synack().ack_no(101).mss_present(true));
    assert!(sa.hdr.options.window_scale.is_none(), "no ws offer, no ws echo");
    assert!(sa.hdr.options.timestamps.is_none(), "no ts offer, no ts echo");

    // ...while a fully-optioned SYN still gets both echoed
    let mut h2 = Harness::server(cfg(), PORT);
    h2.inject(seg().syn().seq(100).win(65535).mss(1460).wscale(7).ts(1, 0));
    let sa2 = h2.expect(Expect::synack().ack_no(101));
    assert!(sa2.hdr.options.window_scale.is_some());
    assert!(sa2.hdr.options.timestamps.is_some());
}

#[test]
fn acked_fin_is_not_retransmitted() {
    // The FIN's sequence slot lies one past the send buffer, so its
    // acknowledgment never advanced `una` — the engine kept the FIN
    // "outstanding" forever, re-arming the retransmission timer in
    // FIN-WAIT-2 and TIME-WAIT. Found by the fuzz loop (oracle
    // invariant `timewait_timer`).
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.close();
    let fin = h.expect(Expect::fin_seg());
    assert_eq!(fin.hdr.seq.0, iss.wrapping_add(1));
    h.inject(seg().seq(101).ack(iss.wrapping_add(2)));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::FinWait2));
    assert!(h.next_deadline().is_none(), "no timer once the FIN is acked");
}

#[test]
fn data_and_fin_acked_together_complete_the_send() {
    // Second half of the same bug: one ACK covering data + FIN points
    // one past the buffered bytes, and the send buffer used to reject
    // it — leaving the data unacknowledged forever.
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.send(b"01234567");
    h.expect(Expect::data(b"01234567"));
    h.close();
    let fin = h.expect(Expect::fin_seg());
    assert_eq!(fin.hdr.seq.0, iss.wrapping_add(9));
    h.inject(seg().seq(101).ack(iss.wrapping_add(10)));
    h.expect_quiet();
    assert_eq!(count_send_complete(&h.take_events()), 1);
    assert_eq!(h.state(), Some(TcpState::FinWait2));
    assert!(h.next_deadline().is_none());
}

#[test]
fn mid_message_ack_does_not_split_message_framing() {
    // Message-per-segment mode: a forged ACK landing inside a message
    // used to drag una/nxt off the chunk boundary and trip the
    // whole-chunk assertion on the next retransmission.
    let mut h = Harness::server(cfg(), PORT);
    let iss = h.handshake(100);
    h.send(&[0xAB; 100]);
    h.expect(Expect::data(&[0xAB; 100]));
    h.inject(seg().seq(101).ack(iss.wrapping_add(51)));
    assert_eq!(count_send_complete(&h.take_events()), 0, "partial message is not complete");
    h.fire_timer();
    let rtx = h.expect(Expect::data(&[0xAB; 100]));
    assert_eq!(rtx.hdr.seq.0, iss.wrapping_add(1), "whole message retransmitted");
}

#[test]
fn fin_with_unacceptable_ack_in_syn_rcvd_is_ignored() {
    // A FIN riding an ACK that does not acknowledge our SYN used to be
    // consumed in SYN-RCVD (advancing RCV.NXT with no state to go to).
    // Found by the fuzz loop (oracle invariant `peer_fin_state`).
    let mut h = Harness::server(cfg(), PORT);
    h.inject(seg().syn().seq(100).win(65535).mss(1460));
    let sa = h.expect(Expect::synack());
    let iss = sa.hdr.seq.0;
    h.inject(seg().fin().seq(101).ack(iss));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::SynRcvd));
    // the handshake still completes at the unchanged RCV.NXT
    h.inject(seg().seq(101).ack(iss.wrapping_add(1)));
    h.expect_quiet();
    assert_eq!(h.state(), Some(TcpState::Established));
}

#[test]
fn syn_with_rst_does_not_spawn_a_connection() {
    let mut h = Harness::server(cfg(), PORT);
    let before = h.stats().demux_drops;
    h.inject(seg().syn().rst().seq(100).win(65535).mss(1460));
    h.expect_quiet();
    assert_eq!(h.engine().conn_count(), 0);
    assert_eq!(h.stats().demux_drops, before + 1);
}
