//! Differential checking: one workload, two execution substrates.
//!
//! The DES world (`QpipWorld`) and the live-socket transport
//! (`XportNode` over 127.0.0.1) both drive the stock protocol engine.
//! Run the same lockstep application workload through both and the
//! normalized per-connection flight-recorder streams — state
//! transitions and wire segments, timestamps stripped — must be
//! byte-identical: same handshake, same sequence numbers, same flags,
//! same windows, same teardown-free steady state. Any divergence means
//! one substrate drives the engine differently than the other.
//!
//! The workload is lockstep (one message outstanding at a time, each
//! acknowledged before the next is posted) so wall-clock scheduling on
//! the live side cannot reorder protocol events relative to the
//! deterministic simulation.

use std::net::Ipv6Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qpip::world::QpipWorld;
use qpip::{CompletionKind, NicConfig, RecvWr, SendWr, ServiceType};
use qpip_conform::differential::{first_divergence, normalize};
use qpip_netstack::types::Endpoint;
use qpip_trace::{FlightRecorder, Tracer};
use qpip_xport::{XportConfig, XportNode};

const PORT: u16 = 5001;
const RECV_CAP: usize = 4096;

/// Direction of one workload message.
#[derive(Clone, Copy)]
enum Dir {
    ClientToServer,
    ServerToClient,
}
use Dir::{ClientToServer, ServerToClient};

/// The shared workload: a handshake followed by lockstep bidirectional
/// messages of varying sizes. No close — the DES NIC has no app-close
/// verb, so the comparison ends in steady state.
fn workload() -> Vec<(Dir, usize)> {
    vec![
        (ClientToServer, 512),
        (ClientToServer, 96),
        (ServerToClient, 384),
        (ClientToServer, 1500),
        (ServerToClient, 64),
        (ServerToClient, 700),
        (ClientToServer, 1),
    ]
}

fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|b| (i.wrapping_mul(37).wrapping_add(b)) as u8).collect()
}

/// Runs the workload through the DES world. Node 0 is the server,
/// node 1 the client (matching the tracer scopes of the live run).
fn des_run(script: &[(Dir, usize)]) -> Vec<qpip_trace::Rec> {
    let nic = NicConfig::paper_default();
    let mut w = QpipWorld::myrinet();
    let rec = Arc::new(FlightRecorder::new(65536));
    w.install_recorder(Arc::clone(&rec));

    let server = w.add_node(nic.clone());
    let cq_s = w.create_cq(server);
    let qp_s = w.create_qp(server, ServiceType::ReliableTcp, cq_s, cq_s).unwrap();
    for i in 0..script.len() {
        w.post_recv(server, qp_s, RecvWr { wr_id: i as u64, capacity: RECV_CAP }).unwrap();
    }
    w.tcp_listen(server, PORT, qp_s).unwrap();

    let client = w.add_node(nic);
    let cq_c = w.create_cq(client);
    let qp_c = w.create_qp(client, ServiceType::ReliableTcp, cq_c, cq_c).unwrap();
    for i in 0..script.len() {
        w.post_recv(client, qp_c, RecvWr { wr_id: i as u64, capacity: RECV_CAP }).unwrap();
    }
    w.tcp_connect(client, qp_c, 4000, Endpoint::new(w.addr(server), PORT)).unwrap();
    w.wait_matching(client, cq_c, |c| c.kind == CompletionKind::ConnectionEstablished);
    w.wait_matching(server, cq_s, |c| c.kind == CompletionKind::ConnectionEstablished);

    for (i, &(dir, len)) in script.iter().enumerate() {
        let (snode, sqp, scq, rnode, rcq) = match dir {
            ClientToServer => (client, qp_c, cq_c, server, cq_s),
            ServerToClient => (server, qp_s, cq_s, client, cq_c),
        };
        w.post_send(snode, sqp, SendWr { wr_id: i as u64, payload: payload(i, len), dst: None })
            .unwrap();
        let got = w.wait_matching(rnode, rcq, |c| matches!(c.kind, CompletionKind::Recv { .. }));
        let CompletionKind::Recv { ref data, .. } = got.kind else { unreachable!() };
        assert_eq!(data, &payload(i, len), "DES message {i} corrupted");
        w.wait_matching(snode, scq, |c| c.kind == CompletionKind::Send);
    }
    w.run_until_idle();
    rec.events()
}

/// Polls `cq` on `target` until `pred` matches, pumping both nodes so
/// each side's engine keeps making progress.
fn poll_until(
    target: &mut XportNode,
    other: &mut XportNode,
    cq: qpip_nic::types::CqId,
    pred: impl Fn(&qpip_nic::types::Completion) -> bool,
    what: &str,
) -> qpip_nic::types::Completion {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some(c) = target.poll(cq).unwrap() {
            if pred(&c) {
                return c;
            }
            panic!("unexpected completion while waiting for {what}: {:?}", c.kind);
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        target.pump(Duration::from_millis(1)).unwrap();
        other.pump(Duration::from_millis(1)).unwrap();
    }
}

/// Runs the workload over real loopback sockets. Tracer scopes match
/// the DES run: node 0 server, node 1 client.
fn live_run(script: &[(Dir, usize)]) -> Vec<qpip_trace::Rec> {
    const FABRIC_S: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 1);
    const FABRIC_C: Ipv6Addr = Ipv6Addr::new(0xfc00, 0, 0, 0, 0, 0, 0, 2);
    let rec = Arc::new(FlightRecorder::new(65536));
    // the periodic window re-advertisement is a wall-clock artifact the
    // DES world has no counterpart for; push it past the test horizon
    let cfg =
        || XportConfig { window_refresh: Duration::from_secs(3600), ..XportConfig::default() };

    let mut server = XportNode::bind(FABRIC_S, cfg()).expect("bind server");
    let mut client = XportNode::bind(FABRIC_C, cfg()).expect("bind client");
    server.set_tracer(Tracer::new(Arc::clone(&rec), 0));
    client.set_tracer(Tracer::new(Arc::clone(&rec), 1));
    server.add_peer(FABRIC_C, client.local_addr().unwrap());
    client.add_peer(FABRIC_S, server.local_addr().unwrap());

    let cq_s = server.create_cq();
    let qp_s = server.create_qp(ServiceType::ReliableTcp, cq_s, cq_s).unwrap();
    for i in 0..script.len() {
        server.post_recv(qp_s, RecvWr { wr_id: i as u64, capacity: RECV_CAP }).unwrap();
    }
    server.tcp_listen(qp_s, PORT).unwrap();

    let cq_c = client.create_cq();
    let qp_c = client.create_qp(ServiceType::ReliableTcp, cq_c, cq_c).unwrap();
    for i in 0..script.len() {
        client.post_recv(qp_c, RecvWr { wr_id: i as u64, capacity: RECV_CAP }).unwrap();
    }
    client.tcp_connect(qp_c, 4000, Endpoint::new(FABRIC_S, PORT)).unwrap();
    poll_until(
        &mut client,
        &mut server,
        cq_c,
        |c| c.kind == CompletionKind::ConnectionEstablished,
        "client established",
    );
    poll_until(
        &mut server,
        &mut client,
        cq_s,
        |c| c.kind == CompletionKind::ConnectionEstablished,
        "server established",
    );

    for (i, &(dir, len)) in script.iter().enumerate() {
        let c2s = matches!(dir, ClientToServer);
        let (snd_qp, snd_cq, rcv_cq) = if c2s { (qp_c, cq_c, cq_s) } else { (qp_s, cq_s, cq_c) };
        {
            let sender = if c2s { &mut client } else { &mut server };
            sender
                .post_send(snd_qp, SendWr { wr_id: i as u64, payload: payload(i, len), dst: None })
                .unwrap();
        }
        let (sender, receiver): (&mut XportNode, &mut XportNode) =
            if c2s { (&mut client, &mut server) } else { (&mut server, &mut client) };
        let got = poll_until(
            receiver,
            sender,
            rcv_cq,
            |c| matches!(c.kind, CompletionKind::Recv { .. }),
            "message delivery",
        );
        let CompletionKind::Recv { ref data, .. } = got.kind else { unreachable!() };
        assert_eq!(data, &payload(i, len), "live message {i} corrupted");
        poll_until(sender, receiver, snd_cq, |c| c.kind == CompletionKind::Send, "send completion");
    }
    rec.events()
}

#[test]
fn des_and_live_transport_drive_the_engine_identically() {
    let script = workload();
    let des = des_run(&script);
    let live = live_run(&script);

    for node in 0..2u32 {
        let a = normalize(&des, node);
        let b = normalize(&live, node);
        assert_eq!(a.len(), 1, "DES node {node}: expected one connection, got {}", a.len());
        assert_eq!(b.len(), 1, "live node {node}: expected one connection, got {}", b.len());
        if let Some(d) = first_divergence(&a[0], &b[0]) {
            panic!("node {node} ({}): {d}", if node == 0 { "server" } else { "client" });
        }
        assert!(
            a[0].iter().any(|l| l.starts_with("state")),
            "node {node} stream has no state transitions: {:?}",
            &a[0]
        );
    }
}
