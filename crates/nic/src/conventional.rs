//! Conventional ("dumb") NIC models for the host-based baselines: the
//! Intel Pro/1000 Gigabit Ethernet adapter and the Myrinet adapter
//! running GM as a simple IP link (§4.2.1). The protocol stack stays on
//! the host; these devices only move frames by DMA and raise interrupts.

use qpip_sim::params;
use qpip_sim::resource::BandwidthPipe;
use qpip_sim::time::{Clock, Cycles, SimDuration, SimTime};

/// Configuration of a conventional NIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvNicConfig {
    /// Per-packet transmit-side processing on the adapter.
    pub tx_proc_cycles: u64,
    /// Per-packet receive-side processing on the adapter.
    pub rx_proc_cycles: u64,
    /// Adapter clock for those cycles.
    pub clock: Clock,
    /// Receive interrupts are coalesced: at most one interrupt per this
    /// many packets while the stream stays dense…
    pub coalesce_pkts: u64,
    /// …where "dense" means inter-arrival gaps below this.
    pub coalesce_gap: SimDuration,
}

impl ConvNicConfig {
    /// Intel Pro/1000-like ASIC: negligible per-frame engine cost,
    /// moderate interrupt coalescing.
    pub fn gige() -> Self {
        ConvNicConfig {
            tx_proc_cycles: 120,
            rx_proc_cycles: 150,
            clock: Clock::from_mhz(133),
            coalesce_pkts: params::GIGE_INTR_COALESCE_PKTS,
            coalesce_gap: SimDuration::from_micros(30),
        }
    }

    /// Myrinet adapter running GM firmware as an IP link: the LANai
    /// executes GM's send/receive handling per packet, and every receive
    /// interrupts the host (no coalescing in the GM IP path).
    pub fn gm_myrinet() -> Self {
        ConvNicConfig {
            tx_proc_cycles: params::GM_NIC_TX_CYCLES,
            rx_proc_cycles: params::GM_NIC_RX_CYCLES,
            clock: params::nic_clock(),
            coalesce_pkts: 1,
            coalesce_gap: SimDuration::ZERO,
        }
    }
}

/// Outcome of a receive: when the frame is readable in host memory, and
/// whether this frame raises a host interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxOutcome {
    /// Frame bytes available in the host ring buffer.
    pub data_ready: SimTime,
    /// `true` when the adapter asserts an interrupt for this frame.
    pub interrupt: bool,
}

/// A descriptor-ring NIC without protocol offload.
///
/// # Examples
///
/// ```
/// use qpip_nic::conventional::{ConvNicConfig, ConventionalNic};
/// use qpip_sim::time::SimTime;
///
/// let mut nic = ConventionalNic::new(ConvNicConfig::gige());
/// // the frame DMAs across PCI before it can start on the wire
/// let wire_start = nic.tx(SimTime::ZERO, 1500);
/// assert!(wire_start > SimTime::ZERO);
/// // a sparse receive interrupts the host
/// let rx = nic.rx(SimTime::from_micros(500), 1500);
/// assert!(rx.interrupt);
/// ```
#[derive(Debug)]
pub struct ConventionalNic {
    cfg: ConvNicConfig,
    dma_read: BandwidthPipe,
    dma_write: BandwidthPipe,
    engine_free: SimTime,
    last_rx: Option<SimTime>,
    pkts_since_intr: u64,
    tx_packets: u64,
    rx_packets: u64,
    interrupts: u64,
}

impl ConventionalNic {
    /// Creates a NIC.
    pub fn new(cfg: ConvNicConfig) -> Self {
        ConventionalNic {
            cfg,
            dma_read: BandwidthPipe::new("pci-dma-rd", params::PCI_DMA_READ_BYTES_PER_SEC),
            dma_write: BandwidthPipe::new("pci-dma-wr", params::PCI_DMA_WRITE_BYTES_PER_SEC),
            engine_free: SimTime::ZERO,
            last_rx: None,
            pkts_since_intr: 0,
            tx_packets: 0,
            rx_packets: 0,
            interrupts: 0,
        }
    }

    /// Transmits a frame handed over by the driver at `now`; returns the
    /// instant the frame starts on the wire.
    pub fn tx(&mut self, now: SimTime, frame_len: usize) -> SimTime {
        self.tx_packets += 1;
        let dma_done = self.dma_read.transfer(now, frame_len as u64)
            + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
        let proc = self.cfg.clock.cycles_to_duration(Cycles(self.cfg.tx_proc_cycles));
        let start = dma_done.max(self.engine_free) + proc;
        self.engine_free = start;
        start
    }

    /// Receives a frame whose last byte arrived from the wire at `now`.
    pub fn rx(&mut self, now: SimTime, frame_len: usize) -> RxOutcome {
        self.rx_packets += 1;
        let proc = self.cfg.clock.cycles_to_duration(Cycles(self.cfg.rx_proc_cycles));
        let proc_done = now.max(self.engine_free) + proc;
        self.engine_free = proc_done;
        let data_ready = self.dma_write.transfer(proc_done, frame_len as u64)
            + SimDuration::from_nanos(params::PCI_DMA_SETUP_NS);
        // interrupt moderation: a sparse stream interrupts per frame; a
        // dense stream interrupts once per coalesce_pkts
        let dense = self.last_rx.is_some_and(|t| now.duration_since(t) < self.cfg.coalesce_gap);
        self.last_rx = Some(now);
        self.pkts_since_intr += 1;
        let interrupt = !dense || self.pkts_since_intr >= self.cfg.coalesce_pkts;
        if interrupt {
            self.pkts_since_intr = 0;
            self.interrupts += 1;
        }
        RxOutcome { data_ready, interrupt }
    }

    /// Frames transmitted.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Frames received.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// Interrupts asserted.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_pays_dma_and_engine_cost() {
        let mut nic = ConventionalNic::new(ConvNicConfig::gige());
        let start = nic.tx(SimTime::ZERO, 1500);
        // 1500B over the 80 MB/s chipset read path ≈ 18.75 µs + 0.7 µs
        // setup + ~0.9 µs engine
        let us = start.as_micros_f64();
        assert!((19.0..22.0).contains(&us), "{us}");
        assert_eq!(nic.tx_packets(), 1);
    }

    #[test]
    fn sparse_receives_interrupt_every_frame() {
        let mut nic = ConventionalNic::new(ConvNicConfig::gige());
        for i in 0..5u64 {
            let t = SimTime::from_micros(i * 1000); // 1 ms apart: sparse
            let out = nic.rx(t, 1500);
            assert!(out.interrupt, "sparse frame {i} should interrupt");
        }
        assert_eq!(nic.interrupts(), 5);
    }

    #[test]
    fn dense_receives_coalesce() {
        let mut nic = ConventionalNic::new(ConvNicConfig::gige());
        let mut interrupts = 0;
        for i in 0..16u64 {
            let t = SimTime::from_micros(i * 12); // 12 µs apart: dense
            if nic.rx(t, 1500).interrupt {
                interrupts += 1;
            }
        }
        // first frame interrupts, then one per 4
        assert!(interrupts <= 5, "{interrupts}");
        assert!(interrupts >= 4, "{interrupts}");
    }

    #[test]
    fn gm_interrupts_every_packet_even_dense() {
        let mut nic = ConventionalNic::new(ConvNicConfig::gm_myrinet());
        for i in 0..8u64 {
            let out = nic.rx(SimTime::from_micros(i * 5), 9000);
            assert!(out.interrupt);
        }
        assert_eq!(nic.interrupts(), 8);
    }

    #[test]
    fn back_to_back_tx_serialize_on_dma() {
        let mut nic = ConventionalNic::new(ConvNicConfig::gige());
        let t1 = nic.tx(SimTime::ZERO, 9000);
        let t2 = nic.tx(SimTime::ZERO, 9000);
        assert!(t2 > t1);
        let gap = (t2 - t1).as_micros_f64();
        // ≥ one 9000-byte PCI serialization (~33.8 µs)
        assert!(gap > 30.0, "{gap}");
    }
}
